/**
 * @file
 * Probabilistic-circuit inference on DPU-v2 (the paper's motivating
 * workload, §I): generate a PC, compile it once, then run repeated
 * inference queries — only the leaf values change between queries.
 *
 *     ./build/examples/pc_inference [ops] [depth]
 */

#include <cstdio>
#include <cstdlib>

#include "compiler/compiler.hh"
#include "model/energy.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

int
main(int argc, char **argv)
{
    using namespace dpu;

    PcParams params;
    params.targetOperations = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20000;
    params.depth = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 30;
    params.seed = 42;
    Dag pc = generatePc(params);
    std::printf("generated PC: %zu sum/product nodes, %zu leaves, "
                "longest path %zu\n",
                pc.numOperations(), pc.numInputs(),
                (size_t)params.depth);

    ArchConfig cfg = minEdpConfig();
    CompiledProgram program = compile(pc, cfg);
    std::printf("compiled once in %.2f s -> %llu cycles/inference\n",
                program.stats.compileSeconds,
                static_cast<unsigned long long>(program.stats.cycles));

    // Run a batch of inference queries on the same program.
    Machine machine(program);
    Rng rng(7);
    for (int query = 0; query < 3; ++query) {
        std::vector<double> leaves(pc.numInputs());
        for (double &x : leaves)
            x = 0.5 + rng.uniform(); // leaf likelihoods
        SimResult res = machine.run(leaves);
        EnergyBreakdown e =
            energyOf(cfg, res.stats, program.stats.numOperations);
        std::printf("query %d: root value %.6g | %.1f us, %.2f GOPS, "
                    "%.2f uJ\n",
                    query, res.outputs.back(), e.seconds() * 1e6,
                    program.stats.numOperations / e.seconds() * 1e-9,
                    e.totalPj * 1e-6);
    }
    return 0;
}
