/**
 * @file
 * Quickstart: build a tiny DAG, compile it for DPU-v2, run it on the
 * cycle-accurate simulator, and inspect the result.
 *
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/compiler.hh"
#include "dag/dag.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace dpu;

    // 1. Describe the computation as a DAG. Node ids are returned in
    //    topological order; operands must already exist.
    //    Here: result = (a + b) * (b + c).
    Dag dag;
    NodeId a = dag.addInput();
    NodeId b = dag.addInput();
    NodeId c = dag.addInput();
    NodeId left = dag.addNode(OpType::Add, {a, b});
    NodeId right = dag.addNode(OpType::Add, {b, c});
    dag.addNode(OpType::Mul, {left, right});

    // 2. Pick an architecture instance. minEdpConfig() is the paper's
    //    optimum: D=3 tree layers, 64 banks, 32 registers per bank.
    ArchConfig cfg = minEdpConfig();

    // 3. Compile. The DAG structure is static, so this happens once;
    //    only the input values change between runs (paper §I).
    CompiledProgram program = compile(dag, cfg);
    std::printf("compiled %zu instructions for %s (%llu cycles)\n",
                program.instructions.size(), cfg.label().c_str(),
                static_cast<unsigned long long>(program.stats.cycles));

    // 4. Execute on the cycle-accurate machine with concrete inputs.
    Machine machine(program);
    SimResult result = machine.run({1.0, 2.0, 4.0});
    std::printf("(1 + 2) * (2 + 4) = %g\n", result.outputs[0]);

    // 5. Or let the library cross-check against the golden evaluator.
    runAndCheck(program, dag, {3.0, 5.0, 7.0});
    std::printf("functional check against the reference evaluator "
                "passed\n");
    return 0;
}
