/**
 * @file
 * Sparse triangular solve on DPU-v2 (paper §I, §V-A): lower a sparse
 * lower-triangular system to a DAG, compile once for the static
 * sparsity pattern, then solve for several right-hand sides — the
 * robotics/communications use case where the pattern is fixed and b
 * changes every iteration.
 *
 *     ./build/examples/sptrsv_solve [dim]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "compiler/compiler.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"

int
main(int argc, char **argv)
{
    using namespace dpu;

    LowerTriangularParams mp;
    mp.dim = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 1024;
    mp.depthLevels = mp.dim / 16;
    mp.avgOffDiagonal = 4.0;
    mp.seed = 11;
    SparseMatrixCsr lower = makeLowerTriangular(mp);
    std::printf("L: %u x %u, %zu nonzeros, dependency depth %zu\n",
                lower.dim(), lower.dim(), lower.nnz(),
                lower.dependencyDepth());

    // Lower to a DAG (x_i = b'_i + sum c_ij * x_j) and compile once.
    SpTrsvDag lowered = buildSpTrsvDag(lower);
    CompiledProgram program = compile(lowered.dag, minEdpConfig());
    std::printf("DAG: %zu operations -> %llu cycles/solve\n",
                lowered.dag.numOperations(),
                static_cast<unsigned long long>(program.stats.cycles));

    Machine machine(program);
    Rng rng(3);
    for (int solve = 0; solve < 3; ++solve) {
        std::vector<double> b(lower.dim());
        for (double &x : b)
            x = rng.uniform() * 2 - 1;

        // Map (L, b) onto the DAG inputs and run.
        SimResult res = machine.run(sptrsvInputValues(lowered, lower, b));

        // Pull x back out and verify against forward substitution.
        // (The machine result vector is ordered like program.outputs;
        // evaluate() ordering is easier to index, so re-run the
        // golden solver for the check.)
        auto x_ref = solveLowerTriangular(lower, b);
        double max_rel = 0;
        for (size_t k = 0; k < program.outputs.size(); ++k) {
            // Find which row this output node solves.
            NodeId node = program.outputs[k].node;
            for (uint32_t r = 0; r < lower.dim(); ++r) {
                if (lowered.solution[r] == node) {
                    double rel = std::abs(res.outputs[k] - x_ref[r]) /
                                 (1e-12 + std::abs(x_ref[r]));
                    max_rel = std::max(max_rel, rel);
                }
            }
        }
        std::printf("solve %d: max relative error vs forward "
                    "substitution = %.2e\n",
                    solve, max_rel);
    }
    return 0;
}
