/**
 * @file
 * Mini design-space exploration (paper §V): evaluate a handful of
 * (D, B, R) instances on one workload and print the latency / energy
 * / EDP trade-off — the workflow behind fig. 11, at example scale.
 *
 *     ./build/examples/design_space
 */

#include <cstdio>

#include "model/dse.hh"
#include "support/table.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace dpu;

    std::vector<WorkloadSpec> workload{findWorkload("mnist")};

    TablePrinter t({"design", "latency/op (ns)", "energy/op (pJ)",
                    "EDP (pJ*ns)", "area (mm2)"});
    std::vector<DsePoint> points;
    for (uint32_t depth : {1u, 3u})
        for (uint32_t banks : {8u, 64u})
            for (uint32_t regs : {16u, 64u}) {
                ArchConfig cfg;
                cfg.depth = depth;
                cfg.banks = banks;
                cfg.regsPerBank = regs;
                DsePoint p = evaluateDesign(cfg, workload, 0.5, 1);
                points.push_back(p);
                t.row()
                    .cell(cfg.label())
                    .num(p.latencyPerOpNs, 3)
                    .num(p.energyPerOpPj, 1)
                    .num(p.edpPjNs, 1)
                    .num(p.areaMm2, 2);
            }
    t.print();

    const DsePoint &best = points[minEdpIndex(points)];
    std::printf("\nbest EDP here: %s — deeper trees and more banks "
                "buy latency; small register files stay efficient "
                "until spilling bites (run bench/fig11_dse for the "
                "full 48-point sweep).\n",
                best.cfg.label().c_str());
    return 0;
}
