/**
 * @file
 * dpuc — the command-line DPU-v2 compiler driver.
 *
 * Mirrors the original artifact's workflow (DAG file in, binary
 * program + statistics out) without the Python/VCS stack:
 *
 *     dpuc <dag-file> [options]
 *     dpuc --matrix=<file.mtx> [options]
 *
 *     --matrix=<file.mtx>            compile the SpTRSV DAG lowered
 *                                    from a Matrix Market file
 *                                    (lower-triangularized) instead
 *                                    of reading a .dag file
 *     --depth=N --banks=N --regs=N   architecture (default: min-EDP)
 *     --out=<file>                   write the packed binary image
 *     --prog=<file>                  write the self-contained program
 *                                    image (dpulint's input format)
 *     --disasm                       print the disassembly
 *     --dot=<file>                   dump the input DAG as Graphviz
 *     --optimize                     run CSE+DCE before compiling
 *     --simulate                     run with random inputs + check
 *     --verify                       run the static verifier on every
 *                                    pipeline stage (compiler/verify)
 *     --window=N --partition=N --seed=N   compiler knobs
 *     --threads=N                    partition-parallel compile
 *                                    workers (byte-identical output
 *                                    for every N; N >= 1)
 *
 * Exit code 0 on success, 1 on user error (per gem5's fatal()
 * convention), 2 on an invalid option value (non-numeric or
 * out-of-range, e.g. --threads=0 or --threads=abc) or an internal
 * error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "arch/disasm.hh"
#include "compiler/cache.hh"
#include "compiler/compiler.hh"
#include "compiler/verify.hh"
#include "dag/io.hh"
#include "dag/optimize.hh"
#include "sim/machine.hh"
#include "support/cli.hh"
#include "support/rng.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"

using namespace dpu;

namespace {

struct Args
{
    std::string dagPath;
    std::string matrixPath;
    std::string outPath;
    std::string progPath;
    std::string dotPath;
    bool disasm = false;
    bool optimize = false;
    bool simulate = false;
    ArchConfig cfg = minEdpConfig();
    CompileOptions opts;
};

/** Parse the command line; 0 = ok, 1 = usage error, 2 = invalid
 *  option value (the documented exit codes). */
int
parseArgs(int argc, char **argv, Args &args)
{
    // Every numeric flag is validated strictly: std::atoi would turn
    // "--threads=abc" into 0 and silently clamp or misconfigure.
    int bad_value = 0;
    auto u32 = [&](const char *flag, const char *s, uint32_t &out) {
        if (!parseUint32Arg(s, out)) {
            std::fprintf(stderr,
                         "dpuc: invalid value '%s' for %s "
                         "(expected an unsigned integer)\n",
                         s, flag);
            bad_value = 2;
        }
    };
    auto u64 = [&](const char *flag, const char *s, uint64_t &out) {
        if (!parseUint64Arg(s, out)) {
            std::fprintf(stderr,
                         "dpuc: invalid value '%s' for %s "
                         "(expected an unsigned integer)\n",
                         s, flag);
            bad_value = 2;
        }
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--depth=", 8) == 0)
            u32("--depth", a + 8, args.cfg.depth);
        else if (std::strncmp(a, "--banks=", 8) == 0)
            u32("--banks", a + 8, args.cfg.banks);
        else if (std::strncmp(a, "--regs=", 7) == 0)
            u32("--regs", a + 7, args.cfg.regsPerBank);
        else if (std::strncmp(a, "--matrix=", 9) == 0) {
            args.matrixPath = a + 9;
            if (args.matrixPath.empty()) {
                std::fprintf(stderr,
                             "dpuc: invalid value '' for --matrix "
                             "(expected a .mtx file path)\n");
                bad_value = 2;
            }
        }
        else if (std::strncmp(a, "--out=", 6) == 0)
            args.outPath = a + 6;
        else if (std::strncmp(a, "--prog=", 7) == 0)
            args.progPath = a + 7;
        else if (std::strncmp(a, "--dot=", 6) == 0)
            args.dotPath = a + 6;
        else if (std::strcmp(a, "--verify") == 0)
            args.opts.verify = true;
        else if (std::strcmp(a, "--disasm") == 0)
            args.disasm = true;
        else if (std::strcmp(a, "--optimize") == 0)
            args.optimize = true;
        else if (std::strcmp(a, "--simulate") == 0)
            args.simulate = true;
        else if (std::strncmp(a, "--window=", 9) == 0) {
            u32("--window", a + 9, args.opts.reorderWindow);
            if (!bad_value && args.opts.reorderWindow < 1) {
                std::fprintf(stderr,
                             "dpuc: invalid value '%s' for --window "
                             "(must be >= 1)\n",
                             a + 9);
                bad_value = 2;
            }
        }
        else if (std::strncmp(a, "--partition=", 12) == 0)
            u32("--partition", a + 12, args.opts.partitionNodes);
        else if (std::strncmp(a, "--seed=", 7) == 0)
            u64("--seed", a + 7, args.opts.seed);
        else if (std::strncmp(a, "--threads=", 10) == 0) {
            u32("--threads", a + 10, args.opts.threads);
            if (!bad_value && args.opts.threads < 1) {
                std::fprintf(stderr,
                             "dpuc: invalid value '%s' for --threads "
                             "(must be >= 1)\n",
                             a + 10);
                bad_value = 2;
            }
        } else if (a[0] == '-') {
            std::fprintf(stderr, "dpuc: unknown option '%s'\n", a);
            return 1;
        } else if (args.dagPath.empty())
            args.dagPath = a;
        else {
            std::fprintf(stderr, "dpuc: more than one input file\n");
            return 1;
        }
    }
    if (bad_value)
        return bad_value;
    if (args.dagPath.empty() == args.matrixPath.empty()) {
        std::fprintf(stderr,
                     args.dagPath.empty()
                         ? "dpuc: missing input (a <dag-file> or "
                           "--matrix=<file.mtx>)\n"
                         : "dpuc: both a <dag-file> and --matrix "
                           "given; pick one input\n");
        std::fprintf(stderr,
                     "usage: dpuc <dag-file> | --matrix=<file.mtx> "
                     "[--depth=N --banks=N "
                     "--regs=N --out=F --prog=F --disasm --dot=F "
                     "--optimize --simulate --verify --window=N "
                     "--partition=N --seed=N --threads=N]\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (int rc = parseArgs(argc, argv, args))
        return rc;
    try {
        Dag dag;
        if (!args.matrixPath.empty()) {
            SparseMatrixCsr lower = lowerTriangularFrom(
                readMatrixMarketFile(args.matrixPath));
            std::printf("dpuc: matrix %s: %u rows, %zu nnz, "
                        "dependency depth %zu\n",
                        args.matrixPath.c_str(), lower.dim(),
                        lower.nnz(), lower.dependencyDepth());
            dag = buildSpTrsvDag(lower).dag;
        } else {
            dag = readDagFile(args.dagPath);
        }
        std::printf("dpuc: %zu nodes (%zu operations, %zu inputs)\n",
                    dag.numNodes(), dag.numOperations(),
                    dag.numInputs());
        if (args.optimize) {
            auto opt = optimizeDag(dag);
            std::printf("dpuc: optimize removed %zu nodes\n",
                        opt.removedNodes);
            dag = std::move(opt.dag);
        }
        if (!args.dotPath.empty()) {
            std::ofstream dot(args.dotPath);
            if (!dot)
                dpu_fatal("cannot open '" + args.dotPath + "'");
            writeDot(dag, dot);
        }

        args.cfg.check();
        CompiledProgram prog = compile(dag, args.cfg, args.opts);
        const auto &s = prog.stats;
        std::printf("dpuc: compiled for %s: %llu instructions, %llu "
                    "cycles, %.1f KB program, %.1f KB data\n",
                    args.cfg.label().c_str(),
                    static_cast<unsigned long long>(s.instructions),
                    static_cast<unsigned long long>(s.cycles),
                    s.programBits / 8192.0, s.dataBits / 8192.0);
        std::printf("dpuc: conflicts=%llu nops=%llu spills=%llu "
                    "(%.2f ops/cycle)\n",
                    static_cast<unsigned long long>(s.bankConflicts),
                    static_cast<unsigned long long>(s.nops),
                    static_cast<unsigned long long>(s.spillStores),
                    double(s.numOperations) / s.cycles);

        if (args.opts.verify)
            std::printf("dpuc: verify: all stages clean (%llu "
                        "instructions checked)\n",
                        static_cast<unsigned long long>(
                            s.instructions));

        if (args.disasm)
            disassembleProgram(args.cfg, prog.instructions, std::cout);

        if (!args.outPath.empty()) {
            auto image = encodeProgram(args.cfg, prog.instructions);
            std::ofstream out(args.outPath, std::ios::binary);
            if (!out)
                dpu_fatal("cannot open '" + args.outPath + "'");
            out.write(reinterpret_cast<const char *>(image.data()),
                      static_cast<std::streamsize>(image.size()));
            std::printf("dpuc: wrote %zu bytes to %s\n", image.size(),
                        args.outPath.c_str());
        }

        if (!args.progPath.empty()) {
            auto image = serializeProgram(prog);
            std::ofstream out(args.progPath, std::ios::binary);
            if (!out)
                dpu_fatal("cannot open '" + args.progPath + "'");
            out.write(reinterpret_cast<const char *>(image.data()),
                      static_cast<std::streamsize>(image.size()));
            std::printf("dpuc: wrote %zu-byte program image to %s\n",
                        image.size(), args.progPath.c_str());
        }

        if (args.simulate) {
            Rng rng(args.opts.seed);
            std::vector<double> in(dag.numInputs());
            for (double &x : in)
                x = 0.5 + rng.uniform();
            auto res = runAndCheck(prog, dag, in);
            std::printf("dpuc: simulated %llu cycles, functional "
                        "check passed, %zu outputs\n",
                        static_cast<unsigned long long>(
                            res.stats.cycles),
                        res.outputs.size());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "dpuc: %s\n", e.what());
        return 1;
    } catch (const VerifyError &e) {
        std::fprintf(stderr, "dpuc: verification failed after %s:\n%s\n",
                     e.stage().c_str(),
                     e.report().toString().c_str());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dpuc: internal error: %s\n", e.what());
        return 2;
    }
}
