/**
 * @file
 * dpuc — the command-line DPU-v2 compiler driver.
 *
 * Mirrors the original artifact's workflow (DAG file in, binary
 * program + statistics out) without the Python/VCS stack:
 *
 *     dpuc <dag-file> [options]
 *
 *     --depth=N --banks=N --regs=N   architecture (default: min-EDP)
 *     --out=<file>                   write the packed binary image
 *     --disasm                       print the disassembly
 *     --dot=<file>                   dump the input DAG as Graphviz
 *     --optimize                     run CSE+DCE before compiling
 *     --simulate                     run with random inputs + check
 *     --window=N --partition=N --seed=N   compiler knobs
 *     --threads=N                    partition-parallel compile
 *                                    workers (byte-identical output
 *                                    for every N)
 *
 * Exit code 0 on success, 1 on user error (per gem5's fatal()
 * convention), 2 on internal error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "arch/disasm.hh"
#include "compiler/compiler.hh"
#include "dag/io.hh"
#include "dag/optimize.hh"
#include "sim/machine.hh"
#include "support/rng.hh"

using namespace dpu;

namespace {

struct Args
{
    std::string dagPath;
    std::string outPath;
    std::string dotPath;
    bool disasm = false;
    bool optimize = false;
    bool simulate = false;
    ArchConfig cfg = minEdpConfig();
    CompileOptions opts;
};

bool
parseArgs(int argc, char **argv, Args &args)
{
    auto intval = [](const char *s) {
        return static_cast<uint32_t>(std::atoi(s));
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--depth=", 8) == 0)
            args.cfg.depth = intval(a + 8);
        else if (std::strncmp(a, "--banks=", 8) == 0)
            args.cfg.banks = intval(a + 8);
        else if (std::strncmp(a, "--regs=", 7) == 0)
            args.cfg.regsPerBank = intval(a + 7);
        else if (std::strncmp(a, "--out=", 6) == 0)
            args.outPath = a + 6;
        else if (std::strncmp(a, "--dot=", 6) == 0)
            args.dotPath = a + 6;
        else if (std::strcmp(a, "--disasm") == 0)
            args.disasm = true;
        else if (std::strcmp(a, "--optimize") == 0)
            args.optimize = true;
        else if (std::strcmp(a, "--simulate") == 0)
            args.simulate = true;
        else if (std::strncmp(a, "--window=", 9) == 0)
            args.opts.reorderWindow = intval(a + 9);
        else if (std::strncmp(a, "--partition=", 12) == 0)
            args.opts.partitionNodes = intval(a + 12);
        else if (std::strncmp(a, "--seed=", 7) == 0)
            args.opts.seed = intval(a + 7);
        else if (std::strncmp(a, "--threads=", 10) == 0) {
            uint32_t n = intval(a + 10);
            args.opts.threads = n < 1 ? 1 : n;
        } else if (a[0] == '-') {
            std::fprintf(stderr, "dpuc: unknown option '%s'\n", a);
            return false;
        } else if (args.dagPath.empty())
            args.dagPath = a;
        else {
            std::fprintf(stderr, "dpuc: more than one input file\n");
            return false;
        }
    }
    if (args.dagPath.empty()) {
        std::fprintf(stderr,
                     "usage: dpuc <dag-file> [--depth=N --banks=N "
                     "--regs=N --out=F --disasm --dot=F --optimize "
                     "--simulate --window=N --partition=N --seed=N "
                     "--threads=N]\n");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return 1;
    try {
        Dag dag = readDagFile(args.dagPath);
        std::printf("dpuc: %zu nodes (%zu operations, %zu inputs)\n",
                    dag.numNodes(), dag.numOperations(),
                    dag.numInputs());
        if (args.optimize) {
            auto opt = optimizeDag(dag);
            std::printf("dpuc: optimize removed %zu nodes\n",
                        opt.removedNodes);
            dag = std::move(opt.dag);
        }
        if (!args.dotPath.empty()) {
            std::ofstream dot(args.dotPath);
            if (!dot)
                dpu_fatal("cannot open '" + args.dotPath + "'");
            writeDot(dag, dot);
        }

        args.cfg.check();
        CompiledProgram prog = compile(dag, args.cfg, args.opts);
        const auto &s = prog.stats;
        std::printf("dpuc: compiled for %s: %llu instructions, %llu "
                    "cycles, %.1f KB program, %.1f KB data\n",
                    args.cfg.label().c_str(),
                    static_cast<unsigned long long>(s.instructions),
                    static_cast<unsigned long long>(s.cycles),
                    s.programBits / 8192.0, s.dataBits / 8192.0);
        std::printf("dpuc: conflicts=%llu nops=%llu spills=%llu "
                    "(%.2f ops/cycle)\n",
                    static_cast<unsigned long long>(s.bankConflicts),
                    static_cast<unsigned long long>(s.nops),
                    static_cast<unsigned long long>(s.spillStores),
                    double(s.numOperations) / s.cycles);

        if (args.disasm)
            disassembleProgram(args.cfg, prog.instructions, std::cout);

        if (!args.outPath.empty()) {
            auto image = encodeProgram(args.cfg, prog.instructions);
            std::ofstream out(args.outPath, std::ios::binary);
            if (!out)
                dpu_fatal("cannot open '" + args.outPath + "'");
            out.write(reinterpret_cast<const char *>(image.data()),
                      static_cast<std::streamsize>(image.size()));
            std::printf("dpuc: wrote %zu bytes to %s\n", image.size(),
                        args.outPath.c_str());
        }

        if (args.simulate) {
            Rng rng(args.opts.seed);
            std::vector<double> in(dag.numInputs());
            for (double &x : in)
                x = 0.5 + rng.uniform();
            auto res = runAndCheck(prog, dag, in);
            std::printf("dpuc: simulated %llu cycles, functional "
                        "check passed, %zu outputs\n",
                        static_cast<unsigned long long>(
                            res.stats.cycles),
                        res.outputs.size());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "dpuc: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dpuc: internal error: %s\n", e.what());
        return 2;
    }
}
