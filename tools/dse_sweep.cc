/**
 * @file
 * dse_sweep — the sharded design-space-exploration driver.
 *
 *     dse_sweep [options]
 *
 *     --axes=<spec>       axis grid, e.g.
 *                         "depth=1,2,3;banks=8,16;regs=32;scale=0.1;cores=1,4"
 *                         (axes omitted from the spec keep their
 *                         defaults; unknown axis names are rejected)
 *     --scale=<f>         workload scale when no scale axis is given
 *     --seed=N            evaluation seed
 *     --threads=N         host worker threads (work-stealing shards)
 *     --shards=N          shard count (default: threads)
 *     --journal=<file>    checkpoint completed points (JSON lines)
 *     --resume            reuse completed points from the journal
 *     --cache-dir=<dir>   on-disk program-cache spill
 *     --no-cache          disable the program cache
 *     --verify            statically verify every point compile
 *                         (compiler/verify.hh; failures abort)
 *     --fidelity=<tier>   evaluation tier: cycle (default), table,
 *                         or analytic
 *     --table=<file>      fitted table model for the table tier
 *                         (default: the built-in calibration)
 *     --ranks=N           fleet ranks per design point (default 1;
 *                         throughput/power scale, per-op latency and
 *                         energy do not)
 *     --xfer-gbps=<v|inf> host link rate; finite values charge
 *                         transfer cycles on every evaluated batch
 *                         (default inf = free link)
 *     --refine            adaptive refinement: fast sweep, then
 *                         cycle re-evaluation of the Pareto
 *                         neighborhood (requires a fast --fidelity)
 *     --refine-error=<f>  assumed relative energy error of the fast
 *                         tier for survivor selection, in [0, 1)
 *                         (default: the tier's declared envelope)
 *     --quick             smoke-test grid (8 points at scale 0.05)
 *     --csv               print the point table as CSV
 *
 * The merged point vector (and the final journal) is byte-identical
 * for every --threads/--shards count; an interrupted sweep restarted
 * with --resume recomputes only the missing points.
 *
 * Exit code 0 on success, 1 on user error (unknown flag, --resume
 * without --journal, journal/space mismatch), 2 on an invalid option
 * value (non-numeric axis lists, --shards=0, ...) or internal error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "model/dse.hh"
#include "model/tech28.hh"
#include "support/cli.hh"
#include "support/table.hh"

using namespace dpu;

namespace {

struct Args
{
    DseSweepOptions sweep;
    double scale = 0.3; ///< Default mirrors the fig11 bench.
    bool scaleAxisGiven = false;
    bool threadsGiven = false;
    bool shardsGiven = false;
    bool quick = false;
    bool csv = false;
    std::string cacheDir;
    bool noCache = false;
    std::string tablePath;
};

/** Parse one "name=v1,v2,..." axis assignment into the space. */
bool
parseAxis(const std::string &axis, Args &args)
{
    size_t eq = axis.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    std::string name = axis.substr(0, eq);
    const char *values = axis.c_str() + eq + 1;
    DseOptions &space = args.sweep.space;
    if (name == "depth" || name == "depths")
        return parseUint32ListArg(values, space.depths);
    if (name == "banks")
        return parseUint32ListArg(values, space.banks);
    if (name == "regs")
        return parseUint32ListArg(values, space.regs);
    if (name == "cores")
        return parseUint32ListArg(values, space.cores);
    if (name == "scale" || name == "scales") {
        // Range checking (scale > 0) is validateDseAxes's job.
        if (!parseDoubleListArg(values, space.scales))
            return false;
        args.scaleAxisGiven = true;
        return true;
    }
    return false; // unknown axis name
}

/** Parse the command line; 0 = ok, 1 = usage error, 2 = invalid
 *  option value (the dpuc exit-code contract). */
int
parseArgs(int argc, char **argv, Args &args)
{
    int bad_value = 0;
    auto reject = [&bad_value](const char *flag, const char *s,
                               const char *expected) {
        std::fprintf(stderr,
                     "dse_sweep: invalid value '%s' for %s "
                     "(expected %s)\n",
                     s, flag, expected);
        bad_value = 2;
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--axes=", 7) == 0) {
            // Semicolon-separated axis assignments; every axis value
            // is strictly validated so a junk spec exits 2 before
            // any compile starts.
            std::string spec = a + 7;
            size_t at = 0;
            bool ok = !spec.empty();
            while (ok && at <= spec.size()) {
                size_t semi = spec.find(';', at);
                if (semi == std::string::npos)
                    semi = spec.size();
                ok = parseAxis(spec.substr(at, semi - at), args);
                at = semi + 1;
            }
            // Semantic range rules come from the engine's own
            // validator, so the exit-2 contract cannot drift from
            // what expandDseGrid would reject mid-run.
            if (!ok || !validateDseAxes(args.sweep.space)) {
                reject("--axes", a + 7,
                       "name=v1,v2;... with names depth/banks/regs/"
                       "scale/cores, banks a power of two, depth in "
                       "[1,6], regs >= 2, scale > 0, cores >= 1");
            }
        } else if (std::strncmp(a, "--scale=", 8) == 0) {
            if (!parseDoubleArg(a + 8, args.scale) || args.scale <= 0)
                reject("--scale", a + 8, "a number > 0");
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            if (!parseUint64Arg(a + 7, args.sweep.space.seed))
                reject("--seed", a + 7, "an unsigned integer");
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            if (!parseUint32Arg(a + 10, args.sweep.threads) ||
                args.sweep.threads < 1)
                reject("--threads", a + 10, "an integer >= 1");
            args.threadsGiven = true;
        } else if (std::strncmp(a, "--shards=", 9) == 0) {
            if (!parseUint32Arg(a + 9, args.sweep.shards) ||
                args.sweep.shards < 1)
                reject("--shards", a + 9, "an integer >= 1");
            args.shardsGiven = true;
        } else if (std::strncmp(a, "--journal=", 10) == 0) {
            args.sweep.journalPath = a + 10;
        } else if (std::strcmp(a, "--resume") == 0) {
            args.sweep.resume = true;
        } else if (std::strncmp(a, "--cache-dir=", 12) == 0) {
            args.cacheDir = a + 12;
        } else if (std::strcmp(a, "--no-cache") == 0) {
            args.noCache = true;
        } else if (std::strncmp(a, "--fidelity=", 11) == 0) {
            if (!parseFidelityName(a + 11, args.sweep.fidelity))
                reject("--fidelity", a + 11, kFidelityChoicesHelp);
        } else if (std::strncmp(a, "--table=", 8) == 0) {
            args.tablePath = a + 8;
        } else if (std::strncmp(a, "--ranks=", 8) == 0) {
            if (!parseUint32Arg(a + 8, args.sweep.space.fleetRanks) ||
                args.sweep.space.fleetRanks < 1)
                reject("--ranks", a + 8, "an integer >= 1");
        } else if (std::strncmp(a, "--xfer-gbps=", 12) == 0) {
            double gbps = 0;
            if (!parseGbpsArg(a + 12, gbps))
                reject("--xfer-gbps", a + 12,
                       "a number > 0, or 'inf'");
            else
                args.sweep.space.transfer =
                    HostTransferModel::fromGbps(gbps,
                                                tech28::frequencyHz);
        } else if (std::strcmp(a, "--verify") == 0) {
            args.sweep.verify = true;
        } else if (std::strcmp(a, "--refine") == 0) {
            args.sweep.refine = true;
        } else if (std::strncmp(a, "--refine-error=", 15) == 0) {
            if (!parseDoubleArg(a + 15,
                                args.sweep.refineErrorBound) ||
                args.sweep.refineErrorBound < 0 ||
                args.sweep.refineErrorBound >= 1)
                reject("--refine-error", a + 15,
                       "a number in [0, 1)");
        } else if (std::strcmp(a, "--quick") == 0) {
            args.quick = true;
        } else if (std::strcmp(a, "--csv") == 0) {
            args.csv = true;
        } else {
            std::fprintf(
                stderr,
                "dse_sweep: unknown option '%s'\n"
                "usage: dse_sweep [--axes=<spec>] [--scale=<f>] "
                "[--seed=N] [--threads=N] [--shards=N] "
                "[--journal=<file>] [--resume] [--cache-dir=<dir>] "
                "[--no-cache] [--fidelity=<tier>] [--table=<file>] "
                "[--ranks=N] [--xfer-gbps=<v|inf>] [--verify] "
                "[--refine] [--refine-error=<f>] [--quick] [--csv]\n",
                a);
            return 1;
        }
    }
    if (bad_value)
        return bad_value;
    if (args.sweep.resume && args.sweep.journalPath.empty()) {
        std::fprintf(stderr,
                     "dse_sweep: --resume requires --journal=<file>\n");
        return 1;
    }
    if (args.sweep.refine &&
        args.sweep.fidelity == EvalFidelity::Cycle) {
        std::fprintf(stderr,
                     "dse_sweep: --refine requires a fast tier "
                     "(--fidelity=table or --fidelity=analytic)\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    // --quick default grid: 8 points at smoke scale. An explicit
    // --axes (parsed afterwards, in parseArgs) overrides any of it.
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0) {
            args.sweep.space.depths = {1, 2};
            args.sweep.space.banks = {8, 16};
            args.sweep.space.regs = {16, 32};
            args.scale = 0.05;
        }
    if (int rc = parseArgs(argc, argv, args))
        return rc;
    if (!args.scaleAxisGiven)
        args.sweep.space.workloadScale = args.scale;
    if (!args.shardsGiven)
        args.sweep.shards = args.sweep.threads;

    try {
        // With --no-cache, no spill directory is created or probed
        // either — the flag must have zero filesystem side effects.
        ProgramCacheConfig cache_config;
        if (!args.noCache)
            cache_config.diskDir = args.cacheDir;
        ProgramCache cache(cache_config);
        if (!args.noCache)
            args.sweep.cache = &cache;

        TableModel table;
        if (!args.tablePath.empty()) {
            table = TableModel::load(args.tablePath);
            args.sweep.table = &table;
        }

        size_t grid_points = expandDseGrid(args.sweep.space).size();
        std::printf("dse_sweep: %zu design points, %u shard(s), %u "
                    "thread(s), fidelity %s%s%s%s\n",
                    grid_points, args.sweep.shards, args.sweep.threads,
                    fidelityName(args.sweep.fidelity),
                    args.sweep.refine ? " (refine)" : "",
                    args.sweep.journalPath.empty()
                        ? ""
                        : (", journal " + args.sweep.journalPath)
                              .c_str(),
                    args.sweep.resume ? " (resume)" : "");

        auto start = std::chrono::steady_clock::now();
        DseSweepResult sweep = runDseSweep(args.sweep);
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        const std::vector<DsePoint> &pts = sweep.points;
        if (sweep.resumedPoints)
            std::printf("dse_sweep: resumed %zu of %zu points from "
                        "the journal\n",
                        sweep.resumedPoints, pts.size());
        if (args.sweep.refine) {
            double reduction = sweep.cycleEvaluatedPoints
                ? double(pts.size()) /
                      double(sweep.cycleEvaluatedPoints)
                : double(pts.size());
            std::printf("dse_sweep: refinement cycle-evaluated %zu of "
                        "%zu points (%zu survivors, %.1fx reduction)\n",
                        sweep.cycleEvaluatedPoints, pts.size(),
                        sweep.refineSurvivors, reduction);
        }

        std::vector<size_t> frontier = paretoFrontier(pts);
        size_t min_edp = minEdpIndex(pts);
        size_t min_energy = minEnergyIndex(pts);
        size_t min_latency = minLatencyIndex(pts);

        TablePrinter t({"design", "scale", "cores",
                        "latency/op (ns)", "energy/op (pJ)",
                        "EDP (pJ*ns)", "area (mm2)", "mark"});
        for (size_t i = 0; i < pts.size(); ++i) {
            const DsePoint &p = pts[i];
            std::string mark;
            if (i == min_edp)
                mark = "* min-EDP";
            else if (std::find(frontier.begin(), frontier.end(), i) !=
                     frontier.end())
                mark = "o frontier";
            auto &row = t.row().cell(p.cfg.label())
                            .num(p.workloadScale, 3)
                            .cell(std::to_string(p.cores));
            if (p.feasible)
                row.num(p.latencyPerOpNs, 3)
                    .num(p.energyPerOpPj, 1)
                    .num(p.edpPjNs, 1)
                    .num(p.areaMm2, 2)
                    .cell(mark);
            else
                row.cell("-").cell("-").cell("infeasible")
                    .num(p.areaMm2, 2).cell("-");
        }
        if (args.csv)
            t.printCsv(std::cout);
        else
            t.print();

        if (min_edp == kDseNpos) {
            std::printf("\nno feasible design point\n");
        } else {
            size_t feasible = 0;
            for (const DsePoint &p : pts)
                feasible += p.feasible;
            std::printf("\nmin latency: %s\nmin energy:  %s\n"
                        "min EDP:     %s\nfrontier:    %zu of %zu "
                        "feasible points\n",
                        pts[min_latency].cfg.label().c_str(),
                        pts[min_energy].cfg.label().c_str(),
                        pts[min_edp].cfg.label().c_str(),
                        frontier.size(), feasible);
        }

        TablePrinter shard_table({"shard", "points", "evaluated",
                                  "compiles", "cache hits",
                                  "hit rate", "seconds"});
        for (size_t s = 0; s < sweep.shardReports.size(); ++s) {
            const DseShardReport &r = sweep.shardReports[s];
            shard_table.row().cell(std::to_string(s))
                .cell(std::to_string(r.points))
                .cell(std::to_string(r.evaluated))
                .cell(std::to_string(r.compiles))
                .cell(std::to_string(r.cacheHits))
                .num(r.hitRate(), 2)
                .num(r.seconds, 3);
        }
        std::printf("\n");
        shard_table.print();

        if (args.noCache) {
            std::printf("\ndse_sweep: %zu points in %.3fs (program "
                        "cache disabled)\n",
                        pts.size(), seconds);
        } else {
            ProgramCache::Stats cs = cache.stats();
            std::printf("\ndse_sweep: %zu points in %.3fs; program "
                        "cache %llu/%llu lookups served (hit rate "
                        "%.2f)\n",
                        pts.size(), seconds,
                        static_cast<unsigned long long>(cs.hits +
                                                        cs.diskHits),
                        static_cast<unsigned long long>(cs.lookups()),
                        cs.hitRate());
            std::printf("dse_sweep: fragment cache %llu hits / %llu "
                        "misses across partition sub-DAGs\n",
                        static_cast<unsigned long long>(cs.fragHits),
                        static_cast<unsigned long long>(cs.fragMisses));
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "dse_sweep: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dse_sweep: internal error: %s\n",
                     e.what());
        return 2;
    }
}
