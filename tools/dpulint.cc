/**
 * @file
 * dpulint — static legality linter for compiled DPU-v2 programs.
 *
 * Loads one or more self-contained program images (the ProgramCache
 * spill format, also written by `dpuc --prog=`), runs the static
 * verifier (compiler/verify.hh) over each, and prints structured
 * diagnostics with disassembly context:
 *
 *     dpulint [options] <prog.dpuprog>...
 *
 *     --disasm       print the full disassembly of each clean program
 *     --max-diags=N  diagnostics printed per program (default 16,
 *                    0 = all)
 *
 * Exit code 0 when every program verifies clean (warnings allowed),
 * 1 when any file is unreadable/corrupt or has error diagnostics,
 * 2 on usage errors (unknown flag, bad value, no input files).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/disasm.hh"
#include "compiler/cache.hh"
#include "compiler/verify.hh"
#include "support/cli.hh"

using namespace dpu;

namespace {

struct Args
{
    std::vector<std::string> paths;
    bool disasm = false;
    uint32_t maxDiags = 16;
};

int
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--disasm") == 0)
            args.disasm = true;
        else if (std::strncmp(a, "--max-diags=", 12) == 0) {
            if (!parseUint32Arg(a + 12, args.maxDiags)) {
                std::fprintf(stderr,
                             "dpulint: invalid value '%s' for "
                             "--max-diags (expected an unsigned "
                             "integer)\n",
                             a + 12);
                return 2;
            }
        } else if (a[0] == '-') {
            std::fprintf(stderr, "dpulint: unknown option '%s'\n", a);
            return 2;
        } else
            args.paths.push_back(a);
    }
    if (args.paths.empty()) {
        std::fprintf(stderr,
                     "usage: dpulint [--disasm --max-diags=N] "
                     "<prog.dpuprog>...\n");
        return 2;
    }
    return 0;
}

/** One diagnostic plus the disassembly of the instruction it anchors
 *  to (when it anchors to one). */
void
printDiagnostic(const ArchConfig &cfg,
                const std::vector<Instruction> &instrs,
                const Diagnostic &d)
{
    std::printf("  %s\n", d.format().c_str());
    if (d.instrIndex != kVerifyNoInstr && d.instrIndex < instrs.size())
        std::printf("    | %llu: %s\n",
                    static_cast<unsigned long long>(d.instrIndex),
                    disassemble(cfg, instrs[d.instrIndex]).c_str());
}

/** Lint one file; true when it is clean of errors. */
bool
lintFile(const std::string &path, const Args &args)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "dpulint: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    std::vector<uint8_t> image((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    CompiledProgram prog;
    if (!deserializeProgram(image, prog)) {
        std::printf("%s: corrupt or truncated program image (%zu "
                    "bytes)\n",
                    path.c_str(), image.size());
        return false;
    }

    VerifyReport report = verifyProgram(prog);
    std::printf("%s: %s [%llu instructions, %s]\n", path.c_str(),
                report.summary().c_str(),
                static_cast<unsigned long long>(
                    prog.instructions.size()),
                prog.cfg.label().c_str());
    size_t shown = 0;
    for (const Diagnostic &d : report.diagnostics) {
        if (args.maxDiags && shown++ >= args.maxDiags) {
            std::printf("  ... %zu more\n",
                        report.diagnostics.size() - args.maxDiags);
            break;
        }
        printDiagnostic(prog.cfg, prog.instructions, d);
    }

    bool clean = report.errorCount() == 0;
    if (clean && args.disasm) {
        std::ostringstream os;
        disassembleProgram(prog.cfg, prog.instructions, os);
        std::fputs(os.str().c_str(), stdout);
    }
    return clean;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (int rc = parseArgs(argc, argv, args))
        return rc;
    size_t bad = 0;
    for (const std::string &path : args.paths)
        bad += !lintFile(path, args);
    if (args.paths.size() > 1)
        std::printf("dpulint: %zu of %zu program(s) clean\n",
                    args.paths.size() - bad, args.paths.size());
    return bad ? 1 : 0;
}
