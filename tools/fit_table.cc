/**
 * @file
 * fit_table — calibrates the Table evaluation tier (model/evaluator)
 * against the cycle-accurate simulator and emits the fitted model as
 * flat JSON lines (the data/eval_table.json format).
 *
 *     fit_table [options]
 *
 *     --depths=<list>     depth axis (default 1,2,3)
 *     --banks=<list>      banks axis (default 8,16,32)
 *     --regs=<list>       regs-per-bank axis (default 32,64)
 *     --scale=<f>         workload scale (default 0.05)
 *     --seed=N            input-vector seed (default 7)
 *     --out=<file>        write the table here (default: stdout)
 *     --analytic          also print the aggregate (all-bucket)
 *                         rates — the Analytic tier's fixed vector —
 *                         to stderr
 *
 * Every (depth, banks, regs) config is calibrated over the full small
 * suite (Table I (a) + (b)); regs folds into the (depth, banks)
 * buckets because its effects are already inside the static drivers.
 *
 * Exit code 0 on success, 1 on user error, 2 on an invalid option
 * value or internal error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "model/evaluator.hh"
#include "sim/machine.hh"
#include "support/cli.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/suite.hh"

using namespace dpu;

namespace {

struct Args
{
    std::vector<uint32_t> depths = {1, 2, 3};
    std::vector<uint32_t> banks = {8, 16, 32};
    std::vector<uint32_t> regs = {32, 64};
    double scale = 0.05;
    uint64_t seed = 7;
    std::string outPath;
    bool analytic = false;
};

std::vector<double>
randomInputs(const Dag &d, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(d.numInputs());
    for (auto &x : v)
        x = 0.5 + rng.uniform();
    return v;
}

int
parseArgs(int argc, char **argv, Args &args)
{
    int bad_value = 0;
    auto reject = [&bad_value](const char *flag, const char *s,
                               const char *expected) {
        std::fprintf(stderr,
                     "fit_table: invalid value '%s' for %s "
                     "(expected %s)\n",
                     s, flag, expected);
        bad_value = 2;
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--depths=", 9) == 0) {
            if (!parseUint32ListArg(a + 9, args.depths))
                reject("--depths", a + 9, "a list of integers");
        } else if (std::strncmp(a, "--banks=", 8) == 0) {
            if (!parseUint32ListArg(a + 8, args.banks))
                reject("--banks", a + 8, "a list of integers");
        } else if (std::strncmp(a, "--regs=", 7) == 0) {
            if (!parseUint32ListArg(a + 7, args.regs))
                reject("--regs", a + 7, "a list of integers");
        } else if (std::strncmp(a, "--scale=", 8) == 0) {
            if (!parseDoubleArg(a + 8, args.scale) || args.scale <= 0)
                reject("--scale", a + 8, "a number > 0");
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            if (!parseUint64Arg(a + 7, args.seed))
                reject("--seed", a + 7, "an unsigned integer");
        } else if (std::strncmp(a, "--out=", 6) == 0) {
            args.outPath = a + 6;
        } else if (std::strcmp(a, "--analytic") == 0) {
            args.analytic = true;
        } else {
            std::fprintf(
                stderr,
                "fit_table: unknown option '%s'\n"
                "usage: fit_table [--depths=<list>] [--banks=<list>] "
                "[--regs=<list>] [--scale=<f>] [--seed=N] "
                "[--out=<file>] [--analytic]\n",
                a);
            return 1;
        }
    }
    return bad_value;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (int rc = parseArgs(argc, argv, args))
        return rc;

    try {
        TableModel model;
        // Aggregate accumulators across every calibration run — the
        // ratio is the Analytic tier's global rate vector.
        std::array<double, kNumEvalEvents> agg_events{};
        std::array<double, kNumEvalEvents> agg_drivers{};
        size_t runs = 0;

        std::vector<WorkloadSpec> suite = smallSuite();
        for (uint32_t depth : args.depths)
            for (uint32_t banks : args.banks)
                for (uint32_t regs : args.regs)
                    for (const WorkloadSpec &spec : suite) {
                        ArchConfig cfg;
                        cfg.depth = depth;
                        cfg.banks = banks;
                        cfg.regsPerBank = regs;
                        Dag dag;
                        CompiledProgram prog = compileWorkload(
                            spec, args.scale, cfg, CompileOptions{},
                            nullptr, &dag);
                        SimStats measured =
                            Machine(prog)
                                .run(randomInputs(dag, args.seed))
                                .stats;
                        model.addCalibration(cfg, prog.stats,
                                             measured);
                        EvalDrivers drv = EvalDrivers::of(prog.stats);
                        const uint64_t ev[kNumEvalEvents] = {
                            measured.peOperations,
                            measured.pePassThroughs,
                            measured.crossbarTransfers,
                            measured.bankReads,
                            measured.bankWrites,
                        };
                        for (size_t e = 0; e < kNumEvalEvents; ++e) {
                            agg_events[e] += double(ev[e]);
                            agg_drivers[e] += drv.value[e];
                        }
                        ++runs;
                        std::fprintf(stderr,
                                     "fit_table: %-12s D%u.B%u.R%u\n",
                                     spec.name.c_str(), depth, banks,
                                     regs);
                    }

        std::string text = model.serialize();
        if (args.outPath.empty()) {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(args.outPath,
                              std::ios::binary | std::ios::trunc);
            out << text;
            out.flush();
            if (!out) {
                std::fprintf(stderr,
                             "fit_table: cannot write '%s'\n",
                             args.outPath.c_str());
                return 2;
            }
            std::fprintf(stderr,
                         "fit_table: wrote %zu buckets from %zu "
                         "calibration runs to %s\n",
                         model.size(), runs, args.outPath.c_str());
        }

        if (args.analytic) {
            std::fprintf(stderr, "fit_table: aggregate rates:\n");
            for (size_t e = 0; e < kNumEvalEvents; ++e)
                std::fprintf(
                    stderr, "  %-18s %.6f\n",
                    evalEventName(static_cast<EvalEvent>(e)),
                    agg_drivers[e] > 0
                        ? agg_events[e] / agg_drivers[e]
                        : 0.0);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fit_table: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fit_table: internal error: %s\n",
                     e.what());
        return 2;
    }
}
