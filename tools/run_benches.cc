/**
 * @file
 * run_benches — drives every registered bench binary (see
 * bench/harness.cc's registry) with the uniform CLI and collects
 * machine-readable reports:
 *
 *     run_benches [--quick|--full] [--threads=N] [--only=<substr>]
 *                 [--outdir=<dir>] [--bindir=<dir>]
 *                 [--cache-dir=<dir>] [--no-cache] [--list]
 *                 [--ranks=N] [--xfer-gbps=<v|inf>]
 *                 [--placement=<replicate|affinity>]
 *                 [--matrix=<file.mtx>] [--matrix-dir=<dir>]
 *
 * For each bench `foo` it runs `<bindir>/foo [flags] --json=
 * <outdir>/BENCH_foo.json`, then validates that the report parses as
 * JSON. Unless --no-cache is given, every bench also receives
 * --cache-dir=<outdir>/progcache (or the --cache-dir override), so
 * identical compiles are shared across the whole sweep instead of
 * being redone once per bench binary.
 *
 * Scenario entries in the registry (e.g. serve_latency_fleet) reuse
 * another entry's binary with extra flags; their JSON report is named
 * after the scenario. The fleet flags pass through to every bench
 * (after the scenario's own flags, so an explicit driver flag wins),
 * and any serve_latency run modeling more than one rank must report
 * the per-rank fleet series — a report missing the
 * fleet_rank_utilization / fleet_rank_transfer_overhead keys fails
 * validation.
 *
 * The google-benchmark `micro_benchmarks` binary is not
 * harness-driven; when it was built, the driver appends it to the
 * sweep via its native report flags (--benchmark_out=<file>
 * --benchmark_out_format=json) and validates the google-benchmark
 * JSON shape ("context" + "benchmarks"). It is skipped quietly when
 * the library was not available at build time.
 *
 * <bindir> defaults to the bench/ directory next to this binary's
 * own location (the build-tree layout); <outdir> defaults to the
 * current directory. Exit code is the number of failed benches
 * (capped at 125).
 *
 * A checked-in wrapper script at tools/run_benches lets this be
 * invoked from the repo root as `tools/run_benches --quick` once the
 * tree is built into ./build.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hh"
#include "support/cli.hh"
#include "support/table.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace dpu;

namespace {

struct DriverArgs
{
    bool quick = false;
    bool full = false;
    bool list = false;
    bool noCache = false;
    uint32_t threads = 1;
    std::string only;
    std::string outdir = ".";
    std::string bindir;
    std::string cacheDir; ///< Default: <outdir>/progcache.

    // Fleet passthrough flags; only forwarded when given, so default
    // sweeps run the exact pre-fleet commands.
    bool ranksGiven = false;
    bool xferGiven = false;
    bool placementGiven = false;
    uint32_t ranks = 1;
    std::string xferGbps;
    Placement placement = Placement::Replicate;

    // Real-matrix passthrough: validated here (readable file /
    // directory with .mtx files), forwarded to every bench; the
    // matrix-aware benches must then report the real-matrix series.
    std::vector<std::string> matrixPaths;
};

bool
parseDriverArgs(int argc, char **argv, DriverArgs &args)
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--quick") == 0)
            args.quick = true;
        else if (std::strcmp(a, "--full") == 0)
            args.full = true;
        else if (std::strcmp(a, "--list") == 0)
            args.list = true;
        else if (std::strncmp(a, "--threads=", 10) == 0) {
            if (!parseUint32Arg(a + 10, args.threads) ||
                args.threads < 1) {
                std::fprintf(stderr,
                             "run_benches: invalid value '%s' for "
                             "--threads (expected an integer >= 1)\n",
                             a + 10);
                return false;
            }
        } else if (std::strncmp(a, "--only=", 7) == 0)
            args.only = a + 7;
        else if (std::strncmp(a, "--outdir=", 9) == 0)
            args.outdir = a + 9;
        else if (std::strncmp(a, "--bindir=", 9) == 0)
            args.bindir = a + 9;
        else if (std::strncmp(a, "--cache-dir=", 12) == 0)
            args.cacheDir = a + 12;
        else if (std::strcmp(a, "--no-cache") == 0)
            args.noCache = true;
        else if (std::strncmp(a, "--ranks=", 8) == 0) {
            if (!parseUint32Arg(a + 8, args.ranks) ||
                args.ranks < 1) {
                std::fprintf(stderr,
                             "run_benches: invalid value '%s' for "
                             "--ranks (expected an integer >= 1)\n",
                             a + 8);
                return false;
            }
            args.ranksGiven = true;
        } else if (std::strncmp(a, "--xfer-gbps=", 12) == 0) {
            double gbps = 0;
            if (!parseGbpsArg(a + 12, gbps)) {
                std::fprintf(stderr,
                             "run_benches: invalid value '%s' for "
                             "--xfer-gbps (expected a number > 0, or "
                             "'inf')\n",
                             a + 12);
                return false;
            }
            args.xferGbps = a + 12; // forwarded verbatim
            args.xferGiven = true;
        } else if (std::strncmp(a, "--placement=", 12) == 0) {
            if (!parsePlacementName(a + 12, args.placement)) {
                std::fprintf(stderr,
                             "run_benches: invalid value '%s' for "
                             "--placement (expected %s)\n",
                             a + 12, kPlacementChoicesHelp);
                return false;
            }
            args.placementGiven = true;
        } else if (std::strncmp(a, "--matrix=", 9) == 0) {
            if (a[9] == '\0' || !std::ifstream(a + 9).good()) {
                std::fprintf(stderr,
                             "run_benches: invalid value '%s' for "
                             "--matrix (expected a readable .mtx "
                             "file)\n",
                             a + 9);
                return false;
            }
            args.matrixPaths.emplace_back(a + 9);
        } else if (std::strncmp(a, "--matrix-dir=", 13) == 0) {
            std::vector<std::string> found =
                discoverMatrixFiles(a + 13);
            if (found.empty()) {
                std::fprintf(stderr,
                             "run_benches: invalid value '%s' for "
                             "--matrix-dir (expected a directory "
                             "containing .mtx files)\n",
                             a + 13);
                return false;
            }
            args.matrixPaths.insert(args.matrixPaths.end(),
                                    found.begin(), found.end());
        } else {
            std::fprintf(stderr,
                         "run_benches: unknown option '%s'\n"
                         "usage: run_benches [--quick|--full] "
                         "[--threads=N] [--only=<substr>] "
                         "[--outdir=<dir>] [--bindir=<dir>] "
                         "[--cache-dir=<dir>] [--no-cache] "
                         "[--ranks=N] [--xfer-gbps=<v|inf>] "
                         "[--placement=<policy>] "
                         "[--matrix=<file.mtx>] [--matrix-dir=<dir>] "
                         "[--list]\n",
                         a);
            return false;
        }
    }
    // --matrix and --matrix-dir may overlap (a file inside the
    // discovered directory); forward each matrix to the benches once,
    // keeping first-occurrence order.
    std::vector<std::string> unique;
    std::vector<std::string> canon;
    for (const std::string &p : args.matrixPaths) {
        std::error_code ec;
        auto c = std::filesystem::weakly_canonical(p, ec);
        std::string key = ec ? p : c.string();
        if (std::find(canon.begin(), canon.end(), key) != canon.end())
            continue;
        canon.push_back(std::move(key));
        unique.push_back(p);
    }
    args.matrixPaths = std::move(unique);
    return true;
}

/** Directory holding this binary, from argv[0] / /proc/self/exe. */
std::string
selfDirectory(const char *argv0)
{
#if defined(__linux__)
    char buf[4096];
    ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string path(buf);
        size_t slash = path.rfind('/');
        if (slash != std::string::npos)
            return path.substr(0, slash);
    }
#endif
    std::string path(argv0 ? argv0 : "");
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

/** Shell-quote one argument (single quotes, POSIX). */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    DriverArgs args;
    if (!parseDriverArgs(argc, argv, args))
        return 125;
    if (args.bindir.empty())
        args.bindir = selfDirectory(argv[0]) + "/../bench";

    if (args.list) {
        TablePrinter t({"bench", "paper element", "default scale"});
        for (const auto &b : bench::benchRegistry())
            t.row().cell(b.name).cell(b.paperElement)
                .num(b.defaultScale, 2);
        t.print();
        return 0;
    }

    std::printf("run_benches: %zu registered benches, bindir=%s, "
                "outdir=%s%s%s\n\n",
                bench::benchRegistry().size(), args.bindir.c_str(),
                args.outdir.c_str(),
                args.quick ? ", --quick" : args.full ? ", --full" : "",
                args.noCache ? ", cache off" : "");

    std::string cache_dir =
        args.noCache ? std::string()
                     : (args.cacheDir.empty() ? args.outdir + "/progcache"
                                              : args.cacheDir);
    // Probe the shared spill directory once up front: on a read-only
    // FS (or a --cache-dir typo) the sweep must keep going with
    // per-bench in-memory caches instead of every bench failing or
    // warning on its own.
    if (!cache_dir.empty() &&
        !ensureWritableDirectory(cache_dir)) {
        std::fprintf(stderr,
                     "run_benches: cache dir '%s' is not writable; "
                     "continuing with per-bench in-memory caches\n",
                     cache_dir.c_str());
        cache_dir.clear();
    }

    // Runs one bench command and validates its JSON report with
    // `validate`; returns the summary status string.
    auto run_one = [&](const std::string &cmd, const std::string &report,
                       auto &&validate) {
        std::printf("--- %s\n", cmd.c_str());
        std::fflush(stdout);
        int rc = std::system(cmd.c_str());
        if (rc != 0) {
            // std::system returns a wait status; decode it.
#if defined(WIFEXITED)
            if (WIFEXITED(rc))
                return "FAILED (exit " +
                       std::to_string(WEXITSTATUS(rc)) + ")";
            if (WIFSIGNALED(rc))
                return "FAILED (signal " +
                       std::to_string(WTERMSIG(rc)) + ")";
#endif
            return "FAILED (status " + std::to_string(rc) + ")";
        }
        return validate(report);
    };
    auto validate_harness_json = [](const std::string &report) {
        std::ifstream in(report);
        if (!in)
            return "BAD JSON (cannot open " + report + ")";
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string text = buf.str();
        std::string error;
        if (!bench::validJson(text, &error))
            return "BAD JSON (" + error + ")";
        // Every harness report must carry the typed-series object
        // (possibly empty) — the machine-readable channel trend
        // tooling consumes; its absence means the bench bypassed
        // Context::finish() or predates the series format.
        if (!bench::jsonTopLevelKey(text, "series"))
            return std::string("BAD JSON (missing \"series\" object)");
        return std::string("ok");
    };

    int failures = 0;
    int ran = 0;
    TablePrinter summary({"bench", "status", "report"});
    for (const auto &b : bench::benchRegistry()) {
        if (!args.only.empty() &&
            std::string(b.name).find(args.only) == std::string::npos)
            continue;
        ++ran;
        const char *binary = b.binary ? b.binary : b.name;
        std::string report =
            args.outdir + "/BENCH_" + b.name + ".json";
        std::string cmd = shellQuote(args.bindir + "/" + binary);
        if (args.quick)
            cmd += " --quick";
        if (args.full)
            cmd += " --full";
        if (args.threads > 1)
            cmd += " --threads=" + std::to_string(args.threads);
        if (args.noCache)
            cmd += " --no-cache"; // also disables in-process caches
        else if (!cache_dir.empty()) // empty: unwritable, in-memory
            cmd += " --cache-dir=" + shellQuote(cache_dir);
        // Scenario flags, then the driver's own fleet flags — the
        // harness CLI is last-wins, so an explicit driver flag
        // overrides the scenario default.
        if (b.extraFlags && b.extraFlags[0]) {
            cmd += " ";
            cmd += b.extraFlags;
        }
        if (args.ranksGiven)
            cmd += " --ranks=" + std::to_string(args.ranks);
        if (args.xferGiven)
            cmd += " --xfer-gbps=" + args.xferGbps;
        if (args.placementGiven)
            cmd += std::string(" --placement=") +
                   placementName(args.placement);
        for (const std::string &m : args.matrixPaths)
            cmd += " --matrix=" + shellQuote(m);
        cmd += " --json=" + shellQuote(report);

        // The rank count this command actually models: the scenario's
        // --ranks= unless the driver overrode it.
        uint32_t eff_ranks = 1;
        if (const char *p = std::strstr(b.extraFlags, "--ranks="))
            (void)std::sscanf(p + 8, "%u", &eff_ranks);
        if (args.ranksGiven)
            eff_ranks = args.ranks;
        bool require_fleet_series =
            eff_ranks > 1 &&
            std::strcmp(binary, "serve_latency") == 0;
        bool require_mapper_series =
            std::strcmp(binary, "ablation_mapper") == 0;
        // Real-matrix runs must carry the typed real-matrix series in
        // the matrix-aware benches: the workload-table node counts,
        // the batched multi-RHS throughput, and the measured CPU
        // sparse baseline.
        const char *matrix_series = nullptr;
        if (!args.matrixPaths.empty()) {
            if (std::strcmp(binary, "table1_workloads") == 0)
                matrix_series = "\"real_matrix_nodes\"";
            else if (std::strcmp(binary, "fig14a_throughput") == 0)
                matrix_series = "\"real_matrix_multi_rhs_gops\"";
            else if (std::strcmp(binary, "table3_comparison") == 0)
                matrix_series = "\"real_cpu_sparse_gops\"";
        }

        auto validate = [&](const std::string &rep) {
            std::string status = validate_harness_json(rep);
            if (status != "ok" ||
                (!require_fleet_series && !require_mapper_series &&
                 !matrix_series))
                return status;
            std::ifstream in(rep);
            std::ostringstream buf;
            buf << in.rdbuf();
            std::string text = buf.str();
            // A multi-rank serving report without the per-rank fleet
            // series is a broken fleet run, not a pass.
            if (require_fleet_series &&
                (text.find("\"fleet_rank_utilization\"") ==
                     std::string::npos ||
                 text.find("\"fleet_rank_transfer_overhead\"") ==
                     std::string::npos))
                return std::string(
                    "BAD JSON (fleet run missing "
                    "fleet_rank_utilization / "
                    "fleet_rank_transfer_overhead series)");
            // The mapper ablation must carry the boundary-mapping
            // and compile-pipeline series the trend tooling tracks.
            if (require_mapper_series &&
                (text.find("\"mapper_boundary_conflicts_oblivious\"") ==
                     std::string::npos ||
                 text.find("\"mapper_boundary_conflicts_aware\"") ==
                     std::string::npos ||
                 text.find("\"compile_pipeline_seconds\"") ==
                     std::string::npos))
                return std::string(
                    "BAD JSON (mapper ablation missing "
                    "mapper_boundary_conflicts_* / "
                    "compile_pipeline_seconds series)");
            if (matrix_series &&
                text.find(matrix_series) == std::string::npos)
                return "BAD JSON (real-matrix run missing " +
                       std::string(matrix_series) + " series)";
            return status;
        };
        std::string status = run_one(cmd, report, validate);
        if (status != "ok")
            ++failures;
        summary.row().cell(b.name).cell(status).cell(report);
        std::printf("\n");
    }

    // google-benchmark micro_benchmarks: driven through its native
    // --benchmark_out report format rather than the harness CLI.
    const char *micro_name = "micro_benchmarks";
    if (args.only.empty() ||
        std::string(micro_name).find(args.only) != std::string::npos) {
        std::string binary = args.bindir + "/" + micro_name;
#if defined(__unix__) || defined(__APPLE__)
        bool built = access(binary.c_str(), X_OK) == 0;
#else
        bool built = true;
#endif
        if (!built) {
            summary.row().cell(micro_name)
                .cell("skipped (not built: google-benchmark missing)")
                .cell("-");
        } else {
            ++ran;
            std::string report =
                args.outdir + "/BENCH_" + micro_name + ".json";
            std::string cmd = shellQuote(binary);
            if (args.quick)
                cmd += " --quick"; // its main() shrinks the fixtures
            if (args.threads > 1)
                cmd += " --threads=" + std::to_string(args.threads);
            cmd += " --benchmark_out=" + shellQuote(report);
            cmd += " --benchmark_out_format=json";

            auto validate_gbench_json = [](const std::string &report) {
                std::string error;
                if (!bench::validJsonFile(report, &error))
                    return "BAD JSON (" + error + ")";
                std::ifstream in(report);
                std::ostringstream buf;
                buf << in.rdbuf();
                std::string text = buf.str();
                // google-benchmark's JSON schema: a "context" object
                // (host info) and a "benchmarks" array of runs.
                if (text.find("\"context\"") == std::string::npos ||
                    text.find("\"benchmarks\"") == std::string::npos)
                    return std::string(
                        "BAD JSON (not google-benchmark output)");
                return std::string("ok");
            };
            std::string status =
                run_one(cmd, report, validate_gbench_json);
            if (status != "ok")
                ++failures;
            summary.row().cell(micro_name).cell(status).cell(report);
            std::printf("\n");
        }
    }

    std::printf("=== run_benches summary ===\n");
    summary.print();
    if (ran == 0) {
        std::fprintf(stderr, "run_benches: no bench matched '%s'\n",
                     args.only.c_str());
        return 125;
    }
    std::printf("%d/%d ok\n", ran - failures, ran);
    return failures > 125 ? 125 : failures;
}
