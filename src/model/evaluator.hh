/**
 * @file
 * Tiered-fidelity evaluation (the ROADMAP "fast-path simulator
 * tiers" lever). Every cost estimate in the repo used to funnel
 * through the cycle-accurate sim/machine; the Evaluator makes the
 * fidelity a per-call choice:
 *
 *  - Cycle    — wraps Machine::run unchanged. Ground truth.
 *  - Table    — static estimate whose event rates come from a lookup
 *               model fitted against cycle-accurate calibration runs
 *               (per depth x banks bucket, interpolated in
 *               log2(banks)). Serializable to flat JSON so a fitted
 *               table ships with the repo (data/eval_table.json) and
 *               regenerates via tools/fit_table.
 *  - Analytic — static estimate with fixed global event rates; no
 *               table, no calibration, widest error envelope.
 *
 * What makes the fast tiers cheap is that most of SimStats is
 * statically exact: the sim issues one instruction per cycle with no
 * stalls, so cycles == CompileStats::cycles, the instruction mix,
 * data-memory row traffic and instruction-memory bits are all fixed
 * at compile time. Only the five data-dependent event counters (PE
 * ops including replicas, pass-throughs, crossbar transfers, bank
 * reads/writes) need a model — each is estimated as
 * rate x static-driver, and those feed only the per-event terms of
 * energyOf. Latency from a fast tier is therefore *exact*; the tier
 * error lives entirely in energy.
 *
 * Declared error envelopes (evalErrorBounds) are cross-validated
 * against Cycle over the workload suite by tests/test_evaluator.cc.
 */

#ifndef DPU_MODEL_EVALUATOR_HH
#define DPU_MODEL_EVALUATOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "compiler/program.hh"
#include "sim/machine.hh"

namespace dpu {

/** Evaluation tier, selectable per call. */
enum class EvalFidelity : uint8_t
{
    Cycle = 0,   ///< Cycle-accurate Machine::run.
    Table = 1,   ///< Fitted lookup model (calibrated rates).
    Analytic = 2 ///< Fixed-rate closed-form estimate.
};

inline constexpr size_t kNumFidelities = 3;

/** Stable lower-case tier name ("cycle" / "table" / "analytic") —
 *  the CLI and journal spelling. */
const char *fidelityName(EvalFidelity f);

/** Strict inverse of fidelityName (exact match only). */
bool parseFidelityName(const char *s, EvalFidelity &out);

/** Help/diagnostic text listing the valid tier names. */
extern const char *const kFidelityChoicesHelp;

/**
 * Declared relative-error envelope of a tier against Cycle, over the
 * built-in workload suite. Latency is exact by construction for every
 * tier (see file comment); the envelopes are enforced by the
 * cross-validation tests, so widening one is an observable contract
 * change.
 */
struct EvalErrorBounds
{
    double latencyRel = 0.0;
    double energyRel = 0.0;
};

EvalErrorBounds evalErrorBounds(EvalFidelity f);

/** The estimated (data-dependent) SimStats counters, in rate-vector
 *  order. Everything else in SimStats is statically exact. */
enum class EvalEvent : uint8_t
{
    PeOperations = 0,  ///< Add/Mul ops incl. replicas.
    PePassThroughs,    ///< Pass ops through partially-filled trees.
    CrossbarTransfers, ///< Words through the input interconnect.
    BankReads,
    BankWrites,
};

inline constexpr size_t kNumEvalEvents = 5;

const char *evalEventName(EvalEvent e);

/** Per-event rate vector: estimated counter = rate x driver. */
using EvalRates = std::array<double, kNumEvalEvents>;

/**
 * Static per-event drivers derived from CompileStats. The driver is
 * the first-order structural source of each event class (PE slots
 * for PE events, PE slots + copy slots for crossbar traffic, ...);
 * the fitted rate absorbs the config-dependent constant.
 */
struct EvalDrivers
{
    std::array<double, kNumEvalEvents> value{};

    static EvalDrivers of(const CompileStats &stats);
};

/** One fitted calibration bucket (a depth x banks cell). */
struct TableBucket
{
    uint32_t depth = 1;
    uint32_t banks = 8;
    uint64_t samples = 0; ///< Calibration runs folded in.

    /** Accumulated measured events / accumulated driver units; the
     *  fitted rate is their ratio. */
    std::array<double, kNumEvalEvents> events{};
    std::array<double, kNumEvalEvents> drivers{};

    double
    rate(size_t e) const
    {
        return drivers[e] > 0 ? events[e] / drivers[e] : 0.0;
    }
};

/**
 * The Table tier's lookup model: fitted rate buckets over the
 * (depth, banks) plane. Regs does not get an axis — its effects flow
 * through the compiled program (spills, nops) and are therefore
 * already inside the static drivers.
 */
class TableModel
{
  public:
    /** The fitted table shipped with the repo (tools/fit_table
     *  regenerates it; data/eval_table.json is the same content). */
    static TableModel builtin();

    bool empty() const { return table.empty(); }
    size_t size() const { return table.size(); }
    const std::vector<TableBucket> &buckets() const { return table; }

    /** Fold one cycle-accurate calibration run into the bucket for
     *  `cfg` (created on first use). */
    void addCalibration(const ArchConfig &cfg, const CompileStats &cstats,
                        const SimStats &measured);

    /**
     * Fitted rates for a configuration: nearest-depth bucket row,
     * linearly interpolated in log2(banks) between the bracketing
     * banks cells (clamped outside the fitted range). Falls back to
     * the Analytic rates when the table is empty.
     */
    EvalRates ratesFor(const ArchConfig &cfg) const;

    /** Flat-JSON-lines rendering (header line + one line per
     *  bucket); byte-stable across serialize/parse round trips. */
    std::string serialize() const;

    /** Strict parse of serialize() output. Returns false (with a
     *  diagnostic in *error) on any malformed or torn line. */
    static bool parse(const std::string &text, TableModel &out,
                      std::string *error = nullptr);

    /** Load from a file; FatalError with the parse diagnostic on
     *  failure. */
    static TableModel load(const std::string &path);

  private:
    TableBucket &bucketFor(uint32_t depth, uint32_t banks);

    std::vector<TableBucket> table; ///< Sorted by (depth, banks).
};

/** The Analytic tier's fixed global rate vector. */
EvalRates analyticRates();

/**
 * The tiered evaluator. Stateless apart from the chosen tier and
 * (for Table) the rate model, so one instance is safely shared
 * across threads.
 */
class Evaluator
{
  public:
    /** Cycle/Analytic evaluator; Table gets the builtin model. */
    explicit Evaluator(EvalFidelity fidelity = EvalFidelity::Cycle);

    /** Table evaluator over an explicit (e.g. freshly fitted or
     *  loaded) model. */
    Evaluator(EvalFidelity fidelity, TableModel table);

    EvalFidelity fidelity() const { return fid; }
    const TableModel &table() const { return tbl; }

    /**
     * Evaluate one program execution at this tier. Cycle steps the
     * machine over `inputs`; the fast tiers return estimate() and
     * never touch the input values (events on this machine are
     * data-independent in count, only in value).
     */
    SimStats run(const CompiledProgram &prog,
                 const std::vector<double> &inputs,
                 SimOptions options = {}) const;

    /** Static single-run estimate (fast tiers only; a Cycle
     *  evaluator has nothing static to say — FatalError). */
    SimStats estimate(const CompiledProgram &prog) const;

    /** Transfer-inclusive single-run estimate: estimate() with
     *  SimStats::transferCycles filled from `transfer`, matching
     *  exactly what a cycle-accurate Machine run charged the same
     *  model reports (the transfer cost is static — see
     *  HostTransferModel). */
    SimStats estimate(const CompiledProgram &prog,
                      const HostTransferModel &transfer) const;

    /**
     * Static estimate of `runs` executions dealt round-robin over
     * `cores` model cores (BatchMachine semantics): wall cycles are
     * the busiest core's, event counters sum over all runs. Exact in
     * wall cycles at every tier.
     */
    SimStats estimateBatch(const CompiledProgram &prog, uint64_t runs,
                           uint32_t cores) const;

    /** Transfer-inclusive batch estimate: estimateBatch() plus the
     *  exact host-link cycles of a runs-sized dispatch in
     *  SimStats::transferCycles (BatchMachine agreement at every
     *  tier). */
    SimStats estimateBatch(const CompiledProgram &prog, uint64_t runs,
                           uint32_t cores,
                           const HostTransferModel &transfer) const;

    /** The exact lockstep wall-cycle count of a runs x cores batch —
     *  tier-independent (usable for admission control without an
     *  Evaluator instance). */
    static uint64_t batchWallCycles(const CompiledProgram &prog,
                                    uint64_t runs, uint32_t cores);

    /** The exact host-link cycles of a runs-sized dispatch of `prog`
     *  under `transfer` — tier-independent, matches
     *  BatchResult::transferCycles. */
    static uint64_t batchTransferCycles(const CompiledProgram &prog,
                                        uint64_t runs,
                                        const HostTransferModel &transfer);

    /** Transfer-inclusive wall clock of a dispatch: batchWallCycles
     *  + batchTransferCycles (matches BatchResult::totalWallCycles()
     *  exactly at every tier). */
    static uint64_t batchTotalCycles(const CompiledProgram &prog,
                                     uint64_t runs, uint32_t cores,
                                     const HostTransferModel &transfer);

  private:
    EvalFidelity fid;
    TableModel tbl;
};

} // namespace dpu

#endif // DPU_MODEL_EVALUATOR_HH
