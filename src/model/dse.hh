/**
 * @file
 * Design-space exploration (paper §V, fig. 11/12).
 *
 * The classic sweep runs D in {1,2,3}, B in {8,16,32,64}, R in
 * {16,32,64,128} — 48 design points — compiling and simulating every
 * workload of the suite on each and averaging latency/op, energy/op
 * and EDP. This header grows that into a sharded sweep engine:
 *
 *   - expandDseGrid() turns an arbitrary axis grid (depths x banks x
 *     regs, plus optional workload-scale and model-core-count axes)
 *     into a deterministic, grid-ordered point list;
 *   - planDseShards() cuts the grid into contiguous, near-equal
 *     shards;
 *   - runDseSweep() executes the shards on a work-stealing pool
 *     (support/parallel.hh), compiling each point through an optional
 *     ProgramCache, and merges results in grid order — the returned
 *     point vector is byte-identical for every thread/shard count
 *     (pinned by the DseStress suite);
 *   - completed points are checkpointed to a JSON-lines journal so a
 *     killed sweep can be resumed (`resume`) without recomputing;
 *     on completion the journal is rewritten canonically (header +
 *     grid-order lines), so the final journal is also deterministic;
 *   - paretoFrontier() exposes the latency/energy/area frontier as a
 *     first-class API (replacing ad-hoc min-index scans).
 */

#ifndef DPU_MODEL_DSE_HH
#define DPU_MODEL_DSE_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "arch/config.hh"
#include "compiler/cache.hh"
#include "model/energy.hh"
#include "model/evaluator.hh"
#include "workloads/suite.hh"

namespace dpu {

/** Sentinel returned by the min-index scans when no feasible point
 *  exists (empty sweep, or every point failed to fit the suite). */
inline constexpr size_t kDseNpos = static_cast<size_t>(-1);

/** One evaluated design point. */
struct DsePoint
{
    ArchConfig cfg;
    double workloadScale = 1.0; ///< Workload-scale axis value.
    uint32_t cores = 1;         ///< Model-core-count axis value.
    double latencyPerOpNs = 0;
    double energyPerOpPj = 0;
    double edpPjNs = 0;
    double areaMm2 = 0;
    double powerWatts = 0;
    double throughputGops = 0;
    bool feasible = true; ///< False if some workload failed to fit.

    /** Evaluation tier that produced the metrics. Feasibility is
     *  tier-independent (it is decided by the compile); the metric
     *  error envelope is the tier's (see evalErrorBounds). */
    EvalFidelity fidelity = EvalFidelity::Cycle;

    /** Fleet shape the point was evaluated under (DseOptions::
     *  fleetRanks) and the host-transfer share of latencyPerOpNs.
     *  1 / 0.0 for a pre-fleet sweep; journal lines carry them only
     *  when non-default, keeping pre-fleet journals byte-identical. */
    uint32_t fleetRanks = 1;
    double transferPerOpNs = 0;
};

/** Sweep options: the axis grid plus the evaluation parameters. */
struct DseOptions
{
    std::vector<uint32_t> depths{1, 2, 3};
    std::vector<uint32_t> banks{8, 16, 32, 64};
    std::vector<uint32_t> regs{16, 32, 64, 128};

    /** Optional workload-scale axis; empty = {workloadScale}. */
    std::vector<double> scales;

    /** Optional model-core-count axis (multi-core batch execution,
     *  §V-C2); empty = {1}. */
    std::vector<uint32_t> cores;

    double workloadScale = 1.0; ///< Scale when `scales` is empty.
    uint64_t seed = 1;

    /** Workloads to evaluate; empty = the Table I (a)+(b) suite. */
    std::vector<WorkloadSpec> suite;

    /** Fleet evaluation: each design is replicated over this many
     *  host-driven ranks (throughput and wall power scale by the
     *  rank count; per-op latency does not). 1 = the pre-fleet
     *  single-machine sweep, byte-identical journals included. */
    uint32_t fleetRanks = 1;

    /** Host↔rank transfer model charged per dispatch; its cycles
     *  extend every tier's latency identically (the cost is static).
     *  The default free model reproduces pre-fleet metrics. */
    HostTransferModel transfer{};
};

/** One unevaluated grid coordinate, in grid order. */
struct DseGridPoint
{
    ArchConfig cfg;
    double scale = 1.0;
    uint32_t cores = 1;
};

/**
 * Validate the axis values: depth in [1,6], banks a power of two
 * >= 2, regs >= 2, every (effective) scale > 0, cores >= 1. False
 * sets `error` (when given) to the first violation. The single
 * source of the axis rules: expandDseGrid throws FatalError on the
 * same check, and the dse_sweep CLI uses it to reject junk --axes
 * values with exit 2 at flag-parse time.
 */
bool validateDseAxes(const DseOptions &options,
                     std::string *error = nullptr);

/**
 * Expand the axis grid in deterministic grid order: depth-major,
 * then banks, then regs, then scale, then cores. Combinations with
 * banks < 2^depth (no full tree) are skipped, matching the classic
 * sweep. Throws FatalError when validateDseAxes() fails.
 */
std::vector<DseGridPoint> expandDseGrid(const DseOptions &options);

/** Printable signature of the swept space (axes + seed + suite);
 *  stored in the journal header so a resume against a journal from a
 *  different sweep is rejected instead of silently mixing results. */
std::string dseSpaceSignature(const DseOptions &options);

/** One contiguous shard of the grid: points [begin, end). */
struct DseShard
{
    size_t begin = 0;
    size_t end = 0;
};

/** Cut `points` grid points into at most `shards` contiguous,
 *  near-equal (sizes differ by at most one) shards. Deterministic;
 *  never returns an empty shard. */
std::vector<DseShard> planDseShards(size_t points, uint32_t shards);

/** Compile/cache cost of evaluating one point (reported per shard;
 *  wall-clock, so deliberately *not* part of DsePoint, which must be
 *  byte-identical across runs). */
struct DseEvalCost
{
    uint64_t compiles = 0;  ///< compile() calls issued.
    uint64_t cacheHits = 0; ///< Of which served by the ProgramCache.
    double compileSeconds = 0;
};

/**
 * Evaluate one configuration over the suite (averaged). With
 * cores > 1 each workload runs a `cores`-input batch on a
 * BatchMachine, so latency/op reflects multi-core wall cycles.
 * Marks the point infeasible (instead of throwing) when a workload
 * fails to fit. `cache`, when given, serves repeated compiles and
 * memoizes per-tier evaluation stats; `cost`, when given,
 * accumulates compile/cache counters. `evaluator` selects the
 * evaluation tier (nullptr = cycle-accurate).
 */
DsePoint evaluateDesign(const ArchConfig &cfg,
                        const std::vector<WorkloadSpec> &suite,
                        double scale, uint64_t seed,
                        uint32_t cores = 1,
                        ProgramCache *cache = nullptr,
                        DseEvalCost *cost = nullptr,
                        const Evaluator *evaluator = nullptr,
                        uint32_t fleet_ranks = 1,
                        const HostTransferModel &transfer = {},
                        bool verify = false);

// ---------------------------------------------------------------- //
// Checkpoint journal (JSON lines).                                 //
// ---------------------------------------------------------------- //

/** Header line: `{"dse_journal": 1, "space": "...", "points": N}`. */
std::string dseJournalHeaderLine(const std::string &space,
                                 size_t points);

/** One completed point as a flat JSON object on a single line.
 *  Doubles are printed shortest-round-trip, so a parsed point
 *  re-serializes byte-identically. */
std::string dseJournalPointLine(size_t index, const DsePoint &point);

/** Inverse of dseJournalPointLine(); false on a malformed line
 *  (e.g. a torn tail from a killed sweep). */
bool parseDseJournalPointLine(const std::string &line, size_t &index,
                              DsePoint &point);

/** A parsed journal: header fields + every valid point line. */
struct DseJournal
{
    std::string space;
    size_t gridPoints = 0;
    std::vector<std::pair<size_t, DsePoint>> entries;
};

/** Parse a journal file. False when the file cannot be read or its
 *  first line is not a valid header; invalid point lines (torn
 *  writes) are skipped, not errors. */
bool loadDseJournal(const std::string &path, DseJournal &out);

// ---------------------------------------------------------------- //
// The sweep engine.                                                //
// ---------------------------------------------------------------- //

/** How to run a sweep. */
struct DseSweepOptions
{
    DseOptions space;

    /** Host worker threads executing shards (work stealing). */
    uint32_t threads = 1;

    /** Shard count; clamped to the grid size. */
    uint32_t shards = 1;

    /** Checkpoint-journal path; empty = no journaling. */
    std::string journalPath;

    /** Load completed points from the journal before sweeping.
     *  Requires journalPath; a missing journal file starts fresh, a
     *  journal from a different space throws FatalError. */
    bool resume = false;

    /** Program cache shared by every point compile (nullptr = plain
     *  compiles). Cache hits cannot change results — cached programs
     *  are byte-identical to fresh compiles. */
    ProgramCache *cache = nullptr;

    /** Evaluation tier for the sweep (journaled per point). */
    EvalFidelity fidelity = EvalFidelity::Cycle;

    /**
     * Adaptive refinement: sweep every point at `fidelity` (which
     * must be a fast tier), then re-evaluate cycle-accurately only
     * the Pareto neighborhood — the points whose frontier membership
     * the fast values cannot decide within the tier's error envelope
     * (see dseRefineSurvivors). The resulting frontier *membership*
     * is exactly the cycle-accurate frontier whenever the fast tier
     * honors its declared energy envelope, at a fraction of the
     * cycle evaluations; certainly-on-frontier points keep their
     * fast-tier metric values (journaled with their fidelity).
     */
    bool refine = false;

    /** Assumed per-point relative energy error of the fast tier for
     *  the survivor selection; negative = the tier's declared
     *  envelope (dseDefaultRefineError). Must be < 1. */
    double refineErrorBound = -1.0;

    /** Explicit rate table for the Table tier (nullptr = builtin). */
    const TableModel *table = nullptr;

    /** Run the static verifier (compiler/verify.hh) on every point
     *  compile. A verifier failure is a compiler bug and aborts the
     *  sweep (VerifyError), never a silent "infeasible" point. Not
     *  part of the space signature: verification cannot change
     *  results, so verified and unverified journals interoperate. */
    bool verify = false;
};

/** Per-shard execution report (wall-clock + cache traffic; the
 *  nondeterministic companions of the deterministic point vector). */
struct DseShardReport
{
    size_t points = 0;    ///< Grid points in the shard.
    size_t evaluated = 0; ///< Computed this run (rest resumed).
    uint64_t compiles = 0;
    uint64_t cacheHits = 0;
    double compileSeconds = 0;
    double seconds = 0; ///< Shard wall time.

    /** Cache hit rate of this shard's compiles. */
    double
    hitRate() const
    {
        return compiles ? static_cast<double>(cacheHits) /
                              static_cast<double>(compiles)
                        : 0.0;
    }
};

/** Everything a sweep produces. */
struct DseSweepResult
{
    /** Evaluated points in grid order — byte-identical for every
     *  thread/shard count and across resume boundaries. */
    std::vector<DsePoint> points;

    /** One report per planned shard. */
    std::vector<DseShardReport> shardReports;

    /** Points loaded from the journal instead of recomputed. */
    size_t resumedPoints = 0;

    /** Cycle-accurate point evaluations computed this run (the whole
     *  grid for a plain cycle sweep; only the refinement survivors
     *  in refine mode — the quantity refinement exists to shrink). */
    size_t cycleEvaluatedPoints = 0;

    /** Fast-tier point evaluations computed this run. */
    size_t fastEvaluatedPoints = 0;

    /** Points selected for cycle re-evaluation in refine mode
     *  (whether recomputed or resumed from the journal). */
    size_t refineSurvivors = 0;
};

/** Run a sharded sweep (see the file header for the contract). */
DseSweepResult runDseSweep(const DseSweepOptions &options);

/** Classic entry point: serial sweep over the Table I (a)+(b)
 *  suite, no journal. Equivalent to runDseSweep({options}).points. */
std::vector<DsePoint> exploreDesignSpace(const DseOptions &options = {});

// ---------------------------------------------------------------- //
// Frontier + optima.                                               //
// ---------------------------------------------------------------- //

/** True when `a` Pareto-dominates `b` over (latency/op, energy/op,
 *  area): no worse in all three, strictly better in at least one.
 *  Infeasible points neither dominate nor are comparable. */
bool dseDominates(const DsePoint &a, const DsePoint &b);

/**
 * Interval domination for the refinement selection. Latency and area
 * are exact at every tier (latency because the no-stall issue makes
 * cycles a compile-time quantity); only energy carries fast-tier
 * error, so with |fast - cycle| / cycle <= err the true energy lies
 * in [fast/(1+err), fast/(1-err)].
 *
 * dseMaybeDominates: `a` could dominate `b` at the cycle tier for
 * *some* energies in the intervals. dseCertainlyDominates: `a`
 * dominates `b` for *all* energies in the intervals (equivalently,
 * a.energy <= (1-m) * b.energy with m = 2*err/(1+err)). Maybe-but-
 * not-certain pairs are exactly the comparisons the fast tier cannot
 * decide.
 */
bool dseMaybeDominates(const DsePoint &a, const DsePoint &b,
                       double err);
bool dseCertainlyDominates(const DsePoint &a, const DsePoint &b,
                           double err);

/**
 * Indices (ascending) of the refinement survivors: every feasible
 * point involved in at least one maybe-but-not-certain domination
 * pair. Re-evaluating exactly these points cycle-accurately makes
 * every remaining domination decision exact, so the frontier of the
 * mixed vector has exactly the cycle-accurate sweep's membership —
 * the untouched points' relations were already certain.
 */
std::vector<size_t>
dseRefineSurvivors(const std::vector<DsePoint> &points, double err);

/** The default refinement error bound for a fast tier: its declared
 *  energy envelope (evalErrorBounds). */
double dseDefaultRefineError(EvalFidelity fidelity);

/** Indices (ascending) of the Pareto frontier over latency/energy/
 *  area among the feasible points. Empty when nothing is feasible. */
std::vector<size_t> paretoFrontier(const std::vector<DsePoint> &points);

/** Index of the minimum-EDP / minimum-energy / minimum-latency point
 *  among the feasible points, or kDseNpos when none is feasible.
 *  Ties break lexicographically over the remaining metrics, so the
 *  returned point always lies on the Pareto frontier. */
size_t minEdpIndex(const std::vector<DsePoint> &points);
size_t minEnergyIndex(const std::vector<DsePoint> &points);
size_t minLatencyIndex(const std::vector<DsePoint> &points);

} // namespace dpu

#endif // DPU_MODEL_DSE_HH
