/**
 * @file
 * Design-space exploration (paper §V, fig. 11/12).
 *
 * Sweeps D in {1,2,3}, B in {8,16,32,64}, R in {16,32,64,128} — 48
 * design points — compiling and simulating every workload of the
 * suite on each, then averages latency/op, energy/op and EDP to find
 * the optima.
 */

#ifndef DPU_MODEL_DSE_HH
#define DPU_MODEL_DSE_HH

#include <vector>

#include "arch/config.hh"
#include "model/energy.hh"
#include "workloads/suite.hh"

namespace dpu {

/** One evaluated design point. */
struct DsePoint
{
    ArchConfig cfg;
    double latencyPerOpNs = 0;
    double energyPerOpPj = 0;
    double edpPjNs = 0;
    double areaMm2 = 0;
    double powerWatts = 0;
    double throughputGops = 0;
    bool feasible = true; ///< False if some workload failed to fit.
};

/** Sweep options. */
struct DseOptions
{
    std::vector<uint32_t> depths{1, 2, 3};
    std::vector<uint32_t> banks{8, 16, 32, 64};
    std::vector<uint32_t> regs{16, 32, 64, 128};
    double workloadScale = 1.0; ///< Scale factor on workload size.
    uint64_t seed = 1;
};

/** Run the sweep over the Table I (a)+(b) suite. */
std::vector<DsePoint> exploreDesignSpace(const DseOptions &options = {});

/** Evaluate one configuration over the suite (averaged). */
DsePoint evaluateDesign(const ArchConfig &cfg,
                        const std::vector<WorkloadSpec> &suite,
                        double scale, uint64_t seed);

/** Index of the minimum-EDP / minimum-energy / minimum-latency point
 *  among the feasible points. */
size_t minEdpIndex(const std::vector<DsePoint> &points);
size_t minEnergyIndex(const std::vector<DsePoint> &points);
size_t minLatencyIndex(const std::vector<DsePoint> &points);

} // namespace dpu

#endif // DPU_MODEL_DSE_HH
