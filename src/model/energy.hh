/**
 * @file
 * Area / power / energy model of a DPU-v2 instance (paper §V-B,
 * Table II), driven by the simulator's event counts and calibrated by
 * tech28.hh.
 */

#ifndef DPU_MODEL_ENERGY_HH
#define DPU_MODEL_ENERGY_HH

#include <string>
#include <vector>

#include "arch/config.hh"
#include "sim/machine.hh"

namespace dpu {

/** Table II module rows. */
enum class Module : uint8_t {
    Pes,
    PipelineRegs,
    InputInterconnect,
    OutputInterconnect,
    RegisterBanks,
    WriteAddrGen,
    InstrFetch,
    Decode,
    CtrlPipelineRegs,
    InstrMemory,
    DataMemory,
    Count,
};

/** Printable module name (matches Table II). */
const char *moduleName(Module m);

/** Per-module area of a configuration, in mm^2. */
struct AreaBreakdown
{
    double byModule[static_cast<size_t>(Module::Count)] = {};
    double total = 0.0;
};

/** Area model. `data_mem_bytes`/`instr_mem_bytes` default to the
 *  small-configuration memories (1 MB each). */
AreaBreakdown areaOf(const ArchConfig &cfg, double instr_mem_bytes = 0,
                     double data_mem_bytes = 0);

/** Energy of one program execution, by module (picojoules). */
struct EnergyBreakdown
{
    double byModule[static_cast<size_t>(Module::Count)] = {};
    double totalPj = 0.0;

    uint64_t cycles = 0;
    uint64_t operations = 0;

    /** Derived metrics (paper fig. 11 axes). */
    double seconds() const;
    double wallPowerWatts() const;
    double latencyPerOpNs() const;
    double energyPerOpPj() const;
    double edpPjNs() const; ///< energy/op * latency/op.
};

/** Evaluate the energy model on one simulated run. */
EnergyBreakdown energyOf(const ArchConfig &cfg, const SimStats &stats,
                         uint64_t operations);

} // namespace dpu

#endif // DPU_MODEL_ENERGY_HH
