#include "model/dse.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <tuple>

#include "compiler/compiler.hh"
#include "sim/batch.hh"
#include "sim/machine.hh"
#include "support/flatjson.hh"
#include "support/parallel.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace dpu {

// ---------------------------------------------------------------- //
// Point evaluation.                                                //
// ---------------------------------------------------------------- //

DsePoint
evaluateDesign(const ArchConfig &cfg,
               const std::vector<WorkloadSpec> &suite, double scale,
               uint64_t seed, uint32_t cores, ProgramCache *cache,
               DseEvalCost *cost, const Evaluator *evaluator,
               uint32_t fleet_ranks, const HostTransferModel &transfer,
               bool verify)
{
    const EvalFidelity fid =
        evaluator ? evaluator->fidelity() : EvalFidelity::Cycle;
    if (fleet_ranks < 1)
        fleet_ranks = 1;

    DsePoint point;
    point.cfg = cfg;
    point.workloadScale = scale;
    point.cores = cores;
    point.areaMm2 = areaOf(cfg).total;
    point.fidelity = fid;
    point.fleetRanks = fleet_ranks;

    Summary lat, epo, gops, watts, xfer_ns;
    for (const WorkloadSpec &spec : suite) {
        Dag dag = buildWorkloadDag(spec, scale);
        CompileOptions opt;
        opt.seed = seed;
        if (verify) // explicit opt-in only; keep the default build-set
            opt.verify = true;
        CompiledProgram prog;
        try {
            prog = cache ? cache->compile(dag, cfg, opt)
                         : compile(dag, cfg, opt);
        } catch (const FatalError &) {
            // Register file too small for this workload: the design
            // point cannot run the suite. Tier-independent: the
            // compile, not the evaluation, makes this call.
            point.feasible = false;
            return point;
        }
        if (cost) {
            cost->compiles += 1;
            cost->cacheHits += prog.stats.cacheHits;
            cost->compileSeconds += prog.stats.compileSeconds;
        }

        SimStats stats;
        uint64_t operations = prog.stats.numOperations;

        // Event counts are input-value-independent, so a (program,
        // tier, cores) triple pins them exactly and the cache can
        // memoize across repeated evaluations of the same point.
        std::string memo_key;
        bool memoized = false;
        if (cache) {
            memo_key = programCacheKey(dag, cfg, opt);
            memoized = cache->lookupEvalStats(
                memo_key, static_cast<uint8_t>(fid), cores, stats);
        }
        if (!memoized && fid != EvalFidelity::Cycle) {
            stats = cores <= 1
                        ? evaluator->estimate(prog)
                        : evaluator->estimateBatch(prog, cores, cores);
        } else if (!memoized && cores <= 1) {
            Rng rng(seed + spec.seed);
            std::vector<double> inputs(dag.numInputs());
            for (double &x : inputs)
                x = 0.5 + rng.uniform();
            stats = Machine(prog).run(inputs).stats;
        } else if (!memoized) {
            // Multi-core axis: a `cores`-input batch on a
            // BatchMachine; wall cycles set the latency, the summed
            // event counts set the energy.
            Rng rng(seed + spec.seed);
            std::vector<std::vector<double>> batch(cores);
            for (auto &inputs : batch) {
                inputs.resize(dag.numInputs());
                for (double &x : inputs)
                    x = 0.5 + rng.uniform();
            }
            BatchResult br =
                BatchMachine(prog, cores, operations, 1).run(batch);
            stats.cycles = br.wallCycles;
            for (const SimResult &run : br.runs) {
                const SimStats &s = run.stats;
                for (size_t k = 0; k < s.kindCount.size(); ++k)
                    stats.kindCount[k] += s.kindCount[k];
                stats.bankReads += s.bankReads;
                stats.bankWrites += s.bankWrites;
                stats.peOperations += s.peOperations;
                stats.pePassThroughs += s.pePassThroughs;
                stats.crossbarTransfers += s.crossbarTransfers;
                stats.memReads += s.memReads;
                stats.memWrites += s.memWrites;
                stats.instrBitsFetched += s.instrBitsFetched;
                stats.peakLiveRegisters = std::max(
                    stats.peakLiveRegisters, s.peakLiveRegisters);
            }
        }
        if (cache && !memoized)
            cache->storeEvalStats(memo_key, static_cast<uint8_t>(fid),
                                  cores, stats);
        if (cores > 1)
            operations *= cores;

        // Host↔rank transfer: the link serializes the dispatch's
        // input/output payload before the cores compute, extending
        // the wall clock identically at every tier (the cost is
        // static — see HostTransferModel). The memoized stats above
        // stay transfer-free, so one cache entry serves any model.
        uint64_t runs = cores > 1 ? cores : 1;
        uint64_t xfer =
            Evaluator::batchTransferCycles(prog, runs, transfer);
        stats.transferCycles = xfer;
        stats.cycles += xfer;

        EnergyBreakdown e = energyOf(cfg, stats, operations);
        lat.add(e.latencyPerOpNs());
        epo.add(e.energyPerOpPj());
        // A fleet replicates the design: throughput and wall power
        // scale with the rank count; per-op latency/energy do not.
        gops.add(fleet_ranks * double(operations) / e.seconds() * 1e-9);
        watts.add(fleet_ranks * e.wallPowerWatts());
        if (stats.cycles > 0)
            xfer_ns.add(double(xfer) / double(stats.cycles) *
                        e.seconds() * 1e9 / double(operations));
    }
    point.latencyPerOpNs = lat.mean();
    point.energyPerOpPj = epo.mean();
    point.edpPjNs = point.latencyPerOpNs * point.energyPerOpPj;
    point.throughputGops = gops.mean();
    point.powerWatts = watts.mean();
    point.transferPerOpNs = xfer_ns.mean();
    return point;
}

// ---------------------------------------------------------------- //
// Grid expansion + shard planning.                                 //
// ---------------------------------------------------------------- //

namespace {

/** Effective optional-axis values (empty axis = its default). */
std::vector<double>
effectiveScales(const DseOptions &o)
{
    return o.scales.empty() ? std::vector<double>{o.workloadScale}
                            : o.scales;
}

std::vector<uint32_t>
effectiveCores(const DseOptions &o)
{
    return o.cores.empty() ? std::vector<uint32_t>{1} : o.cores;
}

} // namespace

bool
validateDseAxes(const DseOptions &options, std::string *error)
{
    auto fail = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    for (uint32_t d : options.depths)
        if (d < 1 || d > 6)
            return fail("DSE depth axis value " + std::to_string(d) +
                        " outside the supported range [1, 6]");
    for (uint32_t b : options.banks)
        if (b < 2 || (b & (b - 1)) != 0)
            return fail("DSE banks axis value " + std::to_string(b) +
                        " is not a power of two >= 2");
    for (uint32_t r : options.regs)
        if (r < 2)
            return fail("DSE regs axis value " + std::to_string(r) +
                        " is below the minimum of 2");
    for (double s : effectiveScales(options))
        if (!(s > 0))
            return fail("DSE workload scale " + jsonDouble(s) +
                        " must be > 0");
    for (uint32_t c : effectiveCores(options))
        if (c < 1)
            return fail("DSE cores axis value must be >= 1");
    return true;
}

std::vector<DseGridPoint>
expandDseGrid(const DseOptions &options)
{
    std::string error;
    if (!validateDseAxes(options, &error))
        dpu_fatal(error);
    std::vector<double> scales = effectiveScales(options);
    std::vector<uint32_t> cores = effectiveCores(options);

    std::vector<DseGridPoint> grid;
    for (uint32_t d : options.depths)
        for (uint32_t b : options.banks) {
            if (b < (1u << d))
                continue; // needs at least one full tree
            for (uint32_t r : options.regs)
                for (double s : scales)
                    for (uint32_t c : cores) {
                        DseGridPoint p;
                        p.cfg.depth = d;
                        p.cfg.banks = b;
                        p.cfg.regsPerBank = r;
                        p.scale = s;
                        p.cores = c;
                        grid.push_back(p);
                    }
        }
    return grid;
}

std::string
dseSpaceSignature(const DseOptions &options)
{
    std::ostringstream os;
    auto list = [&os](const char *name, const auto &values,
                      auto format) {
        os << name << "=";
        for (size_t i = 0; i < values.size(); ++i)
            os << (i ? "," : "") << format(values[i]);
        os << "|";
    };
    auto u32 = [](uint32_t v) { return std::to_string(v); };
    list("depths", options.depths, u32);
    list("banks", options.banks, u32);
    list("regs", options.regs, u32);
    list("scales", effectiveScales(options), jsonDouble);
    list("cores", effectiveCores(options), u32);
    os << "seed=" << options.seed << "|suite=";
    const std::vector<WorkloadSpec> suite =
        options.suite.empty() ? smallSuite() : options.suite;
    for (size_t i = 0; i < suite.size(); ++i)
        os << (i ? "," : "") << suite[i].name;
    // Fleet terms only when non-default, so pre-fleet journals keep
    // validating (and staying byte-identical) against the same space.
    if (options.fleetRanks != 1 || !options.transfer.free())
        os << "|fleet=" << options.fleetRanks
           << ";xfer_cpb=" << jsonDouble(options.transfer.cyclesPerByte)
           << ";xfer_dc=" << options.transfer.dispatchCycles;
    return os.str();
}

std::vector<DseShard>
planDseShards(size_t points, uint32_t shards)
{
    std::vector<DseShard> plan;
    if (points == 0)
        return plan;
    size_t n = std::min<size_t>(std::max<uint32_t>(shards, 1), points);
    size_t base = points / n;
    size_t extra = points % n;
    size_t at = 0;
    for (size_t s = 0; s < n; ++s) {
        size_t len = base + (s < extra ? 1 : 0);
        plan.push_back({at, at + len});
        at += len;
    }
    return plan;
}

// ---------------------------------------------------------------- //
// Journal format.                                                  //
// ---------------------------------------------------------------- //

std::string
dseJournalHeaderLine(const std::string &space, size_t points)
{
    std::ostringstream os;
    os << "{\"dse_journal\": 1, \"space\": " << jsonString(space)
       << ", \"points\": " << points << "}";
    return os.str();
}

std::string
dseJournalPointLine(size_t index, const DsePoint &p)
{
    std::ostringstream os;
    os << "{\"index\": " << index
       << ", \"design\": " << jsonString(p.cfg.label())
       << ", \"depth\": " << p.cfg.depth
       << ", \"banks\": " << p.cfg.banks
       << ", \"regs\": " << p.cfg.regsPerBank
       << ", \"scale\": " << jsonDouble(p.workloadScale)
       << ", \"cores\": " << p.cores
       << ", \"feasible\": " << (p.feasible ? "true" : "false")
       << ", \"latency_per_op_ns\": " << jsonDouble(p.latencyPerOpNs)
       << ", \"energy_per_op_pj\": " << jsonDouble(p.energyPerOpPj)
       << ", \"edp_pj_ns\": " << jsonDouble(p.edpPjNs)
       << ", \"area_mm2\": " << jsonDouble(p.areaMm2)
       << ", \"power_watts\": " << jsonDouble(p.powerWatts)
       << ", \"throughput_gops\": " << jsonDouble(p.throughputGops)
       << ", \"fidelity\": " << jsonString(fidelityName(p.fidelity));
    // Fleet fields only when non-default: pre-fleet sweeps keep
    // emitting byte-identical lines (golden-pinned in test_dse.cc).
    if (p.fleetRanks != 1)
        os << ", \"ranks\": " << p.fleetRanks;
    if (p.transferPerOpNs != 0)
        os << ", \"transfer_per_op_ns\": "
           << jsonDouble(p.transferPerOpNs);
    os << "}";
    return os.str();
}

bool
parseDseJournalPointLine(const std::string &line, size_t &index,
                         DsePoint &point)
{
    FlatJsonLine obj;
    if (!obj.parse(line))
        return false;
    uint64_t idx = 0, depth = 0, banks = 0, regs = 0, cores = 0;
    DsePoint p;
    if (!obj.getU64("index", idx) || !obj.getU64("depth", depth) ||
        !obj.getU64("banks", banks) || !obj.getU64("regs", regs) ||
        !obj.getU64("cores", cores) ||
        !obj.getDouble("scale", p.workloadScale) ||
        !obj.getBool("feasible", p.feasible) ||
        !obj.getDouble("latency_per_op_ns", p.latencyPerOpNs) ||
        !obj.getDouble("energy_per_op_pj", p.energyPerOpPj) ||
        !obj.getDouble("edp_pj_ns", p.edpPjNs) ||
        !obj.getDouble("area_mm2", p.areaMm2) ||
        !obj.getDouble("power_watts", p.powerWatts) ||
        !obj.getDouble("throughput_gops", p.throughputGops))
        return false;
    // Journals written before the tiered evaluator carry no fidelity
    // field: those lines are cycle-accurate by construction, so the
    // absent field reads as Cycle. A *present but unknown* tier name
    // is a torn/foreign line, not a default.
    if (obj.has("fidelity")) {
        std::string name;
        if (!obj.getString("fidelity", name) ||
            !parseFidelityName(name.c_str(), p.fidelity))
            return false;
    }
    // Fleet fields are optional (emitted only when non-default);
    // their absence reads as the pre-fleet single-rank free-link
    // defaults.
    uint64_t ranks = 1;
    if (obj.has("ranks")) {
        if (!obj.getU64("ranks", ranks) || ranks == 0 ||
            ranks > UINT32_MAX)
            return false;
    }
    p.fleetRanks = static_cast<uint32_t>(ranks);
    if (obj.has("transfer_per_op_ns") &&
        !obj.getDouble("transfer_per_op_ns", p.transferPerOpNs))
        return false;
    if (depth == 0 || depth > 6 || banks == 0 || regs == 0 ||
        cores == 0 || banks > UINT32_MAX || regs > UINT32_MAX ||
        cores > UINT32_MAX)
        return false;
    p.cfg.depth = static_cast<uint32_t>(depth);
    p.cfg.banks = static_cast<uint32_t>(banks);
    p.cfg.regsPerBank = static_cast<uint32_t>(regs);
    p.cores = static_cast<uint32_t>(cores);
    index = static_cast<size_t>(idx);
    point = p;
    return true;
}

bool
loadDseJournal(const std::string &path, DseJournal &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;

    FlatJsonLine header;
    uint64_t version = 0, points = 0;
    DseJournal j;
    if (!header.parse(line) || !header.getU64("dse_journal", version) ||
        version != 1 || !header.getString("space", j.space) ||
        !header.getU64("points", points))
        return false;
    j.gridPoints = static_cast<size_t>(points);

    while (std::getline(in, line)) {
        size_t index = 0;
        DsePoint p;
        // Invalid lines are torn writes from a killed sweep; skip
        // them — the points they would have carried get recomputed.
        if (parseDseJournalPointLine(line, index, p))
            j.entries.emplace_back(index, p);
    }
    out = std::move(j);
    return true;
}

// ---------------------------------------------------------------- //
// The sweep engine.                                                //
// ---------------------------------------------------------------- //

namespace {

/** A journal entry is only reused when its coordinates match the
 *  grid slot; a mismatch means a corrupted line, and recomputing is
 *  always safe. */
bool
matchesGridPoint(const DsePoint &p, const DseGridPoint &g)
{
    return p.cfg.depth == g.cfg.depth && p.cfg.banks == g.cfg.banks &&
           p.cfg.regsPerBank == g.cfg.regsPerBank &&
           p.workloadScale == g.scale && p.cores == g.cores;
}

/** Write `text` to `path` atomically (tmp file + rename), so a kill
 *  mid-rewrite leaves either the old or the new journal, never a
 *  half-written one. */
void
writeFileAtomically(const std::string &path, const std::string &text)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            dpu_fatal("cannot write DSE journal '" + tmp + "'");
        out << text;
        out.flush();
        if (!out)
            dpu_fatal("short write to DSE journal '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        dpu_fatal("cannot rename '" + tmp + "' to '" + path + "'");
}

} // namespace

DseSweepResult
runDseSweep(const DseSweepOptions &options)
{
    const DseOptions &space = options.space;
    const std::vector<WorkloadSpec> suite =
        space.suite.empty() ? smallSuite() : space.suite;
    const std::vector<DseGridPoint> grid = expandDseGrid(space);
    const std::string signature = dseSpaceSignature(space);
    const EvalFidelity fid = options.fidelity;

    if (options.refine && fid == EvalFidelity::Cycle)
        dpu_fatal("DSE refinement sweeps coarse with a fast tier "
                  "first; --fidelity=cycle leaves nothing to refine "
                  "(drop refinement or pick table/analytic)");
    const double refine_err = options.refineErrorBound >= 0
                                  ? options.refineErrorBound
                                  : dseDefaultRefineError(fid);
    if (options.refine && refine_err >= 1.0)
        dpu_fatal("DSE refinement error bound must be < 1 (a relative "
                  "energy error that large leaves no interval to "
                  "decide with)");

    const Evaluator evaluator = options.table
                                    ? Evaluator(fid, *options.table)
                                    : Evaluator(fid);
    const Evaluator cycle_evaluator{EvalFidelity::Cycle};

    DseSweepResult result;
    result.points.resize(grid.size());
    std::vector<char> have(grid.size(), 0);

    // Cycle-tier journal entries held back for the refinement phase:
    // phase 1 always works with fast-tier values (so the survivor
    // selection is identical with or without a resume), but a
    // survivor whose cycle re-evaluation is already journaled is not
    // recomputed.
    std::vector<char> have_cycle(grid.size(), 0);
    std::vector<DsePoint> cycle_resume(
        options.refine ? grid.size() : 0);

    const bool journaling = !options.journalPath.empty();
    if (options.resume && !journaling)
        dpu_fatal("DSE resume requires a journal path");

    if (options.resume) {
        DseJournal journal;
        if (loadDseJournal(options.journalPath, journal)) {
            if (journal.space != signature ||
                journal.gridPoints != grid.size())
                dpu_fatal("DSE journal '" + options.journalPath +
                          "' was written for a different sweep "
                          "(space signature mismatch)");
            for (const auto &[index, p] : journal.entries) {
                if (index >= grid.size() ||
                    !matchesGridPoint(p, grid[index]))
                    continue;
                if (p.fidelity == fid) {
                    if (!have[index])
                        ++result.resumedPoints;
                    result.points[index] = p;
                    have[index] = 1;
                } else if (options.refine &&
                           p.fidelity == EvalFidelity::Cycle) {
                    cycle_resume[index] = p;
                    have_cycle[index] = 1;
                }
                // Entries at any other tier belong to a different
                // run mode; recomputing is always safe.
            }
        } else if (std::ifstream(options.journalPath)) {
            // The path exists but is not a journal (bad header):
            // refuse, like a signature mismatch — starting fresh
            // here would overwrite an unrelated file.
            dpu_fatal("'" + options.journalPath +
                      "' exists but is not a DSE journal; refusing "
                      "to overwrite it");
        }
        // A missing journal is a fresh start, not an error:
        // resuming a sweep that never ran just runs it.
    }

    std::ofstream journal;
    if (journaling) {
        // Normalize the journal up front (header + every resumed
        // point, grid order) so torn tails from a kill are gone
        // before we start appending.
        std::ostringstream os;
        os << dseJournalHeaderLine(signature, grid.size()) << "\n";
        for (size_t i = 0; i < grid.size(); ++i) {
            if (have[i])
                os << dseJournalPointLine(i, result.points[i]) << "\n";
            // Keep resumed cycle refinements too: if this run is
            // killed before its own refinement phase re-appends
            // them, the next resume can still reuse them.
            if (i < have_cycle.size() && have_cycle[i])
                os << dseJournalPointLine(i, cycle_resume[i]) << "\n";
        }
        writeFileAtomically(options.journalPath, os.str());
        journal.open(options.journalPath, std::ios::app);
        if (!journal)
            dpu_fatal("cannot append to DSE journal '" +
                      options.journalPath + "'");
    }

    const std::vector<DseShard> shards =
        planDseShards(grid.size(), options.shards);
    result.shardReports.resize(shards.size());
    std::mutex journal_mutex;

    parallelFor(shards.size(), options.threads, [&](size_t s) {
        auto start = std::chrono::steady_clock::now();
        DseShardReport report;
        report.points = shards[s].end - shards[s].begin;
        for (size_t i = shards[s].begin; i < shards[s].end; ++i) {
            if (have[i])
                continue;
            DseEvalCost cost;
            // Each slot is written by exactly one shard, so the
            // grid-order merge needs no synchronization.
            result.points[i] = evaluateDesign(
                grid[i].cfg, suite, grid[i].scale, space.seed,
                grid[i].cores, options.cache, &cost, &evaluator,
                space.fleetRanks, space.transfer, options.verify);
            ++report.evaluated;
            report.compiles += cost.compiles;
            report.cacheHits += cost.cacheHits;
            report.compileSeconds += cost.compileSeconds;
            if (journaling) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal << dseJournalPointLine(i, result.points[i])
                        << "\n";
                journal.flush(); // checkpoint survives a kill
                if (!journal)
                    dpu_fatal("failed writing DSE journal '" +
                              options.journalPath +
                              "' (disk full?); checkpoints would be "
                              "silently lost");
            }
        }
        report.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        result.shardReports[s] = report;
    });

    size_t phase1_evaluated = 0;
    for (const DseShardReport &r : result.shardReports)
        phase1_evaluated += r.evaluated;
    if (fid == EvalFidelity::Cycle)
        result.cycleEvaluatedPoints += phase1_evaluated;
    else
        result.fastEvaluatedPoints += phase1_evaluated;

    if (options.refine) {
        // Phase 2: cycle re-evaluation of the Pareto neighborhood.
        // The survivor set is computed from the (deterministic)
        // fast-tier points, so it is identical for every thread /
        // shard count and across resume boundaries.
        std::vector<size_t> survivors =
            dseRefineSurvivors(result.points, refine_err);
        result.refineSurvivors = survivors.size();
        std::atomic<size_t> cycle_evals{0};
        std::atomic<size_t> cycle_resumed{0};
        parallelFor(survivors.size(), options.threads, [&](size_t k) {
            size_t i = survivors[k];
            if (have_cycle[i]) {
                result.points[i] = cycle_resume[i];
                ++cycle_resumed;
            } else {
                DseEvalCost cost;
                result.points[i] = evaluateDesign(
                    grid[i].cfg, suite, grid[i].scale, space.seed,
                    grid[i].cores, options.cache, &cost,
                    &cycle_evaluator, space.fleetRanks,
                    space.transfer, options.verify);
                ++cycle_evals;
            }
            if (journaling) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal << dseJournalPointLine(i, result.points[i])
                        << "\n";
                journal.flush();
                if (!journal)
                    dpu_fatal("failed writing DSE journal '" +
                              options.journalPath +
                              "' (disk full?); checkpoints would be "
                              "silently lost");
            }
        });
        result.cycleEvaluatedPoints += cycle_evals;
        result.resumedPoints += cycle_resumed;
    }

    if (journaling) {
        journal.close();
        // Canonical rewrite: header + all points in grid order. The
        // final journal is byte-identical for every thread/shard
        // count and across resume boundaries.
        std::ostringstream os;
        os << dseJournalHeaderLine(signature, grid.size()) << "\n";
        for (size_t i = 0; i < grid.size(); ++i)
            os << dseJournalPointLine(i, result.points[i]) << "\n";
        writeFileAtomically(options.journalPath, os.str());
    }
    return result;
}

std::vector<DsePoint>
exploreDesignSpace(const DseOptions &options)
{
    DseSweepOptions sweep;
    sweep.space = options;
    return runDseSweep(sweep).points;
}

// ---------------------------------------------------------------- //
// Frontier + optima.                                               //
// ---------------------------------------------------------------- //

bool
dseDominates(const DsePoint &a, const DsePoint &b)
{
    if (!a.feasible || !b.feasible)
        return false;
    bool no_worse = a.latencyPerOpNs <= b.latencyPerOpNs &&
                    a.energyPerOpPj <= b.energyPerOpPj &&
                    a.areaMm2 <= b.areaMm2;
    bool better = a.latencyPerOpNs < b.latencyPerOpNs ||
                  a.energyPerOpPj < b.energyPerOpPj ||
                  a.areaMm2 < b.areaMm2;
    return no_worse && better;
}

bool
dseMaybeDominates(const DsePoint &a, const DsePoint &b, double err)
{
    if (!a.feasible || !b.feasible)
        return false;
    if (a.latencyPerOpNs > b.latencyPerOpNs || a.areaMm2 > b.areaMm2)
        return false;
    // Best case for a: its energy at the interval floor, b's at the
    // ceiling. The strictness clause matters only for exact ties in
    // all three metrics (then no energy assignment dominates).
    double a_lo = a.energyPerOpPj / (1.0 + err);
    double b_hi = b.energyPerOpPj / (1.0 - err);
    if (a_lo > b_hi)
        return false;
    return a.latencyPerOpNs < b.latencyPerOpNs ||
           a.areaMm2 < b.areaMm2 || a_lo < b_hi;
}

bool
dseCertainlyDominates(const DsePoint &a, const DsePoint &b, double err)
{
    if (!a.feasible || !b.feasible)
        return false;
    if (a.latencyPerOpNs > b.latencyPerOpNs || a.areaMm2 > b.areaMm2)
        return false;
    // Worst case for a: its energy at the interval ceiling, b's at
    // the floor. a_hi <= b_lo is a.energy <= (1-m) * b.energy with
    // m = 2*err/(1+err).
    double a_hi = a.energyPerOpPj / (1.0 - err);
    double b_lo = b.energyPerOpPj / (1.0 + err);
    if (a_hi > b_lo)
        return false;
    return a.latencyPerOpNs < b.latencyPerOpNs ||
           a.areaMm2 < b.areaMm2 || a_hi < b_lo;
}

std::vector<size_t>
dseRefineSurvivors(const std::vector<DsePoint> &points, double err)
{
    // A pair the intervals cannot decide contaminates both ends:
    // resolving b's membership needs the true energy of every a that
    // might dominate it, and vice versa.
    std::vector<uint8_t> uncertain(points.size(), 0);
    for (size_t i = 0; i < points.size(); ++i)
        for (size_t j = 0; j < points.size(); ++j)
            if (i != j && dseMaybeDominates(points[i], points[j], err) &&
                !dseCertainlyDominates(points[i], points[j], err))
                uncertain[i] = uncertain[j] = 1;
    std::vector<size_t> survivors;
    for (size_t i = 0; i < points.size(); ++i)
        if (uncertain[i])
            survivors.push_back(i);
    return survivors;
}

double
dseDefaultRefineError(EvalFidelity fidelity)
{
    return evalErrorBounds(fidelity).energyRel;
}

std::vector<size_t>
paretoFrontier(const std::vector<DsePoint> &points)
{
    std::vector<size_t> frontier;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].feasible)
            continue;
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i && dseDominates(points[j], points[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    return frontier;
}

namespace {

/**
 * Feasible argmin under a 4-tuple key: the primary metric first,
 * then the remaining frontier metrics lexicographically. The
 * tie-break is what keeps the returned index on the Pareto frontier
 * even when several points share the primary optimum: among ties the
 * lexicographic minimum cannot be dominated.
 */
template <typename Key>
size_t
argmin(const std::vector<DsePoint> &points, Key key)
{
    size_t best = kDseNpos;
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].feasible)
            continue;
        if (best == kDseNpos || key(points[i]) < key(points[best]))
            best = i;
    }
    return best;
}

} // namespace

size_t
minEdpIndex(const std::vector<DsePoint> &points)
{
    return argmin(points, [](const DsePoint &p) {
        return std::make_tuple(p.edpPjNs, p.latencyPerOpNs,
                               p.energyPerOpPj, p.areaMm2);
    });
}

size_t
minEnergyIndex(const std::vector<DsePoint> &points)
{
    return argmin(points, [](const DsePoint &p) {
        return std::make_tuple(p.energyPerOpPj, p.latencyPerOpNs,
                               p.edpPjNs, p.areaMm2);
    });
}

size_t
minLatencyIndex(const std::vector<DsePoint> &points)
{
    return argmin(points, [](const DsePoint &p) {
        return std::make_tuple(p.latencyPerOpNs, p.energyPerOpPj,
                               p.edpPjNs, p.areaMm2);
    });
}

} // namespace dpu
