#include "model/dse.hh"

#include "compiler/compiler.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace dpu {

DsePoint
evaluateDesign(const ArchConfig &cfg,
               const std::vector<WorkloadSpec> &suite, double scale,
               uint64_t seed)
{
    DsePoint point;
    point.cfg = cfg;
    point.areaMm2 = areaOf(cfg).total;

    Summary lat, epo, gops, watts;
    for (const WorkloadSpec &spec : suite) {
        Dag dag = buildWorkloadDag(spec, scale);
        CompileOptions opt;
        opt.seed = seed;
        CompiledProgram prog;
        try {
            prog = compile(dag, cfg, opt);
        } catch (const FatalError &) {
            // Register file too small for this workload: the design
            // point cannot run the suite.
            point.feasible = false;
            return point;
        }
        Rng rng(seed + spec.seed);
        std::vector<double> inputs(dag.numInputs());
        for (double &x : inputs)
            x = 0.5 + rng.uniform();
        SimResult res = Machine(prog).run(inputs);
        EnergyBreakdown e =
            energyOf(cfg, res.stats, prog.stats.numOperations);
        lat.add(e.latencyPerOpNs());
        epo.add(e.energyPerOpPj());
        gops.add(double(prog.stats.numOperations) / e.seconds() * 1e-9);
        watts.add(e.wallPowerWatts());
    }
    point.latencyPerOpNs = lat.mean();
    point.energyPerOpPj = epo.mean();
    point.edpPjNs = point.latencyPerOpNs * point.energyPerOpPj;
    point.throughputGops = gops.mean();
    point.powerWatts = watts.mean();
    return point;
}

std::vector<DsePoint>
exploreDesignSpace(const DseOptions &options)
{
    auto suite = smallSuite();
    std::vector<DsePoint> points;
    for (uint32_t d : options.depths)
        for (uint32_t b : options.banks)
            for (uint32_t r : options.regs) {
                if (b < (1u << d))
                    continue; // needs at least one full tree
                ArchConfig cfg;
                cfg.depth = d;
                cfg.banks = b;
                cfg.regsPerBank = r;
                points.push_back(evaluateDesign(cfg, suite,
                                                options.workloadScale,
                                                options.seed));
            }
    return points;
}

namespace {

template <typename Metric>
size_t
argmin(const std::vector<DsePoint> &points, Metric metric)
{
    dpu_assert(!points.empty(), "empty design space");
    size_t best = points.size();
    for (size_t i = 0; i < points.size(); ++i) {
        if (!points[i].feasible)
            continue;
        if (best == points.size() ||
            metric(points[i]) < metric(points[best])) {
            best = i;
        }
    }
    dpu_assert(best != points.size(), "no feasible design point");
    return best;
}

} // namespace

size_t
minEdpIndex(const std::vector<DsePoint> &points)
{
    return argmin(points, [](const DsePoint &p) { return p.edpPjNs; });
}

size_t
minEnergyIndex(const std::vector<DsePoint> &points)
{
    return argmin(points,
                  [](const DsePoint &p) { return p.energyPerOpPj; });
}

size_t
minLatencyIndex(const std::vector<DsePoint> &points)
{
    return argmin(points,
                  [](const DsePoint &p) { return p.latencyPerOpNs; });
}

} // namespace dpu
