/**
 * @file
 * 28nm technology calibration constants.
 *
 * Substitute for the paper's gate-level synthesis + switching-activity
 * flow (DESIGN.md): every constant is fitted so that the minimum-EDP
 * configuration (D=3, B=64, R=32) running the Table I (a)+(b) suite at
 * 300 MHz reproduces Table II's per-module area and power, and scales
 * with (D, B, R) by the stated first-order law. Measured calibration
 * activity (events per cycle, suite average): peOps 4.90, passes 2.85,
 * bank reads 6.22, bank writes 4.50, crossbar words 6.46, memory rows
 * 0.51, instruction bits 237; IL = 1188 bits.
 */

#ifndef DPU_MODEL_TECH28_HH
#define DPU_MODEL_TECH28_HH

namespace dpu {
namespace tech28 {

/** Clock frequency the paper synthesizes for. */
constexpr double frequencyHz = 300e6;

// ---------------------------------------------------------------- energy
// Dynamic event energies in picojoules; "cycle" entries burn every
// cycle and scale with the stated structure size.

/** One Add/Mul executed by a PE (fp32 datapath incl. local control). */
constexpr double peOpPj = 6.72;
/** One pass-through (mux + output register only). */
constexpr double pePassPj = 2.35;

/** Datapath pipeline registers: clock load per PE per cycle... */
constexpr double pipeClockPjPerPe = 0.238;
/** ...plus toggling when a PE actually produces a value. */
constexpr double pipeTogglePj = 1.72;

/** One word through the input crossbar, at B = 64 (scales ~B). */
constexpr double xbarWordPj = 5.16;
constexpr double xbarRefBanks = 64.0;

/** One word through the output (D:1 per bank) network, at D = 3. */
constexpr double outputWordPj = 0.37;
constexpr double outputRefDepth = 3.0;

/** Register-bank access (read or write), at R = 32 (scales mildly). */
constexpr double bankAccessPj = 3.73;
constexpr double bankAccessR0 = 0.6; ///< access = (R0 + R1 * R/32)
constexpr double bankAccessR1 = 0.4;
/** Bank clock/leakage per register per cycle. */
constexpr double bankClockPjPerReg = 0.0195;

/** Write-address generator (valid bits + priority encoder): per
 *  register per cycle (the encoders settle every cycle). */
constexpr double wagPjPerReg = 0.0127;

/** Instruction fetch (aligning shifter + buffer): per cycle at
 *  IL = 1188 (scales with IL). */
constexpr double fetchPjPerCycle = 23.3;
constexpr double refIlBits = 1188.0;

/** Decoder: per instruction bit actually decoded. */
constexpr double decodePjPerBit = 0.0366;

/** Control-signal pipeline registers: per cycle, scales with IL. */
constexpr double ctrlPipePjPerCycle = 9.0;

/** Instruction memory: per cycle, scales with IL (the memory feeds
 *  IL bits every cycle regardless of the instruction consumed). */
constexpr double imemPjPerCycle = 92.3;

/** Data memory: per row access at B = 64 words (scales with B). */
constexpr double dmemRowPj = 44.0;
constexpr double dmemRefBanks = 64.0;

// ------------------------------------------------------------------ area
// Square millimetres.

constexpr double peAreaMm2 = 0.002321;          ///< per PE
constexpr double pipeRegAreaMm2 = 0.000714;     ///< per PE
constexpr double xbarAreaMm2PerB2 = 3.418e-5;   ///< per bank^2
constexpr double outputIcAreaMm2 = 5.208e-5;    ///< per bank*layer
constexpr double bankAreaMm2PerReg = 1.709e-4;  ///< per register
constexpr double wagAreaMm2PerReg = 1.465e-5;   ///< per register
constexpr double fetchAreaMm2PerIlBit = 5.05e-5;
constexpr double decodeAreaMm2PerIlBit = 3.367e-5;
constexpr double ctrlPipeAreaMm2PerIlBit = 8.42e-6;
constexpr double memAreaMm2PerMb = 1.20;        ///< per 2^20 bytes SRAM

/** On-chip instruction memory capacity (bytes) of the small config. */
constexpr double imemBytes = 1.0 * 1024 * 1024;

} // namespace tech28
} // namespace dpu

#endif // DPU_MODEL_TECH28_HH
