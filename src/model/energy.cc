#include "model/energy.hh"

#include "arch/isa.hh"
#include "model/tech28.hh"
#include "support/logging.hh"

namespace dpu {

namespace t = tech28;

const char *
moduleName(Module m)
{
    switch (m) {
      case Module::Pes: return "PEs";
      case Module::PipelineRegs: return "Pipelining registers";
      case Module::InputInterconnect: return "Input interconnect";
      case Module::OutputInterconnect: return "Output interconnect";
      case Module::RegisterBanks: return "Register banks";
      case Module::WriteAddrGen: return "Wr addr generator";
      case Module::InstrFetch: return "Instr fetch";
      case Module::Decode: return "Decode";
      case Module::CtrlPipelineRegs: return "Ctrl pipelining regs";
      case Module::InstrMemory: return "Instruction memory";
      case Module::DataMemory: return "Data memory";
      case Module::Count: break;
    }
    return "?";
}

namespace {

double &
slot(AreaBreakdown &a, Module m)
{
    return a.byModule[static_cast<size_t>(m)];
}

double &
slot(EnergyBreakdown &e, Module m)
{
    return e.byModule[static_cast<size_t>(m)];
}

} // namespace

AreaBreakdown
areaOf(const ArchConfig &cfg, double instr_mem_bytes,
       double data_mem_bytes)
{
    cfg.check();
    if (instr_mem_bytes <= 0)
        instr_mem_bytes = t::imemBytes;
    if (data_mem_bytes <= 0)
        data_mem_bytes = double(cfg.dataMemRows) * cfg.banks * 4;

    IsaLayout lay(cfg);
    const double il = lay.maxLengthBits();
    const double regs = double(cfg.banks) * cfg.regsPerBank;

    AreaBreakdown a;
    slot(a, Module::Pes) = t::peAreaMm2 * cfg.numPes();
    slot(a, Module::PipelineRegs) = t::pipeRegAreaMm2 * cfg.numPes();
    slot(a, Module::InputInterconnect) =
        t::xbarAreaMm2PerB2 * cfg.banks * cfg.banks;
    slot(a, Module::OutputInterconnect) =
        t::outputIcAreaMm2 * cfg.banks * cfg.depth;
    slot(a, Module::RegisterBanks) = t::bankAreaMm2PerReg * regs;
    slot(a, Module::WriteAddrGen) = t::wagAreaMm2PerReg * regs;
    slot(a, Module::InstrFetch) = t::fetchAreaMm2PerIlBit * il;
    slot(a, Module::Decode) = t::decodeAreaMm2PerIlBit * il;
    slot(a, Module::CtrlPipelineRegs) = t::ctrlPipeAreaMm2PerIlBit * il;
    slot(a, Module::InstrMemory) =
        t::memAreaMm2PerMb * instr_mem_bytes / (1024.0 * 1024.0);
    slot(a, Module::DataMemory) =
        t::memAreaMm2PerMb * data_mem_bytes / (1024.0 * 1024.0);

    for (double v : a.byModule)
        a.total += v;
    return a;
}

double
EnergyBreakdown::seconds() const
{
    return double(cycles) / t::frequencyHz;
}

double
EnergyBreakdown::wallPowerWatts() const
{
    return totalPj * 1e-12 / seconds();
}

double
EnergyBreakdown::latencyPerOpNs() const
{
    dpu_assert(operations > 0, "no operations");
    return double(cycles) / double(operations) / (t::frequencyHz * 1e-9);
}

double
EnergyBreakdown::energyPerOpPj() const
{
    dpu_assert(operations > 0, "no operations");
    return totalPj / double(operations);
}

double
EnergyBreakdown::edpPjNs() const
{
    return energyPerOpPj() * latencyPerOpNs();
}

EnergyBreakdown
energyOf(const ArchConfig &cfg, const SimStats &s, uint64_t operations)
{
    cfg.check();
    IsaLayout lay(cfg);
    const double il = lay.maxLengthBits();
    const double il_scale = il / t::refIlBits;
    const double regs = double(cfg.banks) * cfg.regsPerBank;
    const double cycles = double(s.cycles);

    EnergyBreakdown e;
    e.cycles = s.cycles;
    e.operations = operations;

    slot(e, Module::Pes) = t::peOpPj * double(s.peOperations) +
                           t::pePassPj * double(s.pePassThroughs);
    slot(e, Module::PipelineRegs) =
        t::pipeClockPjPerPe * cfg.numPes() * cycles +
        t::pipeTogglePj *
            double(s.peOperations + s.pePassThroughs);
    slot(e, Module::InputInterconnect) =
        t::xbarWordPj * (cfg.banks / t::xbarRefBanks) *
        double(s.crossbarTransfers);
    slot(e, Module::OutputInterconnect) =
        t::outputWordPj * (cfg.depth / t::outputRefDepth) *
        double(s.bankWrites);
    slot(e, Module::RegisterBanks) =
        t::bankClockPjPerReg * regs * cycles +
        t::bankAccessPj *
            (t::bankAccessR0 +
             t::bankAccessR1 * cfg.regsPerBank / 32.0) *
            double(s.bankReads + s.bankWrites);
    slot(e, Module::WriteAddrGen) = t::wagPjPerReg * regs * cycles;
    slot(e, Module::InstrFetch) =
        t::fetchPjPerCycle * il_scale * cycles;
    slot(e, Module::Decode) =
        t::decodePjPerBit * double(s.instrBitsFetched);
    slot(e, Module::CtrlPipelineRegs) =
        t::ctrlPipePjPerCycle * il_scale * cycles;
    slot(e, Module::InstrMemory) =
        t::imemPjPerCycle * il_scale * cycles;
    slot(e, Module::DataMemory) =
        t::dmemRowPj * (cfg.banks / t::dmemRefBanks) *
        double(s.memReads + s.memWrites);

    for (double v : e.byModule)
        e.totalPj += v;
    return e;
}

} // namespace dpu
