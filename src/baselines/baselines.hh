/**
 * @file
 * Baseline platform models: CPU (GRAPHOPT-style multicore), GPU
 * (layer-wise kernels), DPU (the previous-generation ASIP of [46]),
 * and SPU (the CGRA of [11], estimated — as in the paper — from its
 * published speedup over its own CPU baseline).
 *
 * These are *calibrated performance models*, not cycle-accurate
 * simulators (DESIGN.md): each executes the real DAG's level
 * structure and charges documented per-event costs (cache-miss
 * dominated node cost, barrier synchronization, kernel launches,
 * uncoalesced memory traffic, scratchpad bank-conflict stalls) with
 * constants fitted to the absolute numbers the paper reports for each
 * platform. What the reproduction tests is the *relative* picture of
 * fig. 1(c), fig. 14 and Table III.
 */

#ifndef DPU_BASELINES_BASELINES_HH
#define DPU_BASELINES_BASELINES_HH

#include "dag/dag.hh"
#include "workloads/sparse_matrix.hh"

namespace dpu {

/** Outcome of one baseline run on one DAG. */
struct BaselineResult
{
    double seconds = 0;
    double throughputGops = 0;
    double powerWatts = 0;
};

/**
 * Multi-threaded CPU (Intel Xeon Gold 6154-class, 18 cores, 3 GHz)
 * running the GRAPHOPT [44] superlayer schedule: levels are merged
 * into superlayers of >= `superlayerNodes` operations, each executed
 * work-split across cores and closed by a barrier.
 */
struct CpuModelParams
{
    uint32_t cores = 18;
    double frequencyHz = 3e9;
    /** Per-node cost: issue + irregular-gather cache behaviour. */
    double cyclesPerNode = 65;
    /** Barrier + work-queue handoff per superlayer. */
    double syncCycles = 3000;
    uint32_t superlayerNodes = 2048;
    double powerWatts = 55;
};

BaselineResult runCpuModel(const Dag &dag,
                           const CpuModelParams &params = {});

/**
 * GPU (RTX 2080Ti-class) with the cuSPARSE-style layer-wise
 * parallelization [30]: one kernel per level; each kernel pays a
 * launch overhead plus uncoalesced memory traffic (only ~4 useful
 * bytes per 32-byte transaction, §I) and the arithmetic itself.
 */
struct GpuModelParams
{
    double launchSeconds = 2e-6;
    /** Effective bytes moved per node (uncoalesced gather). */
    double bytesPerNode = 128;
    double memBandwidth = 616e9;
    double computeOpsPerSecond = 2.0e12; ///< fp32 throughput ceiling.
    double powerWatts = 98;
};

BaselineResult runGpuModel(const Dag &dag,
                           const GpuModelParams &params = {});

/**
 * DPU [46], the prior-generation DAG processor: 64 asynchronous PEs
 * over a banked scratchpad at 300 MHz. 43% of loads hit bank
 * conflicts; aggressive prefetching hides most of it, leaving a
 * throughput plateau that degrades only for parallelism-starved DAGs.
 * Unlike DPU-v2 it has no in-datapath reuse, but also no register-
 * file capacity cliff — on spill-heavy DAGs it wins (fig. 14(a)
 * bnetflix/sieber behaviour).
 */
struct DpuV1ModelParams
{
    double frequencyHz = 300e6;
    /** Sustained ops/cycle on parallelism-rich DAGs. */
    double peakOpsPerCycle = 5.3;
    /** Parallelism (n/l) at which half the plateau is reached. */
    double parallelismKnee = 30;
    double powerWatts = 0.07;
};

BaselineResult runDpuV1Model(const Dag &dag,
                             const DpuV1ModelParams &params = {});

/**
 * The CPU baseline used by the SPU paper [11] (same machine class,
 * slightly less tuned schedule than GRAPHOPT: ~5% slower).
 */
BaselineResult runCpuSpuModel(const Dag &dag);

/**
 * SPU [11] estimate: the paper could not run SPU (not open source)
 * and scaled its CPU baseline by the speedup SPU reports (13.3x on
 * these workloads); this model does exactly the same.
 */
struct SpuModelParams
{
    double speedupOverCpuSpu = 13.3;
    double powerWatts = 16;
};

BaselineResult runSpuModel(const Dag &dag,
                           const SpuModelParams &params = {});

/**
 * The one *measured* baseline: level-scheduled forward substitution
 * actually executed on the host CPU over the same CSR inputs the DPU
 * DAG was lowered from. Rows are bucketed by dependency level; rows
 * within a level are independent and work-split across `threads`
 * (with a barrier per level, the cost structure GRAPHOPT [44] pays);
 * every right-hand side of the batch is solved per row visit so the
 * factorization traversal is shared across the batch.
 */
struct CpuSparseParams
{
    uint32_t threads = 1; ///< Host threads across rows of one level.
    uint32_t repeats = 3; ///< Timed repetitions; the best is reported.
};

struct CpuSparseResult
{
    double seconds = 0;        ///< Best wall time for the whole batch.
    double throughputGops = 0; ///< flops / seconds.
    uint64_t flops = 0;        ///< 2*(nnz-n)+n per solve, times batch.
    size_t levels = 0;         ///< == lower.dependencyDepth().
    /** One solution vector per right-hand side, submission order. */
    std::vector<std::vector<double>> solutions;
};

CpuSparseResult
runCpuSparseSolve(const SparseMatrixCsr &lower,
                  const std::vector<std::vector<double>> &rhsBatch,
                  const CpuSparseParams &params = {});

} // namespace dpu

#endif // DPU_BASELINES_BASELINES_HH
