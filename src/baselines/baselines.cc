#include "baselines/baselines.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "dag/algorithms.hh"
#include "support/logging.hh"
#include "support/parallel.hh"

namespace dpu {

namespace {

BaselineResult
finish(double seconds, size_t ops, double watts)
{
    BaselineResult r;
    r.seconds = seconds;
    r.throughputGops = static_cast<double>(ops) / seconds * 1e-9;
    r.powerWatts = watts;
    return r;
}

} // namespace

BaselineResult
runCpuModel(const Dag &dag, const CpuModelParams &p)
{
    auto by_level = nodesByLevel(dag);
    const size_t ops = dag.numOperations();

    // Merge consecutive levels into superlayers (GRAPHOPT builds
    // these with a constrained-optimization partitioner; node-count
    // thresholding reproduces its granularity).
    double cycles = 0;
    size_t acc_work = 0;
    size_t acc_levels = 0;
    auto close_superlayer = [&]() {
        if (acc_work == 0)
            return;
        // Work split across cores; the serial chain inside the
        // superlayer (one node per merged level) lower-bounds it.
        double parallel =
            std::ceil(static_cast<double>(acc_work) / p.cores);
        double chain = static_cast<double>(acc_levels);
        cycles += std::max(parallel, chain) * p.cyclesPerNode;
        cycles += p.syncCycles;
        acc_work = 0;
        acc_levels = 0;
    };
    for (size_t l = 1; l < by_level.size(); ++l) { // level 0 = inputs
        acc_work += by_level[l].size();
        acc_levels += 1;
        if (acc_work >= p.superlayerNodes)
            close_superlayer();
    }
    close_superlayer();
    return finish(cycles / p.frequencyHz, ops, p.powerWatts);
}

BaselineResult
runGpuModel(const Dag &dag, const GpuModelParams &p)
{
    auto by_level = nodesByLevel(dag);
    const size_t ops = dag.numOperations();

    double seconds = 0;
    for (size_t l = 1; l < by_level.size(); ++l) {
        double width = static_cast<double>(by_level[l].size());
        double traffic = width * p.bytesPerNode / p.memBandwidth;
        double compute = width / p.computeOpsPerSecond;
        seconds += p.launchSeconds + std::max(traffic, compute);
    }
    return finish(seconds, ops, p.powerWatts);
}

BaselineResult
runDpuV1Model(const Dag &dag, const DpuV1ModelParams &p)
{
    DagStats s = computeStats(dag);
    // Saturating utilization in the average parallelism n/l: DPU's 64
    // async PEs need enough simultaneously-ready nodes to hide the
    // conflict-induced scratchpad stalls behind prefetching.
    double util = s.parallelism / (s.parallelism + p.parallelismKnee);
    double ops_per_cycle = p.peakOpsPerCycle * util;
    double cycles = static_cast<double>(s.numOperations) / ops_per_cycle;
    return finish(cycles / p.frequencyHz, s.numOperations,
                  p.powerWatts);
}

BaselineResult
runCpuSpuModel(const Dag &dag)
{
    CpuModelParams p;
    // Same silicon, slightly less tuned schedule than GRAPHOPT
    // (Table III: 1.7 vs 1.8 GOPS on the large suite).
    p.cyclesPerNode = 68;
    p.powerWatts = 61;
    return runCpuModel(dag, p);
}

BaselineResult
runSpuModel(const Dag &dag, const SpuModelParams &p)
{
    BaselineResult cpu = runCpuSpuModel(dag);
    BaselineResult r;
    r.seconds = cpu.seconds / p.speedupOverCpuSpu;
    r.throughputGops = cpu.throughputGops * p.speedupOverCpuSpu;
    r.powerWatts = p.powerWatts;
    return r;
}

CpuSparseResult
runCpuSparseSolve(const SparseMatrixCsr &lower,
                  const std::vector<std::vector<double>> &rhsBatch,
                  const CpuSparseParams &p)
{
    dpu_assert(lower.isLowerTriangular(),
               "matrix is not lower triangular");
    dpu_assert(!rhsBatch.empty(), "empty rhs batch");
    const uint32_t n = lower.dim();
    for (const auto &rhs : rhsBatch)
        dpu_assert(rhs.size() == n, "rhs size mismatch");

    // Level schedule: row r goes to level 1 + max(level of its
    // off-diagonal dependencies). Rows within a level are independent.
    std::vector<uint32_t> level(n, 0);
    uint32_t maxLevel = 0;
    for (uint32_t r = 0; r < n; ++r) {
        uint32_t l = 0;
        for (size_t k = lower.rowBegin(r); k < lower.rowEnd(r); ++k) {
            uint32_t c = lower.colAt(k);
            if (c < r)
                l = std::max(l, level[c] + 1);
        }
        level[r] = l;
        maxLevel = std::max(maxLevel, l);
    }
    std::vector<std::vector<uint32_t>> rowsOfLevel(maxLevel + 1);
    for (uint32_t r = 0; r < n; ++r)
        rowsOfLevel[level[r]].push_back(r);

    const size_t batch = rhsBatch.size();
    std::vector<std::vector<double>> xs(batch,
                                        std::vector<double>(n, 0.0));
    auto solveOnce = [&]() {
        for (const auto &rows : rowsOfLevel) {
            // One barrier per level — the synchronization cost
            // level-scheduled CPU SpTRSV actually pays.
            parallelFor(rows.size(), p.threads, [&](size_t i) {
                uint32_t r = rows[i];
                double diag = 0.0;
                size_t begin = lower.rowBegin(r), end = lower.rowEnd(r);
                for (size_t b = 0; b < batch; ++b) {
                    double acc = rhsBatch[b][r];
                    std::vector<double> &x = xs[b];
                    for (size_t k = begin; k < end; ++k) {
                        uint32_t c = lower.colAt(k);
                        if (c == r)
                            diag = lower.valueAt(k);
                        else
                            acc -= lower.valueAt(k) * x[c];
                    }
                    dpu_assert(diag != 0.0,
                               "singular triangular matrix");
                    x[r] = acc / diag;
                }
            });
        }
    };

    CpuSparseResult result;
    result.levels = static_cast<size_t>(maxLevel) + 1;
    result.flops =
        (2 * (static_cast<uint64_t>(lower.nnz()) - n) + n) * batch;

    solveOnce(); // warm caches; also produces the solutions
    result.solutions = xs;
    double best = std::numeric_limits<double>::infinity();
    uint32_t repeats = std::max<uint32_t>(1, p.repeats);
    for (uint32_t rep = 0; rep < repeats; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        solveOnce();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    result.seconds = best;
    result.throughputGops =
        static_cast<double>(result.flops) / best * 1e-9;
    return result;
}

} // namespace dpu
