#include "baselines/baselines.hh"

#include <algorithm>
#include <cmath>

#include "dag/algorithms.hh"
#include "support/logging.hh"

namespace dpu {

namespace {

BaselineResult
finish(double seconds, size_t ops, double watts)
{
    BaselineResult r;
    r.seconds = seconds;
    r.throughputGops = static_cast<double>(ops) / seconds * 1e-9;
    r.powerWatts = watts;
    return r;
}

} // namespace

BaselineResult
runCpuModel(const Dag &dag, const CpuModelParams &p)
{
    auto by_level = nodesByLevel(dag);
    const size_t ops = dag.numOperations();

    // Merge consecutive levels into superlayers (GRAPHOPT builds
    // these with a constrained-optimization partitioner; node-count
    // thresholding reproduces its granularity).
    double cycles = 0;
    size_t acc_work = 0;
    size_t acc_levels = 0;
    auto close_superlayer = [&]() {
        if (acc_work == 0)
            return;
        // Work split across cores; the serial chain inside the
        // superlayer (one node per merged level) lower-bounds it.
        double parallel =
            std::ceil(static_cast<double>(acc_work) / p.cores);
        double chain = static_cast<double>(acc_levels);
        cycles += std::max(parallel, chain) * p.cyclesPerNode;
        cycles += p.syncCycles;
        acc_work = 0;
        acc_levels = 0;
    };
    for (size_t l = 1; l < by_level.size(); ++l) { // level 0 = inputs
        acc_work += by_level[l].size();
        acc_levels += 1;
        if (acc_work >= p.superlayerNodes)
            close_superlayer();
    }
    close_superlayer();
    return finish(cycles / p.frequencyHz, ops, p.powerWatts);
}

BaselineResult
runGpuModel(const Dag &dag, const GpuModelParams &p)
{
    auto by_level = nodesByLevel(dag);
    const size_t ops = dag.numOperations();

    double seconds = 0;
    for (size_t l = 1; l < by_level.size(); ++l) {
        double width = static_cast<double>(by_level[l].size());
        double traffic = width * p.bytesPerNode / p.memBandwidth;
        double compute = width / p.computeOpsPerSecond;
        seconds += p.launchSeconds + std::max(traffic, compute);
    }
    return finish(seconds, ops, p.powerWatts);
}

BaselineResult
runDpuV1Model(const Dag &dag, const DpuV1ModelParams &p)
{
    DagStats s = computeStats(dag);
    // Saturating utilization in the average parallelism n/l: DPU's 64
    // async PEs need enough simultaneously-ready nodes to hide the
    // conflict-induced scratchpad stalls behind prefetching.
    double util = s.parallelism / (s.parallelism + p.parallelismKnee);
    double ops_per_cycle = p.peakOpsPerCycle * util;
    double cycles = static_cast<double>(s.numOperations) / ops_per_cycle;
    return finish(cycles / p.frequencyHz, s.numOperations,
                  p.powerWatts);
}

BaselineResult
runCpuSpuModel(const Dag &dag)
{
    CpuModelParams p;
    // Same silicon, slightly less tuned schedule than GRAPHOPT
    // (Table III: 1.7 vs 1.8 GOPS on the large suite).
    p.cyclesPerNode = 68;
    p.powerWatts = 61;
    return runCpuModel(dag, p);
}

BaselineResult
runSpuModel(const Dag &dag, const SpuModelParams &p)
{
    BaselineResult cpu = runCpuSpuModel(dag);
    BaselineResult r;
    r.seconds = cpu.seconds / p.speedupOverCpuSpu;
    r.throughputGops = cpu.throughputGops * p.speedupOverCpuSpu;
    r.powerWatts = p.powerWatts;
    return r;
}

} // namespace dpu
