#include "workloads/suite.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "dag/algorithms.hh"
#include "support/logging.hh"
#include "workloads/pc_generator.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"

namespace dpu {

const char *
workloadClassName(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::Pc: return "PC";
      case WorkloadClass::SpTrsv: return "SpTRSV";
      case WorkloadClass::LargePc: return "Large PC";
    }
    return "?";
}

const std::vector<WorkloadSpec> &
pcSuite()
{
    static const std::vector<WorkloadSpec> suite = {
        {"tretail", WorkloadClass::Pc, 9000, 49, 0, 101},
        {"mnist", WorkloadClass::Pc, 10000, 26, 0, 102},
        {"nltcs", WorkloadClass::Pc, 14000, 27, 0, 103},
        {"msnbc", WorkloadClass::Pc, 48000, 28, 0, 104},
        {"msweb", WorkloadClass::Pc, 51000, 73, 0, 105},
        {"bnetflix", WorkloadClass::Pc, 55000, 53, 0, 106},
    };
    return suite;
}

const std::vector<WorkloadSpec> &
sptrsvSuite()
{
    static const std::vector<WorkloadSpec> suite = {
        {"bp_200", WorkloadClass::SpTrsv, 8000, 139, 822, 201},
        {"west2021", WorkloadClass::SpTrsv, 10000, 136, 2021, 202},
        {"sieber", WorkloadClass::SpTrsv, 23000, 242, 2290, 203},
        {"jagmesh4", WorkloadClass::SpTrsv, 44000, 215, 4096, 204},
        {"rdb968", WorkloadClass::SpTrsv, 51000, 278, 3096, 205},
        {"dw2048", WorkloadClass::SpTrsv, 79000, 929, 8192, 206},
    };
    return suite;
}

const std::vector<WorkloadSpec> &
largePcSuite()
{
    static const std::vector<WorkloadSpec> suite = {
        {"pigs", WorkloadClass::LargePc, 600000, 90, 0, 301},
        {"andes", WorkloadClass::LargePc, 700000, 84, 0, 302},
        {"munin", WorkloadClass::LargePc, 3100000, 337, 0, 303},
        {"mildew", WorkloadClass::LargePc, 3300000, 176, 0, 304},
    };
    return suite;
}

std::vector<WorkloadSpec>
smallSuite()
{
    std::vector<WorkloadSpec> all = pcSuite();
    const auto &b = sptrsvSuite();
    all.insert(all.end(), b.begin(), b.end());
    return all;
}

namespace {

/** Build a PC twin: exact node count and exact longest path. */
Dag
buildPcTwin(const WorkloadSpec &spec, double scale)
{
    PcParams p;
    p.targetOperations = std::max<size_t>(
        spec.paperLongestPath,
        static_cast<size_t>(static_cast<double>(spec.paperNodes) * scale));
    p.depth = spec.paperLongestPath;
    p.seed = spec.seed;
    return generatePc(p);
}

/**
 * Build a SpTRSV twin with a short calibration loop: the generated
 * operation count scales with avgOffDiagonal and the DAG's longest
 * path with depthLevels, but neither relationship is exactly linear
 * (reduction trees add log-factors), so measure and correct twice.
 */
Dag
buildSptrsvTwin(const WorkloadSpec &spec, double scale)
{
    size_t target_ops = std::max<size_t>(
        64, static_cast<size_t>(static_cast<double>(spec.paperNodes) *
                                scale));
    size_t target_path = spec.paperLongestPath;

    LowerTriangularParams p;
    p.dim = std::max<uint32_t>(
        64, static_cast<uint32_t>(static_cast<double>(spec.matrixDim) *
                                  std::sqrt(scale)));
    p.seed = spec.seed;
    // Initial guesses: ~2 ops per off-diagonal nonzero; ~3 DAG levels
    // per row-dependency level (mul + balanced add tree).
    p.avgOffDiagonal = std::max(
        1.2, static_cast<double>(target_ops) / (2.0 * p.dim));
    p.depthLevels = std::max<uint32_t>(
        1, static_cast<uint32_t>(target_path / 3));
    p.depthLevels = std::min(p.depthLevels, p.dim);

    Dag dag;
    for (int iter = 0; iter < 3; ++iter) {
        SparseMatrixCsr m = makeLowerTriangular(p);
        dag = buildSpTrsvDag(m).dag;
        DagStats s = computeStats(dag);
        double op_err = static_cast<double>(s.numOperations) /
                        static_cast<double>(target_ops);
        double path_err = static_cast<double>(s.longestPath) /
                          static_cast<double>(target_path);
        if (op_err > 0.95 && op_err < 1.05 && path_err > 0.93 &&
            path_err < 1.07) {
            break;
        }
        p.avgOffDiagonal = std::max(1.2, p.avgOffDiagonal / op_err);
        p.depthLevels = std::max<uint32_t>(
            1, static_cast<uint32_t>(
                   std::lround(p.depthLevels / path_err)));
        p.depthLevels = std::min(p.depthLevels, p.dim);
    }
    return dag;
}

} // namespace

SparseMatrixCsr
loadWorkloadMatrix(const WorkloadSpec &spec)
{
    dpu_assert(!spec.matrixPath.empty(),
               "not a file-backed workload: " + spec.name);
    return lowerTriangularFrom(readMatrixMarketFile(spec.matrixPath));
}

WorkloadSpec
matrixWorkload(const std::string &mtxPath)
{
    WorkloadSpec spec;
    spec.name = std::filesystem::path(mtxPath).stem().string();
    spec.cls = WorkloadClass::SpTrsv;
    spec.seed = 0;
    spec.matrixPath = mtxPath;

    SparseMatrixCsr lower = loadWorkloadMatrix(spec);
    spec.matrixDim = lower.dim();
    DagStats s = computeStats(buildSpTrsvDag(lower).dag);
    spec.paperNodes = s.numOperations;
    spec.paperLongestPath = s.longestPath;
    return spec;
}

std::vector<std::string>
discoverMatrixFiles(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> found;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".mtx")
            found.push_back(entry.path().string());
    }
    std::sort(found.begin(), found.end());
    return found;
}

Dag
buildWorkloadDag(const WorkloadSpec &spec, double scale)
{
    dpu_assert(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    if (!spec.matrixPath.empty()) {
        // File-backed: the real matrix is the workload; scale would
        // change the structure being measured, so it is ignored.
        dpu_assert(spec.cls == WorkloadClass::SpTrsv,
                   "file-backed workloads are SpTRSV");
        return buildSpTrsvDag(loadWorkloadMatrix(spec)).dag;
    }
    switch (spec.cls) {
      case WorkloadClass::Pc:
      case WorkloadClass::LargePc:
        return buildPcTwin(spec, scale);
      case WorkloadClass::SpTrsv:
        return buildSptrsvTwin(spec, scale);
    }
    dpu_panic("unknown workload class");
}

CompiledProgram
compileWorkload(const WorkloadSpec &spec, double scale,
                const ArchConfig &cfg, const CompileOptions &options,
                ProgramCache *cache, Dag *out_dag)
{
    Dag dag = buildWorkloadDag(spec, scale);
    CompiledProgram prog = cache ? cache->compile(dag, cfg, options)
                                 : compile(dag, cfg, options);
    if (out_dag)
        *out_dag = std::move(dag);
    return prog;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto *suite : {&pcSuite(), &sptrsvSuite(), &largePcSuite()})
        for (const auto &spec : *suite)
            if (spec.name == name)
                return spec;
    dpu_fatal("unknown workload '" + name + "'");
}

} // namespace dpu
