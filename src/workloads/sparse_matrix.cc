#include "workloads/sparse_matrix.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace dpu {

SparseMatrixCsr
SparseMatrixCsr::fromTriplets(uint32_t dim, std::vector<Triplet> triplets)
{
    for (const Triplet &t : triplets)
        dpu_assert(t.row < dim && t.col < dim, "triplet out of range");
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    SparseMatrixCsr m;
    m.n = dim;
    m.rowPtr.assign(1, 0);
    uint32_t cur_row = 0;
    for (size_t i = 0; i < triplets.size(); ++i) {
        // Merge duplicates by summation.
        double v = triplets[i].value;
        while (i + 1 < triplets.size() &&
               triplets[i + 1].row == triplets[i].row &&
               triplets[i + 1].col == triplets[i].col) {
            v += triplets[i + 1].value;
            ++i;
        }
        while (cur_row < triplets[i].row) {
            m.rowPtr.push_back(m.cols.size());
            ++cur_row;
        }
        m.cols.push_back(triplets[i].col);
        m.vals.push_back(v);
    }
    while (cur_row < dim) {
        m.rowPtr.push_back(m.cols.size());
        ++cur_row;
    }
    return m;
}

bool
SparseMatrixCsr::isLowerTriangular() const
{
    for (uint32_t r = 0; r < n; ++r)
        for (size_t k = rowBegin(r); k < rowEnd(r); ++k)
            if (cols[k] > r)
                return false;
    return true;
}

double
SparseMatrixCsr::at(uint32_t r, uint32_t c) const
{
    dpu_assert(r < n && c < n, "index out of range");
    for (size_t k = rowBegin(r); k < rowEnd(r); ++k)
        if (cols[k] == c)
            return vals[k];
    return 0.0;
}

size_t
SparseMatrixCsr::dependencyDepth() const
{
    std::vector<size_t> depth(n, 1);
    size_t best = n ? 1 : 0;
    for (uint32_t r = 0; r < n; ++r) {
        for (size_t k = rowBegin(r); k < rowEnd(r); ++k) {
            uint32_t c = cols[k];
            if (c < r)
                depth[r] = std::max(depth[r], depth[c] + 1);
        }
        best = std::max(best, depth[r]);
    }
    return best;
}

SparseMatrixCsr
makeLowerTriangular(const LowerTriangularParams &params)
{
    dpu_assert(params.dim >= params.depthLevels,
               "dim must be >= depthLevels");
    dpu_assert(params.depthLevels >= 1, "need at least one level");
    Rng rng(params.seed);

    const uint32_t n = params.dim;
    const uint32_t levels = params.depthLevels;

    // Assign each row a level; rows of level 0 have no off-diagonal
    // entries. Level k rows get one "chain" dependency on a level k-1
    // row plus random dependencies on rows of strictly lower level.
    // Keep level populations roughly equal.
    std::vector<uint32_t> level_of(n);
    for (uint32_t r = 0; r < n; ++r)
        level_of[r] = static_cast<uint32_t>(
            (static_cast<uint64_t>(r) * levels) / n);

    std::vector<std::vector<uint32_t>> rows_of_level(levels);
    for (uint32_t r = 0; r < n; ++r)
        rows_of_level[level_of[r]].push_back(r);
    for (uint32_t l = 0; l < levels; ++l)
        dpu_assert(!rows_of_level[l].empty(), "empty level");

    auto nonzero_value = [&]() {
        // Away from zero to keep substitution well-conditioned.
        double mag = 0.25 + rng.uniform();
        return rng.chance(0.5) ? mag : -mag;
    };

    std::vector<Triplet> trips;
    for (uint32_t r = 0; r < n; ++r) {
        uint32_t lvl = level_of[r];
        trips.push_back({r, r, 1.0 + rng.uniform()}); // diagonal
        if (lvl == 0)
            continue;
        // Chain dependency: pick a row from the level right below and
        // below r in index (levels are monotone in row index, so any
        // level lvl-1 row has a smaller index).
        uint32_t chain = rng.pick(rows_of_level[lvl - 1]);
        trips.push_back({r, chain, nonzero_value()});
        // Random extra dependencies on strictly earlier rows of
        // strictly lower levels. Real sparse matrices (FEM meshes,
        // Markov chains, ...) are strongly banded: most nonzeros sit
        // near the diagonal. Model that with a geometric recency
        // bias plus a small uniform long-range tail.
        double extra = params.avgOffDiagonal - 1.0;
        uint32_t count = static_cast<uint32_t>(extra);
        if (rng.uniform() < extra - count)
            ++count;
        for (uint32_t e = 0; e < count; ++e) {
            uint32_t src_lvl;
            if (rng.chance(0.9)) {
                uint32_t back = 1;
                while (back < lvl && rng.chance(0.5))
                    ++back;
                src_lvl = lvl - back;
            } else {
                src_lvl = static_cast<uint32_t>(rng.below(lvl));
            }
            uint32_t lo = rng.pick(rows_of_level[src_lvl]);
            if (lo != chain)
                trips.push_back({r, lo, nonzero_value()});
        }
    }
    return SparseMatrixCsr::fromTriplets(n, std::move(trips));
}

void
writeMatrixMarket(const SparseMatrixCsr &m, std::ostream &out)
{
    out.precision(17); // round-trippable doubles
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.dim() << " " << m.dim() << " " << m.nnz() << "\n";
    for (uint32_t r = 0; r < m.dim(); ++r)
        for (size_t k = m.rowBegin(r); k < m.rowEnd(r); ++k)
            out << (r + 1) << " " << (m.colAt(k) + 1) << " "
                << m.valueAt(k) << "\n";
}

namespace {

/** Banner symmetry classes this loader accepts. */
enum class MmSymmetry { General, Symmetric, SkewSymmetric };

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

bool
isBlank(const std::string &line)
{
    return std::all_of(line.begin(), line.end(), [](unsigned char c) {
        return std::isspace(c) != 0;
    });
}

} // namespace

SparseMatrixCsr
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0)
        dpu_fatal("missing MatrixMarket header");

    // The banner has exactly five whitespace-separated fields:
    //   %%MatrixMarket object format field symmetry
    // Tokenize them rather than substring-matching the whole line —
    // "symmetric" is a substring of "skew-symmetric" and "real" of
    // "realignment matrix" comment text, so find() misclassifies.
    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    if (!(banner >> tag >> object >> format >> field >> symmetry))
        dpu_fatal("malformed MatrixMarket banner (want five fields: "
                  "%%MatrixMarket matrix coordinate <field> <symmetry>)");
    object = lowered(object);
    format = lowered(format);
    field = lowered(field);
    symmetry = lowered(symmetry);
    if (object != "matrix")
        dpu_fatal("unsupported MatrixMarket object '" + object +
                  "' (only 'matrix')");
    if (format != "coordinate")
        dpu_fatal("unsupported MatrixMarket format '" + format +
                  "' (only sparse 'coordinate')");
    if (field == "complex")
        dpu_fatal("complex MatrixMarket field is not supported "
                  "(real-valued solves only)");
    if (field == "pattern")
        dpu_fatal("pattern MatrixMarket field has no values; "
                  "numeric 'real' or 'integer' required");
    if (field != "real" && field != "integer")
        dpu_fatal("unsupported MatrixMarket field '" + field +
                  "' (only 'real' or 'integer')");
    MmSymmetry sym = MmSymmetry::General;
    if (symmetry == "symmetric")
        sym = MmSymmetry::Symmetric;
    else if (symmetry == "skew-symmetric")
        sym = MmSymmetry::SkewSymmetric;
    else if (symmetry == "hermitian")
        dpu_fatal("hermitian MatrixMarket symmetry is complex-valued "
                  "and not supported");
    else if (symmetry != "general")
        dpu_fatal("unsupported MatrixMarket symmetry '" + symmetry + "'");

    // Skip comments and blank lines. Real SuiteSparse files separate
    // the comment block from the size line with blank lines.
    do {
        if (!std::getline(in, line))
            dpu_fatal("truncated MatrixMarket stream (no size line)");
    } while (isBlank(line) || line[0] == '%');

    std::istringstream hs(line);
    uint64_t rows = 0, cols = 0, entries = 0;
    if (!(hs >> rows >> cols >> entries))
        dpu_fatal("bad MatrixMarket size line");
    if (rows != cols)
        dpu_fatal("non-square MatrixMarket matrix (" +
                  std::to_string(rows) + "x" + std::to_string(cols) +
                  "); square matrices only");
    if (rows > std::numeric_limits<uint32_t>::max())
        dpu_fatal("MatrixMarket dimension " + std::to_string(rows) +
                  " exceeds the uint32 row-index range");
    // rows, cols <= 2^32 - 1, so the product cannot overflow uint64.
    if (entries > rows * cols)
        dpu_fatal("MatrixMarket size line claims " +
                  std::to_string(entries) + " entries for a " +
                  std::to_string(rows) + "x" + std::to_string(cols) +
                  " matrix");

    std::vector<Triplet> trips;
    // The header is still untrusted until the entries actually parse;
    // cap the up-front allocation and let growth handle honest files.
    constexpr uint64_t kReserveCap = 1u << 20;
    trips.reserve(static_cast<size_t>(
        std::min<uint64_t>(sym == MmSymmetry::General ? entries : 2 * entries,
                           kReserveCap)));
    for (uint64_t i = 0; i < entries; ++i) {
        uint64_t r = 0, c = 0;
        double v = 0;
        if (!(in >> r >> c >> v))
            dpu_fatal("truncated MatrixMarket entries (entry " +
                      std::to_string(i + 1) + " of " +
                      std::to_string(entries) + ")");
        if (r < 1 || r > rows || c < 1 || c > cols)
            dpu_fatal("MatrixMarket index out of range");
        trips.push_back({static_cast<uint32_t>(r - 1),
                         static_cast<uint32_t>(c - 1), v});
        if (sym != MmSymmetry::General && r != c) {
            // Symmetric stores one triangle; mirror the other. A
            // skew-symmetric matrix satisfies A(j,i) = -A(i,j).
            double mirror = sym == MmSymmetry::SkewSymmetric ? -v : v;
            trips.push_back({static_cast<uint32_t>(c - 1),
                             static_cast<uint32_t>(r - 1), mirror});
        } else if (sym == MmSymmetry::SkewSymmetric && r == c && v != 0.0) {
            dpu_fatal("skew-symmetric MatrixMarket file has a nonzero "
                      "diagonal entry at row " + std::to_string(r));
        }
    }
    return SparseMatrixCsr::fromTriplets(static_cast<uint32_t>(rows),
                                         std::move(trips));
}

SparseMatrixCsr
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        dpu_fatal("cannot open MatrixMarket file: " + path);
    return readMatrixMarket(in);
}

SparseMatrixCsr
lowerTriangularFrom(const SparseMatrixCsr &m)
{
    std::vector<Triplet> trips;
    trips.reserve(m.nnz() / 2 + m.dim());
    for (uint32_t r = 0; r < m.dim(); ++r) {
        double diag = 0.0;
        for (size_t k = m.rowBegin(r); k < m.rowEnd(r); ++k) {
            uint32_t c = m.colAt(k);
            if (c < r)
                trips.push_back({r, c, m.valueAt(k)});
            else if (c == r)
                diag = m.valueAt(k);
        }
        // Unit diagonal where the source is missing or zero keeps the
        // system nonsingular for any input matrix.
        trips.push_back({r, r, diag != 0.0 ? diag : 1.0});
    }
    return SparseMatrixCsr::fromTriplets(m.dim(), std::move(trips));
}

std::vector<double>
solveLowerTriangular(const SparseMatrixCsr &lower,
                     const std::vector<double> &rhs)
{
    dpu_assert(lower.isLowerTriangular(), "matrix is not lower triangular");
    dpu_assert(rhs.size() == lower.dim(), "rhs size mismatch");
    std::vector<double> x(lower.dim(), 0.0);
    for (uint32_t r = 0; r < lower.dim(); ++r) {
        double acc = rhs[r];
        double diag = 0.0;
        for (size_t k = lower.rowBegin(r); k < lower.rowEnd(r); ++k) {
            uint32_t c = lower.colAt(k);
            if (c == r)
                diag = lower.valueAt(k);
            else
                acc -= lower.valueAt(k) * x[c];
        }
        dpu_assert(diag != 0.0, "singular triangular matrix");
        x[r] = acc / diag;
    }
    return x;
}

} // namespace dpu
