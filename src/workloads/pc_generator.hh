/**
 * @file
 * Synthetic probabilistic-circuit (sum-product network) generator.
 *
 * Real PCs (PSDDs learned from density-estimation benchmarks) are
 * layered DAGs of alternating sum and product nodes over a pool of
 * leaf inputs, with seemingly-random cross-layer edges. The generator
 * produces binary DAGs with a target operation count and a target
 * longest path, which are the two structural properties Table I
 * characterizes and the only ones the compiler/hardware depend on.
 */

#ifndef DPU_WORKLOADS_PC_GENERATOR_HH
#define DPU_WORKLOADS_PC_GENERATOR_HH

#include <cstdint>

#include "dag/dag.hh"

namespace dpu {

/** Parameters of the synthetic PC. */
struct PcParams
{
    size_t targetOperations = 10000; ///< Compute nodes to generate.
    size_t depth = 32;               ///< Longest path (layers).
    size_t numInputs = 0; ///< 0 => max(8, targetOperations / 8): tiny
                          ///  circuits keep a sane leaf pool.
    double crossLayerFraction = 0.35;///< P(2nd operand is long-range).
    uint64_t seed = 1;
};

/**
 * Generate a synthetic PC.
 *
 * Guarantees: the result is binary, has exactly `targetOperations`
 * compute nodes (as long as depth <= targetOperations), alternates
 * Add (sum) and Mul (product) layers, and has longest path exactly
 * `depth` (every node has one operand in the layer directly below).
 */
Dag generatePc(const PcParams &params);

/**
 * Fully random binary DAG for property-based compiler tests: no layer
 * discipline, arbitrary skew, mixed fanout — deliberately nastier than
 * the structured workloads.
 */
Dag generateRandomDag(size_t num_inputs, size_t num_operations,
                      uint64_t seed);

} // namespace dpu

#endif // DPU_WORKLOADS_PC_GENERATOR_HH
