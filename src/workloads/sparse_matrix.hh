/**
 * @file
 * Sparse-matrix substrate: CSR storage, generators, Matrix Market I/O,
 * and a reference forward-substitution solver.
 *
 * The paper benchmarks SpTRSV on SuiteSparse matrices; those files are
 * not redistributable here, so generators produce structural twins with
 * the same dimensions/nnz/dependency-depth profile (see DESIGN.md).
 */

#ifndef DPU_WORKLOADS_SPARSE_MATRIX_HH
#define DPU_WORKLOADS_SPARSE_MATRIX_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/rng.hh"

namespace dpu {

/** One (row, col, value) entry. */
struct Triplet
{
    uint32_t row;
    uint32_t col;
    double value;
};

/** Compressed-sparse-row matrix (square, general or triangular). */
class SparseMatrixCsr
{
  public:
    SparseMatrixCsr() = default;

    /** Build from triplets; duplicates are summed. */
    static SparseMatrixCsr fromTriplets(uint32_t dim,
                                        std::vector<Triplet> triplets);

    uint32_t dim() const { return n; }
    size_t nnz() const { return cols.size(); }

    /** Row r spans [rowBegin(r), rowEnd(r)) in cols()/values(). */
    size_t rowBegin(uint32_t r) const { return rowPtr[r]; }
    size_t rowEnd(uint32_t r) const { return rowPtr[r + 1]; }

    uint32_t colAt(size_t k) const { return cols[k]; }
    double valueAt(size_t k) const { return vals[k]; }

    /** True if all entries satisfy col <= row. */
    bool isLowerTriangular() const;

    /** Value at (r, c), 0 if absent. Linear in the row length. */
    double at(uint32_t r, uint32_t c) const;

    /**
     * Dependency depth of the lower-triangular system: length of the
     * longest chain of rows i1 < i2 < ... where each i(k+1) has a
     * nonzero in column i(k). This is what bounds SpTRSV parallelism.
     */
    size_t dependencyDepth() const;

  private:
    uint32_t n = 0;
    std::vector<size_t> rowPtr{0};
    std::vector<uint32_t> cols;
    std::vector<double> vals;
};

/** Parameters for the synthetic lower-triangular generator. */
struct LowerTriangularParams
{
    uint32_t dim = 1024;        ///< Matrix dimension.
    uint32_t depthLevels = 64;  ///< Target row-dependency depth.
    double avgOffDiagonal = 4;  ///< Mean off-diagonal nonzeros per row.
    uint64_t seed = 1;
};

/**
 * Generate a nonsingular sparse lower-triangular matrix whose
 * row-dependency graph has depth exactly `depthLevels` (rows are
 * assigned levels; each row depends on at least one row of the level
 * below plus random rows of lower levels). Diagonal entries are drawn
 * away from zero so forward substitution is well-conditioned.
 */
SparseMatrixCsr makeLowerTriangular(const LowerTriangularParams &params);

/** Write in MatrixMarket coordinate format ("%%MatrixMarket ..."). */
void writeMatrixMarket(const SparseMatrixCsr &m, std::ostream &out);

/**
 * Read MatrixMarket coordinate format. Accepts `real`/`integer` fields
 * with `general`, `symmetric` (mirrored with +v), or `skew-symmetric`
 * (mirrored with -v) symmetry; `complex`/`hermitian`/`pattern` banners
 * are rejected with explicit messages. Blank lines between the comment
 * block and the size line are allowed, dimensions must fit uint32, and
 * the declared entry count is validated against rows*cols before any
 * allocation trusts it.
 */
SparseMatrixCsr readMatrixMarket(std::istream &in);

/** readMatrixMarket over a file path; fatals if the file cannot open. */
SparseMatrixCsr readMatrixMarketFile(const std::string &path);

/**
 * Extract a nonsingular lower-triangular SpTRSV instance from any
 * square matrix: keep entries with col <= row and substitute a unit
 * diagonal wherever the source diagonal is missing or zero. This is
 * how arbitrary real `.mtx` files become solvable workloads.
 */
SparseMatrixCsr lowerTriangularFrom(const SparseMatrixCsr &m);

/**
 * Reference forward substitution: solve L x = b for lower-triangular L.
 * Golden model for the SpTRSV DAG lowering.
 */
std::vector<double> solveLowerTriangular(const SparseMatrixCsr &lower,
                                         const std::vector<double> &rhs);

} // namespace dpu

#endif // DPU_WORKLOADS_SPARSE_MATRIX_HH
