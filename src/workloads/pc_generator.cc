#include "workloads/pc_generator.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace dpu {

Dag
generatePc(const PcParams &params)
{
    dpu_assert(params.depth >= 1, "PC needs at least one layer");
    dpu_assert(params.targetOperations >= params.depth,
               "need at least one node per layer");

    Rng rng(params.seed);
    Dag dag;

    const size_t n = params.targetOperations;
    const size_t depth = params.depth;
    const size_t num_inputs =
        params.numInputs ? params.numInputs : std::max<size_t>(8, n / 8);

    std::vector<NodeId> inputs;
    inputs.reserve(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i)
        inputs.push_back(dag.addInput());

    // Layer widths: flat through most of the circuit, tapering
    // geometrically over the last few layers toward a narrow top the
    // way learned circuits funnel into the root. Then fix up rounding
    // so widths sum to exactly n.
    std::vector<size_t> width(depth, 0);
    {
        std::vector<double> weight(depth, 1.0);
        size_t taper = std::min<size_t>(depth, 6);
        for (size_t k = 0; k < taper; ++k)
            weight[depth - 1 - k] = std::pow(0.5, taper - k);
        double total = 0;
        for (double w : weight)
            total += w;
        size_t assigned = 0;
        for (size_t k = 0; k < depth; ++k) {
            width[k] = std::max<size_t>(
                1, static_cast<size_t>(weight[k] / total *
                                       static_cast<double>(n)));
            assigned += width[k];
        }
        // Distribute the rounding slack over the widest layers.
        while (assigned < n) {
            size_t k = rng.below(depth);
            ++width[k];
            ++assigned;
        }
        while (assigned > n) {
            size_t k = rng.below(depth);
            if (width[k] > 1) {
                --width[k];
                --assigned;
            }
        }
    }

    // prev = nodes of the previous layer; consumed[i] marks which of
    // them already feed someone (used to avoid spurious sinks).
    std::vector<NodeId> prev = inputs;
    std::vector<NodeId> older; // all nodes below the previous layer
    std::vector<size_t> unconsumed; // indices into prev

    for (size_t layer = 0; layer < depth; ++layer) {
        OpType op = (layer % 2 == 0) ? OpType::Mul : OpType::Add;
        std::vector<NodeId> cur;
        cur.reserve(width[layer]);

        unconsumed.resize(prev.size());
        for (size_t i = 0; i < prev.size(); ++i)
            unconsumed[i] = i;
        rng.shuffle(unconsumed);

        for (size_t j = 0; j < width[layer]; ++j) {
            // First operand: from the layer directly below, preferring
            // a not-yet-consumed node (keeps the sink count low and
            // guarantees the node's ASAP level equals layer + 1).
            NodeId a;
            if (!unconsumed.empty()) {
                a = prev[unconsumed.back()];
                unconsumed.pop_back();
            } else {
                a = rng.pick(prev);
            }
            // Second operand: long-range with some probability — this
            // is what makes the DAG irregular. Like learned circuits,
            // cross edges are recency-biased (a geometric window over
            // recently created nodes) with a thin uniform tail.
            NodeId b;
            bool long_range = !older.empty() &&
                rng.chance(params.crossLayerFraction);
            if (long_range) {
                if (rng.chance(0.9)) {
                    size_t window = std::min<size_t>(
                        older.size(),
                        64 + rng.below(1 + older.size() / 8));
                    b = older[older.size() - 1 - rng.below(window)];
                } else {
                    b = rng.pick(older);
                }
            } else if (!unconsumed.empty() && rng.chance(0.5)) {
                b = prev[unconsumed.back()];
                unconsumed.pop_back();
            } else {
                b = rng.pick(prev);
            }
            if (a == b)
                b = rng.pick(prev); // avoid squaring when possible
            cur.push_back(dag.addNode(op, {a, b}));
        }
        older.insert(older.end(), prev.begin(), prev.end());
        prev = std::move(cur);
    }

    dpu_assert(dag.numOperations() == n, "generator width accounting bug");
    return dag;
}

Dag
generateRandomDag(size_t num_inputs, size_t num_operations, uint64_t seed)
{
    dpu_assert(num_inputs >= 1, "need at least one input");
    Rng rng(seed);
    Dag dag;
    for (size_t i = 0; i < num_inputs; ++i)
        dag.addInput();

    for (size_t i = 0; i < num_operations; ++i) {
        NodeId hi = static_cast<NodeId>(dag.numNodes());
        // Bias operand choice toward recent nodes to create depth, but
        // keep a uniform component for long-range irregularity.
        auto pick = [&]() -> NodeId {
            if (rng.chance(0.5)) {
                uint64_t window = std::min<uint64_t>(hi, 16);
                return static_cast<NodeId>(hi - 1 - rng.below(window));
            }
            return static_cast<NodeId>(rng.below(hi));
        };
        NodeId a = pick();
        NodeId b = pick();
        OpType op = rng.chance(0.5) ? OpType::Add : OpType::Mul;
        dag.addNode(op, {a, b});
    }
    return dag;
}

} // namespace dpu
