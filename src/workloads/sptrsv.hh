/**
 * @file
 * Lowering of sparse triangular solves (SpTRSV) to computation DAGs.
 *
 * Forward substitution
 *
 *     x_i = (b_i - sum_{j<i} L_ij * x_j) / L_ii
 *
 * is rewritten with precomputed coefficients so only Add/Mul remain
 * (the PE datapath supports + and x, paper §III-A):
 *
 *     x_i = b'_i + sum_j (c_ij * x_j),   b'_i = b_i / L_ii,
 *                                        c_ij = -L_ij / L_ii.
 *
 * The sparsity pattern is static across solves; only b (and possibly
 * the numeric values) change, which "effectively only changes the
 * inputs of the DAG" (paper §I) — exactly the static-DAG assumption
 * DPU-v2 compilation relies on.
 */

#ifndef DPU_WORKLOADS_SPTRSV_HH
#define DPU_WORKLOADS_SPTRSV_HH

#include <vector>

#include "dag/dag.hh"
#include "workloads/sparse_matrix.hh"

namespace dpu {

/** A SpTRSV compute DAG plus the mapping back to matrix coordinates. */
struct SpTrsvDag
{
    /** Describes what each DAG input carries. */
    struct InputDesc
    {
        enum class Kind : uint8_t {
            Rhs,  ///< b_row / L(row,row)
            Coeff ///< -L(row,col) / L(row,row)
        };
        Kind kind;
        uint32_t row;
        uint32_t col; ///< Only meaningful for Coeff.
    };

    Dag dag;
    std::vector<InputDesc> inputs; ///< One per DAG input, in input order.
    std::vector<NodeId> solution;  ///< Node carrying x_i for each row i.
};

/**
 * Build the SpTRSV DAG for a lower-triangular sparsity pattern. The
 * resulting DAG is binary (reductions are emitted as balanced trees).
 */
SpTrsvDag buildSpTrsvDag(const SparseMatrixCsr &lower);

/**
 * Produce the DAG input vector for a concrete (L, b) pair, in the order
 * expected by dpu::evaluate / the compiled program.
 */
std::vector<double> sptrsvInputValues(const SpTrsvDag &lowered,
                                      const SparseMatrixCsr &lower,
                                      const std::vector<double> &rhs);

/**
 * Produce DAG input vectors for a batch of right-hand sides sharing one
 * factorization: the Coeff inputs (and the per-row diagonal divides)
 * are computed once and shared across the batch; each solve only fills
 * its own Rhs slots. Element i equals sptrsvInputValues(lowered, lower,
 * rhsBatch[i]) bit for bit, so per-RHS results through BatchMachine /
 * AsyncBatchServer stay byte-identical to independent single solves.
 */
std::vector<std::vector<double>>
sptrsvBatchInputs(const SpTrsvDag &lowered, const SparseMatrixCsr &lower,
                  const std::vector<std::vector<double>> &rhsBatch);

/** Extract x (one value per row) from a full node-value vector. */
std::vector<double> sptrsvSolution(const SpTrsvDag &lowered,
                                   const std::vector<double> &node_values);

} // namespace dpu

#endif // DPU_WORKLOADS_SPTRSV_HH
