/**
 * @file
 * The named benchmark suite of Table I — synthetic structural twins.
 *
 * Each entry targets the node count and longest path the paper reports
 * for the original benchmark (PSDDs from the UCLA StarAI model zoo and
 * SuiteSparse matrices). Twins are generated, not copied: what the
 * compiler and hardware react to is DAG *structure*, which the twins
 * match (operation count, critical path, operator mix, parallelism
 * profile). See DESIGN.md "Scope notes and substitutions".
 */

#ifndef DPU_WORKLOADS_SUITE_HH
#define DPU_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "compiler/cache.hh"
#include "dag/dag.hh"
#include "workloads/sparse_matrix.hh"

namespace dpu {

/** Which class of Table I a workload belongs to. */
enum class WorkloadClass : uint8_t {
    Pc,      ///< Table I (a): probabilistic circuits.
    SpTrsv,  ///< Table I (b): sparse triangular solves.
    LargePc, ///< Table I (c): large probabilistic circuits.
};

/** Printable class name ("PC", "SpTRSV", "Large PC"). */
const char *workloadClassName(WorkloadClass cls);

/** One named workload with its paper-reported statistics. */
struct WorkloadSpec
{
    std::string name;
    WorkloadClass cls;
    size_t paperNodes;       ///< Table I "Nodes (n)"; measured for
                             ///< file-backed workloads.
    size_t paperLongestPath; ///< Table I "Longest path (l)"; ditto.
    uint32_t matrixDim;      ///< SpTRSV only: matrix dimension.
    uint64_t seed;
    /** Non-empty for file-backed SpTRSV workloads: the `.mtx` path
     *  the matrix is loaded from instead of a synthetic twin. */
    std::string matrixPath;
};

/** Table I (a): PC workloads. */
const std::vector<WorkloadSpec> &pcSuite();

/** Table I (b): SpTRSV workloads. */
const std::vector<WorkloadSpec> &sptrsvSuite();

/** Table I (c): large PC workloads. */
const std::vector<WorkloadSpec> &largePcSuite();

/** Concatenation of (a) and (b) — the DSE/throughput suite. */
std::vector<WorkloadSpec> smallSuite();

/**
 * Real-matrix ingestion: make a file-backed SpTRSV workload from a
 * Matrix Market file. The matrix is loaded, lower-triangularized
 * (lowerTriangularFrom), and its DAG built once so `paperNodes` /
 * `paperLongestPath` / `matrixDim` carry *measured* statistics.
 * Fatals (exit 1 from tools) on unreadable or malformed files.
 */
WorkloadSpec matrixWorkload(const std::string &mtxPath);

/**
 * All regular files named `*.mtx` directly under `dir`, sorted by
 * path for deterministic ordering. Empty when `dir` does not exist
 * or is not a directory.
 */
std::vector<std::string> discoverMatrixFiles(const std::string &dir);

/** Load + lower-triangularize a file-backed workload's matrix. */
SparseMatrixCsr loadWorkloadMatrix(const WorkloadSpec &spec);

/**
 * Generate the DAG for a workload.
 *
 * @param spec Which workload.
 * @param scale Scale factor on the node count (1.0 = paper size);
 *        benches use < 1 to keep multi-million-node runs short.
 *        The longest path is preserved where the generator allows.
 */
Dag buildWorkloadDag(const WorkloadSpec &spec, double scale = 1.0);

/** Look up a spec by name across all three suites. */
const WorkloadSpec &findWorkload(const std::string &name);

/**
 * Build a workload's DAG and compile it, going through `cache` when
 * one is given (nullptr = always compile). The benches share their
 * per-process and on-disk caches this way, so the suite is not
 * recompiled once per bench binary.
 *
 * @param out_dag When non-null, receives the built DAG (callers that
 *        also simulate need it; the cache cannot return it).
 */
CompiledProgram compileWorkload(const WorkloadSpec &spec, double scale,
                                const ArchConfig &cfg,
                                const CompileOptions &options,
                                ProgramCache *cache = nullptr,
                                Dag *out_dag = nullptr);

} // namespace dpu

#endif // DPU_WORKLOADS_SUITE_HH
