#include "workloads/sptrsv.hh"

#include "support/logging.hh"

namespace dpu {

SpTrsvDag
buildSpTrsvDag(const SparseMatrixCsr &lower)
{
    dpu_assert(lower.isLowerTriangular(), "matrix is not lower triangular");
    SpTrsvDag out;

    const uint32_t n = lower.dim();
    out.solution.assign(n, invalidNode);

    for (uint32_t r = 0; r < n; ++r) {
        // b'_r input.
        NodeId rhs = out.dag.addInput();
        out.inputs.push_back(
            {SpTrsvDag::InputDesc::Kind::Rhs, r, 0});

        // One product c_rj * x_j per off-diagonal nonzero.
        std::vector<NodeId> terms{rhs};
        bool has_diag = false;
        for (size_t k = lower.rowBegin(r); k < lower.rowEnd(r); ++k) {
            uint32_t c = lower.colAt(k);
            if (c == r) {
                dpu_assert(lower.valueAt(k) != 0.0,
                           "zero diagonal in triangular matrix");
                has_diag = true;
                continue;
            }
            NodeId coeff = out.dag.addInput();
            out.inputs.push_back(
                {SpTrsvDag::InputDesc::Kind::Coeff, r, c});
            dpu_assert(out.solution[c] != invalidNode,
                       "dependency on unsolved row");
            terms.push_back(
                out.dag.addNode(OpType::Mul, {coeff, out.solution[c]}));
        }
        dpu_assert(has_diag, "missing diagonal entry");

        if (terms.size() == 1) {
            // Row with no off-diagonal entries: x_r = b'_r directly.
            out.solution[r] = rhs;
            continue;
        }
        // Balanced binary reduction keeps the added depth logarithmic.
        std::vector<NodeId> live = std::move(terms);
        while (live.size() > 1) {
            std::vector<NodeId> next;
            next.reserve((live.size() + 1) / 2);
            for (size_t i = 0; i + 1 < live.size(); i += 2)
                next.push_back(
                    out.dag.addNode(OpType::Add, {live[i], live[i + 1]}));
            if (live.size() % 2 == 1)
                next.push_back(live.back());
            live = std::move(next);
        }
        out.solution[r] = live[0];
    }
    return out;
}

std::vector<double>
sptrsvInputValues(const SpTrsvDag &lowered, const SparseMatrixCsr &lower,
                  const std::vector<double> &rhs)
{
    dpu_assert(rhs.size() == lower.dim(), "rhs size mismatch");
    std::vector<double> values;
    values.reserve(lowered.inputs.size());
    for (const auto &d : lowered.inputs) {
        double diag = lower.at(d.row, d.row);
        dpu_assert(diag != 0.0, "zero diagonal");
        if (d.kind == SpTrsvDag::InputDesc::Kind::Rhs)
            values.push_back(rhs[d.row] / diag);
        else
            values.push_back(-lower.at(d.row, d.col) / diag);
    }
    return values;
}

std::vector<std::vector<double>>
sptrsvBatchInputs(const SpTrsvDag &lowered, const SparseMatrixCsr &lower,
                  const std::vector<std::vector<double>> &rhsBatch)
{
    const uint32_t n = lower.dim();
    std::vector<double> diag(n, 0.0);
    for (uint32_t r = 0; r < n; ++r) {
        diag[r] = lower.at(r, r);
        dpu_assert(diag[r] != 0.0, "zero diagonal");
    }

    // Shared template: every Coeff value, with Rhs slots left at zero.
    // Same x / diag divisions as sptrsvInputValues, so each batch
    // element is bit-identical to the single-RHS input vector.
    std::vector<double> shared(lowered.inputs.size(), 0.0);
    std::vector<std::pair<size_t, uint32_t>> rhsSlots;
    for (size_t i = 0; i < lowered.inputs.size(); ++i) {
        const auto &d = lowered.inputs[i];
        if (d.kind == SpTrsvDag::InputDesc::Kind::Rhs)
            rhsSlots.emplace_back(i, d.row);
        else
            shared[i] = -lower.at(d.row, d.col) / diag[d.row];
    }

    std::vector<std::vector<double>> batch;
    batch.reserve(rhsBatch.size());
    for (const auto &rhs : rhsBatch) {
        dpu_assert(rhs.size() == n, "rhs size mismatch");
        std::vector<double> values = shared;
        for (const auto &[slot, row] : rhsSlots)
            values[slot] = rhs[row] / diag[row];
        batch.push_back(std::move(values));
    }
    return batch;
}

std::vector<double>
sptrsvSolution(const SpTrsvDag &lowered,
               const std::vector<double> &node_values)
{
    std::vector<double> x;
    x.reserve(lowered.solution.size());
    for (NodeId id : lowered.solution) {
        dpu_assert(id < node_values.size(), "bad solution node");
        x.push_back(node_values[id]);
    }
    return x;
}

} // namespace dpu
