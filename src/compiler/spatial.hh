/**
 * @file
 * Spatial-datapath peak-utilization probing (paper §II-B, fig. 3).
 *
 * Substitute for the constraint-solving spatial mapper of [34]: a
 * randomized greedy embedder that searches workload DAGs for the
 * largest subgraph mappable onto (a) a k x k systolic array with
 * nearest-neighbour dataflow and (b) a binary tree of PEs. The paper
 * uses this probe to argue systolic arrays starve on irregular DAGs
 * while trees stay fully utilizable.
 */

#ifndef DPU_COMPILER_SPATIAL_HH
#define DPU_COMPILER_SPATIAL_HH

#include "dag/dag.hh"

namespace dpu {

/**
 * Peak utilization of a k x k systolic array (k = inputs/2, i.e.
 * n^2/4 PEs fed by n edge streams, fig. 3(a)) over a binarized DAG:
 * each interior PE must consume exactly its north and west
 * neighbours' outputs; edge PEs may pull operands from the input
 * streams. Returns max fraction of PEs holding a mapped node over
 * `restarts` randomized greedy embeddings.
 */
double systolicPeakUtilization(const Dag &dag, uint32_t inputs,
                               uint32_t restarts = 64,
                               uint64_t seed = 1);

/**
 * Peak utilization of a PE tree with `inputs` leaf ports (inputs - 1
 * PEs, fig. 3(b)): the largest mapped-arithmetic count any single
 * block reaches, over the tree PE count.
 */
double treePeakUtilization(const Dag &dag, uint32_t inputs,
                           uint64_t seed = 1);

} // namespace dpu

#endif // DPU_COMPILER_SPATIAL_HH
