/**
 * @file
 * Static legality verifier for compiler IR and compiled programs.
 *
 * The whole-program compilation model (paper §III-B automatic write
 * addressing, §IV bank-conflict copies and hazard NOPs) means every
 * downstream consumer — Machine, BatchMachine, the serving stack, DSE
 * sweeps over thousands of cached programs — trusts that the compiler
 * emitted a *legal* program. This pass proves it statically, the same
 * way the cycle-accurate simulator proves it dynamically: it replays
 * the register file abstractly (no values, only validity and timing)
 * and emits structured, machine-readable diagnostics instead of
 * panicking, so tools (dpulint) and tests can inspect exactly what is
 * wrong and where.
 *
 * Two entry points:
 *  - verifyIr(): after codegen/merge (hazards not yet resolved) and
 *    after the pipeline scheduler (hazards resolved) — register
 *    instances instead of concrete addresses.
 *  - verifyProgram(): over the final CompiledProgram — concrete
 *    instructions, automatic-write replay mirroring finalize.cc and
 *    sim/machine.cc, plus CompileStats cross-checks.
 */

#ifndef DPU_COMPILER_VERIFY_HH
#define DPU_COMPILER_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "compiler/program.hh"
#include "support/logging.hh"

namespace dpu {

/** Machine-readable diagnostic codes (stable; see README table). */
enum class VerifyCode : uint8_t {
    UseBeforeDef,         ///< V001: read of a never-written register.
    ReadAfterFree,        ///< V002: read after the valid_rst free.
    BankConflict,         ///< V003: >1 read or >1 write of one bank
                          ///  in one instruction.
    RegFileOverflow,      ///< V004: write to a full bank (occupancy
                          ///  would exceed R).
    RegisterLeak,         ///< V005: register still valid at program
                          ///  end (never freed).
    DoubleFree,           ///< V006: valid_rst that frees nothing.
    DoubleWrite,          ///< V007: one IR instance written twice.
    RowOutOfBounds,       ///< V010: load/store row out of range.
    IoLocOutOfBounds,     ///< V011: inputLocation/outputs out of
                          ///  range (warning: rows > dataMemRows).
    SelectOutOfBounds,    ///< V020: crossbar/output-mux/register-
                          ///  address select out of range.
    BlockOutOfBounds,     ///< V021: exec blockId out of range.
    MalformedInstruction, ///< V022: field sizes/slots/pairing wrong.
    PipelineHazard,       ///< V030: read while data is in flight.
    StatsMismatch,        ///< V040: recomputed CompileStats disagree.
};

/** Stable "V001-use-before-def"-style token for a code. */
const char *verifyCodeName(VerifyCode code);

/** Diagnostic severity: errors make a program illegal, warnings
 *  flag suspicious-but-runnable properties. */
enum class VerifySeverity : uint8_t { Warning, Error };

/** Sentinel instruction index for program-level diagnostics. */
constexpr uint64_t kVerifyNoInstr = static_cast<uint64_t>(-1);

/** One structured diagnostic. */
struct Diagnostic
{
    VerifySeverity severity = VerifySeverity::Error;
    VerifyCode code = VerifyCode::MalformedInstruction;

    /** Instruction (IR or final, per entry point) the diagnostic
     *  anchors to; kVerifyNoInstr for program-level findings. */
    uint64_t instrIndex = kVerifyNoInstr;

    std::string message;

    /** "instr 12: error V001-use-before-def: ..." */
    std::string format() const;
};

/** Everything one verifier run found. */
struct VerifyReport
{
    std::vector<Diagnostic> diagnostics;

    /** True when the per-run diagnostic cap was hit (the replay
     *  keeps going but stops recording). */
    bool truncated = false;

    /** No diagnostics at all (not even warnings). */
    bool clean() const { return diagnostics.empty(); }

    /** Error-severity diagnostics (what fails verification). */
    size_t errorCount() const;

    /** One-line "<N> error(s), <M> warning(s)" summary. */
    std::string summary() const;

    /** Multi-line report: summary + the first `maxShown` formatted
     *  diagnostics (all of them when 0). */
    std::string toString(size_t maxShown = 8) const;
};

/** Thrown by compile() when CompileOptions::verify finds errors. An
 *  illegal program out of the compiler is a library bug, hence a
 *  PanicError — notably it must NOT be a FatalError, which DSE
 *  sweeps legitimately swallow as "design infeasible". */
class VerifyError : public PanicError
{
  public:
    VerifyError(const std::string &stage, VerifyReport report_in);

    /** Pipeline stage whose output failed ("codegen", "schedule",
     *  "finalize"). */
    const std::string &stage() const { return failedStage; }

    const VerifyReport &report() const { return failedReport; }

  private:
    std::string failedStage;
    VerifyReport failedReport;
};

/** Knobs for the IR-level pass. */
struct VerifyIrOptions
{
    /** After the pipeline scheduler every read must issue at least
     *  the producer's write latency later (V030); before it, gaps
     *  are expected and not diagnosed. */
    bool hazardsResolved = false;

    /** Block count for exec blockId bounds (V021); the default
     *  disables the check (callers without the decomposition). */
    uint64_t numBlocks = static_cast<uint64_t>(-1);
};

/**
 * Verify an IR program: every IrRead.inst written before read and
 * never read after its lastRead free, at most one read and one write
 * per bank per instruction, no instance double-writes or leaks,
 * rows/selects/blockIds in bounds, and (hazardsResolved) pipeline
 * spacing. Never throws on malformed input — diagnostics instead.
 */
VerifyReport verifyIr(const IrProgram &ir, const ArchConfig &cfg,
                      const VerifyIrOptions &options = {});

/**
 * Verify a final compiled program: abstract replay of the register
 * file (validity + automatic write addresses + pipeline clocks,
 * mirroring sim/machine.cc), occupancy never above regsPerBank, all
 * rows/selects in bounds, no leaks at program end, and recomputed
 * kindCount/instructions/cycles/nops/peOpsExecuted/programBits/
 * dataBits equal to prog.stats (V040). Safe on arbitrary garbage
 * (e.g. a corrupted cache spill): structural checks run before any
 * indexed access.
 */
VerifyReport verifyProgram(const CompiledProgram &prog);

/** Throw VerifyError(stage, report) when the report has errors. */
void throwIfVerifyErrors(const VerifyReport &report,
                         const std::string &stage);

} // namespace dpu

#endif // DPU_COMPILER_VERIFY_HH
