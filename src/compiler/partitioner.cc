#include "compiler/partitioner.hh"

#include "support/logging.hh"

namespace dpu {

std::vector<PartitionRange>
partitionByCount(const Dag &dag, size_t max_compute_nodes)
{
    dpu_assert(max_compute_nodes >= 1, "partition size must be positive");
    std::vector<PartitionRange> parts;
    NodeId start = 0;
    size_t compute_in_part = 0;
    for (NodeId v = 0; v < dag.numNodes(); ++v) {
        if (dag.node(v).isInput())
            continue;
        if (compute_in_part == max_compute_nodes) {
            parts.push_back({start, v});
            start = v;
            compute_in_part = 0;
        }
        ++compute_in_part;
    }
    // Only emit the trailing range when it contains compute nodes:
    // an empty or input-only DAG used to yield a compute-free
    // partition here and now yields no ranges. compute_in_part is
    // zero after the loop iff the DAG has no compute nodes at all
    // (every boundary reset immediately counts the node that
    // triggered it), and the trailing range always extends to
    // numNodes(), so an input-only tail rides along with the last
    // compute-bearing range and every node keeps a bank owner.
    if (compute_in_part)
        parts.push_back({start, static_cast<NodeId>(dag.numNodes())});
    return parts;
}

size_t
countCrossEdges(const Dag &dag, const std::vector<PartitionRange> &parts)
{
    // Map node -> partition index.
    std::vector<uint32_t> part_of(dag.numNodes(), 0);
    for (uint32_t p = 0; p < parts.size(); ++p)
        for (NodeId v = parts[p].first; v < parts[p].second; ++v)
            part_of[v] = p;
    size_t crossing = 0;
    for (NodeId v = 0; v < dag.numNodes(); ++v)
        for (NodeId o : dag.node(v).operands)
            if (part_of[o] != part_of[v])
                ++crossing;
    return crossing;
}

} // namespace dpu
