#include "compiler/finalize.hh"

#include <algorithm>
#include <limits>

#include "arch/interconnect.hh"
#include "support/bitvec.hh"

namespace dpu {
namespace detail {

constexpr uint32_t noAddr = static_cast<uint32_t>(-1);

/** Mutable run-time state of one register instance. */
struct InstState
{
    uint32_t addr = noAddr;     ///< Current register, noAddr if absent.
    uint64_t readableAt = 0;    ///< Issue time when data has landed.
    uint32_t spillRow = noAddr; ///< Memory copy (chunk-relative row).
    uint32_t nextUseIdx = 0;    ///< Cursor into `uses`.
    std::vector<uint32_t> uses; ///< IR indices of reads, ascending.
};

class FinalizerImpl
{
  public:
    FinalizerImpl(const ArchConfig &cfg,
                  ProgramFinalizer::BlockResolver blocks)
        : cfg(cfg), blockAt(std::move(blocks))
    {
        occupant.assign(cfg.banks,
                        std::vector<InstanceId>(cfg.regsPerBank,
                                                invalidInstance));
        valid.assign(cfg.banks, BitVec(cfg.regsPerBank));
        spillCount.assign(cfg.banks, 0);
    }

    void
    appendChunk(const IrProgram &ir, size_t fromInstr, size_t fromInstance)
    {
        instances.insert(instances.end(),
                         ir.instances.begin() +
                             static_cast<ptrdiff_t>(fromInstance),
                         ir.instances.end());
        state.resize(instances.size());
        for (size_t i = fromInstr; i < ir.instrs.size(); ++i)
            for (const IrRead &r : ir.instrs[i].reads)
                state[r.inst].uses.push_back(static_cast<uint32_t>(i));

        curIr = &ir;
        chunkEnd = static_cast<uint32_t>(ir.instrs.size());
        for (irIndex = static_cast<uint32_t>(fromInstr);
             irIndex < chunkEnd; ++irIndex) {
            prefetchReloads();
            emit(ir.instrs[irIndex]);
        }
        curIr = nullptr;
    }

    CompiledProgram
    finish(const IrProgram &ir, size_t numBlocks)
    {
        // Every register must have been freed by a final read.
        for (uint32_t b = 0; b < cfg.banks; ++b)
            dpu_assert(valid[b].none(), "register file leak");

        prog.cfg = cfg;
        prog.inputLocation = ir.inputLocation;
        for (const auto &o : ir.outputs)
            prog.outputs.push_back({o.node, o.row, o.col});
        prog.stats.bankConflicts = ir.copyResolvedConflicts;
        prog.stats.blocks = numBlocks;

        // Spill rows were allocated relative; rebase them just past
        // the now-final input/output region.
        const uint32_t spillBase = ir.inputRows + ir.outputRows;
        for (size_t idx : spillStoreFixups)
            std::get<Store4Instr>(prog.instructions[idx]).memRow +=
                spillBase;
        for (size_t idx : reloadFixups)
            std::get<LoadInstr>(prog.instructions[idx]).memRow +=
                spillBase;
        prog.numRows = spillBase + relSpillRows;

        for (const Instruction &in : prog.instructions)
            ++prog.stats.kindCount[static_cast<size_t>(kindOf(in))];
        prog.stats.instructions = prog.instructions.size();
        prog.stats.cycles =
            prog.instructions.size() + cfg.pipelineStages();
        prog.stats.nops =
            prog.stats.kindCount[static_cast<size_t>(InstrKind::Nop)];
        return std::move(prog);
    }

  private:
    uint64_t now() const { return prog.instructions.size(); }

    /** Resolve a read: reload if spilled, return (bank, addr). */
    std::pair<uint32_t, uint32_t>
    resolveRead(const IrRead &r)
    {
        InstState &st = state[r.inst];
        dpu_assert(st.addr != noAddr, "read of non-resident instance");
        dpu_assert(st.readableAt <= now(), "unresolved pipeline hazard");
        uint32_t bank = instances[r.inst].bank;
        uint32_t addr = st.addr;
        dpu_assert(st.nextUseIdx < st.uses.size() &&
                   st.uses[st.nextUseIdx] == irIndex,
                   "use-list cursor out of sync");
        ++st.nextUseIdx;
        if (r.lastRead) {
            valid[bank].clear(addr);
            occupant[bank][addr] = invalidInstance;
            st.addr = noAddr;
        }
        return {bank, addr};
    }

    /** IR index of an instance's next read (infinity if none known —
     *  a cross-chunk use not yet appended counts as furthest). */
    uint32_t
    nextUse(InstanceId id) const
    {
        const InstState &st = state[id];
        return st.nextUseIdx < st.uses.size()
            ? st.uses[st.nextUseIdx]
            : std::numeric_limits<uint32_t>::max();
    }

    /**
     * Make room in `bank`: spill the resident instance with the
     * furthest next use whose data has already landed and which the
     * current instruction is not itself reading.
     */
    void
    spillOne(uint32_t bank, const IrInstr &current)
    {
        InstanceId victim = invalidInstance;
        uint32_t victim_use = 0;
        for (uint32_t slot = 0; slot < cfg.regsPerBank; ++slot) {
            InstanceId c = occupant[bank][slot];
            if (c == invalidInstance)
                continue;
            if (state[c].readableAt > now())
                continue; // in flight, a store would read garbage
            bool in_current = false;
            for (const IrRead &r : current.reads)
                if (r.inst == c)
                    in_current = true;
            if (in_current)
                continue;
            uint32_t use = nextUse(c);
            // Never evict something needed within the reload-prefetch
            // horizon; it would bounce straight back.
            if (use <= irIndex + 2)
                continue;
            if (victim == invalidInstance || use > victim_use) {
                victim = c;
                victim_use = use;
            }
        }
        if (victim == invalidInstance)
            dpu_fatal("register file too small (R=" +
                      std::to_string(cfg.regsPerBank) +
                      "): no spillable victim in bank " +
                      std::to_string(bank));

        InstState &st = state[victim];
        uint32_t row = st.spillRow;
        if (row == noAddr) {
            // Spill slots are packed per column: bank b's k-th spill
            // goes to (spillBase + k, column b), so a row serves up
            // to B spilled values and memory stays dense. Rows are
            // relative here; finish() rebases them past the final
            // input/output region.
            row = spillCount[bank]++;
            st.spillRow = row;
            relSpillRows = std::max(relSpillRows, row + 1);
        }
        // The memory copy of an immutable value stays valid, so a
        // re-spill still emits the store (a read is the only way the
        // hardware can clear a valid bit) but reuses the row.
        Store4Instr s4;
        s4.memRow = row;
        s4.slots[0] = {true, static_cast<uint16_t>(bank),
                       static_cast<uint16_t>(st.addr)};
        valid[bank].clear(st.addr);
        occupant[bank][st.addr] = invalidInstance;
        st.addr = noAddr;
        prog.instructions.push_back(s4);
        spillStoreFixups.push_back(prog.instructions.size() - 1);
        ++prog.stats.spillStores;
    }

    /** Reserve a register for `id` in its bank (issue-time policy). */
    void
    place(InstanceId id, InstrKind producer, const IrInstr &current)
    {
        uint32_t bank = instances[id].bank;
        if (valid[bank].firstZero() == cfg.regsPerBank)
            spillOne(bank, current);
        size_t addr = valid[bank].firstZero();
        dpu_assert(addr < cfg.regsPerBank, "spill failed to free a slot");
        valid[bank].set(addr);
        occupant[bank][addr] = id;
        state[id].addr = static_cast<uint32_t>(addr);
        // Provisional; fixWriteTimes() patches the exact issue time of
        // the writing instruction (spills inserted between placements
        // of one instruction would otherwise skew it).
        state[id].readableAt = now() + writeLatency(producer, cfg);
    }

    /** Patch the write-latency clocks after the writer is pushed. */
    void
    fixWriteTimes(const IrInstr &in)
    {
        uint64_t pos = prog.instructions.size() - 1;
        for (const IrWrite &w : in.writes)
            state[w.inst].readableAt = pos + writeLatency(in.kind, cfg);
    }

    /** Emit a reload of a spilled instance (relative row; fixed up at
     *  finish). */
    void
    emitReload(InstanceId id)
    {
        LoadInstr ld;
        ld.memRow = state[id].spillRow;
        ld.enable.assign(cfg.banks, false);
        ld.enable[instances[id].bank] = true;
        prog.instructions.push_back(std::move(ld));
        reloadFixups.push_back(prog.instructions.size() - 1);
        ++prog.stats.reloads;
    }

    /**
     * Reload-prefetch: look 1-2 IR instructions ahead and bring their
     * spilled operands back now, so the 2-cycle load latency hides
     * behind the intervening instructions instead of costing a nop.
     * The look-ahead stops at the current chunk's end — the next
     * chunk may not have been merged yet.
     */
    void
    prefetchReloads()
    {
        for (uint32_t k = 1; k <= 2; ++k) {
            if (irIndex + k >= chunkEnd)
                break;
            const IrInstr &future = curIr->instrs[irIndex + k];
            for (const IrRead &r : future.reads) {
                InstState &st = state[r.inst];
                // Only instances that are currently swapped out: a
                // not-yet-written instance has no memory copy either.
                if (st.addr != noAddr || st.spillRow == noAddr)
                    continue;
                place(r.inst, InstrKind::Load, future);
                emitReload(r.inst);
                state[r.inst].readableAt =
                    prog.instructions.size() - 1 + 2;
            }
        }
    }

    /** Reload spilled operands of `in`, then one covering nop — the
     *  fallback for operands the prefetcher could not cover. */
    void
    reloadSpilledReads(const IrInstr &in)
    {
        bool any = false;
        for (const IrRead &r : in.reads) {
            InstState &st = state[r.inst];
            if (st.addr != noAddr)
                continue;
            dpu_assert(st.spillRow != noAddr,
                       "non-resident instance without a memory copy");
            place(r.inst, InstrKind::Load, in);
            emitReload(r.inst);
            any = true;
        }
        if (any) {
            // One nop gives the last reload its 2-cycle write latency
            // before the consumer issues.
            prog.instructions.push_back(NopInstr{});
        }
    }

    void
    emit(const IrInstr &in)
    {
        switch (in.kind) {
          case InstrKind::Nop:
            prog.instructions.push_back(NopInstr{});
            return;

          case InstrKind::Load: {
            LoadInstr ld;
            ld.memRow = in.memRow;
            ld.enable.assign(cfg.banks, false);
            for (const IrWrite &w : in.writes) {
                place(w.inst, InstrKind::Load, in);
                ld.enable[instances[w.inst].bank] = true;
            }
            prog.instructions.push_back(std::move(ld));
            fixWriteTimes(in);
            return;
          }

          case InstrKind::Copy4: {
            reloadSpilledReads(in);
            Copy4Instr cp;
            cp.validRst.assign(cfg.banks, false);
            dpu_assert(in.reads.size() == in.writes.size() &&
                       in.reads.size() <= 4, "malformed copy");
            for (size_t k = 0; k < in.reads.size(); ++k) {
                auto [src_bank, src_addr] = resolveRead(in.reads[k]);
                if (in.reads[k].lastRead)
                    cp.validRst[src_bank] = true;
                place(in.writes[k].inst, InstrKind::Copy4, in);
                cp.slots[k] = {true, static_cast<uint16_t>(src_bank),
                               static_cast<uint16_t>(src_addr),
                               static_cast<uint16_t>(
                                   instances[in.writes[k].inst].bank)};
            }
            prog.instructions.push_back(std::move(cp));
            fixWriteTimes(in);
            return;
          }

          case InstrKind::Exec: {
            reloadSpilledReads(in);
            const Block &blk = blockAt(in.blockId);
            ExecInstr ex;
            ex.peOp = blk.peOps;
            ex.inputSel.assign(in.inputSel.begin(), in.inputSel.end());
            ex.readAddr.assign(cfg.banks, 0);
            ex.validRst.assign(cfg.banks, false);
            ex.writeEnable.assign(cfg.banks, false);
            ex.outputSel.assign(cfg.banks, 0);
            for (const IrRead &r : in.reads) {
                auto [bank, addr] = resolveRead(r);
                ex.readAddr[bank] = static_cast<uint16_t>(addr);
                ex.validRst[bank] = r.lastRead;
            }
            for (const IrWrite &w : in.writes) {
                const RegInstance &inst = instances[w.inst];
                place(w.inst, InstrKind::Exec, in);
                ex.writeEnable[inst.bank] = true;
                ex.outputSel[inst.bank] = static_cast<uint16_t>(
                    outputSelectFor(cfg, inst.bank, inst.writerPe));
            }
            for (PeOp op : ex.peOp)
                if (op == PeOp::Add || op == PeOp::Mul)
                    ++prog.stats.peOpsExecuted;
            prog.instructions.push_back(std::move(ex));
            fixWriteTimes(in);
            return;
          }

          case InstrKind::Store:
          case InstrKind::Store4: {
            reloadSpilledReads(in);
            if (in.kind == InstrKind::Store) {
                StoreInstr st;
                st.memRow = in.memRow;
                st.enable.assign(cfg.banks, false);
                st.readAddr.assign(cfg.banks, 0);
                for (const IrRead &r : in.reads) {
                    dpu_assert(r.lastRead, "store must free its source");
                    auto [bank, addr] = resolveRead(r);
                    st.enable[bank] = true;
                    st.readAddr[bank] = static_cast<uint16_t>(addr);
                }
                prog.instructions.push_back(std::move(st));
            } else {
                Store4Instr st;
                st.memRow = in.memRow;
                dpu_assert(in.reads.size() <= 4, "store_4 overflow");
                for (size_t k = 0; k < in.reads.size(); ++k) {
                    dpu_assert(in.reads[k].lastRead,
                               "store must free its source");
                    auto [bank, addr] = resolveRead(in.reads[k]);
                    st.slots[k] = {true, static_cast<uint16_t>(bank),
                                   static_cast<uint16_t>(addr)};
                }
                prog.instructions.push_back(std::move(st));
            }
            return;
          }
        }
        dpu_panic("unhandled IR instruction kind");
    }

    const ArchConfig &cfg;
    ProgramFinalizer::BlockResolver blockAt;

    CompiledProgram prog;
    std::vector<RegInstance> instances;
    std::vector<InstState> state;
    std::vector<std::vector<InstanceId>> occupant;
    std::vector<BitVec> valid;
    uint32_t relSpillRows = 0;
    std::vector<uint32_t> spillCount;
    std::vector<size_t> spillStoreFixups;
    std::vector<size_t> reloadFixups;
    const IrProgram *curIr = nullptr;
    uint32_t chunkEnd = 0;
    uint32_t irIndex = 0;
};

} // namespace detail

ProgramFinalizer::ProgramFinalizer(const ArchConfig &cfg,
                                   BlockResolver blocks)
    : impl(std::make_unique<detail::FinalizerImpl>(cfg, std::move(blocks)))
{}

ProgramFinalizer::~ProgramFinalizer() = default;

void
ProgramFinalizer::appendChunk(const IrProgram &ir, size_t fromInstr,
                              size_t fromInstance)
{
    impl->appendChunk(ir, fromInstr, fromInstance);
}

CompiledProgram
ProgramFinalizer::finish(const IrProgram &ir, size_t numBlocks)
{
    return impl->finish(ir, numBlocks);
}

CompiledProgram
finalizeProgram(IrProgram &&ir, const ArchConfig &cfg,
                const BlockDecomposition &dec)
{
    IrProgram local = std::move(ir);
    ProgramFinalizer fin(cfg, [&dec](uint32_t id) -> const Block & {
        return dec.blocks[id];
    });
    fin.appendChunk(local, 0, 0);
    return fin.finish(local, dec.blocks.size());
}

} // namespace dpu
