/**
 * @file
 * Coarse partitioning of very large DAGs (paper §V-B "Compilation
 * time": multi-million-node PCs are first split into ~20k-node
 * partitions, compiled partition by partition).
 *
 * Node ids are topological in this codebase, so contiguous id ranges
 * are valid acyclic partitions (every edge points forward); this is
 * the linear-time substitution for GRAPHOPT's partitioner documented
 * in DESIGN.md.
 */

#ifndef DPU_COMPILER_PARTITIONER_HH
#define DPU_COMPILER_PARTITIONER_HH

#include <cstdint>
#include <vector>

#include "dag/dag.hh"

namespace dpu {

/** Half-open id range [first, last) forming one partition. */
using PartitionRange = std::pair<NodeId, NodeId>;

/**
 * Split a DAG into consecutive id ranges, each containing at most
 * `max_compute_nodes` compute nodes and at least one. The ranges
 * cover every node (an input-only tail is merged into the preceding
 * range); a DAG with no compute nodes yields no ranges at all, which
 * callers treat as "compile the whole DAG as a single partition".
 */
std::vector<PartitionRange> partitionByCount(const Dag &dag,
                                             size_t max_compute_nodes);

/** Number of edges crossing between different partitions. */
size_t countCrossEdges(const Dag &dag,
                       const std::vector<PartitionRange> &parts);

} // namespace dpu

#endif // DPU_COMPILER_PARTITIONER_HH
