/**
 * @file
 * IR code generation: blocks + bank assignment -> IR instruction list.
 *
 * Emits, per block: loads for not-yet-resident DAG inputs, copy_4
 * instructions resolving read conflicts (block inputs sharing a home
 * bank), and the exec itself; after the last block, stores of the
 * DAG's results. Also fixes the data-memory layout of inputs (row =
 * per-bank arrival order, column = home bank) and outputs.
 */

#ifndef DPU_COMPILER_CODEGEN_HH
#define DPU_COMPILER_CODEGEN_HH

#include "compiler/blocks.hh"
#include "compiler/ir.hh"
#include "compiler/mapper.hh"
#include "dag/dag.hh"

namespace dpu {

/** Generate the IR program (hazard-oblivious order; step 3 fixes it). */
IrProgram generateIr(const Dag &dag, const ArchConfig &cfg,
                     const BlockDecomposition &dec,
                     const BankAssignment &banks);

} // namespace dpu

#endif // DPU_COMPILER_CODEGEN_HH
