/**
 * @file
 * IR code generation: blocks + bank assignment -> IR instruction list.
 *
 * Emits, per block: loads for not-yet-resident DAG inputs, copy_4
 * instructions resolving read conflicts (block inputs sharing a home
 * bank), and the exec itself; after the last block, stores of the
 * DAG's results. Also fixes the data-memory layout of inputs (row =
 * per-bank arrival order, column = home bank) and outputs.
 *
 * The pass is split for partition-parallel compilation: each
 * partition range generates an *IR fragment* (local instance ids;
 * reads of values produced by earlier partitions are encoded as
 * external references), and mergeIrFragments() concatenates the
 * fragments in partition order, resolves the external references,
 * replays the input-load row allocation against global per-bank
 * counters, and emits the final stores. generateIr() is the
 * single-fragment convenience wrapper; its output for one partition
 * is byte-identical to the historical monolithic pass.
 */

#ifndef DPU_COMPILER_CODEGEN_HH
#define DPU_COMPILER_CODEGEN_HH

#include <span>

#include "compiler/blocks.hh"
#include "compiler/ir.hh"
#include "compiler/mapper.hh"
#include "dag/dag.hh"

namespace dpu {

/**
 * Read-only context shared by every fragment of one compile,
 * precomputed once from all partitions' blocks. It carries the
 * cross-partition knowledge a fragment cannot derive locally: which
 * partition emits the load of each DAG input, and in which partition
 * each value's globally-last register read happens (so valid_rst
 * lands on the right read regardless of partition count).
 */
struct CodegenShared
{
    /** lastReaderPart value for "freed by the final store". */
    static constexpr uint32_t storeSentinel = static_cast<uint32_t>(-2);
    static constexpr uint32_t never = static_cast<uint32_t>(-1);

    /** Dense input index of DAG input nodes (others: never). */
    std::vector<uint32_t> inputIndexOf;
    uint32_t numInputs = 0;

    /** Partition whose fragment loads each DAG input (never = unread). */
    std::vector<uint32_t> firstLoaderPart;

    /** Partition holding the globally-last register read of a value;
     *  storeSentinel for compute sinks (read by the final store). */
    std::vector<uint32_t> lastReaderPart;
};

/** Precompute the shared context; partBlocks[p] = blocks of range p
 *  in ascending range order. */
CodegenShared computeCodegenShared(
    const Dag &dag, const std::vector<std::span<const Block>> &partBlocks);

/** One partition's IR with partition-local instance ids. */
struct IrFragment
{
    IrProgram ir;

    /** Value behind each external reference, indexed by the low bits
     *  of reads whose externalFlag is set. */
    std::vector<NodeId> externals;

    /** Primary instance created here per value (loads, exec outputs;
     *  conflict-copy temporaries are not listed). */
    std::vector<std::pair<NodeId, InstanceId>> defs;

    static constexpr InstanceId externalFlag = 1u << 31;
    static bool isExternal(InstanceId id) { return id & externalFlag; }
};

/**
 * Generate the IR fragment of one partition. Pure in its inputs, so
 * fragments of different partitions can run concurrently; per-node
 * working state is sized to the range (plus small maps for values
 * reached below it), so P fragments cost O(N) total, not O(P*N).
 *
 * @param blocks The partition's blocks (RangeDecomposition::blocks).
 * @param range The partition's id range (RangeDecomposition::range).
 * @param banks Merged whole-DAG bank assignment (bankOf/peOf indexed
 *        by global node id).
 * @param part This partition's index among the ranges.
 */
IrFragment generateIrForRange(const Dag &dag, const ArchConfig &cfg,
                              std::span<const Block> blocks,
                              std::pair<NodeId, NodeId> range,
                              const BankAssignment &banks,
                              const CodegenShared &shared, uint32_t part);

/**
 * Merge fragments (ascending partition order) into the complete IR:
 * offsets instance and block ids, resolves external references,
 * replays the input-load rows against global per-bank counters, and
 * emits the final stores. Deterministic given the fragments.
 *
 * @param blocksPerPart Number of blocks of each partition, for the
 *        global block-id offsets (same order as the fragments).
 */
IrProgram mergeIrFragments(const Dag &dag, const ArchConfig &cfg,
                           const BankAssignment &banks,
                           const CodegenShared &shared,
                           std::vector<IrFragment> &&fragments,
                           const std::vector<size_t> &blocksPerPart);

/** Generate the IR program (hazard-oblivious order; step 3 fixes it). */
IrProgram generateIr(const Dag &dag, const ArchConfig &cfg,
                     const BlockDecomposition &dec,
                     const BankAssignment &banks);

/**
 * Incremental merge of *already scheduled* fragments (the pipelined
 * steps 3-4 path): append() consumes fragments strictly in partition
 * order — resolving externals, replaying load rows, offsetting block
 * ids exactly like mergeIrFragments() — and additionally preserves
 * the per-fragment schedules: whenever an instruction reads a value
 * written near the end of an earlier fragment, nops pad the boundary
 * until that write's latency has elapsed, so the merged stream is
 * hazard-free without a whole-program reorder. finish() emits the
 * final stores (padded the same way). Deterministic given the
 * fragments, hence independent of how many threads produced them.
 */
class ScheduledIrMerger
{
  public:
    ScheduledIrMerger(const Dag &dag, const ArchConfig &cfg,
                      const BankAssignment &banks,
                      const CodegenShared &shared);

    /** Append the next partition's scheduled fragment. */
    void append(IrFragment &&frag, size_t numBlocks);

    /** Emit the final stores; the merge is complete afterwards. */
    void finish();

    /** The merged program (grows with each append). */
    const IrProgram &ir() const { return out; }

    /** Nops inserted at fragment boundaries and before stores. */
    uint64_t boundaryNops() const { return boundaryNopCount; }

  private:
    const Dag &dag;
    const ArchConfig &cfg;
    const BankAssignment &banks;
    const CodegenShared &shared;
    IrProgram out;
    std::vector<InstanceId> instOf; ///< Primary instance per value.
    std::vector<uint64_t> readyAt;  ///< Write-landed cycle per instance.
    std::vector<uint32_t> rowCounter;
    uint32_t inputRows = 0;
    uint32_t blockOffset = 0;
    uint64_t boundaryNopCount = 0;
};

} // namespace dpu

#endif // DPU_COMPILER_CODEGEN_HH
