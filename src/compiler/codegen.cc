#include "compiler/codegen.hh"

#include <algorithm>
#include <map>

#include "support/rng.hh"

namespace dpu {

namespace {

class CodeGen
{
  public:
    CodeGen(const Dag &dag, const ArchConfig &cfg,
            const BlockDecomposition &dec, const BankAssignment &banks)
        : dag(dag), cfg(cfg), dec(dec), banks(banks), rng(0xc0de)
    {}

    IrProgram
    run()
    {
        countReads();
        assignInputIndices();
        for (uint32_t b = 0; b < dec.blocks.size(); ++b)
            emitBlock(b);
        emitFinalStores();
        ir.inputRows = inputRows;
        checkBalance();
        return std::move(ir);
    }

  private:
    /** remainingReads[v] = #reader blocks (+1 if stored at the end). */
    void
    countReads()
    {
        remainingReads.assign(dag.numNodes(), 0);
        for (const Block &blk : dec.blocks)
            for (NodeId v : blk.inputs)
                ++remainingReads[v];
        for (NodeId s : dag.sinks())
            if (!dag.node(s).isInput())
                ++remainingReads[s];
    }

    void
    assignInputIndices()
    {
        inputIndexOf.assign(dag.numNodes(), invalidNode);
        uint32_t k = 0;
        for (NodeId v = 0; v < dag.numNodes(); ++v)
            if (dag.node(v).isInput())
                inputIndexOf[v] = k++;
        ir.inputLocation.assign(k, {0, 0});
        loaded.assign(dag.numNodes(), false);
        instOf.assign(dag.numNodes(), invalidInstance);
        rowCounter.assign(cfg.banks, 0);
    }

    InstanceId
    newInstance(NodeId value, uint32_t bank, uint32_t pe)
    {
        ir.instances.push_back({value, bank, pe});
        return static_cast<InstanceId>(ir.instances.size() - 1);
    }

    /** Emit loads for the block's not-yet-resident DAG inputs. */
    void
    emitLoads(const Block &blk)
    {
        // Gather the batch of inputs this block needs for the first
        // time. Inputs that are consumed together should live in the
        // same memory row so one vector load covers them all: align
        // the whole batch (bank columns permitting) to the highest
        // per-bank fill level, then advance those banks' levels.
        std::vector<NodeId> batch;
        for (NodeId v : blk.inputs) {
            if (!dag.node(v).isInput() || loaded[v])
                continue;
            loaded[v] = true;
            batch.push_back(v);
        }
        std::map<uint32_t, std::vector<NodeId>> by_row;
        while (!batch.empty()) {
            // One aligned row per round; duplicate banks spill into
            // the next round.
            uint64_t used = 0;
            uint32_t row = 0;
            std::vector<NodeId> round;
            for (auto it = batch.begin(); it != batch.end();) {
                uint32_t bank = banks.bankOf[*it];
                if (used >> bank & 1) {
                    ++it;
                    continue;
                }
                used |= uint64_t(1) << bank;
                row = std::max(row, rowCounter[bank]);
                round.push_back(*it);
                it = batch.erase(it);
            }
            for (NodeId v : round) {
                uint32_t bank = banks.bankOf[v];
                rowCounter[bank] = row + 1;
                inputRows = std::max(inputRows, row + 1);
                ir.inputLocation[inputIndexOf[v]] = {row, bank};
                by_row[row].push_back(v);
            }
        }
        for (auto &[row, values] : by_row) {
            IrInstr load;
            load.kind = InstrKind::Load;
            load.memRow = row;
            for (NodeId v : values) {
                InstanceId id = newInstance(v, banks.bankOf[v],
                                            BankAssignment::invalid);
                instOf[v] = id;
                load.writes.push_back({id});
            }
            ir.instrs.push_back(std::move(load));
        }
    }

    /**
     * Resolve read conflicts with copies; returns the per-value
     * instance each read of this block should use.
     */
    std::map<NodeId, InstanceId>
    emitConflictCopies(const Block &blk)
    {
        std::map<NodeId, InstanceId> use;
        uint64_t used_banks = 0;
        std::vector<NodeId> displaced;
        // First pass: one value may keep each home bank.
        std::map<uint32_t, NodeId> keeper;
        for (NodeId v : blk.inputs) {
            uint32_t bank = banks.bankOf[v];
            auto [it, fresh] = keeper.try_emplace(bank, v);
            if (fresh) {
                use[v] = instOf[v];
                used_banks |= uint64_t(1) << bank;
            } else {
                displaced.push_back(v);
            }
        }
        if (displaced.empty())
            return use;

        ir.copyResolvedConflicts += displaced.size();

        // Pick a fresh bank per displaced value and batch the copies
        // into copy_4s with distinct source and destination banks.
        struct PendingCopy
        {
            NodeId value;
            uint32_t srcBank;
            uint32_t dstBank;
        };
        std::vector<PendingCopy> pending;
        for (NodeId v : displaced) {
            uint64_t free = ~used_banks;
            if (cfg.banks < 64)
                free &= (uint64_t(1) << cfg.banks) - 1;
            dpu_assert(free, "no free bank for conflict copy");
            uint32_t n = static_cast<uint32_t>(__builtin_popcountll(free));
            uint32_t k = static_cast<uint32_t>(rng.below(n));
            uint32_t dst = 0;
            for (uint32_t b = 0;; ++b) {
                if ((free >> b) & 1) {
                    if (k == 0) {
                        dst = b;
                        break;
                    }
                    --k;
                }
            }
            used_banks |= uint64_t(1) << dst;
            pending.push_back({v, banks.bankOf[v], dst});
        }
        while (!pending.empty()) {
            IrInstr copy;
            copy.kind = InstrKind::Copy4;
            uint64_t src_used = 0, dst_used = 0;
            for (auto it = pending.begin();
                 it != pending.end() && copy.reads.size() < 4;) {
                uint64_t sbit = uint64_t(1) << it->srcBank;
                uint64_t dbit = uint64_t(1) << it->dstBank;
                if ((src_used & sbit) || (dst_used & dbit)) {
                    ++it;
                    continue;
                }
                src_used |= sbit;
                dst_used |= dbit;
                NodeId v = it->value;
                bool last = --remainingReads[v] == 0;
                copy.reads.push_back({instOf[v], last});
                InstanceId tmp = newInstance(v, it->dstBank,
                                             BankAssignment::invalid);
                copy.writes.push_back({tmp});
                use[v] = tmp;
                it = pending.erase(it);
            }
            dpu_assert(!copy.reads.empty(), "copy packing stuck");
            ir.instrs.push_back(std::move(copy));
        }
        return use;
    }

    void
    emitBlock(uint32_t block_id)
    {
        const Block &blk = dec.blocks[block_id];
        emitLoads(blk);
        auto use = emitConflictCopies(blk);

        IrInstr exec;
        exec.kind = InstrKind::Exec;
        exec.blockId = block_id;
        exec.inputSel.assign(cfg.banks, 0);
        for (NodeId v : blk.inputs) {
            InstanceId inst = use.at(v);
            bool is_temp = inst != instOf[v];
            bool last = is_temp ? true : (--remainingReads[v] == 0);
            exec.reads.push_back({inst, last});
        }
        for (const PortRead &r : blk.reads)
            exec.inputSel[r.port] =
                static_cast<uint16_t>(ir.instances[use.at(r.value)].bank);
        for (NodeId v : blk.outputs) {
            InstanceId id = newInstance(v, banks.bankOf[v], banks.peOf[v]);
            instOf[v] = id;
            exec.writes.push_back({id});
        }
        ir.instrs.push_back(std::move(exec));
    }

    /** Store every DAG result to the output region of data memory. */
    void
    emitFinalStores()
    {
        std::vector<NodeId> compute_sinks;
        for (NodeId s : dag.sinks()) {
            if (dag.node(s).isInput()) {
                // The result *is* an input. Input sinks have no
                // consumers, so they were never lazily placed: give
                // them a memory home now (no hardware work needed).
                dpu_assert(!loaded[s], "input sink was loaded");
                uint32_t bank = banks.bankOf[s];
                uint32_t row = rowCounter[bank]++;
                inputRows = std::max(inputRows, row + 1);
                ir.inputLocation[inputIndexOf[s]] = {row, bank};
                ir.outputs.push_back({s, row, bank});
            } else {
                compute_sinks.push_back(s);
            }
        }
        uint32_t out_row = inputRows;
        while (!compute_sinks.empty()) {
            // One store per round; each bank contributes one value.
            uint64_t used = 0;
            std::vector<NodeId> batch;
            for (auto it = compute_sinks.begin();
                 it != compute_sinks.end();) {
                uint32_t bank = banks.bankOf[*it];
                if (used >> bank & 1) {
                    ++it;
                    continue;
                }
                used |= uint64_t(1) << bank;
                batch.push_back(*it);
                it = compute_sinks.erase(it);
            }
            IrInstr store;
            store.kind = batch.size() <= 4 ? InstrKind::Store4
                                           : InstrKind::Store;
            store.memRow = out_row;
            for (NodeId v : batch) {
                bool last = --remainingReads[v] == 0;
                dpu_assert(last, "store must be the final read");
                store.reads.push_back({instOf[v], true});
                ir.outputs.push_back({v, out_row, banks.bankOf[v]});
            }
            ir.instrs.push_back(std::move(store));
            ++out_row;
        }
        ir.outputRows = out_row - inputRows;
    }

    /** Every counted read must have been emitted. */
    void
    checkBalance() const
    {
        for (NodeId v = 0; v < dag.numNodes(); ++v)
            dpu_assert(remainingReads[v] == 0,
                       "read accounting out of balance");
    }

    const Dag &dag;
    const ArchConfig &cfg;
    const BlockDecomposition &dec;
    const BankAssignment &banks;
    Rng rng;

    IrProgram ir;
    std::vector<uint32_t> remainingReads;
    std::vector<uint32_t> inputIndexOf;
    std::vector<bool> loaded;
    std::vector<InstanceId> instOf;
    std::vector<uint32_t> rowCounter;
    uint32_t inputRows = 0;
};

} // namespace

IrProgram
generateIr(const Dag &dag, const ArchConfig &cfg,
           const BlockDecomposition &dec, const BankAssignment &banks)
{
    return CodeGen(dag, cfg, dec, banks).run();
}

} // namespace dpu
