#include "compiler/codegen.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/rng.hh"

namespace dpu {

namespace {

/** Per-fragment RNG stream: partition 0 keeps the historical seed so
 *  single-partition compiles reproduce the monolithic pass bit for
 *  bit; later partitions get decorrelated deterministic streams. */
uint64_t
fragmentRngSeed(uint32_t part)
{
    return 0xc0de + 0x9e3779b97f4a7c15ull * part;
}

/** Generates one partition's IR fragment. Per-node working state is
 *  a range-local array for the partition's own ids plus small hash
 *  maps for the below-range values its blocks read (inputs loaded
 *  here, io values of earlier partitions), so many fragments stay
 *  O(total nodes) together instead of O(fragments x nodes). */
class CodeGen
{
  public:
    CodeGen(const Dag &dag, const ArchConfig &cfg,
            std::span<const Block> blocks,
            std::pair<NodeId, NodeId> range, const BankAssignment &banks,
            const CodegenShared &shared, uint32_t part)
        : dag(dag), cfg(cfg), blocks(blocks), lo(range.first),
          hi(range.second), banks(banks), shared(shared), part(part),
          rng(fragmentRngSeed(part))
    {
        dpu_assert(lo <= hi && hi <= dag.numNodes(), "bad range");
    }

    IrFragment
    run()
    {
        remainingLocal.assign(hi - lo, 0);
        instLocal.assign(hi - lo, invalidInstance);
        rowCounter.assign(cfg.banks, 0);
        countReads();
        for (uint32_t b = 0; b < blocks.size(); ++b)
            emitBlock(b);
        checkBalance();
        return std::move(frag);
    }

  private:
    IrProgram &ir() { return frag.ir; }

    bool inRange(NodeId v) const { return v >= lo && v < hi; }

    /** Pending local reads of v (reader blocks in this fragment). */
    uint32_t &
    remainingOf(NodeId v)
    {
        return inRange(v) ? remainingLocal[v - lo] : remainingExt[v];
    }

    /** Primary instance this fragment created for v (invalid if it
     *  has not, i.e. the value is external or not yet defined). */
    InstanceId
    instanceOf(NodeId v) const
    {
        if (inRange(v))
            return instLocal[v - lo];
        auto it = instExt.find(v);
        return it == instExt.end() ? invalidInstance : it->second;
    }

    void
    setInstance(NodeId v, InstanceId id)
    {
        if (inRange(v))
            instLocal[v - lo] = id;
        else
            instExt[v] = id;
    }

    void
    countReads()
    {
        for (const Block &blk : blocks)
            for (NodeId v : blk.inputs)
                ++remainingOf(v);
    }

    /** True when this read is the globally last register read of v:
     *  the last one in this fragment, in the partition holding the
     *  value's final reader. */
    bool
    consumeRead(NodeId v)
    {
        uint32_t &remaining = remainingOf(v);
        dpu_assert(remaining > 0, "read accounting underflow");
        return --remaining == 0 && shared.lastReaderPart[v] == part;
    }

    InstanceId
    newInstance(NodeId value, uint32_t bank, uint32_t pe)
    {
        ir().instances.push_back({value, bank, pe});
        return static_cast<InstanceId>(ir().instances.size() - 1);
    }

    /** Local primary instance, or an external reference for values
     *  loaded / produced by an earlier partition. */
    InstanceId
    primaryIdOf(NodeId v)
    {
        InstanceId id = instanceOf(v);
        if (id != invalidInstance)
            return id;
        auto [it, fresh] = externalIndexOf.try_emplace(
            v, static_cast<uint32_t>(frag.externals.size()));
        if (fresh)
            frag.externals.push_back(v);
        return IrFragment::externalFlag | it->second;
    }

    /** Home bank of the instance behind `id` (externals keep the
     *  home bank their owner chose). */
    uint32_t
    bankOfId(NodeId value, InstanceId id) const
    {
        if (IrFragment::isExternal(id))
            return banks.bankOf[value];
        return frag.ir.instances[id].bank;
    }

    /** Emit loads for the block's DAG inputs this fragment owns. */
    void
    emitLoads(const Block &blk)
    {
        // Gather the batch of inputs this block needs for the first
        // time. Inputs that are consumed together should live in the
        // same memory row so one vector load covers them all: align
        // the whole batch (bank columns permitting) to the highest
        // per-bank fill level, then advance those banks' levels. Rows
        // are fragment-local here; mergeIrFragments() replays them
        // against the global counters.
        std::vector<NodeId> batch;
        for (NodeId v : blk.inputs) {
            if (!dag.node(v).isInput() ||
                instanceOf(v) != invalidInstance) // already loaded here
                continue;
            if (shared.firstLoaderPart[v] != part)
                continue; // an earlier partition's fragment loads it
            batch.push_back(v);
        }
        std::map<uint32_t, std::vector<NodeId>> by_row;
        while (!batch.empty()) {
            // One aligned row per round; duplicate banks spill into
            // the next round.
            uint64_t used = 0;
            uint32_t row = 0;
            std::vector<NodeId> round;
            for (auto it = batch.begin(); it != batch.end();) {
                uint32_t bank = banks.bankOf[*it];
                if (used >> bank & 1) {
                    ++it;
                    continue;
                }
                used |= uint64_t(1) << bank;
                row = std::max(row, rowCounter[bank]);
                round.push_back(*it);
                it = batch.erase(it);
            }
            for (NodeId v : round) {
                uint32_t bank = banks.bankOf[v];
                rowCounter[bank] = row + 1;
                by_row[row].push_back(v);
            }
        }
        for (auto &[row, values] : by_row) {
            IrInstr load;
            load.kind = InstrKind::Load;
            load.memRow = row;
            for (NodeId v : values) {
                InstanceId id = newInstance(v, banks.bankOf[v],
                                            BankAssignment::invalid);
                setInstance(v, id);
                frag.defs.push_back({v, id});
                load.writes.push_back({id});
            }
            ir().instrs.push_back(std::move(load));
        }
    }

    /**
     * Resolve read conflicts with copies; returns the per-value
     * instance each read of this block should use.
     */
    std::map<NodeId, InstanceId>
    emitConflictCopies(const Block &blk)
    {
        std::map<NodeId, InstanceId> use;
        uint64_t used_banks = 0;
        std::vector<NodeId> displaced;
        // First pass: one value may keep each home bank.
        std::map<uint32_t, NodeId> keeper;
        for (NodeId v : blk.inputs) {
            uint32_t bank = banks.bankOf[v];
            auto [it, fresh] = keeper.try_emplace(bank, v);
            if (fresh) {
                use[v] = primaryIdOf(v);
                used_banks |= uint64_t(1) << bank;
            } else {
                displaced.push_back(v);
            }
        }
        if (displaced.empty())
            return use;

        ir().copyResolvedConflicts += displaced.size();

        // Pick a fresh bank per displaced value and batch the copies
        // into copy_4s with distinct source and destination banks.
        struct PendingCopy
        {
            NodeId value;
            uint32_t srcBank;
            uint32_t dstBank;
        };
        std::vector<PendingCopy> pending;
        for (NodeId v : displaced) {
            uint64_t free = ~used_banks;
            if (cfg.banks < 64)
                free &= (uint64_t(1) << cfg.banks) - 1;
            dpu_assert(free, "no free bank for conflict copy");
            uint32_t n = static_cast<uint32_t>(__builtin_popcountll(free));
            uint32_t k = static_cast<uint32_t>(rng.below(n));
            uint32_t dst = 0;
            for (uint32_t b = 0;; ++b) {
                if ((free >> b) & 1) {
                    if (k == 0) {
                        dst = b;
                        break;
                    }
                    --k;
                }
            }
            used_banks |= uint64_t(1) << dst;
            pending.push_back({v, banks.bankOf[v], dst});
        }
        while (!pending.empty()) {
            IrInstr copy;
            copy.kind = InstrKind::Copy4;
            uint64_t src_used = 0, dst_used = 0;
            for (auto it = pending.begin();
                 it != pending.end() && copy.reads.size() < 4;) {
                uint64_t sbit = uint64_t(1) << it->srcBank;
                uint64_t dbit = uint64_t(1) << it->dstBank;
                if ((src_used & sbit) || (dst_used & dbit)) {
                    ++it;
                    continue;
                }
                src_used |= sbit;
                dst_used |= dbit;
                NodeId v = it->value;
                copy.reads.push_back({primaryIdOf(v), consumeRead(v)});
                InstanceId tmp = newInstance(v, it->dstBank,
                                             BankAssignment::invalid);
                copy.writes.push_back({tmp});
                use[v] = tmp;
                it = pending.erase(it);
            }
            dpu_assert(!copy.reads.empty(), "copy packing stuck");
            ir().instrs.push_back(std::move(copy));
        }
        return use;
    }

    void
    emitBlock(uint32_t block_id)
    {
        const Block &blk = blocks[block_id];
        emitLoads(blk);
        auto use = emitConflictCopies(blk);

        IrInstr exec;
        exec.kind = InstrKind::Exec;
        exec.blockId = block_id; // fragment-local; merge offsets it
        exec.inputSel.assign(cfg.banks, 0);
        for (NodeId v : blk.inputs) {
            InstanceId inst = use.at(v);
            bool is_temp = inst != primaryIdOf(v);
            bool last = is_temp ? true : consumeRead(v);
            exec.reads.push_back({inst, last});
        }
        for (const PortRead &r : blk.reads)
            exec.inputSel[r.port] = static_cast<uint16_t>(
                bankOfId(r.value, use.at(r.value)));
        for (NodeId v : blk.outputs) {
            InstanceId id = newInstance(v, banks.bankOf[v], banks.peOf[v]);
            setInstance(v, id);
            frag.defs.push_back({v, id});
            exec.writes.push_back({id});
        }
        ir().instrs.push_back(std::move(exec));
    }

    /** Every locally counted read must have been emitted. */
    void
    checkBalance() const
    {
        for (uint32_t remaining : remainingLocal)
            dpu_assert(remaining == 0, "read accounting out of balance");
        for (const auto &kv : remainingExt)
            dpu_assert(kv.second == 0,
                       "read accounting out of balance");
    }

    const Dag &dag;
    const ArchConfig &cfg;
    std::span<const Block> blocks;
    NodeId lo;
    NodeId hi;
    const BankAssignment &banks;
    const CodegenShared &shared;
    uint32_t part;
    Rng rng;

    IrFragment frag;
    std::unordered_map<NodeId, uint32_t> externalIndexOf;
    std::vector<uint32_t> remainingLocal; ///< idx space: v - lo.
    std::unordered_map<NodeId, uint32_t> remainingExt;
    std::vector<InstanceId> instLocal;    ///< idx space: v - lo.
    std::unordered_map<NodeId, InstanceId> instExt;
    std::vector<uint32_t> rowCounter;
};

} // namespace

CodegenShared
computeCodegenShared(const Dag &dag,
                     const std::vector<std::span<const Block>> &partBlocks)
{
    CodegenShared shared;
    shared.inputIndexOf.assign(dag.numNodes(), CodegenShared::never);
    uint32_t k = 0;
    for (NodeId v = 0; v < dag.numNodes(); ++v)
        if (dag.node(v).isInput())
            shared.inputIndexOf[v] = k++;
    shared.numInputs = k;

    shared.firstLoaderPart.assign(dag.numNodes(), CodegenShared::never);
    shared.lastReaderPart.assign(dag.numNodes(), CodegenShared::never);
    for (uint32_t p = 0; p < partBlocks.size(); ++p) {
        for (const Block &blk : partBlocks[p]) {
            for (NodeId v : blk.inputs) {
                if (shared.firstLoaderPart[v] == CodegenShared::never)
                    shared.firstLoaderPart[v] = p;
                shared.lastReaderPart[v] = p; // partitions ascend
            }
        }
    }
    // Compute sinks are read one final time by the closing store.
    for (NodeId s : dag.sinks())
        if (!dag.node(s).isInput())
            shared.lastReaderPart[s] = CodegenShared::storeSentinel;
    return shared;
}

IrFragment
generateIrForRange(const Dag &dag, const ArchConfig &cfg,
                   std::span<const Block> blocks,
                   std::pair<NodeId, NodeId> range,
                   const BankAssignment &banks,
                   const CodegenShared &shared, uint32_t part)
{
    return CodeGen(dag, cfg, blocks, range, banks, shared, part).run();
}

IrProgram
mergeIrFragments(const Dag &dag, const ArchConfig &cfg,
                 const BankAssignment &banks, const CodegenShared &shared,
                 std::vector<IrFragment> &&fragments,
                 const std::vector<size_t> &blocksPerPart)
{
    dpu_assert(fragments.size() == blocksPerPart.size(),
               "fragment/block-count mismatch");
    IrProgram out;
    size_t total_instances = 0, total_instrs = 0;
    for (const IrFragment &f : fragments) {
        total_instances += f.ir.instances.size();
        total_instrs += f.ir.instrs.size();
    }
    out.instances.reserve(total_instances);
    out.instrs.reserve(total_instrs);
    out.inputLocation.assign(shared.numInputs, {0, 0});

    // Current primary instance of each value, across fragments.
    std::vector<InstanceId> instOf(dag.numNodes(), invalidInstance);
    std::vector<uint32_t> rowCounter(cfg.banks, 0);
    uint32_t inputRows = 0;
    uint32_t blockOffset = 0;

    auto remap = [&](InstanceId id, uint32_t inst_offset,
                     const IrFragment &f) {
        if (IrFragment::isExternal(id)) {
            NodeId v = f.externals[id & ~IrFragment::externalFlag];
            dpu_assert(instOf[v] != invalidInstance,
                       "external reference before definition");
            return instOf[v];
        }
        return id + inst_offset;
    };

    for (size_t fi = 0; fi < fragments.size(); ++fi) {
        IrFragment &f = fragments[fi];
        uint32_t inst_offset = static_cast<uint32_t>(out.instances.size());
        out.instances.insert(out.instances.end(),
                             f.ir.instances.begin(),
                             f.ir.instances.end());
        for (auto [value, id] : f.defs)
            instOf[value] = id + inst_offset;

        for (IrInstr &in : f.ir.instrs) {
            for (IrRead &r : in.reads)
                r.inst = remap(r.inst, inst_offset, f);
            for (IrWrite &w : in.writes)
                w.inst += inst_offset;
            if (in.kind == InstrKind::Exec)
                in.blockId += blockOffset;
            if (in.kind == InstrKind::Load) {
                // Replay the row allocation against the global
                // per-bank fill levels (fragments numbered their rows
                // from zero). One aligned row per load instruction.
                uint32_t row = 0;
                for (const IrWrite &w : in.writes)
                    row = std::max(row,
                                   rowCounter[out.instances[w.inst].bank]);
                in.memRow = row;
                for (const IrWrite &w : in.writes) {
                    const RegInstance &inst = out.instances[w.inst];
                    rowCounter[inst.bank] = row + 1;
                    out.inputLocation[shared.inputIndexOf[inst.value]] =
                        {row, inst.bank};
                }
                inputRows = std::max(inputRows, row + 1);
            }
            out.instrs.push_back(std::move(in));
        }
        out.copyResolvedConflicts += f.ir.copyResolvedConflicts;
        blockOffset += static_cast<uint32_t>(blocksPerPart[fi]);
    }

    // Final stores: every DAG result goes to the output region.
    std::vector<NodeId> compute_sinks;
    for (NodeId s : dag.sinks()) {
        if (dag.node(s).isInput()) {
            // The result *is* an input. Input sinks have no
            // consumers, so no fragment loaded them: give them a
            // memory home now (no hardware work needed).
            dpu_assert(instOf[s] == invalidInstance,
                       "input sink was loaded");
            uint32_t bank = banks.bankOf[s];
            uint32_t row = rowCounter[bank]++;
            inputRows = std::max(inputRows, row + 1);
            out.inputLocation[shared.inputIndexOf[s]] = {row, bank};
            out.outputs.push_back({s, row, bank});
        } else {
            compute_sinks.push_back(s);
        }
    }
    uint32_t out_row = inputRows;
    while (!compute_sinks.empty()) {
        // One store per round; each bank contributes one value.
        uint64_t used = 0;
        std::vector<NodeId> batch;
        for (auto it = compute_sinks.begin(); it != compute_sinks.end();) {
            uint32_t bank = banks.bankOf[*it];
            if (used >> bank & 1) {
                ++it;
                continue;
            }
            used |= uint64_t(1) << bank;
            batch.push_back(*it);
            it = compute_sinks.erase(it);
        }
        IrInstr store;
        store.kind = batch.size() <= 4 ? InstrKind::Store4
                                       : InstrKind::Store;
        store.memRow = out_row;
        for (NodeId v : batch) {
            dpu_assert(shared.lastReaderPart[v] ==
                       CodegenShared::storeSentinel,
                       "store must be the final read");
            dpu_assert(instOf[v] != invalidInstance,
                       "stored value never defined");
            store.reads.push_back({instOf[v], true});
            out.outputs.push_back({v, out_row, banks.bankOf[v]});
        }
        out.instrs.push_back(std::move(store));
        ++out_row;
    }
    out.inputRows = inputRows;
    out.outputRows = out_row - inputRows;
    return out;
}

ScheduledIrMerger::ScheduledIrMerger(const Dag &dag_, const ArchConfig &cfg_,
                                     const BankAssignment &banks_,
                                     const CodegenShared &shared_)
    : dag(dag_), cfg(cfg_), banks(banks_), shared(shared_)
{
    out.inputLocation.assign(shared.numInputs, {0, 0});
    instOf.assign(dag.numNodes(), invalidInstance);
    rowCounter.assign(cfg.banks, 0);
}

void
ScheduledIrMerger::append(IrFragment &&f, size_t numBlocks)
{
    const uint32_t inst_offset = static_cast<uint32_t>(out.instances.size());
    out.instances.insert(out.instances.end(), f.ir.instances.begin(),
                         f.ir.instances.end());
    readyAt.resize(out.instances.size(), 0);
    for (auto [value, id] : f.defs)
        instOf[value] = id + inst_offset;

    // Pass 1: resolve reads/writes to merged instance ids and find
    // the boundary padding: the fragment was scheduled assuming
    // external values are readable at its cycle 0, so shift it until
    // every cross-fragment producer's write latency has elapsed.
    const uint64_t base = out.instrs.size();
    uint64_t shift = 0;
    for (size_t i = 0; i < f.ir.instrs.size(); ++i) {
        IrInstr &in = f.ir.instrs[i];
        for (IrRead &r : in.reads) {
            if (IrFragment::isExternal(r.inst)) {
                NodeId v = f.externals[r.inst & ~IrFragment::externalFlag];
                dpu_assert(instOf[v] != invalidInstance,
                           "external reference before definition");
                r.inst = instOf[v];
            } else {
                r.inst += inst_offset;
            }
            if (r.inst < inst_offset) { // produced by an earlier fragment
                const uint64_t pos = base + i;
                if (readyAt[r.inst] > pos)
                    shift = std::max(shift, readyAt[r.inst] - pos);
            }
        }
        for (IrWrite &w : in.writes)
            w.inst += inst_offset;
        if (in.kind == InstrKind::Exec)
            in.blockId += blockOffset;
    }
    boundaryNopCount += shift;
    for (uint64_t k = 0; k < shift; ++k)
        out.instrs.push_back(IrInstr{}); // nop

    // Pass 2: replay load rows against the global fill levels and
    // record when each write becomes readable.
    for (IrInstr &in : f.ir.instrs) {
        if (in.kind == InstrKind::Load) {
            uint32_t row = 0;
            for (const IrWrite &w : in.writes)
                row = std::max(row, rowCounter[out.instances[w.inst].bank]);
            in.memRow = row;
            for (const IrWrite &w : in.writes) {
                const RegInstance &inst = out.instances[w.inst];
                rowCounter[inst.bank] = row + 1;
                out.inputLocation[shared.inputIndexOf[inst.value]] =
                    {row, inst.bank};
            }
            inputRows = std::max(inputRows, row + 1);
        }
        const uint64_t pos = out.instrs.size();
        for (const IrWrite &w : in.writes)
            readyAt[w.inst] = pos + writeLatency(in.kind, cfg);
        out.instrs.push_back(std::move(in));
    }
    out.copyResolvedConflicts += f.ir.copyResolvedConflicts;
    blockOffset += static_cast<uint32_t>(numBlocks);
}

void
ScheduledIrMerger::finish()
{
    std::vector<NodeId> compute_sinks;
    for (NodeId s : dag.sinks()) {
        if (dag.node(s).isInput()) {
            dpu_assert(instOf[s] == invalidInstance,
                       "input sink was loaded");
            uint32_t bank = banks.bankOf[s];
            uint32_t row = rowCounter[bank]++;
            inputRows = std::max(inputRows, row + 1);
            out.inputLocation[shared.inputIndexOf[s]] = {row, bank};
            out.outputs.push_back({s, row, bank});
        } else {
            compute_sinks.push_back(s);
        }
    }
    uint32_t out_row = inputRows;
    while (!compute_sinks.empty()) {
        uint64_t used = 0;
        std::vector<NodeId> batch;
        for (auto it = compute_sinks.begin(); it != compute_sinks.end();) {
            uint32_t bank = banks.bankOf[*it];
            if (used >> bank & 1) {
                ++it;
                continue;
            }
            used |= uint64_t(1) << bank;
            batch.push_back(*it);
            it = compute_sinks.erase(it);
        }
        IrInstr store;
        store.kind = batch.size() <= 4 ? InstrKind::Store4
                                       : InstrKind::Store;
        store.memRow = out_row;
        uint64_t need = 0;
        for (NodeId v : batch) {
            dpu_assert(shared.lastReaderPart[v] ==
                       CodegenShared::storeSentinel,
                       "store must be the final read");
            dpu_assert(instOf[v] != invalidInstance,
                       "stored value never defined");
            store.reads.push_back({instOf[v], true});
            out.outputs.push_back({v, out_row, banks.bankOf[v]});
            need = std::max(need, readyAt[instOf[v]]);
        }
        // The store reads registers like any instruction: pad until
        // the last producing write has landed.
        while (out.instrs.size() < need) {
            out.instrs.push_back(IrInstr{}); // nop
            ++boundaryNopCount;
        }
        out.instrs.push_back(std::move(store));
        ++out_row;
    }
    out.inputRows = inputRows;
    out.outputRows = out_row - inputRows;
}

IrProgram
generateIr(const Dag &dag, const ArchConfig &cfg,
           const BlockDecomposition &dec, const BankAssignment &banks)
{
    std::vector<std::span<const Block>> partBlocks{
        std::span<const Block>(dec.blocks)};
    CodegenShared shared = computeCodegenShared(dag, partBlocks);
    std::vector<IrFragment> frags;
    frags.push_back(generateIrForRange(
        dag, cfg, partBlocks[0],
        {0, static_cast<NodeId>(dag.numNodes())}, banks, shared, 0));
    return mergeIrFragments(dag, cfg, banks, shared, std::move(frags),
                            {dec.blocks.size()});
}

} // namespace dpu
