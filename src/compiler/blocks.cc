#include "compiler/blocks.hh"

#include <algorithm>
#include <set>

#include "dag/algorithms.hh"

namespace dpu {

namespace {

/** A free subtree slot of the buddy allocator. */
struct FreeSlot
{
    uint32_t tree;
    uint32_t index;
};

/**
 * Step-1 engine for one contiguous id range. All per-node state is
 * range-local; nodes outside the range count as mapped (inputs live
 * in registers, earlier partitions were fully mapped before this one
 * in the equivalent sequential pass, and later partitions cannot be
 * ancestors because edges point backward in id order). Maintains,
 * incrementally:
 *  - h[v]: length of the longest chain of unmapped ancestors ending at
 *    v (capped at D+1 = unschedulable). A node is a schedulable sink
 *    iff h[v] <= D.
 *  - per-depth candidate buckets ordered by DFS preorder position.
 */
class BlockBuilder
{
  public:
    BlockBuilder(const Dag &dag, const ArchConfig &cfg,
                 std::pair<NodeId, NodeId> range,
                 const std::vector<uint32_t> &dfs_positions)
        : dag(dag), cfg(cfg), rangeLo(range.first),
          rangeHi(range.second), dfsPos(dfs_positions),
          mapped(extent(), false),
          h(extent(), 0),
          stamp(extent(), 0),
          coneStamp(extent(), 0),
          buckets(cfg.depth + 1)
    {
        dpu_assert(rangeLo <= rangeHi && rangeHi <= dag.numNodes(),
                   "bad partition range");
    }

    RangeDecomposition
    run()
    {
        initHeights();
        RangeDecomposition dec;
        dec.range = {rangeLo, rangeHi};
        dec.blockOf.assign(extent(), BlockDecomposition::noBlock);

        size_t remaining = populateBuckets();
        while (remaining) {
            Block block = buildOneBlock();
            dpu_assert(!block.subgraphs.empty(),
                       "empty block with nodes remaining");
            commitBlock(block, dec);
            for (const Subgraph &sg : block.subgraphs)
                remaining -= sg.nodes.size();
            unrollBlock(block);
            dec.blocks.push_back(std::move(block));
        }
        finalizeIoMarks(dec);
        return dec;
    }

  private:
    static constexpr uint32_t probeLimit = 8;

    size_t extent() const { return rangeHi - rangeLo; }

    bool
    inRange(NodeId v) const
    {
        return v >= rangeLo && v < rangeHi;
    }

    size_t idx(NodeId v) const { return v - rangeLo; }

    /** Mapped state with out-of-range nodes counting as mapped. */
    bool
    isMapped(NodeId v) const
    {
        return !inRange(v) || mapped[idx(v)];
    }

    void
    initHeights()
    {
        const uint32_t cap = cfg.depth + 1;
        for (NodeId v = rangeLo; v < rangeHi; ++v) {
            const Node &n = dag.node(v);
            if (n.isInput()) {
                mapped[idx(v)] = true; // inputs live in registers
                continue;
            }
            uint32_t best = 0;
            for (NodeId o : n.operands)
                if (!isMapped(o))
                    best = std::max(best, h[idx(o)]);
            h[idx(v)] = std::min(best + 1, cap);
        }
    }

    /** Insert the range's candidates; count its compute nodes. */
    size_t
    populateBuckets()
    {
        size_t remaining = 0;
        for (NodeId v = rangeLo; v < rangeHi; ++v) {
            if (dag.node(v).isInput())
                continue;
            ++remaining;
            if (h[idx(v)] <= cfg.depth)
                buckets[h[idx(v)]].insert({dfsPos[v], v});
        }
        return remaining;
    }

    uint32_t
    recomputeHeight(NodeId v) const
    {
        uint32_t best = 0;
        for (NodeId o : dag.node(v).operands)
            if (!isMapped(o))
                best = std::max(best, h[idx(o)]);
        return std::min(best + 1, cfg.depth + 1);
    }

    /** Gather the cone of `sink`; fail if it overlaps epoch-stamped
     *  nodes (i.e. nodes already picked for the current block). */
    bool
    materializeCone(NodeId sink, uint64_t epoch, std::vector<NodeId> &cone)
    {
        cone.clear();
        dfsStack.clear();
        dfsStack.push_back(sink);
        uint64_t visit_epoch = ++visitCounter;
        while (!dfsStack.empty()) {
            NodeId v = dfsStack.back();
            dfsStack.pop_back();
            if (coneStamp[idx(v)] == visit_epoch)
                continue;
            coneStamp[idx(v)] = visit_epoch;
            if (stamp[idx(v)] == epoch)
                return false; // overlaps a cone already in this block
            cone.push_back(v);
            for (NodeId o : dag.node(v).operands)
                if (!isMapped(o))
                    dfsStack.push_back(o);
        }
        return true;
    }

    /**
     * Pick the best schedulable candidate: deepest depth first
     * (objective C — deeper cones hold more nodes), nearest to the
     * anchor in DFS order within a depth (objective D). Returns
     * invalidNode if nothing fits `dcap`.
     */
    NodeId
    pickCandidate(uint32_t dcap, uint32_t anchor, uint64_t epoch,
                  std::vector<NodeId> &cone, uint32_t &depth)
    {
        for (uint32_t d = std::min(cfg.depth, dcap); d >= 1; --d) {
            auto &bucket = buckets[d];
            if (bucket.empty())
                continue;
            auto fwd = bucket.lower_bound({anchor, 0});
            auto bwd = fwd;
            for (uint32_t probes = 0;
                 probes < probeLimit &&
                 (fwd != bucket.end() || bwd != bucket.begin());
                 ++probes) {
                // Take the nearer of the next forward/backward entry.
                bool take_fwd;
                if (fwd == bucket.end())
                    take_fwd = false;
                else if (bwd == bucket.begin())
                    take_fwd = true;
                else {
                    uint32_t df = fwd->first - anchor;
                    uint32_t db = anchor - std::prev(bwd)->first;
                    take_fwd = df <= db;
                }
                NodeId v;
                if (take_fwd) {
                    v = fwd->second;
                    ++fwd;
                } else {
                    --bwd;
                    v = bwd->second;
                }
                dpu_assert(!mapped[idx(v)] && h[idx(v)] == d,
                           "stale bucket entry");
                if (materializeCone(v, epoch, cone)) {
                    depth = d;
                    return v;
                }
            }
        }
        return invalidNode;
    }

    /** Build one block: pick cones and pack them into buddy slots. */
    Block
    buildOneBlock()
    {
        Block block;
        ++blockEpoch;

        // Buddy slot pool: one full-depth slot per tree.
        std::vector<std::vector<FreeSlot>> free(cfg.depth + 1);
        for (uint32_t t = 0; t < cfg.trees(); ++t)
            free[cfg.depth].push_back({t, 0});

        std::vector<NodeId> cone;
        for (;;) {
            uint32_t dcap = 0;
            for (uint32_t d = cfg.depth; d >= 1; --d) {
                if (!free[d].empty()) {
                    dcap = d;
                    break;
                }
            }
            if (dcap == 0)
                break; // datapath full

            uint32_t depth = 0;
            NodeId sink = pickCandidate(dcap, anchor, blockEpoch, cone,
                                        depth);
            if (sink == invalidNode)
                break; // nothing schedulable fits the leftover slots

            // Best-fit slot: smallest free depth >= cone depth, split
            // down buddy-style (this is what yields fig. 9(d)'s depth
            // combinations).
            uint32_t at = depth;
            while (free[at].empty())
                ++at;
            FreeSlot slot = free[at].back();
            free[at].pop_back();
            while (at > depth) {
                --at;
                free[at].push_back({slot.tree, slot.index * 2 + 1});
                slot.index = slot.index * 2;
            }

            Subgraph sg;
            sg.sink = sink;
            sg.nodes = cone;
            sg.depth = depth;
            sg.tree = slot.tree;
            sg.rootLayer = depth;
            sg.rootIndex = slot.index;
            for (NodeId v : cone)
                stamp[idx(v)] = blockEpoch;
            block.subgraphs.push_back(std::move(sg));
            anchor = dfsPos[sink];
        }
        return block;
    }

    /** Mark the block's nodes mapped and ripple height updates. */
    void
    commitBlock(const Block &block, RangeDecomposition &dec)
    {
        uint32_t block_id = static_cast<uint32_t>(dec.blocks.size());
        std::vector<NodeId> worklist;
        for (const Subgraph &sg : block.subgraphs) {
            for (NodeId v : sg.nodes) {
                dpu_assert(!mapped[idx(v)], "node mapped twice");
                mapped[idx(v)] = true;
                dec.blockOf[idx(v)] = block_id;
                if (h[idx(v)] <= cfg.depth)
                    buckets[h[idx(v)]].erase({dfsPos[v], v});
                for (NodeId s : dag.successors(v))
                    if (inRange(s) && !mapped[idx(s)])
                        worklist.push_back(s);
            }
        }
        // Heights only decrease; each node settles after <= D+1 drops.
        while (!worklist.empty()) {
            NodeId v = worklist.back();
            worklist.pop_back();
            if (mapped[idx(v)])
                continue;
            uint32_t nh = recomputeHeight(v);
            if (nh == h[idx(v)])
                continue;
            if (h[idx(v)] <= cfg.depth)
                buckets[h[idx(v)]].erase({dfsPos[v], v});
            h[idx(v)] = nh;
            if (h[idx(v)] <= cfg.depth)
                buckets[h[idx(v)]].insert({dfsPos[v], v});
            for (NodeId s : dag.successors(v))
                if (inRange(s) && !mapped[idx(s)])
                    worklist.push_back(s);
        }
    }

    /** True if `v` belongs to the cone currently being unrolled. */
    bool
    inCone(NodeId v) const
    {
        return inRange(v) && coneStamp[idx(v)] == visitCounter;
    }

    /** Thread a register value up through pass-through PEs. */
    void
    passDown(Block &block, PeCoord at, NodeId value)
    {
        uint32_t pe = cfg.peId(at);
        dpu_assert(block.peOps[pe] == PeOp::Nop, "PE double-booked");
        block.peOps[pe] = PeOp::PassA;
        if (at.layer == 1) {
            block.reads.push_back(
                {cfg.portBank(at.tree, at.index * 2), value});
            return;
        }
        passDown(block, {at.tree, at.layer - 1, at.index * 2}, value);
    }

    /** Recursively place a cone node (replicating shared nodes). */
    void
    placeNode(Block &block, NodeId v, PeCoord at)
    {
        uint32_t pe = cfg.peId(at);
        dpu_assert(block.peOps[pe] == PeOp::Nop, "PE double-booked");
        const Node &n = dag.node(v);
        block.peOps[pe] = n.op == OpType::Add ? PeOp::Add : PeOp::Mul;
        block.placements[v].push_back(pe);
        dpu_assert(n.operands.size() == 2, "DAG must be binarized");
        if (at.layer == 1) {
            for (uint32_t i = 0; i < 2; ++i) {
                NodeId o = n.operands[i];
                dpu_assert(!inCone(o), "cone node below layer 1");
                block.reads.push_back(
                    {cfg.portBank(at.tree, at.index * 2 + i), o});
            }
            return;
        }
        for (uint32_t i = 0; i < 2; ++i) {
            NodeId o = n.operands[i];
            PeCoord child{at.tree, at.layer - 1, at.index * 2 + i};
            if (inCone(o))
                placeNode(block, o, child);
            else
                passDown(block, child, o);
        }
    }

    /** Fill peOps / reads / placements for a finished block. */
    void
    unrollBlock(Block &block)
    {
        block.peOps.assign(cfg.numPes(), PeOp::Nop);
        for (const Subgraph &sg : block.subgraphs) {
            // Re-stamp the cone so inCone() answers for this subgraph.
            ++visitCounter;
            for (NodeId v : sg.nodes)
                coneStamp[idx(v)] = visitCounter;
            placeNode(block, sg.sink,
                      {sg.tree, sg.rootLayer, sg.rootIndex});
        }
        // Distinct input values.
        std::set<NodeId> ins;
        for (const PortRead &r : block.reads)
            ins.insert(r.value);
        block.inputs.assign(ins.begin(), ins.end());
    }

    /** Mark io values: DAG inputs plus block outputs. A successor
     *  outside the range always lives in a different (later) block. */
    void
    finalizeIoMarks(RangeDecomposition &dec)
    {
        dec.isIo.assign(extent(), 0);
        for (NodeId v = rangeLo; v < rangeHi; ++v) {
            if (dag.node(v).isInput()) {
                dec.isIo[idx(v)] = 1;
                continue;
            }
            uint32_t b = dec.blockOf[idx(v)];
            bool out = dag.successors(v).empty(); // DAG result
            for (NodeId s : dag.successors(v))
                if (!inRange(s) || dec.blockOf[idx(s)] != b)
                    out = true;
            if (out) {
                dec.isIo[idx(v)] = 1;
                dec.blocks[b].outputs.push_back(v);
            }
        }
    }

    const Dag &dag;
    const ArchConfig &cfg;
    NodeId rangeLo = 0;
    NodeId rangeHi = 0;
    const std::vector<uint32_t> &dfsPos;
    std::vector<bool> mapped;
    std::vector<uint32_t> h;
    std::vector<uint64_t> stamp;     ///< block-epoch pick marks
    std::vector<uint64_t> coneStamp; ///< cone-DFS visit marks
    std::vector<std::set<std::pair<uint32_t, NodeId>>> buckets;
    std::vector<NodeId> dfsStack;
    uint64_t blockEpoch = 0;
    uint64_t visitCounter = 0;
    uint32_t anchor = 0;
};

} // namespace

RangeDecomposition
decomposeRangeIntoBlocks(const Dag &dag, const ArchConfig &cfg,
                         uint64_t seed, std::pair<NodeId, NodeId> range,
                         const std::vector<uint32_t> &dfs_positions)
{
    (void)seed; // reserved: step 1 is currently tie-broken by DFS order
    return BlockBuilder(dag, cfg, range, dfs_positions).run();
}

BlockDecomposition
mergeRangeDecompositions(const Dag &dag,
                         std::vector<RangeDecomposition> &&pieces)
{
    BlockDecomposition dec;
    dec.blockOf.assign(dag.numNodes(), BlockDecomposition::noBlock);
    dec.isIo.assign(dag.numNodes(), false);
    size_t total_blocks = 0;
    for (const RangeDecomposition &piece : pieces)
        total_blocks += piece.blocks.size();
    dec.blocks.reserve(total_blocks);
    for (RangeDecomposition &piece : pieces) {
        uint32_t offset = static_cast<uint32_t>(dec.blocks.size());
        for (Block &b : piece.blocks)
            dec.blocks.push_back(std::move(b));
        NodeId lo = piece.range.first;
        for (size_t i = 0; i < piece.blockOf.size(); ++i) {
            if (piece.blockOf[i] != BlockDecomposition::noBlock)
                dec.blockOf[lo + i] = piece.blockOf[i] + offset;
            dec.isIo[lo + i] = piece.isIo[i] != 0;
        }
    }
    return dec;
}

BlockDecomposition
decomposeIntoBlocks(const Dag &dag, const ArchConfig &cfg, uint64_t seed,
                    const std::vector<std::pair<NodeId, NodeId>> &parts)
{
    cfg.check();
    dpu_assert(dag.isBinary(), "decompose needs a binarized DAG");
    std::vector<std::pair<NodeId, NodeId>> ranges = parts;
    if (ranges.empty())
        ranges.push_back({0, static_cast<NodeId>(dag.numNodes())});
    std::vector<uint32_t> dfs_positions = dfsPreorderPositions(dag);
    std::vector<RangeDecomposition> pieces;
    pieces.reserve(ranges.size());
    for (const auto &range : ranges)
        pieces.push_back(
            decomposeRangeIntoBlocks(dag, cfg, seed, range, dfs_positions));
    return mergeRangeDecompositions(dag, std::move(pieces));
}

void
validateDecomposition(const Dag &dag, const ArchConfig &cfg,
                      const BlockDecomposition &dec)
{
    // Every compute node appears in exactly one block.
    std::vector<uint32_t> seen(dag.numNodes(), 0);
    for (const Block &b : dec.blocks)
        for (const Subgraph &sg : b.subgraphs) {
            dpu_assert(sg.depth >= 1 && sg.depth <= cfg.depth,
                       "subgraph depth out of range");
            for (NodeId v : sg.nodes)
                ++seen[v];
        }
    for (NodeId v = 0; v < dag.numNodes(); ++v) {
        if (dag.node(v).isInput())
            dpu_assert(seen[v] == 0, "input node inside a block");
        else
            dpu_assert(seen[v] == 1, "compute node not covered once");
    }

    // Operand blocks strictly precede consumer blocks (constraint A),
    // unless operand and consumer share a block (tree edge).
    for (uint32_t bi = 0; bi < dec.blocks.size(); ++bi) {
        for (const Subgraph &sg : dec.blocks[bi].subgraphs)
            for (NodeId v : sg.nodes)
                for (NodeId o : dag.node(v).operands) {
                    if (dag.node(o).isInput())
                        continue;
                    dpu_assert(dec.blockOf[o] <= bi,
                               "operand in a later block");
                }
    }

    // Port reads: at most one value per port; ports exist.
    for (const Block &b : dec.blocks) {
        std::vector<bool> used(cfg.banks, false);
        for (const PortRead &r : b.reads) {
            dpu_assert(r.port < cfg.banks, "bad port");
            dpu_assert(!used[r.port], "port double-read");
            used[r.port] = true;
        }
        dpu_assert(b.peOps.size() == cfg.numPes(), "bad peOps size");
    }
}

} // namespace dpu
