#include "compiler/spatial.hh"

#include <algorithm>

#include "compiler/blocks.hh"
#include "dag/binarize.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace dpu {

namespace {

/**
 * One greedy systolic embedding attempt. Cells are filled in
 * wavefront (anti-diagonal) order; a cell may hold node x iff each of
 * x's two operands is either (a) the node in the required neighbour
 * cell, or (b) streamable from the array edge when the cell is on the
 * top/left border. Dies at the first cell with no candidate, which is
 * exactly how rigid nearest-neighbour dataflow starves on irregular
 * graphs.
 */
uint32_t
systolicAttempt(const Dag &dag, uint32_t k, Rng &rng)
{
    const NodeId none = invalidNode;
    std::vector<NodeId> cell(k * k, none);
    std::vector<bool> used(dag.numNodes(), false);
    auto at = [&](uint32_t i, uint32_t j) -> NodeId & {
        return cell[i * k + j];
    };

    uint32_t placed = 0;
    for (uint32_t diag = 0; diag < 2 * k - 1; ++diag) {
        for (uint32_t i = 0; i < k; ++i) {
            if (diag < i || diag - i >= k)
                continue;
            uint32_t j = diag - i;
            NodeId north = i ? at(i - 1, j) : none;
            NodeId west = j ? at(i, j - 1) : none;
            // Interior cells with a dead neighbour can never fire.
            if ((i && north == none) || (j && west == none))
                continue;

            // Candidate nodes: successors of the required neighbours,
            // or (for border cells) any unused node fed by streams.
            std::vector<NodeId> candidates;
            auto try_node = [&](NodeId v) {
                if (used[v] || dag.node(v).isInput())
                    return;
                const auto &ops = dag.node(v).operands;
                if (ops.size() != 2)
                    return;
                auto feeds = [&](NodeId operand, NodeId neighbour,
                                 bool border) {
                    if (neighbour != none)
                        return operand == neighbour;
                    // Border side: operand streams in from the edge
                    // as long as it is not produced inside the array
                    // this pass (simplification: any non-used value).
                    return border && !used[operand];
                };
                bool ok =
                    (feeds(ops[0], north, i == 0) &&
                     feeds(ops[1], west, j == 0)) ||
                    (feeds(ops[1], north, i == 0) &&
                     feeds(ops[0], west, j == 0));
                if (ok)
                    candidates.push_back(v);
            };
            if (north != none)
                for (NodeId s : dag.successors(north))
                    try_node(s);
            else if (west != none)
                for (NodeId s : dag.successors(west))
                    try_node(s);
            else {
                // Corner: sample a few random nodes fed by streams.
                for (int t = 0; t < 16; ++t)
                    try_node(static_cast<NodeId>(
                        rng.below(dag.numNodes())));
            }
            if (candidates.empty())
                continue;
            NodeId pick = rng.pick(candidates);
            at(i, j) = pick;
            used[pick] = true;
            ++placed;
        }
    }
    return placed;
}

} // namespace

double
systolicPeakUtilization(const Dag &input, uint32_t inputs,
                        uint32_t restarts, uint64_t seed)
{
    dpu_assert(inputs >= 2 && inputs % 2 == 0, "inputs must be even");
    BinarizeResult bin = binarize(input);
    const Dag &dag = bin.dag;
    uint32_t k = inputs / 2;
    if (k == 1) {
        // A single PE: trivially fully utilizable.
        return dag.numOperations() > 0 ? 1.0 : 0.0;
    }
    Rng rng(seed);
    uint32_t best = 0;
    for (uint32_t r = 0; r < restarts; ++r)
        best = std::max(best, systolicAttempt(dag, k, rng));
    return static_cast<double>(best) / (double(k) * k);
}

double
treePeakUtilization(const Dag &input, uint32_t inputs, uint64_t seed)
{
    dpu_assert(inputs >= 2 && (inputs & (inputs - 1)) == 0,
               "tree inputs must be a power of two");
    BinarizeResult bin = binarize(input);
    ArchConfig cfg;
    cfg.depth = 0;
    for (uint32_t v = inputs; v > 1; v >>= 1)
        ++cfg.depth;
    cfg.banks = inputs; // one tree
    cfg.regsPerBank = 32;
    auto dec = decomposeIntoBlocks(bin.dag, cfg, seed);
    uint32_t pe_count = cfg.numPes();
    uint32_t best = 0;
    for (const Block &b : dec.blocks) {
        uint32_t arith = 0;
        for (PeOp op : b.peOps)
            if (op == PeOp::Add || op == PeOp::Mul)
                ++arith;
        best = std::max(best, arith);
    }
    return static_cast<double>(best) / pe_count;
}

} // namespace dpu
