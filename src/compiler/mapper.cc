#include "compiler/mapper.hh"

#include <algorithm>
#include <bit>

#include "arch/interconnect.hh"
#include "support/rng.hh"

namespace dpu {

namespace {

/** Banks are capped at 64 so a compatibility set fits one word. */
using BankMask = uint64_t;

uint32_t
popcount(BankMask m)
{
    return static_cast<uint32_t>(std::popcount(m));
}

/** Pick the k-th (random) set bit of a mask. */
uint32_t
randomSetBit(BankMask m, Rng &rng)
{
    uint32_t n = popcount(m);
    dpu_assert(n > 0, "empty mask");
    uint32_t k = static_cast<uint32_t>(rng.below(n));
    for (uint32_t b = 0;; ++b) {
        if ((m >> b) & 1) {
            if (k == 0)
                return b;
            --k;
        }
    }
}

/**
 * Step-2 engine over one contiguous id range. Per-node state is
 * range-local (indexed v - lo); block inputs coming from outside the
 * range already have their banks fixed by their owning range and are
 * simply ignored by the conflict objectives here.
 */
class BankMapper
{
  public:
    BankMapper(const Dag &dag, const ArchConfig &cfg,
               const std::vector<Block> &blocks, NodeId lo, NodeId hi,
               const uint32_t *block_of, const uint8_t *is_io,
               BankPolicy policy, uint64_t seed,
               const uint32_t *ext_bank_of = nullptr)
        : dag(dag), cfg(cfg), blocks(blocks), lo(lo), hi(hi),
          blockOf(block_of), isIo(is_io), policy(policy), rng(seed),
          extBankOf(ext_bank_of)
    {
        dpu_assert(cfg.banks <= 64, "bank masks are 64-bit");
        dpu_assert(lo <= hi && hi <= dag.numNodes(), "bad mapper range");
    }

    BankAssignment
    run()
    {
        collectIoValues();
        initCompatibility();
        if (policy == BankPolicy::Random)
            assignRandomly();
        else
            assignGreedily();
        return std::move(out);
    }

  private:
    size_t extent() const { return hi - lo; }
    bool inRange(NodeId v) const { return v >= lo && v < hi; }
    size_t idx(NodeId v) const { return v - lo; }

    /** Index io values and their reader blocks. */
    void
    collectIoValues()
    {
        out.bankOf.assign(extent(), BankAssignment::invalid);
        out.peOf.assign(extent(), BankAssignment::invalid);
        readerBlocks.assign(extent(), {});
        for (uint32_t b = 0; b < blocks.size(); ++b)
            for (NodeId v : blocks[b].inputs)
                if (inRange(v))
                    readerBlocks[idx(v)].push_back(b);
        for (NodeId v = lo; v < hi; ++v)
            if (isIo[idx(v)])
                ioValues.push_back(v);
    }

    /** Physical (constraint H) mask of a value. */
    BankMask
    physicalMask(NodeId v) const
    {
        if (dag.node(v).isInput()) {
            // Vector loads can write any bank.
            return cfg.banks == 64 ? ~BankMask(0)
                                   : (BankMask(1) << cfg.banks) - 1;
        }
        const Block &blk = blocks[blockOf[idx(v)]];
        auto it = blk.placements.find(v);
        dpu_assert(it != blk.placements.end(), "io node unplaced");
        BankMask m = 0;
        for (uint32_t pe : it->second)
            for (uint32_t bank : writableBanks(cfg, pe))
                m |= BankMask(1) << bank;
        return m;
    }

    /**
     * Banks occupied by already-fixed values of *earlier* ranges that
     * some block reads together with v (the boundary-aware extension
     * of objective I — without it, cross-partition co-reads land in
     * the same bank and each costs a copy instruction at codegen).
     */
    BankMask
    externalConflictMask(NodeId v) const
    {
        BankMask m = 0;
        for (uint32_t rb : readerBlocks[idx(v)])
            for (NodeId w : blocks[rb].inputs)
                if (w != v && !inRange(w)) {
                    uint32_t b = extBankOf[w];
                    if (b != BankAssignment::invalid)
                        m |= BankMask(1) << b;
                }
        return m;
    }

    void
    initCompatibility()
    {
        sb.assign(extent(), 0);
        phys.assign(extent(), 0);
        bucketOf.assign(extent(), BankAssignment::invalid);
        buckets.assign(cfg.banks + 1, {});
        for (NodeId v : ioValues) {
            phys[idx(v)] = physicalMask(v);
            sb[idx(v)] = phys[idx(v)];
            // Boundary-aware: co-read banks of earlier ranges shrink
            // the compatibility set up front (possibly to empty — the
            // greedy pass then falls back to the least-contended
            // physical bank, where external occupancy counts too).
            if (extBankOf)
                sb[idx(v)] &= ~externalConflictMask(v);
            moveToBucket(v, popcount(sb[idx(v)]));
        }
    }

    void
    moveToBucket(NodeId v, uint32_t count)
    {
        bucketOf[idx(v)] = count;
        buckets[count].push_back(v);
    }

    /** Pop the unassigned node with the fewest compatible banks. */
    NodeId
    popMinNode()
    {
        for (uint32_t c = 0; c <= cfg.banks; ++c) {
            auto &bucket = buckets[c];
            while (!bucket.empty()) {
                // Random pop (objective J needs unbiased tie-breaks).
                size_t k = rng.below(bucket.size());
                std::swap(bucket[k], bucket.back());
                NodeId v = bucket.back();
                bucket.pop_back();
                if (bucketOf[idx(v)] != c ||
                    out.bankOf[idx(v)] != BankAssignment::invalid) {
                    continue; // stale entry
                }
                return v;
            }
        }
        return invalidNode;
    }

    /** Shrink a node's compatibility set after a neighbour's pick. */
    void
    removeBank(NodeId v, uint32_t bank)
    {
        if (!inRange(v))
            return; // owned (and already fixed) by another range
        if (out.bankOf[idx(v)] != BankAssignment::invalid)
            return;
        BankMask bit = BankMask(1) << bank;
        if (!(sb[idx(v)] & bit))
            return;
        sb[idx(v)] &= ~bit;
        moveToBucket(v, popcount(sb[idx(v)]));
    }

    /** Outputs of v's block other than v (simul_wr of algorithm 2). */
    const std::vector<NodeId> &
    blockOutputs(NodeId v) const
    {
        static const std::vector<NodeId> none;
        if (dag.node(v).isInput())
            return none;
        return blocks[blockOf[idx(v)]].outputs;
    }

    /** Banks already taken by assigned outputs of v's block. */
    BankMask
    blockTakenMask(NodeId v) const
    {
        BankMask m = 0;
        for (NodeId w : blockOutputs(v))
            if (w != v && out.bankOf[idx(w)] != BankAssignment::invalid)
                m |= BankMask(1) << out.bankOf[idx(w)];
        return m;
    }

    /**
     * Count, per bank, how contended it is for v: the number of
     * already-assigned values that are read or written together with
     * v and live in that bank (algorithm 2 line 24).
     */
    std::vector<uint32_t>
    contention(NodeId v) const
    {
        std::vector<uint32_t> c(cfg.banks, 0);
        auto tally = [&](NodeId w) {
            if (w == v)
                return;
            if (inRange(w)) {
                if (out.bankOf[idx(w)] != BankAssignment::invalid)
                    ++c[out.bankOf[idx(w)]];
            } else if (extBankOf &&
                       extBankOf[w] != BankAssignment::invalid) {
                ++c[extBankOf[w]]; // fixed by an earlier range
            }
        };
        for (NodeId w : blockOutputs(v))
            tally(w);
        for (uint32_t rb : readerBlocks[idx(v)])
            for (NodeId w : blocks[rb].inputs)
                tally(w);
        return c;
    }

    /**
     * Constraint-G repair: try to re-seat already-assigned outputs of
     * the block so some bank in `want` frees up for v. Kuhn-style
     * augmenting search over the block's outputs x physical banks.
     * Guaranteed to succeed for the fig. 6 topologies (the per-tree
     * writable-bank families admit a system of distinct
     * representatives; see DESIGN.md).
     */
    bool
    augmentForBank(NodeId v, BankMask want)
    {
        const auto &outs = blockOutputs(v);
        std::vector<NodeId> ownerOf(cfg.banks, invalidNode);
        for (NodeId w : outs)
            if (w != v && out.bankOf[idx(w)] != BankAssignment::invalid)
                ownerOf[out.bankOf[idx(w)]] = w;

        std::vector<bool> visited(cfg.banks, false);
        // Depth-first augmenting path: take bank b for `node`,
        // recursively reseating its current owner.
        auto dfs = [&](auto &&self, NodeId node, BankMask allowed) -> int {
            for (uint32_t b = 0; b < cfg.banks; ++b) {
                if (!(allowed >> b & 1) || visited[b])
                    continue;
                visited[b] = true;
                NodeId owner = ownerOf[b];
                if (owner == invalidNode ||
                    self(self, owner, phys[idx(owner)]) >= 0) {
                    ownerOf[b] = node;
                    if (node != v) {
                        out.bankOf[idx(node)] = b;
                        out.peOf[idx(node)] = pickWriterPe(node, b);
                    }
                    return static_cast<int>(b);
                }
            }
            return -1;
        };
        int got = dfs(dfs, v, want);
        if (got < 0)
            return false;
        commitBank(v, static_cast<uint32_t>(got));
        return true;
    }

    /** A replica PE of v that can write `bank` (constraint H). */
    uint32_t
    pickWriterPe(NodeId v, uint32_t bank) const
    {
        const Block &blk = blocks[blockOf[idx(v)]];
        for (uint32_t pe : blk.placements.at(v)) {
            auto banks = writableBanks(cfg, pe);
            if (std::find(banks.begin(), banks.end(), bank) != banks.end())
                return pe;
        }
        dpu_panic("no replica PE writes the chosen bank");
    }

    /** Finalize v's bank: record it, pick the writer PE, propagate
     *  the F/G compatibility updates. */
    void
    commitBank(NodeId v, uint32_t bank)
    {
        out.bankOf[idx(v)] = bank;
        if (!dag.node(v).isInput())
            out.peOf[idx(v)] = pickWriterPe(v, bank);
        // Constraint G (intra-block): block-mates may not share it.
        for (NodeId w : blockOutputs(v))
            if (w != v)
                removeBank(w, bank);
        // Objective I (inter-block): values read together with v
        // should avoid v's bank.
        for (uint32_t rb : readerBlocks[idx(v)])
            for (NodeId w : blocks[rb].inputs)
                if (w != v)
                    removeBank(w, bank);
    }

    void
    assignGreedily()
    {
        for (;;) {
            NodeId v = popMinNode();
            if (v == invalidNode)
                break;
            BankMask taken = blockTakenMask(v);
            BankMask free_compatible = sb[idx(v)] & ~taken;
            if (free_compatible) {
                commitBank(v, randomSetBit(free_compatible, rng));
                continue;
            }
            // No conflict-free compatible bank left. Fall back to the
            // least-contended physically writable bank (read conflicts
            // become copies), still honoring constraint G.
            BankMask hard = phys[idx(v)] & ~taken;
            if (!hard) {
                // Every physical bank is taken by a block-mate: reseat
                // mates via an augmenting path (must succeed).
                bool ok = augmentForBank(v, phys[idx(v)]);
                dpu_assert(ok, "write-port matching infeasible");
                continue;
            }
            auto contended = contention(v);
            uint32_t best = BankAssignment::invalid;
            uint32_t best_score = ~0u;
            for (uint32_t b = 0; b < cfg.banks; ++b) {
                if (!(hard >> b & 1))
                    continue;
                if (contended[b] < best_score) {
                    best_score = contended[b];
                    best = b;
                }
            }
            commitBank(v, best);
        }
    }

    /** fig. 10(b)'s baseline: uniform pick among physical banks,
     *  repaired only for the hard write-port constraint G. */
    void
    assignRandomly()
    {
        for (NodeId v : ioValues) {
            BankMask taken = blockTakenMask(v);
            BankMask hard = phys[idx(v)] & ~taken;
            if (!hard) {
                bool ok = augmentForBank(v, phys[idx(v)]);
                dpu_assert(ok, "write-port matching infeasible");
                continue;
            }
            commitBank(v, randomSetBit(hard, rng));
        }
    }

    const Dag &dag;
    const ArchConfig &cfg;
    const std::vector<Block> &blocks;
    NodeId lo;
    NodeId hi;
    const uint32_t *blockOf; ///< Range-local block ids (idx space).
    const uint8_t *isIo;     ///< Range-local io marks (idx space).
    BankPolicy policy;
    Rng rng;
    const uint32_t *extBankOf; ///< Global bankOf of earlier ranges.
    BankAssignment out;

    std::vector<NodeId> ioValues;
    std::vector<std::vector<uint32_t>> readerBlocks;
    std::vector<BankMask> sb;   ///< Current compatibility (shrinks).
    std::vector<BankMask> phys; ///< Constraint-H mask (fixed).
    std::vector<uint32_t> bucketOf;
    std::vector<std::vector<NodeId>> buckets;
};

} // namespace

BankAssignment
assignBanks(const Dag &dag, const ArchConfig &cfg,
            const BlockDecomposition &dec, BankPolicy policy, uint64_t seed)
{
    // Whole-DAG range: global and range-local indexing coincide.
    std::vector<uint8_t> is_io(dag.numNodes(), 0);
    for (NodeId v = 0; v < dag.numNodes(); ++v)
        is_io[v] = dec.isIo[v] ? 1 : 0;
    BankAssignment out =
        BankMapper(dag, cfg, dec.blocks, 0,
                   static_cast<NodeId>(dag.numNodes()),
                   dec.blockOf.data(), is_io.data(), policy, seed)
            .run();
    out.readConflicts = countReadConflicts(dec, out);
    return out;
}

BankAssignment
assignBanksForRange(const Dag &dag, const ArchConfig &cfg,
                    const RangeDecomposition &dec, BankPolicy policy,
                    uint64_t seed, const std::vector<uint32_t> *externalBanks)
{
    const uint32_t *ext = nullptr;
    if (externalBanks) {
        dpu_assert(externalBanks->size() == dag.numNodes(),
                   "external bank view must cover the whole DAG");
        ext = externalBanks->data();
    }
    return BankMapper(dag, cfg, dec.blocks, dec.range.first,
                      dec.range.second, dec.blockOf.data(),
                      dec.isIo.data(), policy, seed, ext)
        .run();
}

uint64_t
countReadConflicts(const BlockDecomposition &dec,
                   const BankAssignment &assignment)
{
    // The scratch array is sized from the assignment itself, not a
    // hardcoded bank count: configurations beyond 64 banks are
    // rejected by ArchConfig::check(), but this helper is public and
    // must not write out of bounds for any input.
    uint32_t banks = 64;
    for (uint32_t b : assignment.bankOf)
        if (b != BankAssignment::invalid && b >= banks)
            banks = b + 1;
    uint64_t conflicts = 0;
    std::vector<uint32_t> seen;
    for (const Block &b : dec.blocks) {
        seen.assign(banks, 0);
        for (NodeId v : b.inputs) {
            uint32_t bank = assignment.bankOf[v];
            dpu_assert(bank != BankAssignment::invalid, "unmapped input");
            if (seen[bank]++)
                ++conflicts; // every extra co-resident input = 1 copy
        }
    }
    return conflicts;
}

} // namespace dpu
