/**
 * @file
 * Compilation step 1: block decomposition (paper §IV-A, algorithm 1).
 *
 * The binarized DAG is decomposed into *blocks*, each executable by a
 * single exec instruction. A block consists of tree-shaped subgraphs
 * (a sink node plus all of its not-yet-mapped ancestors) packed into
 * disjoint subtree *slots* of the T PE trees — slot allocation is a
 * buddy system over subtrees (fig. 9(d)'s depth combinations arise
 * naturally from recursive slot splitting).
 *
 * A subgraph is schedulable iff the longest chain of unmapped
 * ancestors ending at its sink has length <= D (fig. 9(c): non-tree
 * cones are handled by node replication when unrolled). Candidate
 * sinks are kept in per-depth buckets ordered by DFS preorder
 * position; picking the candidate nearest the block's anchor
 * implements the paper's DFS-distance fitness (objective D), and
 * preferring the deepest schedulable candidate implements "more nodes
 * is more fit" (objective C).
 */

#ifndef DPU_COMPILER_BLOCKS_HH
#define DPU_COMPILER_BLOCKS_HH

#include <unordered_map>
#include <vector>

#include "arch/config.hh"
#include "arch/isa.hh"
#include "dag/dag.hh"

namespace dpu {

/** One tree-shaped subgraph mapped to a subtree slot. */
struct Subgraph
{
    NodeId sink = invalidNode;
    std::vector<NodeId> nodes; ///< The cone (sink + unmapped ancestors).
    uint32_t depth = 0;        ///< Levels of the cone (1..D).
    uint32_t tree = 0;         ///< Slot: tree index.
    uint32_t rootLayer = 0;    ///< Slot: layer of the slot root PE.
    uint32_t rootIndex = 0;    ///< Slot: index of the slot root PE.
};

/** One register read of an exec: tree input port <- value. */
struct PortRead
{
    uint32_t port;  ///< Global port id (== the aligned bank id).
    NodeId value;   ///< Value consumed (block input or DAG input).
};

/** A block: everything one exec instruction does. */
struct Block
{
    std::vector<Subgraph> subgraphs;

    /** Per-PE opcode after unrolling (size = numPes). */
    std::vector<PeOp> peOps;

    /** Register reads, at most one per port. */
    std::vector<PortRead> reads;

    /** PE placements of each block node (replicas => several PEs). */
    std::unordered_map<NodeId, std::vector<uint32_t>> placements;

    /** Distinct values read (block inputs). */
    std::vector<NodeId> inputs;

    /** Nodes whose value must be written to the register file. */
    std::vector<NodeId> outputs;
};

/** Result of step 1. */
struct BlockDecomposition
{
    std::vector<Block> blocks;

    /** Block index of every compute node (inputs: invalid). */
    std::vector<uint32_t> blockOf;

    /** True for values that live in the register file (DAG inputs and
     *  block outputs) — the io_nodes of algorithm 2. */
    std::vector<bool> isIo;

    static constexpr uint32_t noBlock = static_cast<uint32_t>(-1);
};

/**
 * Step-1 result for one contiguous partition range. Node ids inside
 * `blocks` are global DAG ids; the per-node tables are range-local,
 * indexed by `v - range.first`, and block ids are local to `blocks`.
 * Pieces from disjoint ranges merge into a global BlockDecomposition
 * with mergeRangeDecompositions().
 */
struct RangeDecomposition
{
    std::pair<NodeId, NodeId> range{0, 0};
    std::vector<Block> blocks;
    std::vector<uint32_t> blockOf; ///< size = range extent.
    std::vector<uint8_t> isIo;     ///< size = range extent.
};

/**
 * Run step 1 on one partition range in isolation.
 *
 * Depends only on (dag, cfg, seed, range, dfs_positions): every node
 * outside the range is treated as already mapped, which matches the
 * state a sequential partition-by-partition pass would see, so ranges
 * can be decomposed concurrently and merged deterministically.
 *
 * @param dfs_positions dfsPreorderPositions(dag), computed once by
 *        the caller and shared read-only across ranges.
 */
RangeDecomposition decomposeRangeIntoBlocks(
    const Dag &dag, const ArchConfig &cfg, uint64_t seed,
    std::pair<NodeId, NodeId> range,
    const std::vector<uint32_t> &dfs_positions);

/**
 * Merge per-range pieces (in ascending range order, covering all
 * compute nodes) into a global decomposition. Block ids are offset by
 * the number of blocks in earlier pieces; piece block vectors are
 * moved out.
 */
BlockDecomposition mergeRangeDecompositions(
    const Dag &dag, std::vector<RangeDecomposition> &&pieces);

/**
 * Run step 1.
 *
 * @param dag Binarized DAG (every compute node has 2 operands).
 * @param cfg Architecture configuration (D and T are used).
 * @param seed Seed for tie-breaking randomness.
 * @param partitions Optional coarse partitioning (contiguous id
 *        ranges, see partitioner.hh); blocks are formed partition by
 *        partition. Empty = treat the whole DAG as one partition.
 */
BlockDecomposition decomposeIntoBlocks(
    const Dag &dag, const ArchConfig &cfg, uint64_t seed = 1,
    const std::vector<std::pair<NodeId, NodeId>> &partitions = {});

/** Sanity checks: coverage, acyclicity, schedulability (for tests). */
void validateDecomposition(const Dag &dag, const ArchConfig &cfg,
                           const BlockDecomposition &dec);

} // namespace dpu

#endif // DPU_COMPILER_BLOCKS_HH
