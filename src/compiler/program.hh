/**
 * @file
 * The compiler's output: an executable DPU-v2 program plus statistics.
 */

#ifndef DPU_COMPILER_PROGRAM_HH
#define DPU_COMPILER_PROGRAM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "arch/isa.hh"
#include "dag/node.hh"

namespace dpu {

/** Compilation statistics (feeds Table I, fig. 13, fig. 10, §IV-E). */
struct CompileStats
{
    /** Instruction counts by kind, indexed by InstrKind. */
    std::array<uint64_t, 6> kindCount{};

    uint64_t instructions = 0; ///< Total instruction count.
    uint64_t cycles = 0;       ///< instructions + pipeline drain.

    uint64_t bankConflicts = 0; ///< Read conflicts resolved by copies.
    uint64_t nops = 0;          ///< Unhidden pipeline hazards.
    uint64_t spillStores = 0;
    uint64_t reloads = 0;

    uint64_t numOperations = 0; ///< Binarized compute nodes (for GOPS).
    uint64_t peOpsExecuted = 0; ///< Arithmetic PE slots used (replicas
                                ///  and pass-throughs excluded).
    uint64_t blocks = 0;

    uint64_t programBits = 0;   ///< Densely packed footprint.
    /** Ablation of the automatic write policy (§III-B): footprint if
     *  every register write carried an explicit address. */
    uint64_t programBitsExplicitWrites = 0;
    /** CSR-style baseline footprint of the same DAG (§IV-E). */
    uint64_t csrBits = 0;
    uint64_t dataBits = 0;      ///< Data-memory footprint in bits.

    double compileSeconds = 0.0;

    /** Wall-clock seconds spent in the three optional static-verifier
     *  passes (CompileOptions::verify); excluded from compileSeconds
     *  so Debug/sanitizer builds report like-for-like compile
     *  latency. Zero when verification is off. */
    double verifySeconds = 0.0;

    /** 1 when this program came out of a ProgramCache instead of a
     *  fresh compile (compileSeconds is then the fetch time). */
    uint64_t cacheHits = 0;
};

/** A compiled, executable program. */
struct CompiledProgram
{
    ArchConfig cfg;
    std::vector<Instruction> instructions;

    /** Data-memory rows used (inputs + outputs + spills). */
    uint32_t numRows = 0;

    /** (row, col) of DAG input k (k-th Input node in id order). */
    std::vector<std::pair<uint32_t, uint32_t>> inputLocation;

    /** Where each DAG result lands. */
    struct OutputLoc
    {
        NodeId node;
        uint32_t row;
        uint32_t col;
    };
    std::vector<OutputLoc> outputs;

    CompileStats stats;
};

} // namespace dpu

#endif // DPU_COMPILER_PROGRAM_HH
