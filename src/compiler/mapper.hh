/**
 * @file
 * Compilation step 2: register-bank (and writer-PE) mapping
 * (paper §IV-B, algorithm 2).
 *
 * Every io value — a DAG input or a block output — gets a *home bank*.
 * The mapper works toward:
 *   - Constraint F: two inputs of one block in different banks
 *     (violations survive as *read conflicts*, each resolved later by
 *     a copy instruction costing one stall cycle);
 *   - Constraint G: two outputs of one block in different banks
 *     (hard — banks have one write port; enforced exactly, with an
 *     augmenting-path repair when the greedy paints itself in);
 *   - Constraint H: the producing PE must be able to write the chosen
 *     bank under the configured output interconnect (hard);
 *   - Objective I: minimize read conflicts — nodes are processed in
 *     fewest-compatible-banks-first order via the Mnodes buckets;
 *   - Objective J: balance banks — ties are broken randomly.
 *
 * Deviation noted in DESIGN.md: PE positions are fixed by the
 * deterministic unroll of step 1, so a block output's candidate banks
 * are the union of its replicas' writable sets rather than a jointly
 * searched PE/bank space.
 */

#ifndef DPU_COMPILER_MAPPER_HH
#define DPU_COMPILER_MAPPER_HH

#include <vector>

#include "arch/config.hh"
#include "compiler/blocks.hh"
#include "dag/dag.hh"

namespace dpu {

/** Bank-mapping policy (fig. 10(b) compares these). */
enum class BankPolicy : uint8_t {
    ConflictAware, ///< Algorithm 2.
    Random,        ///< Uniform pick among physically writable banks.
};

/** Result of step 2. */
struct BankAssignment
{
    /** Home bank per node (io values only; others: invalid). */
    std::vector<uint32_t> bankOf;

    /** Writer PE per io *compute* node (DAG inputs: invalid). */
    std::vector<uint32_t> peOf;

    /**
     * Read conflicts implied by the assignment: over all blocks, the
     * number of block inputs sharing a bank with another input of the
     * same block (each costs one copy). This is fig. 6(e)/10(b)'s
     * "bank conflicts" metric.
     */
    uint64_t readConflicts = 0;

    static constexpr uint32_t invalid = static_cast<uint32_t>(-1);
};

/** Run step 2. The DAG must be the binarized one used for step 1. */
BankAssignment assignBanks(const Dag &dag, const ArchConfig &cfg,
                           const BlockDecomposition &dec,
                           BankPolicy policy = BankPolicy::ConflictAware,
                           uint64_t seed = 1);

/**
 * Run step 2 on one partition range in isolation: assigns home banks
 * to the io values the range owns (its DAG inputs and its blocks'
 * outputs), considering only intra-range reader blocks for the
 * conflict objectives. Values read from earlier partitions keep the
 * banks their owners chose, so ranges can be mapped concurrently and
 * merged deterministically; the price is that conflicts between
 * values first read together across a partition boundary are not
 * optimized (they are still resolved correctly by copies later).
 *
 * `externalBanks` makes the mapper *boundary-aware*: a whole-DAG
 * bankOf vector whose entries for earlier ranges are already fixed
 * (later ranges: invalid). Cross-boundary co-read banks then shrink a
 * value's compatibility set and count toward bank contention, cutting
 * the read conflicts the boundary-oblivious mapper pays on
 * partitioned compiles. Mapping then depends on earlier ranges, so
 * ranges must be mapped in ascending order (still deterministic).
 * Pass nullptr for the historical boundary-oblivious behavior.
 *
 * The returned bankOf/peOf are range-local (indexed v - range.first)
 * and readConflicts is left at 0 — count it globally after merging.
 */
BankAssignment assignBanksForRange(const Dag &dag, const ArchConfig &cfg,
                                   const RangeDecomposition &dec,
                                   BankPolicy policy = BankPolicy::ConflictAware,
                                   uint64_t seed = 1,
                                   const std::vector<uint32_t> *externalBanks =
                                       nullptr);

/** Recount read conflicts of an assignment (test/diagnostic helper). */
uint64_t countReadConflicts(const BlockDecomposition &dec,
                            const BankAssignment &assignment);

} // namespace dpu

#endif // DPU_COMPILER_MAPPER_HH
