#include "compiler/compiler.hh"

#include <chrono>

#include "compiler/blocks.hh"
#include "compiler/codegen.hh"
#include "compiler/finalize.hh"
#include "compiler/partitioner.hh"
#include "compiler/scheduler.hh"
#include "dag/binarize.hh"

namespace dpu {

namespace {

/**
 * Program footprint if the automatic write policy (§III-B) did not
 * exist: every instruction kind that writes registers would carry one
 * explicit address field per bank lane (load, exec) or per slot
 * (copy_4), and could drop the 1-bit valid_rst lanes in exchange —
 * the paper's 30%-program-size claim is the gap between the two.
 */
uint64_t
explicitWriteFootprintBits(const ArchConfig &cfg,
                           const std::vector<Instruction> &instrs)
{
    IsaLayout lay(cfg);
    uint64_t total = 0;
    for (const Instruction &in : instrs) {
        uint64_t bits = lay.lengthBits(in);
        switch (kindOf(in)) {
          case InstrKind::Load:
            bits += uint64_t(cfg.banks) * lay.addrBits;
            break;
          case InstrKind::Exec:
            bits += uint64_t(cfg.banks) * lay.addrBits;
            bits -= cfg.banks; // valid_rst lanes no longer needed
            break;
          case InstrKind::Copy4:
            bits += 4ull * lay.addrBits;
            bits -= cfg.banks;
            break;
          default:
            break;
        }
        total += bits;
    }
    return total;
}

} // namespace

uint64_t
csrFootprintBits(const Dag &dag)
{
    // Row-pointer per node (32b), column index per edge (32b), an
    // operator tag per node (8b), and a 32-bit word per node value
    // (inputs and intermediates both live in the global value array).
    uint64_t n = dag.numOperations();
    uint64_t bits = (n + 1) * 32 + dag.numEdges() * 32 + n * 8 +
                    dag.numNodes() * 32;
    return bits;
}

CompiledProgram
compile(const Dag &input, const ArchConfig &cfg,
        const CompileOptions &options)
{
    cfg.check();
    auto t0 = std::chrono::steady_clock::now();

    BinarizeResult bin = binarize(input);
    const Dag &dag = bin.dag;

    std::vector<std::pair<NodeId, NodeId>> parts;
    if (options.partitionNodes)
        parts = partitionByCount(dag, options.partitionNodes);

    BlockDecomposition dec =
        decomposeIntoBlocks(dag, cfg, options.seed, parts);
    if (options.validate)
        validateDecomposition(dag, cfg, dec);

    BankAssignment banks =
        assignBanks(dag, cfg, dec, options.bankPolicy, options.seed);

    IrProgram ir = generateIr(dag, cfg, dec, banks);
    reorderForPipeline(ir, cfg, options.reorderWindow);
    if (options.validate)
        checkHazardFree(ir, cfg);

    CompiledProgram prog = finalizeProgram(std::move(ir), cfg, dec);

    prog.stats.numOperations = dag.numOperations();
    prog.stats.programBits = programSizeBits(cfg, prog.instructions);
    prog.stats.programBitsExplicitWrites =
        explicitWriteFootprintBits(cfg, prog.instructions);
    prog.stats.csrBits = csrFootprintBits(dag);
    prog.stats.dataBits = uint64_t(prog.numRows) * cfg.banks * 32;

    auto t1 = std::chrono::steady_clock::now();
    prog.stats.compileSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return prog;
}

} // namespace dpu
