#include "compiler/compiler.hh"

#include <algorithm>
#include <chrono>
#include <span>

#include "compiler/blocks.hh"
#include "compiler/cache.hh"
#include "compiler/codegen.hh"
#include "compiler/finalize.hh"
#include "compiler/partitioner.hh"
#include "compiler/scheduler.hh"
#include "compiler/verify.hh"
#include "dag/algorithms.hh"
#include "dag/binarize.hh"
#include "support/parallel.hh"

namespace dpu {

namespace {

/** Per-partition mapper seed: partition 0 keeps the user seed so
 *  unpartitioned compiles reproduce the historical pipeline bit for
 *  bit; later partitions get decorrelated deterministic streams. */
uint64_t
partitionSeed(uint64_t seed, size_t part)
{
    return seed + 0x9e3779b97f4a7c15ull * part;
}

/**
 * Program footprint if the automatic write policy (§III-B) did not
 * exist: every instruction kind that writes registers would carry one
 * explicit address field per bank lane (load, exec) or per slot
 * (copy_4), and could drop the 1-bit valid_rst lanes in exchange —
 * the paper's 30%-program-size claim is the gap between the two.
 */
uint64_t
explicitWriteFootprintBits(const ArchConfig &cfg,
                           const std::vector<Instruction> &instrs)
{
    IsaLayout lay(cfg);
    uint64_t total = 0;
    for (const Instruction &in : instrs) {
        uint64_t bits = lay.lengthBits(in);
        switch (kindOf(in)) {
          case InstrKind::Load:
            bits += uint64_t(cfg.banks) * lay.addrBits;
            break;
          case InstrKind::Exec:
            bits += uint64_t(cfg.banks) * lay.addrBits;
            bits -= cfg.banks; // valid_rst lanes no longer needed
            break;
          case InstrKind::Copy4:
            bits += 4ull * lay.addrBits;
            bits -= cfg.banks;
            break;
          default:
            break;
        }
        total += bits;
    }
    return total;
}

} // namespace

uint64_t
csrFootprintBits(const Dag &dag)
{
    // Row-pointer per node (32b), column index per edge (32b), an
    // operator tag per node (8b), and a 32-bit word per node value
    // (inputs and intermediates both live in the global value array).
    uint64_t n = dag.numOperations();
    uint64_t bits = (n + 1) * 32 + dag.numEdges() * 32 + n * 8 +
                    dag.numNodes() * 32;
    return bits;
}

CompiledProgram
compile(const Dag &input, const ArchConfig &cfg,
        const CompileOptions &options)
{
    cfg.check();
    auto t0 = std::chrono::steady_clock::now();

    // Verifier passes are timed separately (stats.verifySeconds):
    // Debug/sanitizer builds must report the same compileSeconds a
    // Release build would, or compile-latency comparisons lie.
    double verify_seconds = 0.0;
    auto timed_verify = [&](auto &&check) {
        auto v0 = std::chrono::steady_clock::now();
        check();
        verify_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - v0)
                              .count();
    };

    BinarizeResult bin = binarize(input);
    const Dag &dag = bin.dag;

    std::vector<std::pair<NodeId, NodeId>> parts;
    if (options.partitionNodes)
        parts = partitionByCount(dag, options.partitionNodes);
    if (parts.empty()) // unpartitioned, or a DAG with no compute nodes
        parts.push_back({0, static_cast<NodeId>(dag.numNodes())});
    const size_t num_parts = parts.size();

    // Shared read-only precompute for the range-scoped steps.
    dpu_assert(dag.isBinary(), "compile needs a binarized DAG");
    std::vector<uint32_t> dfs_positions = dfsPreorderPositions(dag);

    // Fragment-cache probe: a partition's steps 1-2 + codegen depend
    // only on what fragmentCacheKey captures, so a hit skips all
    // three for that range.
    FragmentCache *fcache = options.fragmentCache;
    std::vector<std::shared_ptr<const CompiledFragment>> hit(num_parts);
    std::vector<std::string> fkeys(num_parts);
    if (fcache) {
        const uint64_t whole_hash = dagStructuralHash(dag);
        for (size_t p = 0; p < num_parts; ++p) {
            fkeys[p] = fragmentCacheKey(whole_hash, parts[p],
                                        static_cast<uint32_t>(p), dag,
                                        cfg, options);
            hit[p] = fcache->lookup(fkeys[p]);
        }
    }

    // Step 1, partition-parallel: each range's block decomposition
    // depends only on (dag, cfg, seed, range), so any thread count
    // produces the same pieces.
    std::vector<RangeDecomposition> pieces(num_parts);
    std::vector<BankAssignment> pieceBanks(num_parts);
    parallelFor(num_parts, options.threads, [&](size_t p) {
        if (hit[p])
            pieces[p] = hit[p]->dec;
        else
            pieces[p] = decomposeRangeIntoBlocks(
                dag, cfg, options.seed, parts[p], dfs_positions);
    });

    // Step 2 + merge of the per-range bank maps into the whole-DAG
    // view codegen needs (a range reads values earlier ranges own).
    // Boundary-aware mapping chains the ranges (each sees the merged
    // occupancy of its predecessors), so it runs sequentially;
    // otherwise the historical parallel fan-out applies.
    BankAssignment banks;
    banks.bankOf.assign(dag.numNodes(), BankAssignment::invalid);
    banks.peOf.assign(dag.numNodes(), BankAssignment::invalid);
    auto merge_range_banks = [&](size_t p) {
        NodeId lo = pieces[p].range.first;
        for (size_t i = 0; i < pieceBanks[p].bankOf.size(); ++i) {
            banks.bankOf[lo + i] = pieceBanks[p].bankOf[i];
            banks.peOf[lo + i] = pieceBanks[p].peOf[i];
        }
    };
    const bool boundary_aware =
        options.boundaryAwareBanks && num_parts > 1;
    if (boundary_aware) {
        for (size_t p = 0; p < num_parts; ++p) {
            if (hit[p])
                pieceBanks[p] = hit[p]->banks;
            else
                pieceBanks[p] = assignBanksForRange(
                    dag, cfg, pieces[p], options.bankPolicy,
                    partitionSeed(options.seed, p), &banks.bankOf);
            merge_range_banks(p);
        }
    } else {
        parallelFor(num_parts, options.threads, [&](size_t p) {
            if (hit[p])
                pieceBanks[p] = hit[p]->banks;
            else
                pieceBanks[p] = assignBanksForRange(
                    dag, cfg, pieces[p], options.bankPolicy,
                    partitionSeed(options.seed, p));
        });
        for (size_t p = 0; p < num_parts; ++p)
            merge_range_banks(p);
    }
    std::vector<std::span<const Block>> partBlocks(num_parts);
    std::vector<size_t> blocksPerPart(num_parts);
    for (size_t p = 0; p < num_parts; ++p) {
        partBlocks[p] = std::span<const Block>(pieces[p].blocks);
        blocksPerPart[p] = pieces[p].blocks.size();
    }
    CodegenShared shared = computeCodegenShared(dag, partBlocks);

    VerifyIrOptions vopt;
    CompiledProgram prog;
    BlockDecomposition dec;

    if (num_parts == 1) {
        // Historical monolithic tail: codegen -> merge -> whole-IR
        // reorder -> finalize. Unpartitioned programs stay bit-exact
        // with every release since the parallel compiler landed.
        std::vector<IrFragment> frags(1);
        if (hit[0]) {
            frags[0] = hit[0]->frag;
        } else {
            frags[0] = generateIrForRange(dag, cfg, partBlocks[0],
                                          pieces[0].range, banks, shared,
                                          0);
            if (fcache)
                fcache->store(fkeys[0], pieces[0], pieceBanks[0],
                              frags[0]);
        }
        IrProgram ir = mergeIrFragments(dag, cfg, banks, shared,
                                        std::move(frags), blocksPerPart);
        dec = mergeRangeDecompositions(dag, std::move(pieces));
        banks.readConflicts = countReadConflicts(dec, banks);
        if (options.validate)
            validateDecomposition(dag, cfg, dec);

        vopt.numBlocks = dec.blocks.size();
        if (options.verify)
            timed_verify([&] {
                throwIfVerifyErrors(verifyIr(ir, cfg, vopt), "codegen");
            });

        reorderForPipeline(ir, cfg, options.reorderWindow);
        if (options.validate)
            checkHazardFree(ir, cfg);
        if (options.verify) {
            vopt.hazardsResolved = true;
            timed_verify([&] {
                throwIfVerifyErrors(verifyIr(ir, cfg, vopt), "schedule");
            });
        }

        prog = finalizeProgram(std::move(ir), cfg, dec);
    } else {
        // Pipelined steps 3-4: each partition's fragment is reordered
        // as soon as its codegen completes (workers), then merged and
        // finalized in strict partition order (this thread). Both the
        // merge and the incremental finalizer are deterministic in
        // the consume order, so the program is byte-identical at
        // every thread count — threads = 1 degenerates to the plain
        // produce/consume interleave.
        std::vector<size_t> blockBase(num_parts + 1, 0);
        for (size_t p = 0; p < num_parts; ++p)
            blockBase[p + 1] = blockBase[p] + blocksPerPart[p];
        auto block_at = [&](uint32_t id) -> const Block & {
            size_t p = static_cast<size_t>(
                           std::upper_bound(blockBase.begin(),
                                            blockBase.end(), id) -
                           blockBase.begin()) -
                       1;
            return pieces[p].blocks[id - blockBase[p]];
        };

        ScheduledIrMerger merger(dag, cfg, banks, shared);
        ProgramFinalizer finalizer(cfg, block_at);
        std::vector<IrFragment> frags(num_parts);
        // The "codegen"-stage verifier needs the pre-schedule IR;
        // keep per-fragment copies only when it will run.
        std::vector<IrFragment> unscheduled;
        if (options.verify)
            unscheduled.resize(num_parts);
        size_t done_instrs = 0;
        size_t done_instances = 0;
        pipelineOrdered(
            num_parts, options.threads,
            [&](size_t p) { // produce: codegen + per-fragment reorder
                if (hit[p]) {
                    frags[p] = hit[p]->frag;
                } else {
                    frags[p] = generateIrForRange(
                        dag, cfg, partBlocks[p], pieces[p].range, banks,
                        shared, static_cast<uint32_t>(p));
                    if (fcache)
                        fcache->store(fkeys[p], pieces[p], pieceBanks[p],
                                      frags[p]);
                }
                if (options.verify)
                    unscheduled[p] = frags[p];
                reorderFragment(frags[p], cfg, options.reorderWindow);
            },
            [&](size_t p) { // consume: ordered merge + finalize chunk
                merger.append(std::move(frags[p]), blocksPerPart[p]);
                finalizer.appendChunk(merger.ir(), done_instrs,
                                      done_instances);
                done_instrs = merger.ir().instrs.size();
                done_instances = merger.ir().instances.size();
            });
        merger.finish(); // final stores
        finalizer.appendChunk(merger.ir(), done_instrs, done_instances);
        const IrProgram &ir = merger.ir();

        dec = mergeRangeDecompositions(dag, std::move(pieces));
        banks.readConflicts = countReadConflicts(dec, banks);
        if (options.validate) {
            validateDecomposition(dag, cfg, dec);
            checkHazardFree(ir, cfg);
        }

        vopt.numBlocks = dec.blocks.size();
        if (options.verify) {
            // Stage "codegen" checks the same artifact the monolithic
            // path would: the order-preserving merge of the
            // *unscheduled* fragments.
            IrProgram unsched =
                mergeIrFragments(dag, cfg, banks, shared,
                                 std::move(unscheduled), blocksPerPart);
            timed_verify([&] {
                throwIfVerifyErrors(verifyIr(unsched, cfg, vopt),
                                    "codegen");
            });
            vopt.hazardsResolved = true;
            timed_verify([&] {
                throwIfVerifyErrors(verifyIr(ir, cfg, vopt), "schedule");
            });
        }

        prog = finalizer.finish(ir, dec.blocks.size());
    }

    prog.stats.numOperations = dag.numOperations();
    prog.stats.programBits = programSizeBits(cfg, prog.instructions);
    prog.stats.programBitsExplicitWrites =
        explicitWriteFootprintBits(cfg, prog.instructions);
    prog.stats.csrBits = csrFootprintBits(dag);
    prog.stats.dataBits = uint64_t(prog.numRows) * cfg.banks * 32;

    // Last: the program-level pass cross-checks the stats fields just
    // filled in (V040), so it must see the finished program.
    if (options.verify)
        timed_verify(
            [&] { throwIfVerifyErrors(verifyProgram(prog), "finalize"); });

    auto t1 = std::chrono::steady_clock::now();
    prog.stats.verifySeconds = verify_seconds;
    prog.stats.compileSeconds = std::max(
        0.0, std::chrono::duration<double>(t1 - t0).count() -
                 verify_seconds);
    return prog;
}

} // namespace dpu
