#include "compiler/compiler.hh"

#include <chrono>
#include <span>

#include "compiler/blocks.hh"
#include "compiler/codegen.hh"
#include "compiler/finalize.hh"
#include "compiler/partitioner.hh"
#include "compiler/scheduler.hh"
#include "compiler/verify.hh"
#include "dag/algorithms.hh"
#include "dag/binarize.hh"
#include "support/parallel.hh"

namespace dpu {

namespace {

/** Per-partition mapper seed: partition 0 keeps the user seed so
 *  unpartitioned compiles reproduce the historical pipeline bit for
 *  bit; later partitions get decorrelated deterministic streams. */
uint64_t
partitionSeed(uint64_t seed, size_t part)
{
    return seed + 0x9e3779b97f4a7c15ull * part;
}

/**
 * Program footprint if the automatic write policy (§III-B) did not
 * exist: every instruction kind that writes registers would carry one
 * explicit address field per bank lane (load, exec) or per slot
 * (copy_4), and could drop the 1-bit valid_rst lanes in exchange —
 * the paper's 30%-program-size claim is the gap between the two.
 */
uint64_t
explicitWriteFootprintBits(const ArchConfig &cfg,
                           const std::vector<Instruction> &instrs)
{
    IsaLayout lay(cfg);
    uint64_t total = 0;
    for (const Instruction &in : instrs) {
        uint64_t bits = lay.lengthBits(in);
        switch (kindOf(in)) {
          case InstrKind::Load:
            bits += uint64_t(cfg.banks) * lay.addrBits;
            break;
          case InstrKind::Exec:
            bits += uint64_t(cfg.banks) * lay.addrBits;
            bits -= cfg.banks; // valid_rst lanes no longer needed
            break;
          case InstrKind::Copy4:
            bits += 4ull * lay.addrBits;
            bits -= cfg.banks;
            break;
          default:
            break;
        }
        total += bits;
    }
    return total;
}

} // namespace

uint64_t
csrFootprintBits(const Dag &dag)
{
    // Row-pointer per node (32b), column index per edge (32b), an
    // operator tag per node (8b), and a 32-bit word per node value
    // (inputs and intermediates both live in the global value array).
    uint64_t n = dag.numOperations();
    uint64_t bits = (n + 1) * 32 + dag.numEdges() * 32 + n * 8 +
                    dag.numNodes() * 32;
    return bits;
}

CompiledProgram
compile(const Dag &input, const ArchConfig &cfg,
        const CompileOptions &options)
{
    cfg.check();
    auto t0 = std::chrono::steady_clock::now();

    BinarizeResult bin = binarize(input);
    const Dag &dag = bin.dag;

    std::vector<std::pair<NodeId, NodeId>> parts;
    if (options.partitionNodes)
        parts = partitionByCount(dag, options.partitionNodes);
    if (parts.empty()) // unpartitioned, or a DAG with no compute nodes
        parts.push_back({0, static_cast<NodeId>(dag.numNodes())});
    const size_t num_parts = parts.size();

    // Shared read-only precompute for the range-scoped steps.
    dpu_assert(dag.isBinary(), "compile needs a binarized DAG");
    std::vector<uint32_t> dfs_positions = dfsPreorderPositions(dag);

    // Steps 1+2, partition-parallel: each range's block decomposition
    // and bank mapping depend only on (dag, cfg, seed, range), so any
    // thread count produces the same pieces.
    std::vector<RangeDecomposition> pieces(num_parts);
    std::vector<BankAssignment> pieceBanks(num_parts);
    parallelFor(num_parts, options.threads, [&](size_t p) {
        pieces[p] = decomposeRangeIntoBlocks(dag, cfg, options.seed,
                                             parts[p], dfs_positions);
        pieceBanks[p] =
            assignBanksForRange(dag, cfg, pieces[p], options.bankPolicy,
                                partitionSeed(options.seed, p));
    });

    // Barrier: merge the per-range bank maps into the whole-DAG view
    // codegen needs (a range reads values earlier ranges own).
    BankAssignment banks;
    banks.bankOf.assign(dag.numNodes(), BankAssignment::invalid);
    banks.peOf.assign(dag.numNodes(), BankAssignment::invalid);
    std::vector<std::span<const Block>> partBlocks(num_parts);
    std::vector<size_t> blocksPerPart(num_parts);
    for (size_t p = 0; p < num_parts; ++p) {
        NodeId lo = pieces[p].range.first;
        for (size_t i = 0; i < pieceBanks[p].bankOf.size(); ++i) {
            banks.bankOf[lo + i] = pieceBanks[p].bankOf[i];
            banks.peOf[lo + i] = pieceBanks[p].peOf[i];
        }
        partBlocks[p] = std::span<const Block>(pieces[p].blocks);
        blocksPerPart[p] = pieces[p].blocks.size();
    }
    CodegenShared shared = computeCodegenShared(dag, partBlocks);

    // Step "codegen", partition-parallel: fragments only consume the
    // merged read-only state above.
    std::vector<IrFragment> frags(num_parts);
    parallelFor(num_parts, options.threads, [&](size_t p) {
        frags[p] =
            generateIrForRange(dag, cfg, partBlocks[p], pieces[p].range,
                               banks, shared, static_cast<uint32_t>(p));
    });

    // Deterministic sequential merge + steps 3 and 4.
    IrProgram ir = mergeIrFragments(dag, cfg, banks, shared,
                                    std::move(frags), blocksPerPart);
    BlockDecomposition dec =
        mergeRangeDecompositions(dag, std::move(pieces));
    banks.readConflicts = countReadConflicts(dec, banks);
    if (options.validate)
        validateDecomposition(dag, cfg, dec);

    VerifyIrOptions vopt;
    vopt.numBlocks = dec.blocks.size();
    if (options.verify)
        throwIfVerifyErrors(verifyIr(ir, cfg, vopt), "codegen");

    reorderForPipeline(ir, cfg, options.reorderWindow);
    if (options.validate)
        checkHazardFree(ir, cfg);
    if (options.verify) {
        vopt.hazardsResolved = true;
        throwIfVerifyErrors(verifyIr(ir, cfg, vopt), "schedule");
    }

    CompiledProgram prog = finalizeProgram(std::move(ir), cfg, dec);

    prog.stats.numOperations = dag.numOperations();
    prog.stats.programBits = programSizeBits(cfg, prog.instructions);
    prog.stats.programBitsExplicitWrites =
        explicitWriteFootprintBits(cfg, prog.instructions);
    prog.stats.csrBits = csrFootprintBits(dag);
    prog.stats.dataBits = uint64_t(prog.numRows) * cfg.banks * 32;

    // Last: the program-level pass cross-checks the stats fields just
    // filled in (V040), so it must see the finished program.
    if (options.verify)
        throwIfVerifyErrors(verifyProgram(prog), "finalize");

    auto t1 = std::chrono::steady_clock::now();
    prog.stats.compileSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return prog;
}

} // namespace dpu
