/**
 * @file
 * Compiler intermediate representation.
 *
 * Between codegen and final address resolution, instructions refer to
 * *register instances* instead of concrete addresses: an instance is
 * one write of one value into one bank (the primary write of an io
 * value, or a temporary copy made to resolve a read conflict).
 * Because write addresses are generated automatically by the hardware
 * (paper §III-B), concrete addresses exist only after the final
 * instruction order is fixed; the resolution pass (finalize.cc)
 * replays the program in issue order and patches them in.
 */

#ifndef DPU_COMPILER_IR_HH
#define DPU_COMPILER_IR_HH

#include <cstdint>
#include <vector>

#include "arch/isa.hh"
#include "dag/node.hh"

namespace dpu {

/** Id of a register instance. */
using InstanceId = uint32_t;

constexpr InstanceId invalidInstance = static_cast<InstanceId>(-1);

/** One write of one value into one bank. */
struct RegInstance
{
    NodeId value = invalidNode;
    uint32_t bank = 0;
    uint32_t writerPe = static_cast<uint32_t>(-1); ///< exec writes only.
};

/** A register read in the IR. */
struct IrRead
{
    InstanceId inst = invalidInstance;
    bool lastRead = false; ///< Sets valid_rst: frees the register.
};

/** A register write in the IR (address chosen at resolution time). */
struct IrWrite
{
    InstanceId inst = invalidInstance;
};

/** One IR instruction. Field applicability follows `kind`. */
struct IrInstr
{
    InstrKind kind = InstrKind::Nop;

    /** load / store / store_4: data-memory row. */
    uint32_t memRow = 0;

    /** store/store_4/copy_4/exec: register reads (<= 1 per bank). */
    std::vector<IrRead> reads;

    /** load/copy_4/exec: register writes (<= 1 per bank). For copy_4,
     *  writes[i] pairs with reads[i]. */
    std::vector<IrWrite> writes;

    /** exec only: source block (peOps live there). */
    uint32_t blockId = static_cast<uint32_t>(-1);

    /** exec only: crossbar select per input port (bank index). */
    std::vector<uint16_t> inputSel;
};

/** The IR program plus its instance table. */
struct IrProgram
{
    std::vector<IrInstr> instrs;
    std::vector<RegInstance> instances;

    /** Data-memory layout grows in three regions. */
    uint32_t inputRows = 0;  ///< [0, inputRows): preloaded DAG inputs.
    uint32_t outputRows = 0; ///< [inputRows, inputRows+outputRows).

    /** Location of DAG input k (k-th Input node by id). */
    std::vector<std::pair<uint32_t, uint32_t>> inputLocation;

    /** Where each DAG sink value ends up. */
    struct OutputLoc
    {
        NodeId node;
        uint32_t row;
        uint32_t col;
    };
    std::vector<OutputLoc> outputs;

    /** Read conflicts resolved with copies (fig. 10(b) metric). */
    uint64_t copyResolvedConflicts = 0;
};

/** Producer-write latency: cycles until the written register is
 *  readable (exec: the D+1-stage pipeline; load/copy: 2). */
inline uint32_t
writeLatency(InstrKind kind, const ArchConfig &cfg)
{
    switch (kind) {
      case InstrKind::Exec:
        return cfg.pipelineStages();
      case InstrKind::Load:
      case InstrKind::Copy4:
        return 2;
      default:
        return 0;
    }
}

} // namespace dpu

#endif // DPU_COMPILER_IR_HH
