/**
 * @file
 * The DPU-v2 compiler driver (paper §IV, fig. 8).
 *
 * Pipeline: binarize -> (optional coarse partitioning) ->
 * step 1 block decomposition -> step 2 PE/bank mapping ->
 * IR codegen -> step 3 pipeline-aware reordering ->
 * step 4 spilling + address resolution -> executable program.
 */

#ifndef DPU_COMPILER_COMPILER_HH
#define DPU_COMPILER_COMPILER_HH

#include "arch/config.hh"
#include "compiler/mapper.hh"
#include "compiler/program.hh"
#include "dag/dag.hh"

namespace dpu {

class FragmentCache;

/** Knobs of the compilation pipeline. */
struct CompileOptions
{
    /** Step-2 policy (Random is the fig. 10(b) baseline). */
    BankPolicy bankPolicy = BankPolicy::ConflictAware;

    /** Boundary-aware step 2 on partitioned compiles: each range's
     *  mapper sees the bank occupancy of earlier ranges, so values
     *  co-read across a partition boundary avoid each other's banks
     *  (fewer read conflicts, fewer copy instructions). Ranges are
     *  then mapped sequentially — decomposition and codegen still
     *  fan out. No effect on unpartitioned compiles. */
    bool boundaryAwareBanks = true;

    /** Step-3 look-ahead window (paper: 300). */
    uint32_t reorderWindow = 300;

    /** Coarse partition size in compute nodes; 0 = no partitioning.
     *  The paper uses 20000 for the multi-million-node PCs. */
    uint32_t partitionNodes = 0;

    /** Seed driving every randomized tie-break. */
    uint64_t seed = 1;

    /** Run the expensive internal validations (tests set this). */
    bool validate = false;

    /** Run the static verifier (compiler/verify.hh) over the IR after
     *  codegen and scheduling and over the final program, throwing
     *  VerifyError with structured diagnostics on any violation. On by
     *  default in Debug and sanitizer builds (DPU_VERIFY_DEFAULT);
     *  off — and therefore zero-overhead — in Release. */
#if !defined(NDEBUG) || defined(DPU_VERIFY_DEFAULT)
    bool verify = true;
#else
    bool verify = false;
#endif

    /** Host worker threads for partition-parallel compilation. Each
     *  partition's block decomposition, bank mapping, IR codegen,
     *  pipeline reorder and finalize run concurrently (steps 3-4 are
     *  pipelined against codegen per partition); the merged program
     *  is byte-identical for every thread count (and to threads = 1).
     *  Only effective when partitionNodes yields more than one
     *  partition. */
    uint32_t threads = 1;

    /** Optional per-partition fragment cache (see compiler/cache.hh):
     *  partitions whose sub-DAG and configuration subset match a
     *  previous compile reuse its decomposition/mapping/codegen
     *  artifacts. Reuse is keyed to be output-preserving, so this
     *  never changes the emitted program. nullptr = off.
     *  ProgramCache wires its own instance here automatically. */
    FragmentCache *fragmentCache = nullptr;
};

/**
 * Compile a DAG for a DPU-v2 configuration.
 *
 * The input DAG may contain multi-input nodes; it is binarized first.
 * Throws FatalError for impossible configurations (e.g. a register
 * file too small to hold any schedule).
 */
CompiledProgram compile(const Dag &dag, const ArchConfig &cfg,
                        const CompileOptions &options = {});

/**
 * Footprint of the conventional CSR-style representation of the same
 * DAG (paper §IV-E): per-node pointers + per-edge indices + per-node
 * operator tag + one 32-bit word per value.
 */
uint64_t csrFootprintBits(const Dag &binarized_dag);

} // namespace dpu

#endif // DPU_COMPILER_COMPILER_HH
