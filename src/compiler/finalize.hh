/**
 * @file
 * Compilation step 4: register spilling and address resolution
 * (paper §IV-D).
 *
 * Replays the scheduled IR in issue order while modelling every
 * register bank's valid bits exactly as the hardware's priority
 * encoder will see them (write addresses are reserved at issue; see
 * DESIGN.md "Write-address reservation at issue"). When a bank
 * overflows its R registers, the occupant with the furthest next use
 * (Belady) is spilled with a store; spilled values are reloaded with
 * a load + nop pair right before their next consumer. Produces the
 * final, bit-exact instruction stream.
 */

#ifndef DPU_COMPILER_FINALIZE_HH
#define DPU_COMPILER_FINALIZE_HH

#include <functional>
#include <memory>

#include "compiler/blocks.hh"
#include "compiler/ir.hh"
#include "compiler/program.hh"

namespace dpu {

namespace detail {
class FinalizerImpl;
}

/**
 * Incremental step 4: consumes the scheduled IR chunk by chunk (one
 * chunk per merged partition in the pipelined compile path), emitting
 * final instructions as each chunk arrives instead of waiting for the
 * whole stream. Chunks must arrive in stream order; the result is
 * byte-identical to finalizing the concatenated stream in one pass,
 * except that spill-reload prefetching never looks across a chunk
 * boundary (the next chunk may not exist yet) — the in-order reload
 * fallback covers those reads. Spill rows are allocated relative and
 * rebased below the input/output region at finish(), when the final
 * row counts are known.
 */
class ProgramFinalizer
{
  public:
    /** Resolves a global block id to its Block (peOps for execs). */
    using BlockResolver = std::function<const Block &(uint32_t)>;

    ProgramFinalizer(const ArchConfig &cfg, BlockResolver blocks);
    ~ProgramFinalizer();
    ProgramFinalizer(const ProgramFinalizer &) = delete;
    ProgramFinalizer &operator=(const ProgramFinalizer &) = delete;

    /**
     * Finalize ir.instrs[fromInstr..) over instances
     * ir.instances[fromInstance..) appended since the previous chunk.
     * `ir` must contain the full merged stream so far (IR indices are
     * global).
     */
    void appendChunk(const IrProgram &ir, size_t fromInstr,
                     size_t fromInstance);

    /**
     * Rebase the spill rows on ir's final input/output region, check
     * for register leaks, and fill the step 1-4 stats (workload-level
     * fields are left for the driver, as before).
     */
    CompiledProgram finish(const IrProgram &ir, size_t numBlocks);

  private:
    std::unique_ptr<detail::FinalizerImpl> impl;
};

/**
 * Run step 4 on a complete scheduled IR program (single-chunk
 * convenience wrapper around ProgramFinalizer; byte-identical to the
 * historical monolithic pass).
 *
 * @param ir Scheduled IR (consumed).
 * @param cfg Architecture configuration.
 * @param dec Step-1 decomposition (peOps of each block).
 * @return The executable program; stats fields covering steps 1-4 are
 *         filled except workload-level ones (numOperations, csrBits,
 *         compile time) which the driver adds.
 */
CompiledProgram finalizeProgram(IrProgram &&ir, const ArchConfig &cfg,
                                const BlockDecomposition &dec);

} // namespace dpu

#endif // DPU_COMPILER_FINALIZE_HH
