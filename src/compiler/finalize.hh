/**
 * @file
 * Compilation step 4: register spilling and address resolution
 * (paper §IV-D).
 *
 * Replays the scheduled IR in issue order while modelling every
 * register bank's valid bits exactly as the hardware's priority
 * encoder will see them (write addresses are reserved at issue; see
 * DESIGN.md "Write-address reservation at issue"). When a bank
 * overflows its R registers, the occupant with the furthest next use
 * (Belady) is spilled with a store; spilled values are reloaded with
 * a load + nop pair right before their next consumer. Produces the
 * final, bit-exact instruction stream.
 */

#ifndef DPU_COMPILER_FINALIZE_HH
#define DPU_COMPILER_FINALIZE_HH

#include "compiler/blocks.hh"
#include "compiler/ir.hh"
#include "compiler/program.hh"

namespace dpu {

/**
 * Run step 4 on a scheduled IR program.
 *
 * @param ir Scheduled IR (consumed).
 * @param cfg Architecture configuration.
 * @param dec Step-1 decomposition (peOps of each block).
 * @return The executable program; stats fields covering steps 1-4 are
 *         filled except workload-level ones (numOperations, csrBits,
 *         compile time) which the driver adds.
 */
CompiledProgram finalizeProgram(IrProgram &&ir, const ArchConfig &cfg,
                                const BlockDecomposition &dec);

} // namespace dpu

#endif // DPU_COMPILER_FINALIZE_HH
