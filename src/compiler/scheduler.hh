/**
 * @file
 * Compilation step 3: pipeline-aware reordering (paper §IV-C).
 *
 * The datapath has D+1 pipeline stages, so an instruction reading a
 * register must issue at least `writeLatency(producer)` cycles after
 * the producer. The scheduler reorders the IR list to hide these gaps
 * behind independent instructions, searching only a fixed-size window
 * of succeeding instructions (300, like the paper) so runtime stays
 * linear, and inserts nops for hazards it cannot hide.
 */

#ifndef DPU_COMPILER_SCHEDULER_HH
#define DPU_COMPILER_SCHEDULER_HH

#include "arch/config.hh"
#include "compiler/ir.hh"

namespace dpu {

struct IrFragment;

/** Scheduling statistics. */
struct ScheduleStats
{
    uint64_t nopsInserted = 0;
    uint64_t movedInstructions = 0; ///< Issued out of original order.
};

/**
 * Reorder `ir.instrs` in place.
 *
 * @param window Look-ahead window in instructions (paper: 300).
 */
ScheduleStats reorderForPipeline(IrProgram &ir, const ArchConfig &cfg,
                                 uint32_t window = 300);

/**
 * Reorder one partition's IR fragment in place, before merging.
 *
 * External references (values produced by earlier partitions) carry
 * no producer edge — they are treated as ready at cycle 0, and the
 * merge pads the fragment boundary until every cross-fragment write
 * has landed — but their valid_rst ordering and the fragment's local
 * hazards are scheduled exactly like the whole-program pass, so the
 * merged stream needs no further reordering.
 */
ScheduleStats reorderFragment(IrFragment &frag, const ArchConfig &cfg,
                              uint32_t window = 300);

/**
 * Verify (for tests / the simulator cross-check) that every read in
 * the list issues at least the producer's write latency after the
 * producer, and that non-final reads of an instance precede its
 * valid_rst read. Panics on violation.
 */
void checkHazardFree(const IrProgram &ir, const ArchConfig &cfg);

} // namespace dpu

#endif // DPU_COMPILER_SCHEDULER_HH
