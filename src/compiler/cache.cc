#include "compiler/cache.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "arch/isa.hh"
#include "compiler/verify.hh"
#include "support/logging.hh"

namespace dpu {

namespace {

/** splitmix64-style avalanche, for word-at-a-time hashing. */
uint64_t
mix64(uint64_t h, uint64_t x)
{
    h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    return h;
}

// ------------------------------------------------------------------ //
// Binary image helpers (native endianness; see file header of the    //
// cache for why that is acceptable).                                 //
// ------------------------------------------------------------------ //

struct Writer
{
    std::vector<uint8_t> buf;

    void
    raw(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        buf.insert(buf.end(), b, b + n);
    }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }
};

struct Reader
{
    const uint8_t *p;
    const uint8_t *end;
    bool ok = true;

    bool
    raw(void *out, size_t n)
    {
        if (!ok || static_cast<size_t>(end - p) < n) {
            ok = false;
            return false;
        }
        std::memcpy(out, p, n);
        p += n;
        return true;
    }
    uint32_t
    u32()
    {
        uint32_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }
    uint64_t
    u64()
    {
        uint64_t v = 0;
        raw(&v, sizeof(v));
        return v;
    }
    double
    f64()
    {
        double v = 0;
        raw(&v, sizeof(v));
        return v;
    }
};

// Bumped to "DPUPROG2" when stats.verifySeconds joined the image;
// older spill files deserialize as misses.
constexpr uint64_t programMagic = 0x3247524f50555044ull; // "DPUPROG2"

} // namespace

bool
ensureWritableDirectory(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::path path(dir);
    std::filesystem::create_directories(path, ec);
    if (ec)
        return false;
    std::filesystem::path probe =
        path / (".probe." +
                std::to_string(
#if defined(__unix__) || defined(__APPLE__)
                    static_cast<long>(::getpid())
#else
                    0L
#endif
                ));
    {
        std::ofstream out(probe, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << 'x';
        out.flush();
        if (!out)
            return false;
    }
    std::filesystem::remove(probe, ec);
    return true;
}

uint64_t
dagStructuralHash(const Dag &dag)
{
    uint64_t h = 0x8a5cd789635d2dffull;
    h = mix64(h, dag.numNodes());
    for (NodeId v = 0; v < dag.numNodes(); ++v) {
        const Node &n = dag.node(v);
        h = mix64(h, n.isInput()
                         ? 0ull
                         : 1ull + static_cast<uint64_t>(n.op));
        h = mix64(h, n.operands.size());
        for (NodeId o : n.operands)
            h = mix64(h, o);
    }
    return h;
}

uint64_t
rangeStructuralHash(const Dag &dag, NodeId lo, NodeId hi)
{
    dpu_assert(lo <= hi && hi <= dag.numNodes(), "bad hash range");
    uint64_t h = 0x94d049bb133111ebull;
    h = mix64(h, hi - lo);
    for (NodeId v = lo; v < hi; ++v) {
        const Node &n = dag.node(v);
        h = mix64(h, n.isInput()
                         ? 0ull
                         : 1ull + static_cast<uint64_t>(n.op));
        h = mix64(h, n.operands.size());
        for (NodeId o : n.operands)
            h = mix64(h, o >= lo
                             ? static_cast<uint64_t>(o - lo)
                             : 0x8000000000000000ull | o);
    }
    return h;
}

std::string
programCacheKey(const Dag &dag, const ArchConfig &cfg,
                const CompileOptions &options)
{
    char suffix[160];
    std::snprintf(suffix, sizeof(suffix),
                  "%016llx-D%u.B%u.R%u-n%d-m%u-b%d-a%d-w%u-p%u-s%llu",
                  static_cast<unsigned long long>(dagStructuralHash(dag)),
                  cfg.depth, cfg.banks, cfg.regsPerBank,
                  static_cast<int>(cfg.outputNet), cfg.dataMemRows,
                  static_cast<int>(options.bankPolicy),
                  static_cast<int>(options.boundaryAwareBanks),
                  options.reorderWindow, options.partitionNodes,
                  static_cast<unsigned long long>(options.seed));
    return suffix;
}

std::string
fragmentCacheKey(uint64_t dagHash, std::pair<NodeId, NodeId> range,
                 uint32_t part, const Dag &dag, const ArchConfig &cfg,
                 const CompileOptions &options)
{
    char suffix[192];
    std::snprintf(suffix, sizeof(suffix),
                  "f%016llx-r%016llx.%u.%u-p%u-D%u.B%u-n%d-b%d-a%d-q%u"
                  "-s%llu",
                  static_cast<unsigned long long>(dagHash),
                  static_cast<unsigned long long>(
                      rangeStructuralHash(dag, range.first, range.second)),
                  range.first, range.second, part, cfg.depth, cfg.banks,
                  static_cast<int>(cfg.outputNet),
                  static_cast<int>(options.bankPolicy),
                  static_cast<int>(options.boundaryAwareBanks),
                  options.partitionNodes,
                  static_cast<unsigned long long>(options.seed));
    return suffix;
}

FragmentCache::FragmentCache(size_t maxEntries_) : maxEntries(maxEntries_)
{
    dpu_assert(maxEntries >= 1, "fragment cache needs at least one slot");
}

std::shared_ptr<const CompiledFragment>
FragmentCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(key);
    if (it == index.end()) {
        ++counters.misses;
        return nullptr;
    }
    lru.splice(lru.begin(), lru, it->second);
    ++counters.hits;
    return it->second->frag;
}

void
FragmentCache::store(const std::string &key, const RangeDecomposition &dec,
                     const BankAssignment &banks, const IrFragment &frag)
{
    auto shared = std::make_shared<const CompiledFragment>(
        CompiledFragment{dec, banks, frag});
    std::lock_guard<std::mutex> lock(mutex);
    auto it = index.find(key);
    if (it != index.end()) {
        it->second->frag = std::move(shared);
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.push_front({key, std::move(shared)});
    index[key] = lru.begin();
    while (lru.size() > maxEntries) {
        index.erase(lru.back().key);
        lru.pop_back();
    }
}

FragmentCache::Stats
FragmentCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

size_t
FragmentCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return lru.size();
}

std::vector<uint8_t>
serializeProgram(const CompiledProgram &prog)
{
    Writer w;
    w.u64(programMagic);

    w.u32(prog.cfg.depth);
    w.u32(prog.cfg.banks);
    w.u32(prog.cfg.regsPerBank);
    w.u32(static_cast<uint32_t>(prog.cfg.outputNet));
    w.u32(prog.cfg.dataMemRows);

    std::vector<uint8_t> image =
        encodeProgram(prog.cfg, prog.instructions);
    w.u64(prog.instructions.size());
    w.u64(image.size());
    w.raw(image.data(), image.size());

    w.u32(prog.numRows);
    w.u64(prog.inputLocation.size());
    for (auto [row, col] : prog.inputLocation) {
        w.u32(row);
        w.u32(col);
    }
    w.u64(prog.outputs.size());
    for (const auto &o : prog.outputs) {
        w.u32(o.node);
        w.u32(o.row);
        w.u32(o.col);
    }

    const CompileStats &s = prog.stats;
    for (uint64_t k : s.kindCount)
        w.u64(k);
    w.u64(s.instructions);
    w.u64(s.cycles);
    w.u64(s.bankConflicts);
    w.u64(s.nops);
    w.u64(s.spillStores);
    w.u64(s.reloads);
    w.u64(s.numOperations);
    w.u64(s.peOpsExecuted);
    w.u64(s.blocks);
    w.u64(s.programBits);
    w.u64(s.programBitsExplicitWrites);
    w.u64(s.csrBits);
    w.u64(s.dataBits);
    w.f64(s.compileSeconds);
    w.f64(s.verifySeconds);
    return std::move(w.buf);
}

bool
deserializeProgram(const std::vector<uint8_t> &image, CompiledProgram &out)
{
    Reader r{image.data(), image.data() + image.size()};
    if (r.u64() != programMagic)
        return false;

    CompiledProgram prog;
    prog.cfg.depth = r.u32();
    prog.cfg.banks = r.u32();
    prog.cfg.regsPerBank = r.u32();
    prog.cfg.outputNet = static_cast<OutputInterconnect>(r.u32());
    prog.cfg.dataMemRows = r.u32();

    uint64_t instr_count = r.u64();
    uint64_t image_bytes = r.u64();
    if (!r.ok || image_bytes > static_cast<size_t>(r.end - r.p))
        return false;
    std::vector<uint8_t> packed(r.p, r.p + image_bytes);
    r.p += image_bytes;
    try {
        prog.cfg.check();
        prog.instructions = decodeProgram(
            prog.cfg, packed, static_cast<size_t>(instr_count));
    } catch (...) {
        return false;
    }

    prog.numRows = r.u32();
    uint64_t n_inputs = r.u64();
    if (!r.ok || n_inputs > image.size())
        return false;
    prog.inputLocation.reserve(n_inputs);
    for (uint64_t i = 0; i < n_inputs; ++i) {
        uint32_t row = r.u32();
        uint32_t col = r.u32();
        prog.inputLocation.emplace_back(row, col);
    }
    uint64_t n_outputs = r.u64();
    if (!r.ok || n_outputs > image.size())
        return false;
    prog.outputs.reserve(n_outputs);
    for (uint64_t i = 0; i < n_outputs; ++i) {
        CompiledProgram::OutputLoc o;
        o.node = r.u32();
        o.row = r.u32();
        o.col = r.u32();
        prog.outputs.push_back(o);
    }

    CompileStats &s = prog.stats;
    for (uint64_t &k : s.kindCount)
        k = r.u64();
    s.instructions = r.u64();
    s.cycles = r.u64();
    s.bankConflicts = r.u64();
    s.nops = r.u64();
    s.spillStores = r.u64();
    s.reloads = r.u64();
    s.numOperations = r.u64();
    s.peOpsExecuted = r.u64();
    s.blocks = r.u64();
    s.programBits = r.u64();
    s.programBitsExplicitWrites = r.u64();
    s.csrBits = r.u64();
    s.dataBits = r.u64();
    s.compileSeconds = r.f64();
    s.verifySeconds = r.f64();
    if (!r.ok || r.p != r.end)
        return false;
    out = std::move(prog);
    return true;
}

ProgramCache::ProgramCache(ProgramCacheConfig config_)
    : config(std::move(config_)), fragments(config.maxFragments)
{
    dpu_assert(config.maxEntries >= 1, "cache needs at least one slot");
    if (!config.diskDir.empty() &&
        !ensureWritableDirectory(config.diskDir)) {
        // A broken spill directory (read-only FS, path under a file)
        // must not abort the caller's sweep: degrade to the in-memory
        // LRU and say so once.
        std::fprintf(stderr,
                     "ProgramCache: cache dir '%s' is not writable; "
                     "falling back to in-memory-only caching\n",
                     config.diskDir.c_str());
        config.diskDir.clear();
    }
}

CompiledProgram
ProgramCache::compile(const Dag &dag, const ArchConfig &cfg,
                      const CompileOptions &options)
{
    auto t0 = std::chrono::steady_clock::now();
    auto fetch_seconds = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    std::string key = programCacheKey(dag, cfg, options);

    std::shared_ptr<const CompiledProgram> resident;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = index.find(key);
        if (it != index.end()) {
            lru.splice(lru.begin(), lru, it->second);
            ++counters.hits;
            resident = it->second->prog;
        }
    }
    if (resident) {
        // Deep copy outside the mutex: entries are immutable, so
        // concurrent workers only contend for the lookup above.
        CompiledProgram copy = *resident;
        copy.stats.cacheHits = 1;
        copy.stats.compileSeconds = fetch_seconds();
        return copy;
    }

    if (!config.diskDir.empty()) {
        CompiledProgram prog;
        if (loadFromDisk(key, prog)) {
            auto shared =
                std::make_shared<const CompiledProgram>(std::move(prog));
            {
                std::lock_guard<std::mutex> lock(mutex);
                ++counters.diskHits;
                insertLocked(key, shared);
            }
            CompiledProgram copy = *shared;
            copy.stats.cacheHits = 1;
            copy.stats.compileSeconds = fetch_seconds();
            return copy;
        }
    }

    // A full compile still reuses per-partition fragments of earlier
    // compiles (e.g. a DSE neighbor differing only in regsPerBank).
    CompileOptions opts = options;
    opts.fragmentCache = &fragments;
    CompiledProgram prog = dpu::compile(dag, cfg, opts);
    auto shared = std::make_shared<const CompiledProgram>(prog);
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.misses;
        insertLocked(key, shared);
    }
    if (!config.diskDir.empty())
        storeToDisk(key, *shared);
    return prog;
}

void
ProgramCache::insert(const Dag &dag, const ArchConfig &cfg,
                     const CompileOptions &options,
                     const CompiledProgram &prog)
{
    std::string key = programCacheKey(dag, cfg, options);
    CompiledProgram stored = prog;
    stored.stats.cacheHits = 0; // future hits flag themselves
    auto shared =
        std::make_shared<const CompiledProgram>(std::move(stored));
    {
        std::lock_guard<std::mutex> lock(mutex);
        insertLocked(key, shared);
    }
    if (!config.diskDir.empty())
        storeToDisk(key, *shared);
}

namespace {

/** Memo key: program key + tier tag + core count. */
std::string
evalMemoKey(const std::string &key, uint8_t fidelity, uint32_t cores)
{
    return key + "|f" + std::to_string(fidelity) + "|c" +
           std::to_string(cores);
}

/** Memo growth bound: far above any sweep's (points x workloads x
 *  tiers) footprint, small enough that a runaway caller cannot eat
 *  the heap. */
constexpr size_t kMaxEvalMemoEntries = 1 << 16;

} // namespace

bool
ProgramCache::lookupEvalStats(const std::string &key, uint8_t fidelity,
                              uint32_t cores, SimStats &out) const
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = evalMemo.find(evalMemoKey(key, fidelity, cores));
    // The counters are logically mutable cache bookkeeping.
    auto &c = const_cast<ProgramCache *>(this)->counters;
    if (it == evalMemo.end()) {
        ++c.evalMisses;
        return false;
    }
    ++c.evalHits;
    out = it->second;
    return true;
}

void
ProgramCache::storeEvalStats(const std::string &key, uint8_t fidelity,
                             uint32_t cores, const SimStats &stats)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (evalMemo.size() >= kMaxEvalMemoEntries)
        return;
    evalMemo[evalMemoKey(key, fidelity, cores)] = stats;
}

ProgramCache::Stats
ProgramCache::stats() const
{
    FragmentCache::Stats frag = fragments.stats();
    std::lock_guard<std::mutex> lock(mutex);
    Stats out = counters;
    out.fragHits = frag.hits;
    out.fragMisses = frag.misses;
    return out;
}

size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return lru.size();
}

bool
ProgramCache::loadFromDisk(const std::string &key, CompiledProgram &out)
{
    std::filesystem::path path =
        std::filesystem::path(config.diskDir) / (key + ".dpuprog");
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::vector<uint8_t> image(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    auto reject = [&](const char *why) {
        std::fprintf(stderr,
                     "ProgramCache: rejecting spill file '%s' (%s); "
                     "treating as a miss\n",
                     path.string().c_str(), why);
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.diskRejects;
        return false;
    };
    if (!deserializeProgram(image, out))
        return reject("truncated or malformed image");
    // A well-formed image can still carry a corrupt program (bit rot,
    // a stale writer, a hand-edited file): prove it legal before any
    // simulator trusts it.
    VerifyReport report = verifyProgram(out);
    if (report.errorCount())
        return reject(report.summary().c_str());
    return true;
}

void
ProgramCache::storeToDisk(const std::string &key,
                          const CompiledProgram &prog)
{
    std::error_code ec;
    std::filesystem::path dir(config.diskDir);
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return; // a cache write failure is not an error
    std::filesystem::path path = dir / (key + ".dpuprog");
    // Per-process tmp name: concurrent writers of one key (e.g. two
    // benches sharing a --cache-dir) must not interleave into the
    // same file before the atomic rename.
    std::filesystem::path tmp =
        dir / (key + ".tmp." +
               std::to_string(
#if defined(__unix__) || defined(__APPLE__)
                   static_cast<long>(::getpid())
#else
                   0L
#endif
               ));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        std::vector<uint8_t> image = serializeProgram(prog);
        out.write(reinterpret_cast<const char *>(image.data()),
                  static_cast<std::streamsize>(image.size()));
        if (!out)
            return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (!ec) {
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.diskWrites;
    }
}

void
ProgramCache::insertLocked(const std::string &key,
                           std::shared_ptr<const CompiledProgram> prog)
{
    auto it = index.find(key);
    if (it != index.end()) {
        it->second->prog = std::move(prog);
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.push_front({key, std::move(prog)});
    index[key] = lru.begin();
    while (lru.size() > config.maxEntries) {
        index.erase(lru.back().key);
        lru.pop_back();
        ++counters.evictions;
    }
}

} // namespace dpu
