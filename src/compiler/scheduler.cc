#include "compiler/scheduler.hh"

#include <algorithm>
#include <map>
#include <queue>

#include "compiler/codegen.hh"
#include "support/logging.hh"

namespace dpu {

namespace {

/** Dependence edge: successor must issue >= gap after predecessor. */
struct DepEdge
{
    uint32_t succ;
    uint32_t gap;
};

/**
 * Build the dependence graph of an IR list:
 *  - writer -> reader of each instance, gap = producer write latency;
 *  - non-final reader -> valid_rst reader of an instance, gap 1
 *    (the freeing read must stay the temporally last one);
 *  - memory ordering on a data-memory row (store->load gap 2,
 *    load->store and store->store gap 1).
 *
 * Fragment mode (numExternals > 0 allowed): reads carrying
 * IrFragment::externalFlag reference values written by an earlier
 * fragment. They get a dependence slot past the local instances (for
 * valid_rst ordering among this fragment's reads of the value) but no
 * producer edge — the merge pads the boundary until the producer's
 * write has landed. The register-leak check is also skipped: a local
 * value read or stored only by later fragments legitimately has no
 * valid_rst read here.
 */
void
buildDeps(const IrProgram &ir, const ArchConfig &cfg, bool fragment,
          size_t numExternals, std::vector<std::vector<DepEdge>> &succs,
          std::vector<uint32_t> &ndeps)
{
    const size_t n = ir.instrs.size();
    const size_t nlocal = ir.instances.size();
    succs.assign(n, {});
    ndeps.assign(n, 0);

    auto add_edge = [&](uint32_t from, uint32_t to, uint32_t gap) {
        succs[from].push_back({to, gap});
        ++ndeps[to];
    };

    auto slot = [&](InstanceId id) -> size_t {
        if (IrFragment::isExternal(id))
            return nlocal + (id & ~IrFragment::externalFlag);
        return id;
    };

    const size_t universe = nlocal + numExternals;
    std::vector<uint32_t> writer(universe, static_cast<uint32_t>(-1));
    std::vector<std::vector<uint32_t>> readers(universe);
    std::vector<uint32_t> rst_reader(universe,
                                     static_cast<uint32_t>(-1));

    std::map<uint32_t, uint32_t> last_row_writer; // row -> store idx
    std::map<uint32_t, std::vector<uint32_t>> row_readers; // row -> loads

    for (uint32_t i = 0; i < n; ++i) {
        const IrInstr &in = ir.instrs[i];
        for (const IrRead &r : in.reads) {
            const size_t s = slot(r.inst);
            if (s < nlocal) {
                dpu_assert(writer[s] != static_cast<uint32_t>(-1),
                           "read before write in IR");
                add_edge(writer[s], i,
                         writeLatency(ir.instrs[writer[s]].kind, cfg));
            }
            if (r.lastRead) {
                dpu_assert(rst_reader[s] ==
                           static_cast<uint32_t>(-1),
                           "two valid_rst reads of one instance");
                rst_reader[s] = i;
                for (uint32_t other : readers[s])
                    add_edge(other, i, 1);
            } else {
                readers[s].push_back(i);
            }
        }
        for (const IrWrite &w : in.writes) {
            dpu_assert(writer[w.inst] == static_cast<uint32_t>(-1),
                       "instance written twice in IR");
            writer[w.inst] = i;
        }
        if (in.kind == InstrKind::Load) {
            auto it = last_row_writer.find(in.memRow);
            if (it != last_row_writer.end())
                add_edge(it->second, i, 2);
            row_readers[in.memRow].push_back(i);
        } else if (in.kind == InstrKind::Store ||
                   in.kind == InstrKind::Store4) {
            auto it = last_row_writer.find(in.memRow);
            if (it != last_row_writer.end())
                add_edge(it->second, i, 1);
            for (uint32_t rd : row_readers[in.memRow])
                add_edge(rd, i, 1);
            row_readers[in.memRow].clear();
            last_row_writer[in.memRow] = i;
        }
    }

    // Every instance must eventually be freed, or the register file
    // leaks; codegen guarantees this for whole programs. Fragments
    // may export values that a later fragment (or the final store)
    // frees.
    if (!fragment)
        for (size_t k = 0; k < nlocal; ++k)
            dpu_assert(rst_reader[k] != static_cast<uint32_t>(-1),
                       "instance never freed");
}

/**
 * The list scheduler shared by the whole-program and per-fragment
 * entry points. `liveIn` seeds the register-pressure estimate (a
 * fragment starts with its external values already live).
 */
ScheduleStats
reorderList(IrProgram &ir, const ArchConfig &cfg, uint32_t window,
            bool fragment, size_t numExternals, int64_t liveIn)
{
    dpu_assert(window >= 1, "window must be positive");
    std::vector<std::vector<DepEdge>> succs;
    std::vector<uint32_t> ndeps;
    buildDeps(ir, cfg, fragment, numExternals, succs, ndeps);

    const uint32_t n = static_cast<uint32_t>(ir.instrs.size());
    std::vector<uint32_t> remaining = ndeps;
    std::vector<uint64_t> ready_at(n, 0);
    std::vector<bool> scheduled(n, false);

    // Min-heaps of issueable instructions by original index. Loads
    // are kept apart and issued lazily (only when nothing else can
    // go): hoisting a load early only inflates register pressure —
    // its consumers cannot run sooner anyway — so eager loads would
    // turn straight into spill traffic in step 4.
    using MinHeap = std::priority_queue<uint32_t, std::vector<uint32_t>,
                                        std::greater<uint32_t>>;
    MinHeap readyOthers;
    MinHeap readyLoads;
    auto push_ready = [&](uint32_t i) {
        if (ir.instrs[i].kind == InstrKind::Load)
            readyLoads.push(i);
        else
            readyOthers.push(i);
    };
    // Instructions whose deps are all scheduled but whose gap has not
    // elapsed yet, keyed by release time.
    std::map<uint64_t, std::vector<uint32_t>> pending;

    for (uint32_t i = 0; i < n; ++i)
        if (remaining[i] == 0)
            push_ready(i);

    std::vector<IrInstr> out;
    out.reserve(n + n / 8);
    ScheduleStats stats;

    uint32_t head = 0; // smallest unscheduled original index
    uint64_t now = 0;
    uint32_t done = 0;

    auto release = [&](uint64_t time) {
        auto it = pending.begin();
        while (it != pending.end() && it->first <= time) {
            for (uint32_t i : it->second)
                push_ready(i);
            it = pending.erase(it);
        }
    };

    // Register-pressure feedback: pulling instructions forward to
    // hide hazards stretches value lifetimes, which step 4 then pays
    // for in spill traffic. Track an estimate of the live-register
    // count and shrink the look-ahead window once it passes half the
    // register file — nops are 1 cycle each, spill+reload pairs are 3.
    const uint64_t capacity =
        uint64_t(cfg.banks) * cfg.regsPerBank;
    const uint64_t high_water = capacity / 2;
    int64_t live = liveIn;

    while (done < n) {
        release(now);
        while (head < n && scheduled[head])
            ++head;

        uint32_t eff_window =
            live >= static_cast<int64_t>(high_water)
                ? std::min<uint32_t>(window, 8)
                : window;

        // Issue the earliest ready non-load inside the window; fall
        // back to the earliest ready load, then to a nop.
        uint32_t pick = static_cast<uint32_t>(-1);
        if (!readyOthers.empty() && readyOthers.top() < head + eff_window)
            pick = readyOthers.top();
        else if (!readyLoads.empty() &&
                 readyLoads.top() < head + eff_window)
            pick = readyLoads.top();

        if (pick == static_cast<uint32_t>(-1)) {
            // Nothing issueable: a hazard the window could not hide.
            out.push_back(IrInstr{}); // nop
            ++stats.nopsInserted;
            ++now;
            continue;
        }
        if (!readyOthers.empty() && pick == readyOthers.top())
            readyOthers.pop();
        else
            readyLoads.pop();
        scheduled[pick] = true;
        live += static_cast<int64_t>(ir.instrs[pick].writes.size());
        for (const IrRead &r : ir.instrs[pick].reads)
            if (r.lastRead)
                --live;
        if (pick != head)
            ++stats.movedInstructions;
        out.push_back(std::move(ir.instrs[pick]));
        ++done;
        for (const DepEdge &e : succs[pick]) {
            ready_at[e.succ] = std::max(ready_at[e.succ], now + e.gap);
            if (--remaining[e.succ] == 0) {
                if (ready_at[e.succ] <= now + 1)
                    push_ready(e.succ);
                else
                    pending[ready_at[e.succ]].push_back(e.succ);
            }
        }
        ++now;
    }
    ir.instrs = std::move(out);
    return stats;
}

} // namespace

ScheduleStats
reorderForPipeline(IrProgram &ir, const ArchConfig &cfg, uint32_t window)
{
    return reorderList(ir, cfg, window, /*fragment=*/false,
                       /*numExternals=*/0, /*liveIn=*/0);
}

ScheduleStats
reorderFragment(IrFragment &frag, const ArchConfig &cfg, uint32_t window)
{
    return reorderList(frag.ir, cfg, window, /*fragment=*/true,
                       frag.externals.size(),
                       static_cast<int64_t>(frag.externals.size()));
}

void
checkHazardFree(const IrProgram &ir, const ArchConfig &cfg)
{
    std::vector<uint64_t> readable(ir.instances.size(), 0);
    std::vector<bool> written(ir.instances.size(), false);
    std::vector<bool> freed(ir.instances.size(), false);
    for (uint32_t t = 0; t < ir.instrs.size(); ++t) {
        const IrInstr &in = ir.instrs[t];
        for (const IrRead &r : in.reads) {
            dpu_assert(written[r.inst], "read of unwritten instance");
            dpu_assert(!freed[r.inst], "read after valid_rst");
            dpu_assert(readable[r.inst] <= t, "pipeline hazard");
            if (r.lastRead)
                freed[r.inst] = true;
        }
        for (const IrWrite &w : in.writes) {
            dpu_assert(!written[w.inst], "double write");
            written[w.inst] = true;
            readable[w.inst] = t + writeLatency(in.kind, cfg);
        }
    }
    for (size_t k = 0; k < ir.instances.size(); ++k)
        dpu_assert(!written[k] || freed[k], "leaked instance");
}

} // namespace dpu
