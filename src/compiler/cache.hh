/**
 * @file
 * Content-keyed compiled-program cache.
 *
 * The bench suite compiles the same workload DAGs over and over (17
 * bench binaries, many sharing the Table I suite at the same
 * configuration). The cache keys a compile by what the compiler
 * actually reacts to — the DAG's structural hash, the ArchConfig and
 * the CompileOptions — and keeps the resulting programs in an
 * in-memory LRU with an optional on-disk spill directory so hits
 * survive across bench *processes*.
 *
 * CompileOptions::threads, ::validate and ::verify are deliberately
 * excluded from the key: the partition-parallel compiler is
 * byte-identical for every thread count, and validation/verification
 * only check the artifact, so none of them can change it.
 *
 * The disk format is a native-endianness binary image (the cache
 * directory is a local build artifact, not a portable interchange
 * format); unreadable or stale files are treated as misses.
 */

#ifndef DPU_COMPILER_CACHE_HH
#define DPU_COMPILER_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/compiler.hh"
#include "sim/machine.hh"

namespace dpu {

/** Structural hash of a DAG: node kinds, operators and edges. Two
 *  DAGs with the same hash compile identically (modulo collisions). */
uint64_t dagStructuralHash(const Dag &dag);

/** The cache key as a printable token (also the spill file stem). */
std::string programCacheKey(const Dag &dag, const ArchConfig &cfg,
                            const CompileOptions &options);

/**
 * Create `dir` (recursively) if missing and verify it is writable by
 * creating and removing a probe file. False when the directory cannot
 * be created or written (e.g. a read-only filesystem, or a path
 * component that is a regular file).
 */
bool ensureWritableDirectory(const std::string &dir);

/** Serialize a compiled program to a self-contained binary image. */
std::vector<uint8_t> serializeProgram(const CompiledProgram &prog);

/** Inverse of serializeProgram(); false on a malformed image. */
bool deserializeProgram(const std::vector<uint8_t> &image,
                        CompiledProgram &out);

/** Cache sizing / placement knobs. */
struct ProgramCacheConfig
{
    /** In-memory LRU capacity in programs. */
    size_t maxEntries = 32;

    /** Spill directory shared across processes; empty = memory only.
     *  Probed at construction: when it cannot be created or written
     *  (read-only FS), the cache warns once and falls back to
     *  in-memory-only caching instead of failing every spill. */
    std::string diskDir;
};

/**
 * A thread-safe compiled-program cache. compile() returns the cached
 * program when the key is resident (memory first, then disk), and
 * otherwise runs the real compiler and remembers the result. Cached
 * returns carry stats.cacheHits = 1 and their compileSeconds reset to
 * the fetch time, so callers can both observe hits and report honest
 * wall-clock compile costs.
 */
class ProgramCache
{
  public:
    explicit ProgramCache(ProgramCacheConfig config = {});

    /** Compile through the cache. */
    CompiledProgram compile(const Dag &dag, const ArchConfig &cfg,
                            const CompileOptions &options = {});

    /** Insert a program compiled outside the cache (e.g. by a bench
     *  that must measure real compile time but still wants later
     *  benches to reuse the artifact). Counts as neither hit nor
     *  miss; spills to disk like a miss would. */
    void insert(const Dag &dag, const ArchConfig &cfg,
                const CompileOptions &options,
                const CompiledProgram &prog);

    /**
     * Memoized per-tier evaluation results. Simulated (or estimated)
     * event counts are input-value-independent, so a (program key,
     * fidelity tier, core count) triple pins the SimStats exactly;
     * the DSE engine uses this to skip re-simulating a design point
     * it has already evaluated at the same tier. The tier is a plain
     * numeric tag (EvalFidelity's underlying value) so this layer
     * stays below model/evaluator.
     */
    bool lookupEvalStats(const std::string &key, uint8_t fidelity,
                         uint32_t cores, SimStats &out) const;

    /** Memoize an evaluation result (bounded; silently drops new
     *  entries once the memo is full). */
    void storeEvalStats(const std::string &key, uint8_t fidelity,
                        uint32_t cores, const SimStats &stats);

    /** Aggregate counters since construction. */
    struct Stats
    {
        uint64_t hits = 0;       ///< Served from memory.
        uint64_t diskHits = 0;   ///< Served from the spill directory.
        uint64_t misses = 0;     ///< Full compiles.
        uint64_t evictions = 0;  ///< LRU evictions from memory.
        uint64_t diskWrites = 0; ///< Spill files written.
        uint64_t diskRejects = 0; ///< Spill files rejected (truncated,
                                  ///  corrupt, or failing the static
                                  ///  verifier); each was a miss.
        uint64_t evalHits = 0;   ///< Eval-stats memo hits.
        uint64_t evalMisses = 0; ///< Eval-stats memo misses.

        /** Total compile() lookups (hits + diskHits + misses). */
        uint64_t lookups() const { return hits + diskHits + misses; }

        /** Fraction of lookups served from the cache (memory or
         *  disk); 0 when nothing was looked up yet. The number the
         *  sweep drivers report per shard/sweep. */
        double
        hitRate() const
        {
            uint64_t n = lookups();
            return n ? static_cast<double>(hits + diskHits) /
                           static_cast<double>(n)
                     : 0.0;
        }
    };
    Stats stats() const;

    /** Programs currently resident in memory. */
    size_t size() const;

    /** True when the on-disk spill is active (a diskDir was given
     *  and survived the construction-time writability probe). */
    bool diskEnabled() const { return !config.diskDir.empty(); }

  private:
    /** Entries hold immutable programs behind shared_ptr so a hit
     *  can leave the mutex before making the caller's deep copy. */
    struct Entry
    {
        std::string key;
        std::shared_ptr<const CompiledProgram> prog;
    };

    bool loadFromDisk(const std::string &key, CompiledProgram &out);
    void storeToDisk(const std::string &key, const CompiledProgram &prog);
    void insertLocked(const std::string &key,
                      std::shared_ptr<const CompiledProgram> prog);

    ProgramCacheConfig config;
    mutable std::mutex mutex;
    std::list<Entry> lru; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::unordered_map<std::string, SimStats> evalMemo;
    Stats counters;
};

} // namespace dpu

#endif // DPU_COMPILER_CACHE_HH
