/**
 * @file
 * Content-keyed compiled-program cache.
 *
 * The bench suite compiles the same workload DAGs over and over (17
 * bench binaries, many sharing the Table I suite at the same
 * configuration). The cache keys a compile by what the compiler
 * actually reacts to — the DAG's structural hash, the ArchConfig and
 * the CompileOptions — and keeps the resulting programs in an
 * in-memory LRU with an optional on-disk spill directory so hits
 * survive across bench *processes*.
 *
 * CompileOptions::threads, ::validate, ::verify and ::fragmentCache
 * are deliberately excluded from the key: the partition-parallel
 * compiler is byte-identical for every thread count,
 * validation/verification only check the artifact, and fragment
 * reuse is keyed to be output-preserving, so none of them can change
 * it. ::boundaryAwareBanks *is* in the key — it changes the emitted
 * program on partitioned compiles.
 *
 * The disk format is a native-endianness binary image (the cache
 * directory is a local build artifact, not a portable interchange
 * format); unreadable or stale files are treated as misses.
 */

#ifndef DPU_COMPILER_CACHE_HH
#define DPU_COMPILER_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/codegen.hh"
#include "compiler/compiler.hh"
#include "sim/machine.hh"

namespace dpu {

/** Structural hash of a DAG: node kinds, operators and edges. Two
 *  DAGs with the same hash compile identically (modulo collisions). */
uint64_t dagStructuralHash(const Dag &dag);

/**
 * Structural hash of the contiguous node range [lo, hi) — the sub-DAG
 * one partition compiles. In-range operands hash by their offset from
 * `lo`, external operands by global id, so the hash pins both the
 * range's internal structure and how it hangs off the rest of the
 * DAG.
 */
uint64_t rangeStructuralHash(const Dag &dag, NodeId lo, NodeId hi);

/** The cache key as a printable token (also the spill file stem). */
std::string programCacheKey(const Dag &dag, const ArchConfig &cfg,
                            const CompileOptions &options);

/**
 * Key of one partition's compiled fragment. Deliberately *excludes*
 * regsPerBank, dataMemRows and reorderWindow: steps 1-2 and codegen
 * never read them (registers and the reorder window only matter from
 * step 3 on), so DSE points differing only in those axes share
 * fragments — a much finer reuse grain than whole-program hits.
 */
std::string fragmentCacheKey(uint64_t dagHash,
                             std::pair<NodeId, NodeId> range, uint32_t part,
                             const Dag &dag, const ArchConfig &cfg,
                             const CompileOptions &options);

/**
 * Per-partition compile artifacts (steps 1-2 + codegen output) that a
 * later compile of the same sub-DAG under a compatible configuration
 * can reuse instead of recomputing — see fragmentCacheKey for what
 * "compatible" means.
 */
struct CompiledFragment
{
    RangeDecomposition dec;
    BankAssignment banks; ///< Range-local (indexed v - range.first).
    IrFragment frag;      ///< Unscheduled codegen output.
};

/**
 * A thread-safe bounded LRU of compiled fragments, shared across the
 * compiles of one ProgramCache (or wired directly via
 * CompileOptions::fragmentCache). Entries are immutable behind
 * shared_ptr, so a hit is a cheap pointer copy under the lock and the
 * caller deep-copies outside it.
 */
class FragmentCache
{
  public:
    explicit FragmentCache(size_t maxEntries = 128);

    /** Fetch a fragment; counts a hit or miss. */
    std::shared_ptr<const CompiledFragment>
    lookup(const std::string &key);

    /** Remember a fragment (copies the artifacts). */
    void store(const std::string &key, const RangeDecomposition &dec,
               const BankAssignment &banks, const IrFragment &frag);

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
    };
    Stats stats() const;

    /** Fragments currently resident. */
    size_t size() const;

  private:
    struct Entry
    {
        std::string key;
        std::shared_ptr<const CompiledFragment> frag;
    };

    mutable std::mutex mutex;
    size_t maxEntries;
    std::list<Entry> lru; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    Stats counters;
};

/**
 * Create `dir` (recursively) if missing and verify it is writable by
 * creating and removing a probe file. False when the directory cannot
 * be created or written (e.g. a read-only filesystem, or a path
 * component that is a regular file).
 */
bool ensureWritableDirectory(const std::string &dir);

/** Serialize a compiled program to a self-contained binary image. */
std::vector<uint8_t> serializeProgram(const CompiledProgram &prog);

/** Inverse of serializeProgram(); false on a malformed image. */
bool deserializeProgram(const std::vector<uint8_t> &image,
                        CompiledProgram &out);

/** Cache sizing / placement knobs. */
struct ProgramCacheConfig
{
    /** In-memory LRU capacity in programs. */
    size_t maxEntries = 32;

    /** Capacity of the per-partition fragment cache (entries). */
    size_t maxFragments = 128;

    /** Spill directory shared across processes; empty = memory only.
     *  Probed at construction: when it cannot be created or written
     *  (read-only FS), the cache warns once and falls back to
     *  in-memory-only caching instead of failing every spill. */
    std::string diskDir;
};

/**
 * A thread-safe compiled-program cache. compile() returns the cached
 * program when the key is resident (memory first, then disk), and
 * otherwise runs the real compiler and remembers the result. Cached
 * returns carry stats.cacheHits = 1 and their compileSeconds reset to
 * the fetch time, so callers can both observe hits and report honest
 * wall-clock compile costs.
 */
class ProgramCache
{
  public:
    explicit ProgramCache(ProgramCacheConfig config = {});

    /** Compile through the cache. */
    CompiledProgram compile(const Dag &dag, const ArchConfig &cfg,
                            const CompileOptions &options = {});

    /** Insert a program compiled outside the cache (e.g. by a bench
     *  that must measure real compile time but still wants later
     *  benches to reuse the artifact). Counts as neither hit nor
     *  miss; spills to disk like a miss would. */
    void insert(const Dag &dag, const ArchConfig &cfg,
                const CompileOptions &options,
                const CompiledProgram &prog);

    /**
     * Memoized per-tier evaluation results. Simulated (or estimated)
     * event counts are input-value-independent, so a (program key,
     * fidelity tier, core count) triple pins the SimStats exactly;
     * the DSE engine uses this to skip re-simulating a design point
     * it has already evaluated at the same tier. The tier is a plain
     * numeric tag (EvalFidelity's underlying value) so this layer
     * stays below model/evaluator.
     */
    bool lookupEvalStats(const std::string &key, uint8_t fidelity,
                         uint32_t cores, SimStats &out) const;

    /** Memoize an evaluation result (bounded; silently drops new
     *  entries once the memo is full). */
    void storeEvalStats(const std::string &key, uint8_t fidelity,
                        uint32_t cores, const SimStats &stats);

    /** Aggregate counters since construction. */
    struct Stats
    {
        uint64_t hits = 0;       ///< Served from memory.
        uint64_t diskHits = 0;   ///< Served from the spill directory.
        uint64_t misses = 0;     ///< Full compiles.
        uint64_t evictions = 0;  ///< LRU evictions from memory.
        uint64_t diskWrites = 0; ///< Spill files written.
        uint64_t diskRejects = 0; ///< Spill files rejected (truncated,
                                  ///  corrupt, or failing the static
                                  ///  verifier); each was a miss.
        uint64_t evalHits = 0;   ///< Eval-stats memo hits.
        uint64_t evalMisses = 0; ///< Eval-stats memo misses.
        uint64_t fragHits = 0;   ///< Per-partition fragment reuses.
        uint64_t fragMisses = 0; ///< Fragments compiled from scratch.

        /** Total compile() lookups (hits + diskHits + misses). */
        uint64_t lookups() const { return hits + diskHits + misses; }

        /** Fraction of lookups served from the cache (memory or
         *  disk); 0 when nothing was looked up yet. The number the
         *  sweep drivers report per shard/sweep. */
        double
        hitRate() const
        {
            uint64_t n = lookups();
            return n ? static_cast<double>(hits + diskHits) /
                           static_cast<double>(n)
                     : 0.0;
        }
    };
    Stats stats() const;

    /** Programs currently resident in memory. */
    size_t size() const;

    /** True when the on-disk spill is active (a diskDir was given
     *  and survived the construction-time writability probe). */
    bool diskEnabled() const { return !config.diskDir.empty(); }

  private:
    /** Entries hold immutable programs behind shared_ptr so a hit
     *  can leave the mutex before making the caller's deep copy. */
    struct Entry
    {
        std::string key;
        std::shared_ptr<const CompiledProgram> prog;
    };

    bool loadFromDisk(const std::string &key, CompiledProgram &out);
    void storeToDisk(const std::string &key, const CompiledProgram &prog);
    void insertLocked(const std::string &key,
                      std::shared_ptr<const CompiledProgram> prog);

    ProgramCacheConfig config;
    FragmentCache fragments; ///< Shared by every compile() miss.
    mutable std::mutex mutex;
    std::list<Entry> lru; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::unordered_map<std::string, SimStats> evalMemo;
    Stats counters;
};

} // namespace dpu

#endif // DPU_COMPILER_CACHE_HH
