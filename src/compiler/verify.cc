#include "compiler/verify.hh"

#include <algorithm>
#include <sstream>

#include "arch/interconnect.hh"

namespace dpu {

namespace {

/** Recording stops (but replay continues) past this many
 *  diagnostics, so garbage input cannot build an unbounded report. */
constexpr size_t kMaxDiagnostics = 256;

/** Shared diagnostic sink with the recording cap. */
class Sink
{
  public:
    explicit Sink(VerifyReport &report) : report(report) {}

    void
    add(VerifyCode code, uint64_t instr, std::string message,
        VerifySeverity severity = VerifySeverity::Error)
    {
        if (report.diagnostics.size() >= kMaxDiagnostics) {
            report.truncated = true;
            return;
        }
        report.diagnostics.push_back(
            {severity, code, instr, std::move(message)});
    }

  private:
    VerifyReport &report;
};

std::string
regName(uint32_t bank, uint32_t addr)
{
    return "b" + std::to_string(bank) + "@" + std::to_string(addr);
}

// ------------------------------------------------------------------ //
// IR-level pass.                                                     //
// ------------------------------------------------------------------ //

class IrVerifier
{
  public:
    IrVerifier(const IrProgram &ir, const ArchConfig &cfg,
               const VerifyIrOptions &options, VerifyReport &report)
        : ir(ir), cfg(cfg), opt(options), sink(report)
    {}

    void
    run()
    {
        written.assign(ir.instances.size(), false);
        freed.assign(ir.instances.size(), false);
        readableAt.assign(ir.instances.size(), 0);

        checkInstanceTable();
        checkIoLayout();
        for (uint64_t t = 0; t < ir.instrs.size(); ++t)
            checkInstr(t, ir.instrs[t]);
        for (size_t id = 0; id < ir.instances.size(); ++id) {
            if (written[id] && !freed[id])
                sink.add(VerifyCode::RegisterLeak, kVerifyNoInstr,
                         "instance #" + std::to_string(id) +
                             " (bank " +
                             std::to_string(ir.instances[id].bank) +
                             ") is written but never freed by a "
                             "last read");
        }
    }

  private:
    void
    checkInstanceTable()
    {
        for (size_t id = 0; id < ir.instances.size(); ++id) {
            if (ir.instances[id].bank >= cfg.banks)
                sink.add(VerifyCode::MalformedInstruction,
                         kVerifyNoInstr,
                         "instance #" + std::to_string(id) +
                             " lives in bank " +
                             std::to_string(ir.instances[id].bank) +
                             " but the machine has " +
                             std::to_string(cfg.banks) + " banks");
        }
    }

    void
    checkIoLayout()
    {
        for (size_t k = 0; k < ir.inputLocation.size(); ++k) {
            auto [row, col] = ir.inputLocation[k];
            if (row >= ir.inputRows || col >= cfg.banks)
                sink.add(VerifyCode::IoLocOutOfBounds, kVerifyNoInstr,
                         "input " + std::to_string(k) + " at (" +
                             std::to_string(row) + ", " +
                             std::to_string(col) +
                             ") outside the input region (" +
                             std::to_string(ir.inputRows) + " rows x " +
                             std::to_string(cfg.banks) + " cols)");
        }
        // Sinks that are Input nodes keep their input-region location
        // (a pass-through), so outputs may land anywhere in the io
        // rows — only past-the-end rows are illegal.
        uint32_t row_end = ir.inputRows + ir.outputRows;
        for (size_t k = 0; k < ir.outputs.size(); ++k) {
            const auto &o = ir.outputs[k];
            if (o.row >= row_end || o.col >= cfg.banks)
                sink.add(VerifyCode::IoLocOutOfBounds, kVerifyNoInstr,
                         "output " + std::to_string(k) + " at (" +
                             std::to_string(o.row) + ", " +
                             std::to_string(o.col) +
                             ") outside the io region (" +
                             std::to_string(row_end) + " rows x " +
                             std::to_string(cfg.banks) + " cols)");
        }
    }

    /** Look up a read/write target; false = unusable (diagnosed). */
    bool
    instanceOk(uint64_t t, InstanceId id)
    {
        if (id == invalidInstance || id >= ir.instances.size()) {
            sink.add(VerifyCode::MalformedInstruction, t,
                     "reference to nonexistent instance #" +
                         std::to_string(id));
            return false;
        }
        return ir.instances[id].bank < cfg.banks;
    }

    void
    checkReads(uint64_t t, const IrInstr &in)
    {
        std::vector<uint32_t> banks_read;
        for (const IrRead &r : in.reads) {
            if (!instanceOk(t, r.inst))
                continue;
            uint32_t bank = ir.instances[r.inst].bank;
            if (std::find(banks_read.begin(), banks_read.end(), bank) !=
                banks_read.end())
                sink.add(VerifyCode::BankConflict, t,
                         "two reads of bank " + std::to_string(bank) +
                             " in one instruction (one read port per "
                             "bank)");
            banks_read.push_back(bank);

            if (freed[r.inst])
                sink.add(VerifyCode::ReadAfterFree, t,
                         "read of instance #" + std::to_string(r.inst) +
                             " (bank " + std::to_string(bank) +
                             ") after its last-read free");
            else if (!written[r.inst])
                sink.add(VerifyCode::UseBeforeDef, t,
                         "read of instance #" + std::to_string(r.inst) +
                             " (bank " + std::to_string(bank) +
                             ") before any write");
            else if (opt.hazardsResolved && readableAt[r.inst] > t)
                sink.add(VerifyCode::PipelineHazard, t,
                         "read of instance #" + std::to_string(r.inst) +
                             " while its data is in flight until t=" +
                             std::to_string(readableAt[r.inst]));
            if (r.lastRead)
                freed[r.inst] = true;
        }
    }

    void
    checkWrites(uint64_t t, const IrInstr &in)
    {
        std::vector<uint32_t> banks_written;
        for (const IrWrite &w : in.writes) {
            if (!instanceOk(t, w.inst))
                continue;
            uint32_t bank = ir.instances[w.inst].bank;
            if (std::find(banks_written.begin(), banks_written.end(),
                          bank) != banks_written.end())
                sink.add(VerifyCode::BankConflict, t,
                         "two writes of bank " + std::to_string(bank) +
                             " in one instruction (one write per bank "
                             "per cycle)");
            banks_written.push_back(bank);

            if (written[w.inst])
                sink.add(VerifyCode::DoubleWrite, t,
                         "instance #" + std::to_string(w.inst) +
                             " is written twice (instances are "
                             "single-assignment)");
            written[w.inst] = true;
            readableAt[w.inst] = t + writeLatency(in.kind, cfg);

            if (in.kind == InstrKind::Exec) {
                uint32_t pe = ir.instances[w.inst].writerPe;
                if (pe >= cfg.numPes()) {
                    sink.add(VerifyCode::SelectOutOfBounds, t,
                             "exec write of instance #" +
                                 std::to_string(w.inst) +
                                 " claims writer PE " +
                                 std::to_string(pe) + " of " +
                                 std::to_string(cfg.numPes()));
                } else {
                    auto writable = writableBanks(cfg, pe);
                    if (std::find(writable.begin(), writable.end(),
                                  bank) == writable.end())
                        sink.add(VerifyCode::SelectOutOfBounds, t,
                                 "PE " + std::to_string(pe) +
                                     " cannot write bank " +
                                     std::to_string(bank) +
                                     " under the " +
                                     std::string(interconnectName(
                                         cfg.outputNet)) +
                                     " output interconnect");
                }
            }
        }
    }

    void
    checkInstr(uint64_t t, const IrInstr &in)
    {
        switch (in.kind) {
          case InstrKind::Nop:
            break;

          case InstrKind::Load:
            if (in.memRow >= ir.inputRows)
                sink.add(VerifyCode::RowOutOfBounds, t,
                         "load of row " + std::to_string(in.memRow) +
                             " outside the input region of " +
                             std::to_string(ir.inputRows) + " rows");
            break;

          case InstrKind::Store:
          case InstrKind::Store4: {
            uint32_t row_end = ir.inputRows + ir.outputRows;
            if (in.memRow < ir.inputRows || in.memRow >= row_end)
                sink.add(VerifyCode::RowOutOfBounds, t,
                         "store of row " + std::to_string(in.memRow) +
                             " outside the output region (rows [" +
                             std::to_string(ir.inputRows) + ", " +
                             std::to_string(row_end) + "))");
            if (in.kind == InstrKind::Store4 && in.reads.size() > 4)
                sink.add(VerifyCode::MalformedInstruction, t,
                         "store_4 with " +
                             std::to_string(in.reads.size()) +
                             " reads (4 slots)");
            for (const IrRead &r : in.reads)
                if (!r.lastRead)
                    sink.add(VerifyCode::MalformedInstruction, t,
                             "store read of instance #" +
                                 std::to_string(r.inst) +
                                 " does not free its source (stores "
                                 "are final reads)");
            break;
          }

          case InstrKind::Copy4:
            if (in.reads.size() != in.writes.size() ||
                in.reads.size() > 4)
                sink.add(VerifyCode::MalformedInstruction, t,
                         "copy_4 with " +
                             std::to_string(in.reads.size()) +
                             " reads / " +
                             std::to_string(in.writes.size()) +
                             " writes (paired, at most 4)");
            break;

          case InstrKind::Exec:
            if (in.inputSel.size() != cfg.banks) {
                sink.add(VerifyCode::MalformedInstruction, t,
                         "exec with " +
                             std::to_string(in.inputSel.size()) +
                             " crossbar selects for " +
                             std::to_string(cfg.banks) + " ports");
            } else {
                for (uint32_t port = 0; port < cfg.banks; ++port)
                    if (in.inputSel[port] >= cfg.banks)
                        sink.add(VerifyCode::SelectOutOfBounds, t,
                                 "crossbar select " +
                                     std::to_string(in.inputSel[port]) +
                                     " on port " + std::to_string(port) +
                                     " of " + std::to_string(cfg.banks) +
                                     " banks");
            }
            if (in.blockId >= opt.numBlocks)
                sink.add(VerifyCode::BlockOutOfBounds, t,
                         "exec references block " +
                             std::to_string(in.blockId) + " of " +
                             std::to_string(opt.numBlocks));
            break;
        }

        checkReads(t, in);
        checkWrites(t, in);
    }

    const IrProgram &ir;
    const ArchConfig &cfg;
    const VerifyIrOptions &opt;
    Sink sink;

    std::vector<bool> written;
    std::vector<bool> freed;
    std::vector<uint64_t> readableAt;
};

// ------------------------------------------------------------------ //
// Program-level pass.                                                //
// ------------------------------------------------------------------ //

/** Abstract register slot: validity + history + pipeline clock. */
struct Slot
{
    bool valid = false;
    bool everFreed = false; ///< Distinguishes V001 from V002.
    uint64_t readableAt = 0;
};

class ProgramVerifier
{
  public:
    ProgramVerifier(const CompiledProgram &prog, VerifyReport &report)
        : prog(prog), cfg(prog.cfg), sink(report)
    {}

    void
    run()
    {
        // A corrupt image can carry an impossible ArchConfig; without
        // a valid one none of the derived parameters below mean
        // anything, so bail out with a single diagnostic.
        try {
            cfg.check();
        } catch (const std::exception &e) {
            sink.add(VerifyCode::MalformedInstruction, kVerifyNoInstr,
                     std::string("illegal ArchConfig: ") + e.what());
            return;
        }

        banks.assign(cfg.banks,
                     std::vector<Slot>(cfg.regsPerBank));
        bankWriters.resize(cfg.banks);
        for (uint32_t b = 0; b < cfg.banks; ++b)
            bankWriters[b] = writingPes(cfg, b);

        checkIoLayout();
        for (now = 0; now < prog.instructions.size(); ++now)
            std::visit([&](const auto &in) { check(in); },
                       prog.instructions[now]);
        checkLeaks();
        checkStats();
    }

  private:
    void
    checkIoLayout()
    {
        for (size_t k = 0; k < prog.inputLocation.size(); ++k) {
            auto [row, col] = prog.inputLocation[k];
            if (row >= prog.numRows || col >= cfg.banks)
                sink.add(VerifyCode::IoLocOutOfBounds, kVerifyNoInstr,
                         "input " + std::to_string(k) + " at (" +
                             std::to_string(row) + ", " +
                             std::to_string(col) +
                             ") outside data memory (" +
                             std::to_string(prog.numRows) + " rows x " +
                             std::to_string(cfg.banks) + " cols)");
        }
        for (size_t k = 0; k < prog.outputs.size(); ++k) {
            const auto &o = prog.outputs[k];
            if (o.row >= prog.numRows || o.col >= cfg.banks)
                sink.add(VerifyCode::IoLocOutOfBounds, kVerifyNoInstr,
                         "output " + std::to_string(k) + " at (" +
                             std::to_string(o.row) + ", " +
                             std::to_string(o.col) +
                             ") outside data memory (" +
                             std::to_string(prog.numRows) + " rows x " +
                             std::to_string(cfg.banks) + " cols)");
        }
        if (prog.numRows > cfg.dataMemRows)
            sink.add(VerifyCode::IoLocOutOfBounds, kVerifyNoInstr,
                     "program uses " + std::to_string(prog.numRows) +
                         " data-memory rows but the configuration "
                         "provides " + std::to_string(cfg.dataMemRows),
                     VerifySeverity::Warning);
    }

    /** Read a register, diagnosing validity and pipeline timing. */
    void
    readReg(uint32_t bank, uint32_t addr)
    {
        if (bank >= cfg.banks || addr >= cfg.regsPerBank) {
            sink.add(VerifyCode::SelectOutOfBounds, now,
                     "read of register " + regName(bank, addr) +
                         " outside the " + std::to_string(cfg.banks) +
                         "x" + std::to_string(cfg.regsPerBank) +
                         " register file");
            return;
        }
        const Slot &s = banks[bank][addr];
        if (!s.valid) {
            if (s.everFreed)
                sink.add(VerifyCode::ReadAfterFree, now,
                         "read of freed register " +
                             regName(bank, addr));
            else
                sink.add(VerifyCode::UseBeforeDef, now,
                         "read of never-written register " +
                             regName(bank, addr));
            return;
        }
        if (s.readableAt > now)
            sink.add(VerifyCode::PipelineHazard, now,
                     "read of register " + regName(bank, addr) +
                         " while its data is in flight until cycle " +
                         std::to_string(s.readableAt));
    }

    /** valid_rst semantics: free a register, diagnosing double frees. */
    void
    freeReg(uint32_t bank, uint32_t addr)
    {
        if (bank >= cfg.banks || addr >= cfg.regsPerBank)
            return; // readReg already diagnosed the range
        Slot &s = banks[bank][addr];
        if (!s.valid) {
            sink.add(VerifyCode::DoubleFree, now,
                     "valid_rst of empty register " +
                         regName(bank, addr));
            return;
        }
        s.valid = false;
        s.everFreed = true;
    }

    /** Automatic write: lowest free address, diagnosing overflow. */
    void
    writeReg(uint32_t bank, uint32_t latency)
    {
        auto &regs = banks[bank];
        for (uint32_t a = 0; a < cfg.regsPerBank; ++a) {
            if (!regs[a].valid) {
                regs[a].valid = true;
                regs[a].readableAt = now + latency;
                return;
            }
        }
        sink.add(VerifyCode::RegFileOverflow, now,
                 "write to full bank " + std::to_string(bank) +
                     " (occupancy would exceed R=" +
                     std::to_string(cfg.regsPerBank) + ")");
    }

    void
    checkRow(uint32_t row, const char *what)
    {
        if (row >= prog.numRows)
            sink.add(VerifyCode::RowOutOfBounds, now,
                     std::string(what) + " of row " +
                         std::to_string(row) + " outside the " +
                         std::to_string(prog.numRows) +
                         " data-memory rows this program uses");
    }

    /** Structural size check; false skips the replay of the instr. */
    bool
    sized(size_t got, size_t want, const char *field)
    {
        if (got == want)
            return true;
        sink.add(VerifyCode::MalformedInstruction, now,
                 std::string(field) + " has " + std::to_string(got) +
                     " lanes for " + std::to_string(want) + " banks");
        return false;
    }

    void check(const NopInstr &) {}

    void
    check(const LoadInstr &in)
    {
        checkRow(in.memRow, "load");
        if (!sized(in.enable.size(), cfg.banks, "load enable"))
            return;
        for (uint32_t b = 0; b < cfg.banks; ++b)
            if (in.enable[b])
                writeReg(b, 2);
    }

    void
    check(const StoreInstr &in)
    {
        checkRow(in.memRow, "store");
        if (!sized(in.enable.size(), cfg.banks, "store enable") ||
            !sized(in.readAddr.size(), cfg.banks, "store readAddr"))
            return;
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.enable[b])
                continue;
            readReg(b, in.readAddr[b]);
            freeReg(b, in.readAddr[b]); // stores are final reads
        }
    }

    void
    check(const Store4Instr &in)
    {
        checkRow(in.memRow, "store_4");
        std::vector<uint32_t> banks_read;
        for (const auto &s : in.slots) {
            if (!s.active)
                continue;
            if (std::find(banks_read.begin(), banks_read.end(),
                          s.bank) != banks_read.end())
                sink.add(VerifyCode::BankConflict, now,
                         "two store_4 slots read bank " +
                             std::to_string(s.bank) +
                             " (one read port per bank)");
            banks_read.push_back(s.bank);
            readReg(s.bank, s.addr);
            freeReg(s.bank, s.addr);
        }
    }

    void
    check(const Copy4Instr &in)
    {
        if (!sized(in.validRst.size(), cfg.banks, "copy_4 validRst"))
            return;
        // Reads first, then valid_rst, then the automatic writes —
        // the issue-stage ordering contract shared with the machine.
        std::vector<uint32_t> banks_read, banks_written;
        for (const auto &s : in.slots) {
            if (!s.active)
                continue;
            if (std::find(banks_read.begin(), banks_read.end(),
                          s.srcBank) != banks_read.end())
                sink.add(VerifyCode::BankConflict, now,
                         "two copy_4 slots read bank " +
                             std::to_string(s.srcBank) +
                             " (one read port per bank)");
            banks_read.push_back(s.srcBank);
            readReg(s.srcBank, s.srcAddr);
        }
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.validRst[b])
                continue;
            bool any = false;
            for (const auto &s : in.slots)
                if (s.active && s.srcBank == b) {
                    freeReg(b, s.srcAddr);
                    any = true;
                }
            if (!any)
                sink.add(VerifyCode::DoubleFree, now,
                         "copy_4 valid_rst on bank " +
                             std::to_string(b) +
                             " which no slot reads (frees nothing)");
        }
        for (const auto &s : in.slots) {
            if (!s.active)
                continue;
            if (s.dstBank >= cfg.banks) {
                sink.add(VerifyCode::SelectOutOfBounds, now,
                         "copy_4 destination bank " +
                             std::to_string(s.dstBank) + " of " +
                             std::to_string(cfg.banks));
                continue;
            }
            if (std::find(banks_written.begin(), banks_written.end(),
                          s.dstBank) != banks_written.end())
                sink.add(VerifyCode::BankConflict, now,
                         "two copy_4 slots write bank " +
                             std::to_string(s.dstBank) +
                             " (one write per bank per cycle)");
            banks_written.push_back(s.dstBank);
            writeReg(s.dstBank, 2);
        }
    }

    void
    check(const ExecInstr &in)
    {
        if (!sized(in.peOp.size(), cfg.numPes(), "exec peOp") ||
            !sized(in.inputSel.size(), cfg.banks, "exec inputSel") ||
            !sized(in.readAddr.size(), cfg.banks, "exec readAddr") ||
            !sized(in.validRst.size(), cfg.banks, "exec validRst") ||
            !sized(in.writeEnable.size(), cfg.banks,
                   "exec writeEnable") ||
            !sized(in.outputSel.size(), cfg.banks, "exec outputSel"))
            return;

        // 1. The banks this exec actually reads: the crossbar selects
        // of the ports consumed by active leaf PEs (an idle port's
        // select is a don't-care), exactly as the machine reads them.
        std::vector<bool> bank_read(cfg.banks, false);
        auto read_port = [&](uint32_t tree, uint32_t local) {
            uint32_t port = cfg.portBank(tree, local);
            uint32_t bank = in.inputSel[port];
            if (bank >= cfg.banks) {
                sink.add(VerifyCode::SelectOutOfBounds, now,
                         "crossbar select " + std::to_string(bank) +
                             " on port " + std::to_string(port) +
                             " of " + std::to_string(cfg.banks) +
                             " banks");
                return;
            }
            if (!bank_read[bank]) {
                bank_read[bank] = true;
                readReg(bank, in.readAddr[bank]);
            }
        };
        for (uint32_t t = 0; t < cfg.trees(); ++t) {
            for (uint32_t l = 1; l <= cfg.depth; ++l) {
                for (uint32_t i = 0; i < cfg.pesInLayer(l); ++i) {
                    uint32_t pe = cfg.peId({t, l, i});
                    PeOp op = in.peOp[pe];
                    if (op == PeOp::Nop)
                        continue;
                    bool use_a = op != PeOp::PassB;
                    bool use_b = op != PeOp::PassA;
                    for (uint32_t side = 0; side < 2; ++side) {
                        if (side == 0 ? !use_a : !use_b)
                            continue;
                        if (l == 1) {
                            read_port(t, i * 2 + side);
                        } else {
                            uint32_t child =
                                cfg.peId({t, l - 1, i * 2 + side});
                            if (in.peOp[child] == PeOp::Nop)
                                sink.add(
                                    VerifyCode::MalformedInstruction,
                                    now,
                                    "active PE " + std::to_string(pe) +
                                        " is fed by idle PE " +
                                        std::to_string(child));
                        }
                    }
                }
            }
        }

        // 2. valid_rst lanes must free registers read this cycle.
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.validRst[b])
                continue;
            if (!bank_read[b]) {
                sink.add(VerifyCode::DoubleFree, now,
                         "exec valid_rst on bank " + std::to_string(b) +
                             " which this exec does not read (frees "
                             "nothing)");
                continue;
            }
            freeReg(b, in.readAddr[b]);
        }

        // 3. Output interconnect: one write per enabled bank, from an
        // active PE the bank's output mux can actually select.
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.writeEnable[b])
                continue;
            const auto &writers = bankWriters[b];
            if (in.outputSel[b] >= writers.size()) {
                sink.add(VerifyCode::SelectOutOfBounds, now,
                         "output mux select " +
                             std::to_string(in.outputSel[b]) +
                             " on bank " + std::to_string(b) + " of " +
                             std::to_string(writers.size()) +
                             " writer PEs");
                continue;
            }
            uint32_t pe = writers[in.outputSel[b]];
            if (in.peOp[pe] == PeOp::Nop)
                sink.add(VerifyCode::MalformedInstruction, now,
                         "bank " + std::to_string(b) +
                             " stores back from idle PE " +
                             std::to_string(pe));
            writeReg(b, cfg.pipelineStages());
        }
    }

    void
    checkLeaks()
    {
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            uint32_t live = 0;
            for (const Slot &s : banks[b])
                live += s.valid;
            if (live)
                sink.add(VerifyCode::RegisterLeak, kVerifyNoInstr,
                         "bank " + std::to_string(b) + " ends with " +
                             std::to_string(live) +
                             " register(s) still valid (never freed)");
        }
    }

    void
    mismatch(const std::string &what, uint64_t want, uint64_t got)
    {
        sink.add(VerifyCode::StatsMismatch, kVerifyNoInstr,
                 "stats." + what + " claims " + std::to_string(got) +
                     " but the program has " + std::to_string(want));
    }

    void
    checkStats()
    {
        const CompileStats &s = prog.stats;
        std::array<uint64_t, 6> kinds{};
        uint64_t pe_ops = 0;
        for (const Instruction &in : prog.instructions) {
            ++kinds[static_cast<size_t>(kindOf(in))];
            if (const auto *ex = std::get_if<ExecInstr>(&in))
                for (PeOp op : ex->peOp)
                    if (op == PeOp::Add || op == PeOp::Mul)
                        ++pe_ops;
        }
        for (size_t k = 0; k < kinds.size(); ++k)
            if (kinds[k] != s.kindCount[k])
                mismatch("kindCount[" +
                             std::string(kindName(
                                 static_cast<InstrKind>(k))) +
                             "]",
                         kinds[k], s.kindCount[k]);
        if (s.instructions != prog.instructions.size())
            mismatch("instructions", prog.instructions.size(),
                     s.instructions);
        uint64_t cycles =
            prog.instructions.size() + cfg.pipelineStages();
        if (s.cycles != cycles)
            mismatch("cycles", cycles, s.cycles);
        if (s.nops != kinds[static_cast<size_t>(InstrKind::Nop)])
            mismatch("nops",
                     kinds[static_cast<size_t>(InstrKind::Nop)],
                     s.nops);
        if (s.peOpsExecuted != pe_ops)
            mismatch("peOpsExecuted", pe_ops, s.peOpsExecuted);
        uint64_t bits = programSizeBits(cfg, prog.instructions);
        if (s.programBits != bits)
            mismatch("programBits", bits, s.programBits);
        uint64_t data_bits = uint64_t(prog.numRows) * cfg.banks * 32;
        if (s.dataBits != data_bits)
            mismatch("dataBits", data_bits, s.dataBits);
    }

    const CompiledProgram &prog;
    const ArchConfig &cfg;
    Sink sink;

    std::vector<std::vector<Slot>> banks;
    std::vector<std::vector<uint32_t>> bankWriters;
    uint64_t now = 0;
};

} // namespace

const char *
verifyCodeName(VerifyCode code)
{
    switch (code) {
      case VerifyCode::UseBeforeDef: return "V001-use-before-def";
      case VerifyCode::ReadAfterFree: return "V002-read-after-free";
      case VerifyCode::BankConflict: return "V003-bank-conflict";
      case VerifyCode::RegFileOverflow: return "V004-regfile-overflow";
      case VerifyCode::RegisterLeak: return "V005-register-leak";
      case VerifyCode::DoubleFree: return "V006-double-free";
      case VerifyCode::DoubleWrite: return "V007-double-write";
      case VerifyCode::RowOutOfBounds: return "V010-row-out-of-bounds";
      case VerifyCode::IoLocOutOfBounds:
        return "V011-io-location-out-of-bounds";
      case VerifyCode::SelectOutOfBounds:
        return "V020-select-out-of-bounds";
      case VerifyCode::BlockOutOfBounds:
        return "V021-block-out-of-bounds";
      case VerifyCode::MalformedInstruction:
        return "V022-malformed-instruction";
      case VerifyCode::PipelineHazard: return "V030-pipeline-hazard";
      case VerifyCode::StatsMismatch: return "V040-stats-mismatch";
    }
    return "V???";
}

std::string
Diagnostic::format() const
{
    std::string where =
        instrIndex == kVerifyNoInstr
            ? std::string("program")
            : "instr " + std::to_string(instrIndex);
    const char *sev =
        severity == VerifySeverity::Error ? "error" : "warning";
    return where + ": " + sev + " " + verifyCodeName(code) + ": " +
           message;
}

size_t
VerifyReport::errorCount() const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        n += d.severity == VerifySeverity::Error;
    return n;
}

std::string
VerifyReport::summary() const
{
    size_t errors = errorCount();
    size_t warnings = diagnostics.size() - errors;
    std::ostringstream os;
    os << errors << " error(s), " << warnings << " warning(s)";
    if (truncated)
        os << " (diagnostics truncated)";
    return os.str();
}

std::string
VerifyReport::toString(size_t maxShown) const
{
    std::ostringstream os;
    os << summary();
    size_t shown = 0;
    for (const Diagnostic &d : diagnostics) {
        if (maxShown && shown++ >= maxShown) {
            os << "\n  ... " << (diagnostics.size() - maxShown)
               << " more";
            break;
        }
        os << "\n  " << d.format();
    }
    return os.str();
}

VerifyError::VerifyError(const std::string &stage, VerifyReport report_in)
    : PanicError("program verification failed after " + stage + ": " +
                 report_in.toString()),
      failedStage(stage), failedReport(std::move(report_in))
{}

VerifyReport
verifyIr(const IrProgram &ir, const ArchConfig &cfg,
         const VerifyIrOptions &options)
{
    VerifyReport report;
    IrVerifier(ir, cfg, options, report).run();
    return report;
}

VerifyReport
verifyProgram(const CompiledProgram &prog)
{
    VerifyReport report;
    ProgramVerifier(prog, report).run();
    return report;
}

void
throwIfVerifyErrors(const VerifyReport &report, const std::string &stage)
{
    if (report.errorCount())
        throw VerifyError(stage, report);
}

} // namespace dpu
