/**
 * @file
 * Datapath <-> register-bank interconnects (paper §III-C, fig. 6).
 *
 * The input side is always a full B x B crossbar (every tree input
 * port can read any bank) — the paper shows at least one crossbar is
 * needed to decouple PE mapping from bank mapping, and picks the input
 * side. The output side is restricted; this module answers "which
 * banks can PE p write?" and its inverse for each fig. 6 topology.
 */

#ifndef DPU_ARCH_INTERCONNECT_HH
#define DPU_ARCH_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"

namespace dpu {

/**
 * Banks writable by PE `pe` under the configured output interconnect.
 *
 * - Crossbar: every bank.
 * - PerLayerSubtree (fig. 6(b)): a PE covers the leaf ports of its
 *   subtree; it can write exactly the banks feeding those ports, so a
 *   layer-l PE reaches 2^l banks and each bank sees one PE per layer
 *   (the D:1 output mux of fig. 5(a)).
 * - OnePerPe (fig. 6(c)): PE (layer l, index j) writes the single bank
 *   at local offset j*2^l + 2^(l-1); the root PE additionally writes
 *   local bank 0 (the "two in the case of the top PE" of the paper).
 */
std::vector<uint32_t> writableBanks(const ArchConfig &cfg, uint32_t pe);

/** PEs that can write bank `bank` (inverse of writableBanks). */
std::vector<uint32_t> writingPes(const ArchConfig &cfg, uint32_t bank);

/**
 * Mux-select value identifying `pe` among writingPes(cfg, bank), i.e.
 * what the exec instruction's per-bank output-select field stores.
 * Panics if the PE cannot write the bank.
 */
uint32_t outputSelectFor(const ArchConfig &cfg, uint32_t bank, uint32_t pe);

/** Widest per-bank writer set, determines the output-select width. */
uint32_t maxWritersPerBank(const ArchConfig &cfg);

} // namespace dpu

#endif // DPU_ARCH_INTERCONNECT_HH
