/**
 * @file
 * The DPU-v2 architecture template (paper §III, fig. 5(a)).
 *
 * The template has three independent parameters — the PE-tree depth D,
 * the number of register banks B, and the registers per bank R — plus
 * the interconnect topology choices of fig. 6. Everything else is
 * derived: T = B / 2^D parallel trees, T * (2^D - 1) PEs, and D + 1
 * pipeline stages.
 */

#ifndef DPU_ARCH_CONFIG_HH
#define DPU_ARCH_CONFIG_HH

#include <cstdint>
#include <string>

#include "support/logging.hh"

namespace dpu {

/** Output-interconnect topologies of fig. 6 (input is a crossbar). */
enum class OutputInterconnect : uint8_t {
    Crossbar,        ///< fig. 6(a): any PE can write any bank.
    PerLayerSubtree, ///< fig. 6(b): each bank picks one PE per layer
                     ///  (a D:1 mux); a PE writes its subtree's banks.
    OnePerPe,        ///< fig. 6(c): each PE writes one fixed bank.
};

/** Printable topology name. */
inline const char *
interconnectName(OutputInterconnect k)
{
    switch (k) {
      case OutputInterconnect::Crossbar: return "crossbar";
      case OutputInterconnect::PerLayerSubtree: return "per-layer";
      case OutputInterconnect::OnePerPe: return "one-per-pe";
    }
    return "?";
}

/** Coordinates of a PE: tree, layer (1 = leaf layer .. D = root), index. */
struct PeCoord
{
    uint32_t tree;
    uint32_t layer;
    uint32_t index;

    bool operator==(const PeCoord &) const = default;
};

/** One instantiation of the DPU-v2 template. */
struct ArchConfig
{
    uint32_t depth = 3;        ///< D: PE-tree depth (layers).
    uint32_t banks = 64;       ///< B: register banks.
    uint32_t regsPerBank = 32; ///< R: registers per bank.
    OutputInterconnect outputNet = OutputInterconnect::PerLayerSubtree;

    /** Data-memory rows (each row is B words). */
    uint32_t dataMemRows = 4096;

    /** Validate the derived-parameter constraints. */
    void
    check() const
    {
        dpu_assert(depth >= 1 && depth <= 6, "D out of supported range");
        dpu_assert(banks >= (1u << depth),
                   "need at least one tree: B >= 2^D");
        dpu_assert((banks & (banks - 1)) == 0, "B must be a power of two");
        dpu_assert(banks % (1u << depth) == 0, "B must be T * 2^D");
        if (banks > 64)
            dpu_fatal("B > 64 unsupported: bank masks are 64-bit "
                      "(requested B=" + std::to_string(banks) + ")");
        dpu_assert(regsPerBank >= 2, "R too small");
    }

    /** T: number of parallel PE trees (= B / 2^D). */
    uint32_t trees() const { return banks >> depth; }

    /** Leaf input ports per tree (= 2^D). One register bank per port. */
    uint32_t portsPerTree() const { return 1u << depth; }

    /** PEs per tree (= 2^D - 1). */
    uint32_t pesPerTree() const { return (1u << depth) - 1; }

    /** Total PE count. */
    uint32_t numPes() const { return trees() * pesPerTree(); }

    /** Pipeline stages of the datapath (paper §IV-C: D + 1). */
    uint32_t pipelineStages() const { return depth + 1; }

    /** PEs in one layer of one tree (layer 1 = leaves). */
    uint32_t
    pesInLayer(uint32_t layer) const
    {
        dpu_assert(layer >= 1 && layer <= depth, "bad layer");
        return 1u << (depth - layer);
    }

    /** Flat id of a PE; tree-major, then layer 1..D, then index. */
    uint32_t
    peId(const PeCoord &c) const
    {
        dpu_assert(c.tree < trees(), "bad tree");
        dpu_assert(c.layer >= 1 && c.layer <= depth, "bad layer");
        dpu_assert(c.index < pesInLayer(c.layer), "bad index");
        uint32_t off = 0;
        for (uint32_t l = 1; l < c.layer; ++l)
            off += pesInLayer(l);
        return c.tree * pesPerTree() + off + c.index;
    }

    /** Inverse of peId(). */
    PeCoord
    peCoord(uint32_t id) const
    {
        dpu_assert(id < numPes(), "bad pe id");
        PeCoord c;
        c.tree = id / pesPerTree();
        uint32_t rem = id % pesPerTree();
        c.layer = 1;
        while (rem >= pesInLayer(c.layer)) {
            rem -= pesInLayer(c.layer);
            ++c.layer;
        }
        c.index = rem;
        return c;
    }

    /** The bank feeding tree input port `port` of tree `tree`. */
    uint32_t
    portBank(uint32_t tree, uint32_t port) const
    {
        dpu_assert(tree < trees() && port < portsPerTree(), "bad port");
        return tree * portsPerTree() + port;
    }

    /** Short "D/B/R" descriptor for logs and tables. */
    std::string
    label() const
    {
        // Seeded with a std::string (not a leading literal +
        // string&&): the literal+rvalue form trips GCC 12's bogus
        // -Wrestrict diagnostic (GCC PR 105329) at some inlining
        // depths.
        std::string s = "D";
        s += std::to_string(depth);
        s += ".B";
        s += std::to_string(banks);
        s += ".R";
        s += std::to_string(regsPerBank);
        return s;
    }
};

/** The paper's minimum-EDP configuration (§V-B). */
inline ArchConfig
minEdpConfig()
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 64;
    c.regsPerBank = 32;
    return c;
}

/** The large configuration used for Table I(c) ("DPU-v2 (L)", §V-C2). */
inline ArchConfig
largeConfig()
{
    ArchConfig c;
    c.depth = 3;
    c.banks = 64;
    c.regsPerBank = 256;
    c.dataMemRows = 8192; // 2 MB / (64 banks * 4 B)
    return c;
}

} // namespace dpu

#endif // DPU_ARCH_CONFIG_HH
