/**
 * @file
 * Disassembler for DPU-v2 programs.
 *
 * Renders decoded instructions (or whole programs) as readable text —
 * the debugging companion to isa.hh's binary encoder. The format is
 * stable and covered by tests, so tools may parse it, but its primary
 * audience is humans staring at compiler output.
 */

#ifndef DPU_ARCH_DISASM_HH
#define DPU_ARCH_DISASM_HH

#include <iosfwd>
#include <string>

#include "arch/isa.hh"

namespace dpu {

/** One instruction as text, e.g.
 *  "exec t0[mul(add p0 p1) ...] rd b3@7! wr b1<-pe2". */
std::string disassemble(const ArchConfig &cfg, const Instruction &instr);

/** Whole program with cycle numbers and a kind summary. */
void disassembleProgram(const ArchConfig &cfg,
                        const std::vector<Instruction> &program,
                        std::ostream &out);

} // namespace dpu

#endif // DPU_ARCH_DISASM_HH
