/**
 * @file
 * Fleet topology and host↔device transfer model.
 *
 * The UPMEM-style stacks the paper targets organize hardware as ranks
 * of accelerators driven by a host CPU, and the host-side serialization
 * of inputs/outputs over the memory link often dominates end-to-end
 * latency. This header makes both first-class: a FleetTopology (how
 * many ranks, how many cores each) and a HostTransferModel charged on
 * every byte and every dispatch crossing the host↔rank boundary.
 *
 * The transfer model is expressed in *cycles* (cycles per byte plus a
 * fixed per-dispatch cost) so the simulator layer stays clock-free;
 * drivers convert a GB/s link rate with fromGbps() using the clock
 * frequency of their technology model. The default-constructed model
 * is free (charges exactly zero cycles), which keeps every pre-fleet
 * result byte-identical.
 */

#ifndef DPU_ARCH_TOPOLOGY_HH
#define DPU_ARCH_TOPOLOGY_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "support/logging.hh"

namespace dpu {

/** A fleet of identical ranks, each with its own core pool. The
 *  default single rank reproduces the pre-fleet machine exactly. */
struct FleetTopology {
    uint32_t ranks = 1;        ///< independent host-driven ranks
    uint32_t coresPerRank = 4; ///< simulator cores per rank

    uint64_t
    totalCores() const
    {
        return (uint64_t)ranks * coresPerRank;
    }

    void
    check() const
    {
        dpu_assert(ranks >= 1, "fleet needs at least one rank");
        dpu_assert(coresPerRank >= 1,
                   "fleet ranks need at least one core");
    }
};

/** Host↔rank transfer cost: a per-byte serialization rate plus a
 *  fixed per-dispatch cost, both in device cycles. The default model
 *  is free and charges exactly 0, preserving pre-fleet results. */
struct HostTransferModel {
    double cyclesPerByte = 0.0;  ///< link serialization cost
    uint64_t dispatchCycles = 0; ///< fixed cost per host dispatch

    /** Build a model from a link rate in GB/s. `gbps` may be
     *  infinity (a free link); `dispatch_ns` is the fixed per-launch
     *  host overhead. `clock_hz` is the device clock used to convert
     *  wall time into cycles. */
    static HostTransferModel
    fromGbps(double gbps, double clock_hz, double dispatch_ns = 0.0)
    {
        dpu_assert(gbps > 0, "transfer rate must be positive");
        dpu_assert(clock_hz > 0, "clock frequency must be positive");
        dpu_assert(dispatch_ns >= 0, "dispatch cost must be >= 0");
        HostTransferModel m;
        if (std::isfinite(gbps))
            m.cyclesPerByte = clock_hz / (gbps * 1e9);
        m.dispatchCycles =
            (uint64_t)std::llround(dispatch_ns * 1e-9 * clock_hz);
        return m;
    }

    /** True when the model charges exactly zero for everything. */
    bool
    free() const
    {
        return cyclesPerByte == 0.0 && dispatchCycles == 0;
    }

    /** Cycles to serialize `bytes` over the link (no dispatch cost). */
    uint64_t
    bytesCycles(uint64_t bytes) const
    {
        if (cyclesPerByte == 0.0)
            return 0;
        return (uint64_t)std::ceil((double)bytes * cyclesPerByte);
    }

    /** Total cycles of one host dispatch moving `runs` runs of
     *  `bytes_per_run` each: one fixed dispatch cost plus the
     *  serialized per-run payloads. Exactly 0 for the free model. */
    uint64_t
    batchCycles(uint64_t bytes_per_run, uint64_t runs) const
    {
        if (free())
            return 0;
        return dispatchCycles + runs * bytesCycles(bytes_per_run);
    }
};

/** How the serving layer places resident programs across ranks. */
enum class Placement : uint8_t {
    Replicate, ///< hot programs: resident on every rank, batches go
               ///  to the least-loaded rank
    Affinity,  ///< cold programs: pinned to one home rank chosen by
               ///  registration order
};

/** Printable placement-policy name. */
inline const char *
placementName(Placement p)
{
    switch (p) {
      case Placement::Replicate: return "replicate";
      case Placement::Affinity: return "affinity";
    }
    return "?";
}

/** Parse a placement-policy name; returns false on junk. */
inline bool
parsePlacementName(const std::string &name, Placement &out)
{
    if (name == "replicate") {
        out = Placement::Replicate;
        return true;
    }
    if (name == "affinity") {
        out = Placement::Affinity;
        return true;
    }
    return false;
}

/** CLI help text for --placement choices. */
inline constexpr const char *kPlacementChoicesHelp =
    "replicate|affinity";

} // namespace dpu

#endif // DPU_ARCH_TOPOLOGY_HH
