#include "arch/isa.hh"

#include <bit>

#include "arch/interconnect.hh"
#include "support/logging.hh"

namespace dpu {

namespace {

/** ceil(log2(n)) for n >= 1, with log2(1) = 1 bit minimum field. */
uint32_t
fieldBits(uint32_t n)
{
    dpu_assert(n >= 1, "fieldBits of zero-sized domain");
    if (n <= 2)
        return 1;
    return 32u - static_cast<uint32_t>(std::countl_zero(n - 1));
}

/** Append `bits` low bits of `value` to a bit stream. */
class BitWriter
{
  public:
    void
    put(uint64_t value, uint32_t bits)
    {
        dpu_assert(bits <= 64, "field too wide");
        dpu_assert(bits == 64 || value < (uint64_t(1) << bits),
                   "value does not fit field");
        for (uint32_t i = 0; i < bits; ++i) {
            if (pos % 8 == 0)
                bytes.push_back(0);
            if ((value >> i) & 1)
                bytes[pos / 8] |= static_cast<uint8_t>(1u << (pos % 8));
            ++pos;
        }
    }

    std::vector<uint8_t> take() { return std::move(bytes); }
    uint64_t bitCount() const { return pos; }

  private:
    std::vector<uint8_t> bytes;
    uint64_t pos = 0;
};

/** Sequential bit-stream reader (models the aligning shifter). */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &image) : bytes(image) {}

    uint64_t
    get(uint32_t bits)
    {
        uint64_t v = 0;
        for (uint32_t i = 0; i < bits; ++i) {
            dpu_assert(pos / 8 < bytes.size(), "bit stream underrun");
            if ((bytes[pos / 8] >> (pos % 8)) & 1)
                v |= uint64_t(1) << i;
            ++pos;
        }
        return v;
    }

  private:
    const std::vector<uint8_t> &bytes;
    uint64_t pos = 0;
};

} // namespace

InstrKind
kindOf(const Instruction &instr)
{
    return static_cast<InstrKind>(instr.index());
}

const char *
kindName(InstrKind kind)
{
    switch (kind) {
      case InstrKind::Nop: return "nop";
      case InstrKind::Load: return "load";
      case InstrKind::Store: return "store";
      case InstrKind::Store4: return "store_4";
      case InstrKind::Copy4: return "copy_4";
      case InstrKind::Exec: return "exec";
    }
    return "?";
}

IsaLayout::IsaLayout(const ArchConfig &cfg)
    : opcodeBits(4),
      bankBits(fieldBits(cfg.banks)),
      addrBits(fieldBits(cfg.regsPerBank)),
      memRowBits(32),
      peOpBits(4),
      outputSelBits(fieldBits(maxWritersPerBank(cfg))),
      banks(cfg.banks),
      numPes(cfg.numPes())
{}

uint32_t
IsaLayout::lengthBits(InstrKind kind) const
{
    switch (kind) {
      case InstrKind::Nop:
        return opcodeBits;
      case InstrKind::Load:
        // opcode + wide row address + per-bank enable.
        return opcodeBits + memRowBits + banks;
      case InstrKind::Store:
        // opcode + wide row address + per-bank enable + read address.
        return opcodeBits + memRowBits + banks + banks * addrBits;
      case InstrKind::Store4:
        // opcode + short row address + 4 x (bank + read address).
        return opcodeBits + memRowBits / 2 + 4 * (bankBits + addrBits);
      case InstrKind::Copy4:
        // opcode + 4 x (src bank + src addr + dst bank) + valid_rst.
        return opcodeBits + 4 * (2 * bankBits + addrBits) + banks;
      case InstrKind::Exec:
        // opcode + per-PE opcode + crossbar selects + read addresses +
        // valid_rst + write enables + output-mux selects.
        return opcodeBits + numPes * peOpBits + banks * bankBits +
               banks * addrBits + banks + banks + banks * outputSelBits;
    }
    dpu_panic("unknown instruction kind");
}

uint32_t
IsaLayout::lengthBits(const Instruction &instr) const
{
    return lengthBits(kindOf(instr));
}

uint32_t
IsaLayout::maxLengthBits() const
{
    uint32_t best = 0;
    for (auto k : {InstrKind::Nop, InstrKind::Load, InstrKind::Store,
                   InstrKind::Store4, InstrKind::Copy4, InstrKind::Exec})
        best = std::max(best, lengthBits(k));
    return best;
}

namespace {

void
encodeOne(const IsaLayout &lay, const Instruction &instr, BitWriter &w)
{
    w.put(static_cast<uint64_t>(kindOf(instr)), lay.opcodeBits);
    std::visit(
        [&](const auto &in) {
            using T = std::decay_t<decltype(in)>;
            if constexpr (std::is_same_v<T, NopInstr>) {
                // Opcode only.
            } else if constexpr (std::is_same_v<T, LoadInstr>) {
                dpu_assert(in.enable.size() == lay.banks, "bad lane count");
                w.put(in.memRow, lay.memRowBits);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.enable[b] ? 1 : 0, 1);
            } else if constexpr (std::is_same_v<T, StoreInstr>) {
                dpu_assert(in.enable.size() == lay.banks &&
                           in.readAddr.size() == lay.banks,
                           "bad lane count");
                w.put(in.memRow, lay.memRowBits);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.enable[b] ? 1 : 0, 1);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.enable[b] ? in.readAddr[b] : 0, lay.addrBits);
            } else if constexpr (std::is_same_v<T, Store4Instr>) {
                // Slot 0 must be active; an inactive later slot is
                // encoded as a replica of slot 0 (storing the same
                // word twice is meaningless, so the code point is
                // free). This keeps the length at the paper's 56 bits
                // for (D=3, B=16, R=32) with no explicit enable bits.
                dpu_assert(in.slots[0].active,
                           "store_4 slot 0 must be active");
                w.put(in.memRow, lay.memRowBits / 2);
                for (const auto &s : in.slots) {
                    const auto &eff = s.active ? s : in.slots[0];
                    w.put(eff.bank, lay.bankBits);
                    w.put(eff.addr, lay.addrBits);
                }
            } else if constexpr (std::is_same_v<T, Copy4Instr>) {
                dpu_assert(in.validRst.size() == lay.banks,
                           "bad lane count");
                for (const auto &s : in.slots) {
                    // src == dst encodes "inactive" (a same-bank copy
                    // is meaningless in hardware).
                    uint16_t src = s.active ? s.srcBank : 0;
                    uint16_t dst = s.active ? s.dstBank : 0;
                    dpu_assert(!s.active || src != dst,
                               "active copy slot must move across banks");
                    w.put(src, lay.bankBits);
                    w.put(s.active ? s.srcAddr : 0, lay.addrBits);
                    w.put(dst, lay.bankBits);
                }
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.validRst[b] ? 1 : 0, 1);
            } else if constexpr (std::is_same_v<T, ExecInstr>) {
                dpu_assert(in.peOp.size() == lay.numPes, "bad PE count");
                dpu_assert(in.inputSel.size() == lay.banks &&
                           in.readAddr.size() == lay.banks &&
                           in.validRst.size() == lay.banks &&
                           in.writeEnable.size() == lay.banks &&
                           in.outputSel.size() == lay.banks,
                           "bad lane count");
                for (uint32_t p = 0; p < lay.numPes; ++p)
                    w.put(static_cast<uint64_t>(in.peOp[p]), lay.peOpBits);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.inputSel[b], lay.bankBits);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.readAddr[b], lay.addrBits);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.validRst[b] ? 1 : 0, 1);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.writeEnable[b] ? 1 : 0, 1);
                for (uint32_t b = 0; b < lay.banks; ++b)
                    w.put(in.outputSel[b], lay.outputSelBits);
            }
        },
        instr);
}

Instruction
decodeOne(const IsaLayout &lay, BitReader &r)
{
    auto kind = static_cast<InstrKind>(r.get(lay.opcodeBits));
    switch (kind) {
      case InstrKind::Nop:
        return NopInstr{};
      case InstrKind::Load: {
        LoadInstr in;
        in.memRow = static_cast<uint32_t>(r.get(lay.memRowBits));
        in.enable.resize(lay.banks);
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.enable[b] = r.get(1);
        return in;
      }
      case InstrKind::Store: {
        StoreInstr in;
        in.memRow = static_cast<uint32_t>(r.get(lay.memRowBits));
        in.enable.resize(lay.banks);
        in.readAddr.resize(lay.banks);
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.enable[b] = r.get(1);
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.readAddr[b] = static_cast<uint16_t>(r.get(lay.addrBits));
        return in;
      }
      case InstrKind::Store4: {
        Store4Instr in;
        in.memRow = static_cast<uint32_t>(r.get(lay.memRowBits / 2));
        for (auto &s : in.slots) {
            s.bank = static_cast<uint16_t>(r.get(lay.bankBits));
            s.addr = static_cast<uint16_t>(r.get(lay.addrBits));
        }
        in.slots[0].active = true;
        for (int i = 1; i < 4; ++i) {
            auto &s = in.slots[i];
            s.active = s.bank != in.slots[0].bank ||
                       s.addr != in.slots[0].addr;
            if (!s.active)
                s = Store4Instr::Slot{}; // normalize to the null slot
        }
        return in;
      }
      case InstrKind::Copy4: {
        Copy4Instr in;
        for (auto &s : in.slots) {
            s.srcBank = static_cast<uint16_t>(r.get(lay.bankBits));
            s.srcAddr = static_cast<uint16_t>(r.get(lay.addrBits));
            s.dstBank = static_cast<uint16_t>(r.get(lay.bankBits));
            s.active = s.srcBank != s.dstBank;
        }
        in.validRst.resize(lay.banks);
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.validRst[b] = r.get(1);
        return in;
      }
      case InstrKind::Exec: {
        ExecInstr in;
        in.peOp.resize(lay.numPes);
        for (uint32_t p = 0; p < lay.numPes; ++p)
            in.peOp[p] = static_cast<PeOp>(r.get(lay.peOpBits));
        in.inputSel.resize(lay.banks);
        in.readAddr.resize(lay.banks);
        in.validRst.resize(lay.banks);
        in.writeEnable.resize(lay.banks);
        in.outputSel.resize(lay.banks);
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.inputSel[b] = static_cast<uint16_t>(r.get(lay.bankBits));
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.readAddr[b] = static_cast<uint16_t>(r.get(lay.addrBits));
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.validRst[b] = r.get(1);
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.writeEnable[b] = r.get(1);
        for (uint32_t b = 0; b < lay.banks; ++b)
            in.outputSel[b] = static_cast<uint16_t>(r.get(lay.outputSelBits));
        return in;
      }
    }
    dpu_panic("bad opcode in instruction stream");
}

} // namespace

std::vector<uint8_t>
encodeProgram(const ArchConfig &cfg, const std::vector<Instruction> &prog)
{
    IsaLayout lay(cfg);
    BitWriter w;
    for (const auto &instr : prog)
        encodeOne(lay, instr, w);
    return w.take();
}

std::vector<Instruction>
decodeProgram(const ArchConfig &cfg, const std::vector<uint8_t> &image,
              size_t instruction_count)
{
    IsaLayout lay(cfg);
    BitReader r(image);
    std::vector<Instruction> out;
    out.reserve(instruction_count);
    for (size_t i = 0; i < instruction_count; ++i)
        out.push_back(decodeOne(lay, r));
    return out;
}

uint64_t
programSizeBits(const ArchConfig &cfg, const std::vector<Instruction> &prog)
{
    IsaLayout lay(cfg);
    uint64_t total = 0;
    for (const auto &instr : prog)
        total += lay.lengthBits(instr);
    return total;
}

} // namespace dpu
