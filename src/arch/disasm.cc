#include "arch/disasm.hh"

#include <array>
#include <ostream>
#include <sstream>

#include "arch/interconnect.hh"

namespace dpu {

namespace {

const char *
peOpName(PeOp op)
{
    switch (op) {
      case PeOp::Nop: return "nop";
      case PeOp::Add: return "add";
      case PeOp::Mul: return "mul";
      case PeOp::PassA: return "pass_a";
      case PeOp::PassB: return "pass_b";
    }
    return "?";
}

void
renderLanes(std::ostringstream &os, const char *tag,
            const std::vector<bool> &mask)
{
    bool any = false;
    for (bool b : mask)
        any |= b;
    if (!any)
        return;
    os << " " << tag << "{";
    bool first = true;
    for (size_t b = 0; b < mask.size(); ++b) {
        if (!mask[b])
            continue;
        if (!first)
            os << ",";
        os << b;
        first = false;
    }
    os << "}";
}

struct Renderer
{
    const ArchConfig &cfg;
    std::ostringstream os;

    void
    operator()(const NopInstr &)
    {
        os << "nop";
    }

    void
    operator()(const LoadInstr &in)
    {
        os << "load row=" << in.memRow;
        renderLanes(os, "banks", in.enable);
    }

    void
    operator()(const StoreInstr &in)
    {
        os << "store row=" << in.memRow;
        bool first = true;
        os << " rd{";
        for (size_t b = 0; b < in.enable.size(); ++b) {
            if (!in.enable[b])
                continue;
            if (!first)
                os << ",";
            os << "b" << b << "@" << in.readAddr[b];
            first = false;
        }
        os << "}";
    }

    void
    operator()(const Store4Instr &in)
    {
        os << "store_4 row=" << in.memRow;
        for (const auto &s : in.slots)
            if (s.active)
                os << " b" << s.bank << "@" << s.addr;
    }

    void
    operator()(const Copy4Instr &in)
    {
        os << "copy_4";
        for (const auto &s : in.slots) {
            if (!s.active)
                continue;
            os << " b" << s.srcBank << "@" << s.srcAddr;
            if (s.srcBank < in.validRst.size() &&
                in.validRst[s.srcBank]) {
                os << "!";
            }
            os << "->b" << s.dstBank;
        }
    }

    void
    operator()(const ExecInstr &in)
    {
        os << "exec";
        // Trees with any active PE.
        for (uint32_t t = 0; t < cfg.trees(); ++t) {
            bool active = false;
            for (uint32_t p = 0; p < cfg.pesPerTree(); ++p)
                if (in.peOp[t * cfg.pesPerTree() + p] != PeOp::Nop)
                    active = true;
            if (!active)
                continue;
            os << " t" << t << "[";
            bool first = true;
            for (uint32_t l = cfg.depth; l >= 1; --l) {
                for (uint32_t i = 0; i < cfg.pesInLayer(l); ++i) {
                    uint32_t pe = cfg.peId({t, l, i});
                    if (in.peOp[pe] == PeOp::Nop)
                        continue;
                    if (!first)
                        os << " ";
                    os << "L" << l << "." << i << ":"
                       << peOpName(in.peOp[pe]);
                    first = false;
                }
            }
            os << "]";
        }
        // Register reads: bank@addr, "!" marks valid_rst.
        bool any_read = false;
        for (uint32_t b = 0; b < cfg.banks; ++b)
            any_read |= in.validRst[b];
        os << " rd{";
        bool first = true;
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            // A bank is read if some port selects it; approximate by
            // listing banks that appear in inputSel of ports whose
            // leaf PE is active.
            bool used = false;
            for (uint32_t t = 0; t < cfg.trees() && !used; ++t)
                for (uint32_t i = 0; i < cfg.pesInLayer(1); ++i) {
                    uint32_t pe = cfg.peId({t, 1, i});
                    if (in.peOp[pe] == PeOp::Nop)
                        continue;
                    for (uint32_t side = 0; side < 2; ++side)
                        if (in.inputSel[cfg.portBank(t, i * 2 + side)] ==
                            b)
                            used = true;
                }
            if (!used)
                continue;
            if (!first)
                os << ",";
            os << "b" << b << "@" << in.readAddr[b];
            if (in.validRst[b])
                os << "!";
            first = false;
        }
        os << "}";
        (void)any_read;
        // Writes: bank <- PE.
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.writeEnable[b])
                continue;
            auto writers = writingPes(cfg, b);
            os << " wr b" << b << "<-pe"
               << writers[in.outputSel[b] % writers.size()];
        }
    }
};

} // namespace

std::string
disassemble(const ArchConfig &cfg, const Instruction &instr)
{
    Renderer r{cfg, {}};
    std::visit(r, instr);
    return r.os.str();
}

void
disassembleProgram(const ArchConfig &cfg,
                   const std::vector<Instruction> &program,
                   std::ostream &out)
{
    IsaLayout lay(cfg);
    std::array<uint64_t, 6> counts{};
    for (size_t i = 0; i < program.size(); ++i) {
        ++counts[static_cast<size_t>(kindOf(program[i]))];
        out << i << ": " << disassemble(cfg, program[i]) << "\n";
    }
    out << "; " << program.size() << " instructions, "
        << programSizeBits(cfg, program) << " bits packed (IL="
        << lay.maxLengthBits() << ")\n";
    for (size_t k = 0; k < counts.size(); ++k) {
        if (counts[k]) {
            out << "; " << kindName(static_cast<InstrKind>(k)) << ": "
                << counts[k] << "\n";
        }
    }
}

} // namespace dpu
