/**
 * @file
 * The DPU-v2 variable-length VLIW instruction set (paper §III-E, fig. 7).
 *
 * Six instruction kinds. Lengths depend on (D, B, R); instructions are
 * packed densely in instruction memory with no padding, and the fetch
 * unit shifts/aligns them (fig. 7(b)) — execution is stall-free at one
 * instruction per cycle, so *cycles = instruction count* and program
 * size in bits = sum of instruction lengths.
 *
 * Register-write addressing is automatic (paper §III-B): no write
 * addresses appear in any instruction. Register reads are freed by
 * per-bank `valid_rst` bits on their last read. Stores always free the
 * registers they read (the compiler schedules a store as the final
 * access of a value), which keeps the store encoding at the paper's
 * length.
 */

#ifndef DPU_ARCH_ISA_HH
#define DPU_ARCH_ISA_HH

#include <cstdint>
#include <variant>
#include <vector>

#include "arch/config.hh"

namespace dpu {

/** Operation a PE performs during one exec (4-bit field). */
enum class PeOp : uint8_t {
    Nop = 0,   ///< Output undefined / unused.
    Add = 1,   ///< left + right.
    Mul = 2,   ///< left * right.
    PassA = 3, ///< Forward the left input.
    PassB = 4, ///< Forward the right input.
};

/** No-operation (fills unresolvable pipeline hazards). */
struct NopInstr
{
    bool operator==(const NopInstr &) const = default;
};

/**
 * Vector load: data-memory row -> register banks. Word i of the row
 * goes to bank i (word-enable mask selects lanes); each bank writes it
 * at an automatically generated address.
 */
struct LoadInstr
{
    uint32_t memRow = 0;
    std::vector<bool> enable; ///< size B.

    bool operator==(const LoadInstr &) const = default;
};

/**
 * Vector store: register banks -> data-memory row. Each enabled bank
 * reads its own address; the word lands in column = bank index. Reads
 * free their register (see file header).
 */
struct StoreInstr
{
    uint32_t memRow = 0;
    std::vector<bool> enable;    ///< size B.
    std::vector<uint16_t> readAddr; ///< size B (don't-care if disabled).

    bool operator==(const StoreInstr &) const = default;
};

/**
 * Narrow store of up to four words (cheaper encoding, 16-bit row
 * address). Slot columns are the source bank indices.
 */
struct Store4Instr
{
    struct Slot
    {
        bool active = false;
        uint16_t bank = 0;
        uint16_t addr = 0;

        bool operator==(const Slot &) const = default;
    };
    uint32_t memRow = 0;
    Slot slots[4];

    bool operator==(const Store4Instr &) const = default;
};

/**
 * Copy of up to four words between banks through the input crossbar
 * (fig. 5(c)) — the compiler's tool for resolving bank conflicts.
 * Destination addresses are automatic; `validRst[b]` frees the source
 * register in bank b if this was its last read.
 */
struct Copy4Instr
{
    struct Slot
    {
        bool active = false;
        uint16_t srcBank = 0;
        uint16_t srcAddr = 0;
        uint16_t dstBank = 0;

        bool operator==(const Slot &) const = default;
    };
    Slot slots[4];
    std::vector<bool> validRst; ///< size B.

    bool operator==(const Copy4Instr &) const = default;
};

/**
 * Execute one block on the PE trees: per-PE opcodes, per-port crossbar
 * selects, per-bank read addresses, per-bank output-mux selects and
 * write enables, per-bank valid_rst.
 */
struct ExecInstr
{
    std::vector<PeOp> peOp;        ///< size numPes.
    std::vector<uint16_t> inputSel; ///< size B: source bank per port.
    std::vector<uint16_t> readAddr; ///< size B.
    std::vector<bool> validRst;     ///< size B.
    std::vector<bool> writeEnable;  ///< size B.
    std::vector<uint16_t> outputSel;///< size B: writer mux select.

    bool operator==(const ExecInstr &) const = default;
};

using Instruction = std::variant<NopInstr, LoadInstr, StoreInstr,
                                 Store4Instr, Copy4Instr, ExecInstr>;

/** Instruction kind tags (opcode values; also fig. 13 categories). */
enum class InstrKind : uint8_t {
    Nop = 0,
    Load = 1,
    Store = 2,
    Store4 = 3,
    Copy4 = 4,
    Exec = 5,
};

/** Kind of a decoded instruction. */
InstrKind kindOf(const Instruction &instr);

/** Printable kind name. */
const char *kindName(InstrKind kind);

/** Bit widths of all ISA fields for a configuration. */
struct IsaLayout
{
    explicit IsaLayout(const ArchConfig &cfg);

    uint32_t opcodeBits;   ///< 4.
    uint32_t bankBits;     ///< ceil(log2 B).
    uint32_t addrBits;     ///< ceil(log2 R).
    uint32_t memRowBits;   ///< 32 (wide) / 16 (short form).
    uint32_t peOpBits;     ///< 4.
    uint32_t outputSelBits;///< ceil(log2 maxWritersPerBank).
    uint32_t banks;
    uint32_t numPes;

    /** Encoded length in bits of each instruction kind. */
    uint32_t lengthBits(InstrKind kind) const;

    /** Length of a concrete instruction. */
    uint32_t lengthBits(const Instruction &instr) const;

    /** IL: fetch width = longest instruction (the exec). */
    uint32_t maxLengthBits() const;
};

/**
 * Encode instructions into a densely packed bit stream (fig. 7(b)).
 * @return the packed program image.
 */
std::vector<uint8_t> encodeProgram(const ArchConfig &cfg,
                                   const std::vector<Instruction> &prog);

/** Decode a packed bit stream back into instructions. */
std::vector<Instruction> decodeProgram(const ArchConfig &cfg,
                                       const std::vector<uint8_t> &image,
                                       size_t instruction_count);

/** Total encoded size in bits (the program footprint of §IV-E). */
uint64_t programSizeBits(const ArchConfig &cfg,
                         const std::vector<Instruction> &prog);

} // namespace dpu

#endif // DPU_ARCH_ISA_HH
