#include "arch/interconnect.hh"

#include <algorithm>

namespace dpu {

std::vector<uint32_t>
writableBanks(const ArchConfig &cfg, uint32_t pe)
{
    PeCoord c = cfg.peCoord(pe);
    std::vector<uint32_t> out;
    switch (cfg.outputNet) {
      case OutputInterconnect::Crossbar:
        out.resize(cfg.banks);
        for (uint32_t b = 0; b < cfg.banks; ++b)
            out[b] = b;
        break;
      case OutputInterconnect::PerLayerSubtree: {
        uint32_t span = 1u << c.layer;
        uint32_t base = cfg.portBank(c.tree, c.index * span);
        for (uint32_t k = 0; k < span; ++k)
            out.push_back(base + k);
        break;
      }
      case OutputInterconnect::OnePerPe: {
        uint32_t local = c.index * (1u << c.layer) + (1u << (c.layer - 1));
        out.push_back(cfg.portBank(c.tree, local));
        if (c.layer == cfg.depth)
            out.push_back(cfg.portBank(c.tree, 0));
        break;
      }
    }
    return out;
}

std::vector<uint32_t>
writingPes(const ArchConfig &cfg, uint32_t bank)
{
    dpu_assert(bank < cfg.banks, "bad bank");
    std::vector<uint32_t> out;
    uint32_t tree = bank / cfg.portsPerTree();
    uint32_t local = bank % cfg.portsPerTree();
    switch (cfg.outputNet) {
      case OutputInterconnect::Crossbar:
        for (uint32_t p = 0; p < cfg.numPes(); ++p)
            out.push_back(p);
        break;
      case OutputInterconnect::PerLayerSubtree:
        // One PE per layer: the PE whose subtree covers this port.
        for (uint32_t l = 1; l <= cfg.depth; ++l)
            out.push_back(cfg.peId({tree, l, local >> l}));
        break;
      case OutputInterconnect::OnePerPe:
        for (uint32_t l = 1; l <= cfg.depth; ++l) {
            // Local offsets of the form j*2^l + 2^(l-1) belong to the
            // layer-l PE with index j.
            if (local % (1u << l) == (1u << (l - 1)))
                out.push_back(cfg.peId({tree, l, local >> l}));
        }
        if (local == 0)
            out.push_back(cfg.peId({tree, cfg.depth, 0}));
        break;
    }
    return out;
}

uint32_t
outputSelectFor(const ArchConfig &cfg, uint32_t bank, uint32_t pe)
{
    auto writers = writingPes(cfg, bank);
    auto it = std::find(writers.begin(), writers.end(), pe);
    dpu_assert(it != writers.end(), "PE cannot write this bank");
    return static_cast<uint32_t>(it - writers.begin());
}

uint32_t
maxWritersPerBank(const ArchConfig &cfg)
{
    uint32_t best = 0;
    for (uint32_t b = 0; b < cfg.banks; ++b)
        best = std::max(
            best, static_cast<uint32_t>(writingPes(cfg, b).size()));
    return best;
}

} // namespace dpu
