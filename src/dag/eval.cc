#include "dag/eval.hh"

namespace dpu {

std::vector<double>
evaluate(const Dag &dag, const std::vector<double> &input_values)
{
    dpu_assert(input_values.size() == dag.numInputs(),
               "wrong number of input values");
    std::vector<double> value(dag.numNodes(), 0.0);
    size_t next_input = 0;
    for (NodeId id = 0; id < dag.numNodes(); ++id) {
        const Node &n = dag.node(id);
        if (n.isInput()) {
            value[id] = input_values[next_input++];
            continue;
        }
        if (n.op == OpType::Add) {
            double acc = 0.0;
            for (NodeId src : n.operands)
                acc += value[src];
            value[id] = acc;
        } else {
            double acc = 1.0;
            for (NodeId src : n.operands)
                acc *= value[src];
            value[id] = acc;
        }
    }
    return value;
}

std::vector<double>
evaluateSinks(const Dag &dag, const std::vector<double> &input_values)
{
    auto value = evaluate(dag, input_values);
    std::vector<double> out;
    for (NodeId s : dag.sinks())
        out.push_back(value[s]);
    return out;
}

} // namespace dpu
