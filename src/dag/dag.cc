#include "dag/dag.hh"

#include <algorithm>

namespace dpu {

NodeId
Dag::addInput()
{
    NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back(Node{OpType::Input, {}});
    succ.emplace_back();
    ++inputCount;
    return id;
}

NodeId
Dag::addNode(OpType op, std::vector<NodeId> operands)
{
    dpu_assert(op != OpType::Input, "use addInput() for input nodes");
    dpu_assert(!operands.empty(), "compute node needs operands");
    NodeId id = static_cast<NodeId>(nodes.size());
    for (NodeId src : operands) {
        dpu_assert(src < id, "operand must reference an existing node");
        succ[src].push_back(id);
        ++edgeCount;
    }
    nodes.push_back(Node{op, std::move(operands)});
    succ.emplace_back();
    return id;
}

std::vector<NodeId>
Dag::sinks() const
{
    std::vector<NodeId> out;
    for (NodeId id = 0; id < nodes.size(); ++id)
        if (succ[id].empty())
            out.push_back(id);
    return out;
}

std::vector<NodeId>
Dag::inputIds() const
{
    std::vector<NodeId> out;
    out.reserve(inputCount);
    for (NodeId id = 0; id < nodes.size(); ++id)
        if (nodes[id].isInput())
            out.push_back(id);
    return out;
}

bool
Dag::isBinary() const
{
    for (const Node &n : nodes)
        if (!n.isInput() && n.operands.size() != 2)
            return false;
    return true;
}

size_t
Dag::maxOutDegree() const
{
    size_t best = 0;
    for (const auto &s : succ)
        best = std::max(best, s.size());
    return best;
}

} // namespace dpu
