#include "dag/algorithms.hh"

#include <algorithm>

namespace dpu {

std::vector<uint32_t>
asapLevels(const Dag &dag)
{
    std::vector<uint32_t> level(dag.numNodes(), 0);
    for (NodeId id = 0; id < dag.numNodes(); ++id) {
        const Node &n = dag.node(id);
        if (n.isInput())
            continue;
        uint32_t lvl = 0;
        for (NodeId src : n.operands)
            lvl = std::max(lvl, level[src]);
        level[id] = lvl + 1;
    }
    return level;
}

size_t
longestPathLength(const Dag &dag)
{
    auto levels = asapLevels(dag);
    uint32_t best = 0;
    for (uint32_t l : levels)
        best = std::max(best, l);
    return best;
}

std::vector<uint32_t>
dfsPreorderPositions(const Dag &dag)
{
    const size_t n = dag.numNodes();
    std::vector<uint32_t> pos(n, 0);
    std::vector<bool> visited(n, false);
    std::vector<NodeId> stack;
    uint32_t counter = 0;

    // Start from sources (inputs and any zero-operand node), in id order.
    for (NodeId root = 0; root < n; ++root) {
        if (visited[root] || !dag.node(root).operands.empty())
            continue;
        stack.push_back(root);
        while (!stack.empty()) {
            NodeId v = stack.back();
            stack.pop_back();
            if (visited[v])
                continue;
            visited[v] = true;
            pos[v] = counter++;
            const auto &succs = dag.successors(v);
            // Push in reverse so lower-id successors are visited first.
            for (auto it = succs.rbegin(); it != succs.rend(); ++it)
                if (!visited[*it])
                    stack.push_back(*it);
        }
    }

    // Nodes unreachable from sources cannot exist (every node traces back
    // to a source), but keep the loop safe for empty DAGs.
    for (NodeId v = 0; v < n; ++v)
        if (!visited[v])
            pos[v] = counter++;
    return pos;
}

std::vector<std::vector<NodeId>>
nodesByLevel(const Dag &dag)
{
    auto level = asapLevels(dag);
    uint32_t depth = 0;
    for (uint32_t l : level)
        depth = std::max(depth, l);
    std::vector<std::vector<NodeId>> out(depth + 1);
    for (NodeId id = 0; id < dag.numNodes(); ++id)
        out[level[id]].push_back(id);
    return out;
}

DagStats
computeStats(const Dag &dag)
{
    DagStats s;
    s.numOperations = dag.numOperations();
    s.numInputs = dag.numInputs();
    s.numEdges = dag.numEdges();
    s.longestPath = longestPathLength(dag);
    s.parallelism = s.longestPath
        ? static_cast<double>(s.numOperations) /
          static_cast<double>(s.longestPath)
        : 0.0;
    s.maxOutDegree = dag.maxOutDegree();
    return s;
}

} // namespace dpu
