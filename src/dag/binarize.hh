/**
 * @file
 * Binarization: rewrite multi-input nodes as trees of 2-input nodes.
 *
 * Compilation "begins by decomposing the input DAG, which is first
 * converted to a binary DAG (containing 2-input nodes only) by replacing
 * a multi-input node with a tree of 2-input nodes" (paper §IV-A). The
 * PEs have two inputs, so this is what makes nodes directly mappable.
 */

#ifndef DPU_DAG_BINARIZE_HH
#define DPU_DAG_BINARIZE_HH

#include <vector>

#include "dag/dag.hh"

namespace dpu {

/** Result of binarization. */
struct BinarizeResult
{
    Dag dag; ///< Equivalent DAG with only 2-input compute nodes.

    /**
     * For every node of the *original* DAG, the id of the node in the
     * binary DAG that carries its value (the root of its expansion
     * tree). Single-operand nodes collapse into their operand.
     */
    std::vector<NodeId> valueOf;
};

/**
 * Binarize a DAG. Multi-input Add/Mul nodes become balanced trees of
 * 2-input nodes of the same operator (Add and Mul are associative and
 * commutative, so any tree shape is value-preserving; balanced trees
 * minimize the added depth). Single-operand nodes are forwarded.
 */
BinarizeResult binarize(const Dag &input);

} // namespace dpu

#endif // DPU_DAG_BINARIZE_HH
