/**
 * @file
 * The directed-acyclic-graph substrate.
 *
 * A Dag owns its nodes and maintains successor lists incrementally.
 * Acyclicity is guaranteed by construction: a node may only reference
 * operands with smaller ids, which makes node-id order a topological
 * order for free and keeps every downstream algorithm simple.
 */

#ifndef DPU_DAG_DAG_HH
#define DPU_DAG_DAG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "dag/node.hh"

namespace dpu {

/** An irregular computation DAG (paper §II). */
class Dag
{
  public:
    Dag() = default;

    /** Add an external input (leaf) node. @return its id. */
    NodeId addInput();

    /**
     * Add a compute node.
     *
     * @param op Operator (Add or Mul).
     * @param operands Ids of operand nodes; each must already exist.
     * @return Id of the new node.
     */
    NodeId addNode(OpType op, std::vector<NodeId> operands);

    /** Total number of nodes (inputs + compute). */
    size_t numNodes() const { return nodes.size(); }

    /** Number of Input leaves. */
    size_t numInputs() const { return inputCount; }

    /** Number of compute (non-input) nodes — the paper's "n". */
    size_t numOperations() const { return nodes.size() - inputCount; }

    /** Number of edges (sum of operand counts). */
    size_t numEdges() const { return edgeCount; }

    const Node &
    node(NodeId id) const
    {
        dpu_assert(id < nodes.size(), "node id out of range");
        return nodes[id];
    }

    /** Nodes that consume the value of `id`. */
    const std::vector<NodeId> &
    successors(NodeId id) const
    {
        dpu_assert(id < succ.size(), "node id out of range");
        return succ[id];
    }

    /** Out-degree of a node. */
    size_t outDegree(NodeId id) const { return successors(id).size(); }

    /** Nodes with no successors (the DAG's results). */
    std::vector<NodeId> sinks() const;

    /** All Input node ids, in id order. */
    std::vector<NodeId> inputIds() const;

    /** True if every compute node has exactly two operands. */
    bool isBinary() const;

    /** Maximum out-degree over all nodes (the paper's Delta(G)). */
    size_t maxOutDegree() const;

  private:
    std::vector<Node> nodes;
    std::vector<std::vector<NodeId>> succ;
    size_t inputCount = 0;
    size_t edgeCount = 0;
};

} // namespace dpu

#endif // DPU_DAG_DAG_HH
