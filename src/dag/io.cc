#include "dag/io.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace dpu {

void
writeDag(const Dag &dag, std::ostream &out)
{
    out << "dpu-dag v1 " << dag.numNodes() << "\n";
    for (NodeId id = 0; id < dag.numNodes(); ++id) {
        const Node &n = dag.node(id);
        if (n.isInput()) {
            out << "i\n";
            continue;
        }
        out << (n.op == OpType::Add ? '+' : '*');
        for (NodeId src : n.operands)
            out << ' ' << src;
        out << "\n";
    }
}

Dag
readDag(std::istream &in)
{
    std::string magic, version;
    size_t count = 0;
    if (!(in >> magic >> version >> count) || magic != "dpu-dag" ||
        version != "v1") {
        dpu_fatal("not a dpu-dag v1 stream");
    }
    std::string line;
    std::getline(in, line); // consume rest of header line

    Dag dag;
    for (size_t i = 0; i < count; ++i) {
        if (!std::getline(in, line))
            dpu_fatal("truncated dpu-dag stream");
        std::istringstream ls(line);
        std::string kind;
        if (!(ls >> kind))
            dpu_fatal("empty node line in dpu-dag stream");
        if (kind == "i") {
            dag.addInput();
            continue;
        }
        OpType op;
        if (kind == "+")
            op = OpType::Add;
        else if (kind == "*")
            op = OpType::Mul;
        else
            dpu_fatal("unknown node kind '" + kind + "'");
        std::vector<NodeId> operands;
        uint64_t v;
        while (ls >> v) {
            if (v >= i)
                dpu_fatal("operand id out of range (not topological)");
            operands.push_back(static_cast<NodeId>(v));
        }
        if (operands.empty())
            dpu_fatal("compute node without operands");
        dag.addNode(op, std::move(operands));
    }
    return dag;
}

void
writeDagFile(const Dag &dag, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        dpu_fatal("cannot open '" + path + "' for writing");
    writeDag(dag, out);
}

Dag
readDagFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        dpu_fatal("cannot open '" + path + "' for reading");
    return readDag(in);
}

void
writeDot(const Dag &dag, std::ostream &out, const std::string &graph_name)
{
    out << "digraph " << graph_name << " {\n";
    out << "  rankdir=BT;\n";
    for (NodeId v = 0; v < dag.numNodes(); ++v) {
        const Node &n = dag.node(v);
        if (n.isInput()) {
            out << "  n" << v << " [shape=box,label=\"in" << v
                << "\"];\n";
        } else {
            out << "  n" << v << " [shape=circle,label=\""
                << (n.op == OpType::Add ? "+" : "x") << "\"];\n";
        }
        for (NodeId o : n.operands)
            out << "  n" << o << " -> n" << v << ";\n";
    }
    out << "}\n";
}

} // namespace dpu
