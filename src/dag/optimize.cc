#include "dag/optimize.hh"

#include <algorithm>
#include <map>

namespace dpu {

OptimizeResult
eliminateCommonSubexpressions(const Dag &dag)
{
    OptimizeResult res;
    res.valueOf.assign(dag.numNodes(), invalidNode);

    // Key: (op, canonicalized remapped operands) -> new node id.
    std::map<std::pair<OpType, std::vector<NodeId>>, NodeId> seen;

    for (NodeId v = 0; v < dag.numNodes(); ++v) {
        const Node &n = dag.node(v);
        if (n.isInput()) {
            res.valueOf[v] = res.dag.addInput();
            continue;
        }
        std::vector<NodeId> ops;
        ops.reserve(n.operands.size());
        for (NodeId o : n.operands)
            ops.push_back(res.valueOf[o]);
        // Add/Mul are commutative and associative; sorting the
        // operand list canonicalizes within one node.
        std::sort(ops.begin(), ops.end());
        auto key = std::make_pair(n.op, ops);
        auto it = seen.find(key);
        if (it != seen.end()) {
            res.valueOf[v] = it->second;
            ++res.removedNodes;
            continue;
        }
        NodeId nv = res.dag.addNode(n.op, ops);
        seen.emplace(std::move(key), nv);
        res.valueOf[v] = nv;
    }
    return res;
}

OptimizeResult
eliminateDeadNodes(const Dag &dag, const std::vector<NodeId> &outputs)
{
    // Live = reachable from a designated output by operand edges.
    std::vector<bool> live(dag.numNodes(), false);
    std::vector<NodeId> stack = outputs.empty() ? dag.sinks() : outputs;
    while (!stack.empty()) {
        NodeId v = stack.back();
        stack.pop_back();
        if (live[v])
            continue;
        live[v] = true;
        for (NodeId o : dag.node(v).operands)
            if (!live[o])
                stack.push_back(o);
    }

    OptimizeResult res;
    res.valueOf.assign(dag.numNodes(), invalidNode);
    for (NodeId v = 0; v < dag.numNodes(); ++v) {
        const Node &n = dag.node(v);
        if (n.isInput()) {
            // Inputs are the external interface; always kept.
            res.valueOf[v] = res.dag.addInput();
            continue;
        }
        if (!live[v]) {
            ++res.removedNodes;
            continue;
        }
        std::vector<NodeId> ops;
        ops.reserve(n.operands.size());
        for (NodeId o : n.operands) {
            dpu_assert(res.valueOf[o] != invalidNode,
                       "live node depends on dead node");
            ops.push_back(res.valueOf[o]);
        }
        res.valueOf[v] = res.dag.addNode(n.op, std::move(ops));
    }
    return res;
}

OptimizeResult
optimizeDag(const Dag &dag, const std::vector<NodeId> &outputs)
{
    OptimizeResult cse = eliminateCommonSubexpressions(dag);
    std::vector<NodeId> mapped_outputs;
    mapped_outputs.reserve(outputs.size());
    for (NodeId v : outputs)
        mapped_outputs.push_back(cse.valueOf[v]);
    OptimizeResult dce = eliminateDeadNodes(cse.dag, mapped_outputs);
    OptimizeResult res;
    res.dag = std::move(dce.dag);
    res.removedNodes = cse.removedNodes + dce.removedNodes;
    res.valueOf.assign(dag.numNodes(), invalidNode);
    for (NodeId v = 0; v < dag.numNodes(); ++v) {
        NodeId mid = cse.valueOf[v];
        if (mid != invalidNode)
            res.valueOf[v] = dce.valueOf[mid];
    }
    return res;
}

} // namespace dpu
