/**
 * @file
 * Reference (golden) evaluator for computation DAGs.
 *
 * The cycle-accurate simulator's functional results are cross-checked
 * against this evaluator on every run: it is the single source of truth
 * for "what the DAG computes".
 */

#ifndef DPU_DAG_EVAL_HH
#define DPU_DAG_EVAL_HH

#include <vector>

#include "dag/dag.hh"

namespace dpu {

/**
 * Evaluate a DAG.
 *
 * @param dag The DAG.
 * @param input_values One value per Input node, in input-id order
 *        (i.e. input_values[k] feeds the k-th input by id).
 * @return One value per node (inputs echo their input value).
 */
std::vector<double> evaluate(const Dag &dag,
                             const std::vector<double> &input_values);

/** Evaluate and return only the values of the DAG's sink nodes. */
std::vector<double> evaluateSinks(const Dag &dag,
                                  const std::vector<double> &input_values);

} // namespace dpu

#endif // DPU_DAG_EVAL_HH
