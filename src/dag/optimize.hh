/**
 * @file
 * DAG optimization passes run ahead of compilation.
 *
 * Learned probabilistic circuits and mechanically-lowered SpTRSV DAGs
 * carry redundancy a hardware compiler should not pay for: duplicate
 * subexpressions (identical operator + operands) and nodes whose
 * values nothing consumes. Both passes are value-preserving and keep
 * node ids topological.
 */

#ifndef DPU_DAG_OPTIMIZE_HH
#define DPU_DAG_OPTIMIZE_HH

#include <vector>

#include "dag/dag.hh"

namespace dpu {

/** Result of an optimization pass. */
struct OptimizeResult
{
    Dag dag;

    /** For every original node: the new node carrying its value, or
     *  invalidNode if the node was eliminated as dead. */
    std::vector<NodeId> valueOf;

    size_t removedNodes = 0;
};

/**
 * Common-subexpression elimination: collapse compute nodes with the
 * same operator and operand list (operands are compared after their
 * own remapping, so chains of duplicates collapse in one pass; Add
 * and Mul are commutative, so operand order is canonicalized).
 */
OptimizeResult eliminateCommonSubexpressions(const Dag &dag);

/**
 * Dead-node elimination: drop compute nodes that none of the
 * designated `outputs` depends on. With an empty output list every
 * sink counts as an output (then nothing is dead — in a DAG every
 * node reaches some sink). Passing an explicit subset enables
 * query-specific compilation, e.g. evaluating one root of a
 * multi-root probabilistic circuit. Input nodes are always kept
 * (they are the external interface).
 */
OptimizeResult eliminateDeadNodes(const Dag &dag,
                                  const std::vector<NodeId> &outputs = {});

/** CSE followed by DCE toward the given outputs. */
OptimizeResult optimizeDag(const Dag &dag,
                           const std::vector<NodeId> &outputs = {});

} // namespace dpu

#endif // DPU_DAG_OPTIMIZE_HH
