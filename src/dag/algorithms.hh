/**
 * @file
 * Graph algorithms shared by the compiler, workloads, and baselines.
 */

#ifndef DPU_DAG_ALGORITHMS_HH
#define DPU_DAG_ALGORITHMS_HH

#include <cstddef>
#include <vector>

#include "dag/dag.hh"

namespace dpu {

/**
 * ASAP level of every node: inputs are level 0, a compute node is
 * 1 + max(level of operands). Level k nodes are mutually independent,
 * which is exactly the "layer-wise" parallelism the GPU baseline uses.
 */
std::vector<uint32_t> asapLevels(const Dag &dag);

/**
 * Longest path length in *compute nodes* — the paper's "l" in Table I
 * (a chain of l dependent operations).
 */
size_t longestPathLength(const Dag &dag);

/**
 * Depth-first preorder position of every node.
 *
 * Algorithm 1 approximates the distance between nodes by the difference
 * of their DFS-visit positions (paper §IV-A objective D); the traversal
 * starts from sources and explores successors, matching "a depth-first
 * traversal of the DAG performed once at the beginning".
 */
std::vector<uint32_t> dfsPreorderPositions(const Dag &dag);

/**
 * Group node ids by ASAP level. levels[k] lists every node with level k
 * (level 0 = inputs). Used by the GPU/CPU baselines and generators.
 */
std::vector<std::vector<NodeId>> nodesByLevel(const Dag &dag);

/** Histogram-style structural statistics (Table I rows). */
struct DagStats
{
    size_t numOperations;  ///< compute nodes ("Nodes (n)")
    size_t numInputs;
    size_t numEdges;
    size_t longestPath;    ///< "Longest path (l)"
    double parallelism;    ///< n / l
    size_t maxOutDegree;
};

/** Compute the Table I statistics of a DAG. */
DagStats computeStats(const Dag &dag);

} // namespace dpu

#endif // DPU_DAG_ALGORITHMS_HH
