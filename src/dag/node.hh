/**
 * @file
 * Node and operator definitions for computation DAGs.
 *
 * DPU-v2 targets DAGs whose nodes are fine-grained arithmetic operations
 * (paper §II): probabilistic circuits need sums and products, and sparse
 * triangular solves lower to multiply-accumulate chains, so `Add` and
 * `Mul` (plus `Input` leaves) cover the whole workload suite.
 */

#ifndef DPU_DAG_NODE_HH
#define DPU_DAG_NODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dpu {

/** Identifier of a node within one Dag. Ids form a topological order. */
using NodeId = uint32_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = static_cast<NodeId>(-1);

/** Operator performed by a DAG node. */
enum class OpType : uint8_t {
    Input, ///< External input (leaf); holds no operation.
    Add,   ///< Sum of the operands.
    Mul,   ///< Product of the operands.
};

/** Printable operator name. */
inline const char *
opName(OpType op)
{
    switch (op) {
      case OpType::Input: return "input";
      case OpType::Add: return "add";
      case OpType::Mul: return "mul";
    }
    return "?";
}

/**
 * One DAG node: an operator plus its operand node ids.
 *
 * Operand ids are always smaller than the node's own id, so iterating
 * nodes by id is a valid execution order (paper §II "Execution order").
 */
struct Node
{
    OpType op = OpType::Input;
    std::vector<NodeId> operands;

    bool isInput() const { return op == OpType::Input; }
};

} // namespace dpu

#endif // DPU_DAG_NODE_HH
