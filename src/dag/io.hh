/**
 * @file
 * Plain-text serialization of DAGs.
 *
 * The format is a line-oriented edge list in topological order:
 *
 *     dpu-dag v1 <num_nodes>
 *     i                 # input node
 *     + <id> <id> ...   # add node with operand ids
 *     * <id> <id> ...   # mul node with operand ids
 *
 * Node k is defined by line k (0-based after the header). The paper's
 * compiler accepts "any of the popular graph formats"; this repository
 * standardizes on one simple format plus Matrix Market for matrices
 * (see workloads/sparse_matrix.hh).
 */

#ifndef DPU_DAG_IO_HH
#define DPU_DAG_IO_HH

#include <iosfwd>
#include <string>

#include "dag/dag.hh"

namespace dpu {

/** Serialize a DAG to a stream. */
void writeDag(const Dag &dag, std::ostream &out);

/** Parse a DAG from a stream. Throws FatalError on malformed input. */
Dag readDag(std::istream &in);

/** Convenience: serialize to / parse from a file path. */
void writeDagFile(const Dag &dag, const std::string &path);
Dag readDagFile(const std::string &path);

/**
 * Emit Graphviz DOT for visual inspection (inputs as boxes, sums as
 * circled '+', products as circled 'x'). Intended for small DAGs;
 * node count is not limited but graphviz will be.
 */
void writeDot(const Dag &dag, std::ostream &out,
              const std::string &graph_name = "dag");

} // namespace dpu

#endif // DPU_DAG_IO_HH
