#include "dag/binarize.hh"

#include <functional>

namespace dpu {

namespace {

/**
 * Build a balanced binary reduction tree over `leaves` in `out`,
 * returning the root id. `leaves` are ids in the output DAG.
 */
NodeId
buildBalancedTree(Dag &out, OpType op, std::vector<NodeId> leaves)
{
    dpu_assert(!leaves.empty(), "reduction over zero operands");
    // Repeatedly pair adjacent values until one remains. Pairing
    // adjacent entries keeps the tree balanced: the number of live
    // values halves each round.
    while (leaves.size() > 1) {
        std::vector<NodeId> next;
        next.reserve((leaves.size() + 1) / 2);
        for (size_t i = 0; i + 1 < leaves.size(); i += 2)
            next.push_back(out.addNode(op, {leaves[i], leaves[i + 1]}));
        if (leaves.size() % 2 == 1)
            next.push_back(leaves.back());
        leaves = std::move(next);
    }
    return leaves[0];
}

} // namespace

BinarizeResult
binarize(const Dag &input)
{
    BinarizeResult res;
    res.valueOf.resize(input.numNodes(), invalidNode);

    for (NodeId id = 0; id < input.numNodes(); ++id) {
        const Node &n = input.node(id);
        if (n.isInput()) {
            res.valueOf[id] = res.dag.addInput();
            continue;
        }
        std::vector<NodeId> ops;
        ops.reserve(n.operands.size());
        for (NodeId src : n.operands) {
            dpu_assert(res.valueOf[src] != invalidNode,
                       "operand not yet translated");
            ops.push_back(res.valueOf[src]);
        }
        if (ops.size() == 1) {
            // A 1-input Add/Mul is the identity; forward the operand.
            res.valueOf[id] = ops[0];
        } else {
            res.valueOf[id] = buildBalancedTree(res.dag, n.op,
                                                std::move(ops));
        }
    }
    return res;
}

} // namespace dpu
