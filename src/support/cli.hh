/**
 * @file
 * Strict numeric option-value parsing shared by the CLI surfaces
 * (dpuc, the bench harness, run_benches).
 *
 * std::atoi/atof silently turn "--threads=abc" into 0 and "--scale=x"
 * into 0.0, which then gets clamped or misbehaves far from the typo.
 * These helpers accept exactly one fully-consumed, in-range decimal
 * value and report everything else as a parse failure so the drivers
 * can reject the flag with a clear message instead.
 */

#ifndef DPU_SUPPORT_CLI_HH
#define DPU_SUPPORT_CLI_HH

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace dpu {

/** Parse a full-string unsigned decimal into `out`. Rejects empty
 *  strings, signs, whitespace, trailing junk and overflow. */
inline bool
parseUint64Arg(const char *s, uint64_t &out)
{
    if (!s || !std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || end == s || *end != '\0')
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

/** parseUint64Arg() restricted to the uint32_t range. */
inline bool
parseUint32Arg(const char *s, uint32_t &out)
{
    uint64_t v = 0;
    if (!parseUint64Arg(s, v) ||
        v > std::numeric_limits<uint32_t>::max())
        return false;
    out = static_cast<uint32_t>(v);
    return true;
}

/** Parse a full-string finite decimal (no nan/inf, no trailing
 *  junk; leading sign and exponent notation are fine). */
inline bool
parseDoubleArg(const char *s, double &out)
{
    if (!s || s[0] == '\0' ||
        std::isspace(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (errno == ERANGE || end == s || *end != '\0' ||
        !std::isfinite(v))
        return false;
    out = v;
    return true;
}

/** parseDoubleArg() restricted to [0, 1]: probability-style mix
 *  fractions (e.g. the serving benches' --priority-mix). Negative
 *  values and values above 1 are parse failures, like any other
 *  out-of-domain flag value. */
inline bool
parseFractionArg(const char *s, double &out)
{
    double v = 0.0;
    if (!parseDoubleArg(s, v) || v < 0.0 || v > 1.0)
        return false;
    out = v;
    return true;
}

/** Parse a link transfer rate in GB/s: a positive finite decimal, or
 *  the literal "inf" for a free (infinitely fast) link — the fleet
 *  flags' default. Zero, negative, non-numeric and trailing-junk
 *  values are parse failures (a 0 GB/s link would deadlock every
 *  transfer, so it is rejected rather than modeled). */
inline bool
parseGbpsArg(const char *s, double &out)
{
    if (!s)
        return false;
    if (std::string(s) == "inf") {
        out = std::numeric_limits<double>::infinity();
        return true;
    }
    double v = 0.0;
    if (!parseDoubleArg(s, v) || v <= 0.0)
        return false;
    out = v;
    return true;
}

namespace detail {

/** Split on ',' and parse every element with `parse_one`. Rejects
 *  empty input, empty elements ("1,,2", trailing commas) and any
 *  element the element parser rejects. `out` is only written on
 *  success. */
template <typename T, typename ParseOne>
inline bool
parseListArg(const char *s, std::vector<T> &out, ParseOne parse_one)
{
    if (!s || s[0] == '\0')
        return false;
    std::vector<T> values;
    std::string elem;
    for (const char *p = s;; ++p) {
        if (*p != ',' && *p != '\0') {
            elem += *p;
            continue;
        }
        T v{};
        if (elem.empty() || !parse_one(elem.c_str(), v))
            return false;
        values.push_back(v);
        elem.clear();
        if (*p == '\0')
            break;
    }
    out = std::move(values);
    return true;
}

} // namespace detail

/** Parse a comma-separated list of strict uint32 values ("1,2,3").
 *  The axis-list form of the sweep CLIs (e.g. dse_sweep --axes). */
inline bool
parseUint32ListArg(const char *s, std::vector<uint32_t> &out)
{
    return detail::parseListArg<uint32_t>(s, out, parseUint32Arg);
}

/** Parse a comma-separated list of strict finite doubles. */
inline bool
parseDoubleListArg(const char *s, std::vector<double> &out)
{
    return detail::parseListArg<double>(s, out, parseDoubleArg);
}

/** Match `s` against a closed set of choice names (exact,
 *  case-sensitive). On success `index` is the matched position.
 *  Enum-valued flags (e.g. --fidelity=) route through this so every
 *  CLI rejects unknown names the same way instead of each driver
 *  growing its own string compare chain. */
inline bool
parseChoiceArg(const char *s, const std::vector<std::string> &choices,
               size_t &index)
{
    if (!s || s[0] == '\0')
        return false;
    for (size_t i = 0; i < choices.size(); ++i) {
        if (choices[i] == s) {
            index = i;
            return true;
        }
    }
    return false;
}

} // namespace dpu

#endif // DPU_SUPPORT_CLI_HH
