/**
 * @file
 * A minimal parallel-for over an index space: up to `threads`
 * std::thread workers pull indices from a shared atomic counter
 * (dynamic work stealing — the space is partitioned, never
 * replicated), so results keyed by index are identical for any
 * thread count. The first exception thrown by any worker stops the
 * pool and is rethrown on the caller after all workers joined.
 *
 * Shared by the simulator's BatchMachine and the bench harness.
 */

#ifndef DPU_SUPPORT_PARALLEL_HH
#define DPU_SUPPORT_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dpu {

/** Run fn(0..n-1) on up to `threads` workers; plain loop when <= 1. */
template <typename Fn>
void
parallelFor(size_t n, uint32_t threads, Fn &&fn)
{
    size_t workers = threads;
    if (workers > n)
        workers = n;
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto body = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        pool.emplace_back(body);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

/**
 * Ordered producer/consumer pipeline over an index space: up to
 * `threads` workers run produce(i) out of order (atomic-counter work
 * stealing, like parallelFor), while the calling thread runs
 * consume(i) strictly in ascending index order as soon as produce(i)
 * has completed. produce(i) must only touch state private to index i;
 * consume(i) may mutate shared state freely — it is never concurrent
 * with another consume and is totally ordered, so the consumed result
 * is identical for any thread count. With threads <= 1 the caller
 * simply interleaves produce(i); consume(i) — the canonical
 * sequential pipeline the parallel path must match byte for byte.
 *
 * Exceptions: the first error from either side stops the pool and is
 * rethrown on the caller after all workers joined; no further
 * consume() calls are made after a failure.
 */
template <typename Produce, typename Consume>
void
pipelineOrdered(size_t n, uint32_t threads, Produce &&produce,
                Consume &&consume)
{
    size_t workers = threads;
    if (workers > n)
        workers = n;
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i) {
            produce(i);
            consume(i);
        }
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex mutex; // guards `done` + first_error, pairs with cv
    std::condition_variable cv;
    std::vector<uint8_t> done(n, 0);

    auto record_error = [&]() {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error)
            first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        cv.notify_all();
    };

    auto body = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                produce(i);
            } catch (...) {
                record_error();
                return;
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                done[i] = 1;
            }
            cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        pool.emplace_back(body);

    for (size_t i = 0; i < n; ++i) {
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&]() {
                return done[i] != 0 ||
                       failed.load(std::memory_order_relaxed);
            });
            if (failed.load(std::memory_order_relaxed))
                break;
        }
        try {
            consume(i);
        } catch (...) {
            record_error();
            break;
        }
    }

    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace dpu

#endif // DPU_SUPPORT_PARALLEL_HH
