/**
 * @file
 * Flat one-line JSON emit/parse shared by the machine-written JSON
 * formats in the tree (the DSE checkpoint journal, the fitted
 * evaluation table). Values are strings, numbers and booleans only —
 * no nesting — so the parser can be strict: anything else is a torn
 * or foreign line and parsing fails instead of guessing.
 */

#ifndef DPU_SUPPORT_FLATJSON_HH
#define DPU_SUPPORT_FLATJSON_HH

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <system_error>
#include <unordered_map>

namespace dpu {

/** Shortest round-trip JSON rendering of a double: a parsed line
 *  re-serializes byte-identically, which is what makes the canonical
 *  journal (and the fitted table) deterministic across rewrites. */
inline std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no NaN/Inf; parser treats as torn
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "null";
    return std::string(buf, end);
}

/** Escape '"' and '\' (the only characters our emitters can produce
 *  that need it; signatures and labels carry no control chars). */
inline std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * Minimal strict parser for flat one-line JSON objects: string /
 * number / true / false values only, no nesting.
 */
class FlatJsonLine
{
  public:
    bool
    parse(const std::string &line)
    {
        const char *p = line.c_str();
        skipWs(p);
        if (*p != '{')
            return false;
        ++p;
        skipWs(p);
        if (*p == '}')
            return endsClean(p + 1);
        for (;;) {
            std::string key, value;
            if (!parseString(p, key))
                return false;
            skipWs(p);
            if (*p != ':')
                return false;
            ++p;
            skipWs(p);
            if (*p == '"') {
                if (!parseString(p, value))
                    return false;
            } else {
                const char *start = p;
                while (*p && *p != ',' && *p != '}' &&
                       !std::isspace(static_cast<unsigned char>(*p)))
                    ++p;
                value.assign(start, p);
                if (value.empty())
                    return false;
            }
            fields[key] = value;
            skipWs(p);
            if (*p == ',') {
                ++p;
                skipWs(p);
                continue;
            }
            if (*p == '}')
                return endsClean(p + 1);
            return false;
        }
    }

    bool
    has(const std::string &key) const
    {
        return fields.find(key) != fields.end();
    }

    bool
    getU64(const std::string &key, uint64_t &out) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            return false;
        const std::string &s = it->second;
        auto [end, ec] =
            std::from_chars(s.data(), s.data() + s.size(), out);
        return ec == std::errc() && end == s.data() + s.size();
    }

    bool
    getDouble(const std::string &key, double &out) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            return false;
        const std::string &s = it->second;
        // from_chars, like the to_chars emitter, is locale-free:
        // a host locale with ',' decimals must not turn every
        // fractional journal line into a "torn" reject.
        double v = 0;
        auto [end, ec] =
            std::from_chars(s.data(), s.data() + s.size(), v);
        if (ec != std::errc() || end != s.data() + s.size() ||
            !std::isfinite(v))
            return false;
        out = v;
        return true;
    }

    bool
    getBool(const std::string &key, bool &out) const
    {
        auto it = fields.find(key);
        if (it == fields.end() ||
            (it->second != "true" && it->second != "false"))
            return false;
        out = it->second == "true";
        return true;
    }

    bool
    getString(const std::string &key, std::string &out) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            return false;
        out = it->second;
        return true;
    }

  private:
    static void
    skipWs(const char *&p)
    {
        while (*p == ' ' || *p == '\t')
            ++p;
    }

    static bool
    parseString(const char *&p, std::string &out)
    {
        if (*p != '"')
            return false;
        ++p;
        out.clear();
        while (*p && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (!*p)
                    return false;
            }
            out += *p++;
        }
        if (*p != '"')
            return false;
        ++p;
        return true;
    }

    static bool
    endsClean(const char *p)
    {
        while (*p == ' ' || *p == '\t' || *p == '\r')
            ++p;
        return *p == '\0';
    }

    std::unordered_map<std::string, std::string> fields;
};

} // namespace dpu

#endif // DPU_SUPPORT_FLATJSON_HH
