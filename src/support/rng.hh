/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomized choices in the workload generators and the compiler
 * (e.g. the random bank picks of Algorithm 2) flow through Rng so that
 * runs are reproducible from a single seed.
 */

#ifndef DPU_SUPPORT_RNG_HH
#define DPU_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

#include "logging.hh"

namespace dpu {

/**
 * Small, fast, deterministic generator (splitmix64 core).
 *
 * splitmix64 passes BigCrush and has a trivially seedable state, which
 * keeps every module's behaviour a pure function of its seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be positive. */
    uint64_t
    below(uint64_t bound)
    {
        dpu_assert(bound > 0, "Rng::below needs a positive bound");
        // Rejection sampling to avoid modulo bias.
        uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        dpu_assert(lo <= hi, "Rng::range needs lo <= hi");
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        dpu_assert(!v.empty(), "Rng::pick on empty vector");
        return v[below(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel structures). */
    Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

  private:
    uint64_t state;
};

} // namespace dpu

#endif // DPU_SUPPORT_RNG_HH
