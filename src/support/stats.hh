/**
 * @file
 * Lightweight summary statistics used across benches and the DSE.
 */

#ifndef DPU_SUPPORT_STATS_HH
#define DPU_SUPPORT_STATS_HH

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "logging.hh"

namespace dpu {

/** Streaming min/max/mean/stddev accumulator. */
class Summary
{
  public:
    void
    add(double x)
    {
        n += 1;
        sum += x;
        sumSq += x * x;
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }

    size_t count() const { return n; }
    double total() const { return sum; }

    double
    mean() const
    {
        dpu_assert(n > 0, "Summary::mean of empty set");
        return sum / static_cast<double>(n);
    }

    double
    stddev() const
    {
        dpu_assert(n > 0, "Summary::stddev of empty set");
        double m = mean();
        double var = sumSq / static_cast<double>(n) - m * m;
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    double min() const { return lo; }
    double max() const { return hi; }

  private:
    size_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of a set of positive values (speedup aggregation). */
inline double
geomean(const std::vector<double> &xs)
{
    dpu_assert(!xs.empty(), "geomean of empty set");
    double acc = 0.0;
    for (double x : xs) {
        dpu_assert(x > 0, "geomean needs positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace dpu

#endif // DPU_SUPPORT_STATS_HH
