/**
 * @file
 * Error-reporting and assertion helpers shared by every dpu module.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user-facing
 * configuration errors the caller can fix.
 */

#ifndef DPU_SUPPORT_LOGGING_HH
#define DPU_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dpu {

/** Exception thrown for user-facing configuration/usage errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

/** Assemble a "file:line: message" string for the error exceptions. */
inline std::string
formatMessage(const char *kind, const char *file, int line,
              const std::string &msg)
{
    std::ostringstream os;
    os << kind << " at " << file << ":" << line << ": " << msg;
    return os.str();
}

} // namespace detail

} // namespace dpu

/** Abort with an internal-bug diagnostic. Use for "cannot happen" states. */
#define dpu_panic(msg)                                                       \
    throw ::dpu::PanicError(                                                 \
        ::dpu::detail::formatMessage("panic", __FILE__, __LINE__, (msg)))

/** Abort with a user-error diagnostic. Use for bad inputs/configs. */
#define dpu_fatal(msg)                                                       \
    throw ::dpu::FatalError(                                                 \
        ::dpu::detail::formatMessage("fatal", __FILE__, __LINE__, (msg)))

/**
 * Always-on invariant check. Unlike <cassert>, stays active in release
 * builds; the compiler and simulator lean on these checks for
 * cross-validation, so they must not be compiled out.
 */
#define dpu_assert(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            dpu_panic(std::string("assertion `" #cond "` failed: ") +        \
                      (msg));                                                \
        }                                                                    \
    } while (0)

#endif // DPU_SUPPORT_LOGGING_HH
