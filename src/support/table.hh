/**
 * @file
 * Aligned plain-text table printing for the bench binaries.
 *
 * Every bench regenerates one table/figure of the paper as rows of text;
 * TablePrinter keeps that output readable and diffable, and can also
 * emit CSV for plotting.
 */

#ifndef DPU_SUPPORT_TABLE_HH
#define DPU_SUPPORT_TABLE_HH

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "logging.hh"

namespace dpu {

/** Accumulates rows of strings and prints them column-aligned. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header)
        : columns(std::move(header))
    {}

    /** Start a new row. Use cell()/num() to fill it. */
    TablePrinter &
    row()
    {
        dpu_assert(rows.empty() || rows.back().size() == columns.size(),
                   "previous row incomplete");
        rows.emplace_back();
        return *this;
    }

    TablePrinter &
    cell(const std::string &s)
    {
        dpu_assert(!rows.empty(), "row() must be called before cell()");
        dpu_assert(rows.back().size() < columns.size(), "row overflow");
        rows.back().push_back(s);
        return *this;
    }

    /** Add a numeric cell with a fixed number of decimals. */
    TablePrinter &
    num(double value, int decimals = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(decimals) << value;
        return cell(os.str());
    }

    /** Add an integer cell. */
    TablePrinter &
    num(long long value)
    {
        return cell(std::to_string(value));
    }

    /** Print the table, column-aligned, to `out`. */
    void
    print(std::ostream &out = std::cout) const
    {
        std::vector<size_t> widths(columns.size());
        for (size_t c = 0; c < columns.size(); ++c)
            widths[c] = columns[c].size();
        for (const auto &r : rows)
            for (size_t c = 0; c < r.size(); ++c)
                widths[c] = std::max(widths[c], r[c].size());

        auto print_row = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < r.size(); ++c) {
                out << std::left << std::setw(static_cast<int>(widths[c]))
                    << r[c];
                out << (c + 1 == r.size() ? "" : "  ");
            }
            out << "\n";
        };

        print_row(columns);
        std::string rule;
        for (size_t c = 0; c < columns.size(); ++c) {
            rule += std::string(widths[c], '-');
            if (c + 1 != columns.size())
                rule += "  ";
        }
        out << rule << "\n";
        for (const auto &r : rows)
            print_row(r);
    }

    /** Print as CSV (for plotting scripts). */
    void
    printCsv(std::ostream &out) const
    {
        auto csv_row = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < r.size(); ++c)
                out << r[c] << (c + 1 == r.size() ? "" : ",");
            out << "\n";
        };
        csv_row(columns);
        for (const auto &r : rows)
            csv_row(r);
    }

    /** Column headers (for machine-readable re-emission). */
    const std::vector<std::string> &
    header() const
    {
        return columns;
    }

    /** Row cells, as formatted (for machine-readable re-emission). */
    const std::vector<std::vector<std::string>> &
    data() const
    {
        return rows;
    }

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

} // namespace dpu

#endif // DPU_SUPPORT_TABLE_HH
