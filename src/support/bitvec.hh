/**
 * @file
 * Dynamic bit vector with a find-first-zero primitive.
 *
 * Models the per-register valid bits of a DPU-v2 register bank: the
 * automatic write policy needs "lowest free address", i.e. the index of
 * the first zero bit (the hardware priority encoder of fig. 5(d)).
 */

#ifndef DPU_SUPPORT_BITVEC_HH
#define DPU_SUPPORT_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "logging.hh"

namespace dpu {

/** Fixed-size bit vector backed by 64-bit words. */
class BitVec
{
  public:
    BitVec() = default;

    explicit BitVec(size_t n, bool value = false)
        : numBits(n),
          words((n + 63) / 64, value ? ~uint64_t(0) : uint64_t(0))
    {
        trimTail();
    }

    size_t size() const { return numBits; }

    bool
    get(size_t i) const
    {
        dpu_assert(i < numBits, "BitVec::get out of range");
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i, bool value = true)
    {
        dpu_assert(i < numBits, "BitVec::set out of range");
        uint64_t mask = uint64_t(1) << (i & 63);
        if (value)
            words[i >> 6] |= mask;
        else
            words[i >> 6] &= ~mask;
    }

    void clear(size_t i) { set(i, false); }

    /** Number of set bits. */
    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

    /**
     * Index of the lowest zero bit (the priority-encoder output), or
     * size() if every bit is set (bank full).
     */
    size_t
    firstZero() const
    {
        for (size_t wi = 0; wi < words.size(); ++wi) {
            uint64_t inv = ~words[wi];
            if (wi + 1 == words.size())
                inv &= tailMask();
            if (inv) {
                size_t bit = static_cast<size_t>(__builtin_ctzll(inv));
                size_t idx = wi * 64 + bit;
                return idx < numBits ? idx : numBits;
            }
        }
        return numBits;
    }

    /** True if no bit is set. */
    bool
    none() const
    {
        for (uint64_t w : words)
            if (w)
                return false;
        return true;
    }

    void
    reset()
    {
        for (uint64_t &w : words)
            w = 0;
    }

    bool operator==(const BitVec &other) const = default;

  private:
    /** Mask of in-range bits within the last word. */
    uint64_t
    tailMask() const
    {
        size_t rem = numBits & 63;
        return rem ? ((uint64_t(1) << rem) - 1) : ~uint64_t(0);
    }

    /** Clear any bits beyond numBits so count()/none() stay exact. */
    void
    trimTail()
    {
        if (!words.empty())
            words.back() &= tailMask();
    }

    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace dpu

#endif // DPU_SUPPORT_BITVEC_HH
