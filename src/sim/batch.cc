#include "sim/batch.hh"

#include <algorithm>
#include <utility>

#include "support/logging.hh"
#include "support/parallel.hh"

namespace dpu {

BatchMachine::BatchMachine(const CompiledProgram &program, uint32_t n,
                           uint64_t ops, uint32_t host_threads)
    : BatchMachine(program, CoreSet::firstN(n), ops, host_threads)
{
}

BatchMachine::BatchMachine(const CompiledProgram &program,
                           CoreSet core_set, uint64_t ops,
                           uint32_t host_threads)
    : prog(program), cores(std::move(core_set)), operations(ops),
      threads(host_threads < 1 ? 1 : host_threads)
{
    dpu_assert(!cores.empty(), "need at least one core");
    cores.validate();
}

BatchMachine::BatchMachine(const CompiledProgram &program,
                           RankSet rank_set, uint64_t ops,
                           uint32_t host_threads,
                           HostTransferModel transfer_model)
    : BatchMachine(program, std::move(rank_set.cores), ops,
                   host_threads)
{
    rank = rank_set.rank;
    transfer = transfer_model;
}

BatchResult
BatchMachine::run(const std::vector<std::vector<double>> &inputs)
{
    BatchResult out;
    out.runs.resize(inputs.size());

    // Simulate every input into its submission-order slot. Machine
    // runs are independent (a Machine holds no cross-run state), so
    // the per-slot results — and everything folded from them below —
    // are identical for any host thread count.
    parallelFor(inputs.size(), threads, [&](size_t k) {
        out.runs[k] = Machine(prog).run(inputs[k]);
    });

    // Fold the model-core accounting in submission order: each model
    // core executes ceil(batch/cores) back-to-back programs and the
    // wall clock is the busiest core (they run in lockstep over
    // round-robin slices).
    out.coreIds = cores.ids;
    out.perCoreCycles.assign(cores.count(), 0);
    for (size_t k = 0; k < out.runs.size(); ++k) {
        out.perCoreCycles[k % cores.count()] += out.runs[k].stats.cycles;
        out.totalOperations += operations;
    }
    out.wallCycles = out.runs.empty()
        ? 0
        : *std::max_element(out.perCoreCycles.begin(),
                            out.perCoreCycles.end());

    // Host↔rank transfer: one dispatch carries the whole batch, so
    // the fixed cost is paid once and the per-run payloads serialize
    // over the link. Statically determined by (program, batch size) —
    // never by the simulated values — so every evaluator tier can
    // reproduce it exactly. 0 under the default free model.
    out.rank = rank;
    if (!out.runs.empty())
        out.transferCycles =
            transfer.batchCycles(hostTransferBytes(prog),
                                 out.runs.size());
    return out;
}

} // namespace dpu
