#include "sim/batch.hh"

#include <algorithm>

#include "support/logging.hh"

namespace dpu {

BatchMachine::BatchMachine(const CompiledProgram &program, uint32_t n,
                           uint64_t ops)
    : prog(program), cores(n), operations(ops)
{
    dpu_assert(cores >= 1, "need at least one core");
}

BatchResult
BatchMachine::run(const std::vector<std::vector<double>> &inputs)
{
    BatchResult out;
    out.runs.reserve(inputs.size());

    // Each core executes ceil(batch/cores) back-to-back programs;
    // the wall clock is the busiest core (they are identical, so
    // that is simply the slice count times the program length).
    std::vector<uint64_t> core_cycles(cores, 0);
    Machine machine(prog);
    for (size_t k = 0; k < inputs.size(); ++k) {
        SimResult res = machine.run(inputs[k]);
        core_cycles[k % cores] += res.stats.cycles;
        out.totalOperations += operations;
        out.runs.push_back(std::move(res));
    }
    out.wallCycles = core_cycles.empty()
        ? 0
        : *std::max_element(core_cycles.begin(), core_cycles.end());
    return out;
}

} // namespace dpu
