/**
 * @file
 * Asynchronous batch-submission serving (paper §V-C2, the other half
 * of the deployment story): the four DPU-v2 cores "can either perform
 * batch execution (used for benchmarking) or execute different DAGs".
 * BatchMachine covers the benchmarking half — one blocking call, one
 * program, one pre-assembled batch. AsyncBatchServer covers serving:
 * requests arrive one at a time (`submit(handle, input)` returns a
 * std::future<SimResult>), are coalesced per resident program inside a
 * configurable batching window up to a max batch size, and each ready
 * batch is dispatched onto the existing BatchMachine/worker-pool
 * machinery. Multiple programs can be resident at once (the "execute
 * different DAGs" mode); a cold program can be registered through the
 * compiler's ProgramCache so the first submit pays a cache fetch
 * instead of a full compile when the artifact is already known.
 *
 * Determinism: a request's SimResult is produced by a private Machine
 * running the resident program on that request's input — nothing about
 * batch composition, arrival interleaving, window length, or host
 * thread counts reaches the simulation. Per-request results are
 * therefore byte-identical across arrival orders and server
 * configurations (the serving analogue of the ParallelCompile
 * byte-identical guarantee; enforced by tests/test_async.cc). Only the
 * *latency* a caller observes and the aggregate batching statistics
 * depend on timing.
 */

#ifndef DPU_SIM_ASYNC_HH
#define DPU_SIM_ASYNC_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "compiler/cache.hh"
#include "sim/batch.hh"

namespace dpu {

/** Serving-side knobs. Simulation results never depend on these. */
struct AsyncServerConfig
{
    /** Model cores per dispatched batch (the paper's large system
     *  deploys 4); feeds the modeled wall-cycle accounting. */
    uint32_t cores = 4;

    /** Dispatch a program's pending requests once this many have
     *  coalesced, without waiting out the window. */
    size_t maxBatch = 8;

    /** How long the oldest pending request may wait for company
     *  before its batch is dispatched anyway. Zero = dispatch every
     *  request immediately (no coalescing). */
    std::chrono::microseconds batchWindow{200};

    /** Host worker threads executing ready batches; batches of
     *  different (or the same) program run concurrently. */
    uint32_t workers = 1;

    /** Host threads *inside* one BatchMachine dispatch (its
     *  byte-identical worker pool); 1 = sequential per batch. */
    uint32_t hostThreadsPerBatch = 1;
};

/**
 * A multi-program serving front-end over BatchMachine.
 *
 * Thread-safe: submit()/drain()/stats() may be called from any number
 * of client threads. The destructor drains outstanding requests.
 */
class AsyncBatchServer
{
  public:
    /** Opaque id of a resident program (index, stable for the
     *  server's lifetime). */
    using ProgramHandle = uint32_t;

    explicit AsyncBatchServer(AsyncServerConfig config = {});
    ~AsyncBatchServer();

    AsyncBatchServer(const AsyncBatchServer &) = delete;
    AsyncBatchServer &operator=(const AsyncBatchServer &) = delete;

    /**
     * Make a compiled program resident and eligible for submit().
     * @param operations Operations per execution for the throughput
     *        accounting; 0 = take program.stats.numOperations.
     */
    ProgramHandle addProgram(CompiledProgram program,
                             uint64_t operations = 0);

    /**
     * Compile-and-load: the cold-submit path. Goes through `cache`
     * when one is given (a warm cache turns the load into a fetch),
     * otherwise runs the real compiler.
     */
    ProgramHandle addProgram(const Dag &dag, const ArchConfig &cfg,
                             const CompileOptions &options = {},
                             ProgramCache *cache = nullptr);

    /**
     * Submit one request. The future becomes ready when the request's
     * batch has executed; it carries the same SimResult a standalone
     * Machine(prog).run(input) would produce.
     *
     * Throws FatalError on an unknown handle or an input-size
     * mismatch (before enqueueing anything).
     */
    std::future<SimResult> submit(ProgramHandle handle,
                                  std::vector<double> input);

    /** Flush every pending batch (ignoring the window) and block
     *  until all submitted requests have completed. */
    void drain();

    /** Aggregate serving counters since construction. */
    struct Stats
    {
        uint64_t requests = 0;         ///< Submitted.
        uint64_t batches = 0;          ///< Dispatched.
        uint64_t maxBatchObserved = 0; ///< Largest dispatched batch.
        uint64_t sizeDispatches = 0;   ///< Batches cut by maxBatch.
        uint64_t windowDispatches = 0; ///< Batches cut by the window.
        uint64_t drainDispatches = 0;  ///< Batches cut by drain().
        uint64_t modeledWallCycles = 0; ///< Summed over batches.
        uint64_t totalOperations = 0;   ///< Summed over batches.

        /** Mean dispatched batch size (after a drain, every submitted
         *  request has been dispatched). */
        double
        meanBatch() const
        {
            return batches ? static_cast<double>(requests) /
                                 static_cast<double>(batches)
                           : 0.0;
        }
    };
    Stats stats() const;

    /** Number of resident programs. */
    size_t numPrograms() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Request
    {
        std::vector<double> input;
        std::promise<SimResult> promise;
        Clock::time_point arrival;
    };

    /** One resident program and its coalescing queue. Requests are
     *  appended in arrival order, so front() is always oldest. */
    struct Resident
    {
        CompiledProgram prog;
        uint64_t operations = 0;
        size_t numInputs = 0;
        std::vector<Request> pending;
    };

    /** A cut batch on its way to a worker. */
    struct Batch
    {
        Resident *resident = nullptr;
        std::vector<Request> requests;
    };

    void batcherMain();
    void workerMain();

    /** Move up to maxBatch requests of `r` onto the ready queue;
     *  `reason` is the dispatch counter to bump. Lock held. */
    void cutBatchLocked(Resident &r, uint64_t &reason);

    AsyncServerConfig config;

    mutable std::mutex mutex;
    std::condition_variable batcherCv; ///< submit/drain -> batcher.
    std::condition_variable workerCv;  ///< batcher -> workers.
    std::condition_variable idleCv;    ///< workers -> drain().

    /** Resident programs; deque keeps addresses stable while growing. */
    std::deque<Resident> programs;

    std::deque<Batch> ready;
    uint64_t outstanding = 0; ///< Submitted but not yet completed.
    uint32_t drainers = 0;    ///< drain() calls in progress.
    bool stopping = false;    ///< Destructor: threads exit when idle.
    Stats counters;

    std::thread batcher;
    std::vector<std::thread> pool;
};

} // namespace dpu

#endif // DPU_SIM_ASYNC_HH
