/**
 * @file
 * Asynchronous batch-submission serving (paper §V-C2, the other half
 * of the deployment story): the four DPU-v2 cores "can either perform
 * batch execution (used for benchmarking) or execute different DAGs".
 * BatchMachine covers the benchmarking half — one blocking call, one
 * program, one pre-assembled batch. AsyncBatchServer covers serving:
 * requests arrive one at a time (`submit(handle, input)` returns a
 * std::future<SimResult>), are coalesced per resident program inside a
 * configurable batching window up to a max batch size, and each ready
 * batch is dispatched onto the existing BatchMachine/worker-pool
 * machinery. Multiple programs can be resident at once (the "execute
 * different DAGs" mode); a cold program can be registered through the
 * compiler's ProgramCache so the first submit pays a cache fetch
 * instead of a full compile when the artifact is already known.
 *
 * QoS layer (SLO-aware serving on top of the submission API):
 *
 *   - Every request carries a priority class (interactive/batch,
 *     inherited from its program's QosSpec or overridden per submit)
 *     and an optional deadline. Requests of different classes never
 *     share a batch.
 *   - The dispatcher cuts a batch *early* — before its window expires
 *     — when waiting longer would make the earliest request deadline
 *     unmeetable (using a per-program EWMA of observed batch service
 *     time as the estimate).
 *   - Ready batches are scheduled earliest-deadline-first within
 *     priority bands: any runnable interactive batch is picked before
 *     any batch-class batch; ties fall back to cut order.
 *   - Per-program core reservations partition the modeled cores: a
 *     program with QosSpec::minCores owns that many cores outright
 *     (no other program's batches can occupy them), and maxCores caps
 *     how far its batches spread into the shared pool. Dispatch uses
 *     BatchMachine's CoreSet form, so a batch really runs on the
 *     specific core ids it was granted.
 *   - Admission control: a bounded queue depth (and a
 *     deadline-already-missed check) rejects requests up front with
 *     an Admission result instead of letting the backlog grow without
 *     bound — the server's backpressure signal.
 *
 * Fleet layer (rank-aware placement): with AsyncServerConfig::ranks
 * > 1 the server models a host driving N identical ranks of `cores`
 * cores each. Resident programs are either replicated (hot: batches
 * go to the least-loaded rank at cut time) or pinned to a home rank
 * (cold: affinity keeps one rank's caches warm), per
 * AsyncServerConfig::placement / QosSpec::placement. Every dispatch
 * is charged the HostTransferModel's serialization + dispatch cost,
 * accounted per rank in Stats (never touching per-request results).
 *
 * Determinism: a request's SimResult is produced by a private Machine
 * running the resident program on that request's input — nothing about
 * batch composition, arrival interleaving, window length, deadlines,
 * priorities, core reservations, or host thread counts reaches the
 * simulation. Per-request results are therefore byte-identical across
 * arrival orders and server configurations (the serving analogue of
 * the ParallelCompile byte-identical guarantee; enforced by
 * tests/test_async.cc and the randomized tests/test_async_stress.cc).
 * Only the *latency* a caller observes, the admission outcomes under
 * load, and the aggregate batching statistics depend on timing.
 */

#ifndef DPU_SIM_ASYNC_HH
#define DPU_SIM_ASYNC_HH

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "compiler/cache.hh"
#include "model/evaluator.hh"
#include "sim/batch.hh"

namespace dpu {

/** Priority class of a request or a resident program. Lower value =
 *  more urgent; the scheduler serves bands in this order. */
enum class Priority : uint8_t
{
    Interactive = 0, ///< Latency-sensitive traffic.
    Batch = 1,       ///< Throughput traffic; yields to Interactive.
};

/** Number of priority bands (array extents in the stats). */
inline constexpr size_t kNumPriorities = 2;

/** Bound on Stats::completionOrder records (same policy as the
 *  bounded ServiceSamples): recording stops at the cap so
 *  million-request open loops don't grow the stats without limit,
 *  while the `completions` counter and every lastCompletionSeq stay
 *  exact. */
inline constexpr size_t kMaxCompletionRecords = 1024;

/** Per-program quality-of-service contract, fixed at addProgram(). */
struct QosSpec
{
    /** Default class of this program's requests. */
    Priority priority = Priority::Batch;

    /** Model cores reserved for this program alone (0 = none). The
     *  server validates that reservations fit the machine. */
    uint32_t minCores = 0;

    /** Cap on model cores one of this program's batches may occupy,
     *  reserved + shared (0 = no cap beyond the machine size). Must
     *  be >= minCores when both are set. */
    uint32_t maxCores = 0;

    /** Default per-request deadline, relative to submission (0 =
     *  none). A submit may override it per request. */
    std::chrono::microseconds deadline{0};

    /** Rank placement override for this program: nullopt = follow
     *  AsyncServerConfig::placement. Replicate makes the program
     *  resident on every rank (hot); Affinity pins it to one home
     *  rank chosen by registration order (cold). Irrelevant on a
     *  single-rank server. */
    std::optional<Placement> placement;
};

/** Admission outcome of a trySubmit(). */
enum class Admission : uint8_t
{
    Accepted = 0,
    RejectedQueueFull = 1, ///< Bounded queue depth exceeded.
    RejectedDeadline = 2,  ///< Deadline already unmeetable at submit.
};

/** Per-request knobs for trySubmit(). */
struct SubmitOptions
{
    /** Relative deadline from now; 0 = use the program's QosSpec
     *  default. Negative means already missed (rejected). */
    std::chrono::microseconds deadline{0};

    /** Absolute deadline; when set (non-epoch) it wins over
     *  `deadline`. In the past = rejected. */
    std::chrono::steady_clock::time_point deadlineAt{};

    /** Override the program's priority class for this request. */
    std::optional<Priority> priority;
};

/** What a trySubmit() hands back: the admission verdict, and a future
 *  that is valid() only when the request was accepted. */
struct SubmitResult
{
    Admission admission = Admission::Accepted;
    std::future<SimResult> future;

    bool accepted() const { return admission == Admission::Accepted; }
};

/** Serving-side knobs. Simulation results never depend on these. */
struct AsyncServerConfig
{
    /** Model cores *per rank* (the paper's large system deploys 4);
     *  feeds the modeled wall-cycle accounting and is the pool that
     *  per-program reservations partition on each rank. */
    uint32_t cores = 4;

    /** Host-driven ranks in the modeled fleet. 1 (the default)
     *  reproduces the pre-fleet single-machine server exactly. */
    uint32_t ranks = 1;

    /** Host↔rank transfer cost charged per dispatched batch. The
     *  default free model charges 0 cycles, keeping the modeled
     *  wall-cycle accounting byte-identical to pre-fleet behavior.
     *  Never affects per-request SimResults. */
    HostTransferModel transfer{};

    /** Default rank placement of resident programs (a program's
     *  QosSpec::placement overrides it). */
    Placement placement = Placement::Replicate;

    /** Dispatch a program's pending requests once this many have
     *  coalesced, without waiting out the window. */
    size_t maxBatch = 8;

    /** How long the oldest pending request may wait for company
     *  before its batch is dispatched anyway. Zero = dispatch every
     *  request immediately (no coalescing). */
    std::chrono::microseconds batchWindow{200};

    /** Host worker threads executing ready batches; batches of
     *  different (or the same) program run concurrently. */
    uint32_t workers = 1;

    /** Host threads *inside* one BatchMachine dispatch (its
     *  byte-identical worker pool); 1 = sequential per batch. */
    uint32_t hostThreadsPerBatch = 1;

    /** Bound on requests admitted but not yet completed; 0 =
     *  unbounded (the pre-QoS behavior). Beyond it, trySubmit()
     *  returns RejectedQueueFull (backpressure). */
    size_t queueDepth = 0;

    /**
     * Evaluation tier backing the server's service-time predictions
     * (admission control and deadline-lead estimates). A fast tier
     * turns on static wall-cycle predictions, calibrated against
     * observed batch service times (a us-per-kilocycle EWMA);
     * Cycle disables them — historical per-program EWMAs only, the
     * pre-tier behavior.
     */
    EvalFidelity admissionFidelity = EvalFidelity::Analytic;

    /**
     * Reject a deadlined request at admission when the fast-tier
     * predicted service time already exceeds its deadline slack
     * (RejectedDeadline before any queueing). Off by default: the
     * prediction is an estimate, and rejecting on it is a policy the
     * caller must opt into. No effect when admissionFidelity is
     * Cycle or the calibration has not seen a batch yet.
     */
    bool predictiveAdmission = false;
};

/**
 * A multi-program serving front-end over BatchMachine.
 *
 * Thread-safe: submit()/trySubmit()/drain()/stats() may be called
 * from any number of client threads. The destructor drains
 * outstanding requests — every accepted future resolves.
 */
class AsyncBatchServer
{
  public:
    /** Opaque id of a resident program (index, stable for the
     *  server's lifetime). */
    using ProgramHandle = uint32_t;

    using Clock = std::chrono::steady_clock;

    explicit AsyncBatchServer(AsyncServerConfig config = {});
    ~AsyncBatchServer();

    AsyncBatchServer(const AsyncBatchServer &) = delete;
    AsyncBatchServer &operator=(const AsyncBatchServer &) = delete;

    /**
     * Make a compiled program resident and eligible for submit().
     * @param operations Operations per execution for the throughput
     *        accounting; 0 = take program.stats.numOperations.
     *
     * Throws FatalError when `qos` cannot be honored: minCores
     * exceeding the machine, maxCores < minCores, reservations that
     * no longer fit next to the ones already granted, or a
     * reservation that would leave an unreserved resident program
     * with no core to run on.
     */
    ProgramHandle addProgram(CompiledProgram program,
                             uint64_t operations = 0);
    ProgramHandle addProgram(CompiledProgram program, QosSpec qos,
                             uint64_t operations = 0);

    /**
     * Compile-and-load: the cold-submit path. Goes through `cache`
     * when one is given (a warm cache turns the load into a fetch),
     * otherwise runs the real compiler.
     */
    ProgramHandle addProgram(const Dag &dag, const ArchConfig &cfg,
                             const CompileOptions &options = {},
                             ProgramCache *cache = nullptr,
                             QosSpec qos = {});

    /**
     * Submit one request. The future becomes ready when the request's
     * batch has executed; it carries the same SimResult a standalone
     * Machine(prog).run(input) would produce.
     *
     * Throws FatalError on an unknown handle or an input-size
     * mismatch (before enqueueing anything) — and, unlike
     * trySubmit(), also when admission rejects the request (only
     * possible once queueDepth or deadlines are configured).
     */
    std::future<SimResult> submit(ProgramHandle handle,
                                  std::vector<double> input);

    /**
     * Admission-aware submit: never throws for backpressure. On
     * RejectedQueueFull / RejectedDeadline nothing was enqueued and
     * the returned future is invalid. Handle/input-size errors still
     * throw FatalError (caller bugs, not load conditions).
     */
    SubmitResult trySubmit(ProgramHandle handle,
                           std::vector<double> input,
                           const SubmitOptions &options = {});

    /** Flush every pending batch (ignoring the window) and block
     *  until all submitted requests have completed. */
    void drain();

    /** Per-priority-class serving counters. */
    struct ClassStats
    {
        uint64_t submitted = 0;         ///< Accepted by admission.
        uint64_t completed = 0;         ///< Futures resolved.
        uint64_t deadlineHits = 0;      ///< Completed before deadline.
        uint64_t deadlineMisses = 0;    ///< Completed after deadline.
        uint64_t rejectedQueueFull = 0; ///< Backpressure rejections.
        uint64_t rejectedDeadline = 0;  ///< Dead-on-arrival rejections.

        /** 1-based position in the server's global completion order
         *  of this class's most recent completion (0 = none yet).
         *  Recorded under the server lock, so band-scheduling order
         *  is observable without racing the client threads. */
        uint64_t lastCompletionSeq = 0;

        /** Deadline-hit fraction over deadlined completions. */
        double
        deadlineHitRate() const
        {
            uint64_t n = deadlineHits + deadlineMisses;
            return n ? static_cast<double>(deadlineHits) /
                           static_cast<double>(n)
                     : 1.0;
        }
    };

    /** Aggregate serving counters since construction. */
    struct Stats
    {
        uint64_t requests = 0;         ///< Submitted (accepted).
        uint64_t batches = 0;          ///< Dispatched.
        uint64_t maxBatchObserved = 0; ///< Largest dispatched batch.
        uint64_t sizeDispatches = 0;   ///< Batches cut by maxBatch.
        uint64_t windowDispatches = 0; ///< Batches cut by the window.
        uint64_t drainDispatches = 0;  ///< Batches cut by drain().
        uint64_t deadlineDispatches = 0; ///< Cut early for a deadline.
        uint64_t completions = 0;       ///< Resolved requests (drives
                                        ///< lastCompletionSeq).
        uint64_t modeledWallCycles = 0; ///< Summed over batches.
        uint64_t totalOperations = 0;   ///< Summed over batches.

        /** Modeled host↔rank transfer cycles, summed over batches
         *  (0 under the default free transfer model). Accounted
         *  separately from modeledWallCycles. */
        uint64_t transferCycles = 0;

        /** Per-rank dispatch accounting (size = config.ranks). */
        struct RankStats
        {
            uint64_t batches = 0;        ///< Dispatched to this rank.
            uint64_t requests = 0;       ///< Summed batch sizes.
            uint64_t wallCycles = 0;     ///< Modeled compute cycles.
            uint64_t transferCycles = 0; ///< Modeled link cycles.
        };
        std::vector<RankStats> perRank;

        /** One completion, as recorded under the server lock. */
        struct CompletionRecord
        {
            uint64_t seq = 0;  ///< 1-based global completion order.
            uint32_t rank = 0; ///< Rank the batch ran on.
            Priority priority = Priority::Batch;
        };

        /** Completion-order observable, bounded by
         *  kMaxCompletionRecords (recording stops at the cap;
         *  `completions` and lastCompletionSeq stay exact). */
        std::vector<CompletionRecord> completionOrder;

        uint64_t servicePredictions = 0; ///< Fast-tier predictions made.
        uint64_t admissionPredictions = 0; ///< Consulted at admission.
        uint64_t predictedDeadlineRejections = 0; ///< Rejected on one.

        /** Current us-per-kilocycle calibration (EWMA of observed
         *  batch service time over modeled wall kilocycles); 0 until
         *  the first successful batch. */
        double usPerKilocycle = 0;

        /** One fast-tier service prediction vs. what the batch then
         *  actually took. predictedUs is 0 while uncalibrated. */
        struct ServiceSample
        {
            double predictedUs = 0;
            double actualUs = 0;
            uint64_t wallCycles = 0;
            uint64_t batchSize = 0;
        };

        /** Dispatch-order samples (bounded; recording stops at the
         *  cap). The measurable record of admission-estimate error —
         *  serve_latency turns it into a bench series. */
        std::vector<ServiceSample> serviceSamples;

        /** Indexed by static_cast<size_t>(Priority). */
        std::array<ClassStats, kNumPriorities> perClass{};

        const ClassStats &
        forClass(Priority p) const
        {
            return perClass[static_cast<size_t>(p)];
        }

        /** Mean dispatched batch size (after a drain, every submitted
         *  request has been dispatched). */
        double
        meanBatch() const
        {
            return batches ? static_cast<double>(requests) /
                                 static_cast<double>(batches)
                           : 0.0;
        }
    };
    Stats stats() const;

    /** Number of resident programs. */
    size_t numPrograms() const;

    /** The QoS contract a program was registered with. */
    QosSpec programQos(ProgramHandle handle) const;

  private:
    struct Request
    {
        std::vector<double> input;
        std::promise<SimResult> promise;
        Clock::time_point arrival;
        Clock::time_point deadline{};
        bool hasDeadline = false;
        Priority priority = Priority::Batch;
    };

    /** One resident program, its QoS contract, and one coalescing
     *  queue per priority class (classes never share a batch).
     *  Requests are appended in arrival order, so front() is always
     *  oldest. */
    struct Resident
    {
        CompiledProgram prog;
        QosSpec qos;
        uint32_t index = 0;       ///< Position in `programs`.
        uint64_t operations = 0;
        size_t numInputs = 0;
        int64_t ewmaBatchUs = 0;  ///< Observed batch service time.
        bool replicated = true;   ///< Resolved placement policy.
        uint32_t homeRank = 0;    ///< Affinity home (index % ranks).
        std::array<std::vector<Request>, kNumPriorities> pending;
    };

    /** A cut batch waiting for a worker and for model cores. */
    struct Batch
    {
        Resident *resident = nullptr;
        std::vector<Request> requests;
        Priority priority = Priority::Batch;
        Clock::time_point deadline{}; ///< Earliest request deadline.
        bool hasDeadline = false;
        uint64_t seq = 0; ///< Cut order (FIFO tiebreak within a band).
        uint32_t rank = 0; ///< Target rank, chosen at cut time.
    };

    void batcherMain();
    void workerMain();

    /** Move up to maxBatch requests of `r`'s class-`cls` queue onto
     *  the ready queue; `reason` is the dispatch counter to bump.
     *  Lock held. */
    void cutBatchLocked(Resident &r, size_t cls, uint64_t &reason);

    /** EDF-within-priority-bands pick over `ready`, restricted to
     *  batches that can acquire at least one model core right now;
     *  SIZE_MAX when none is runnable. Lock held. */
    size_t pickRunnableLocked() const;

    /** Rank a freshly cut batch of `r` targets: the home rank for a
     *  pinned program, the rank with the fewest busy cores (ties to
     *  the lowest id) for a replicated one. Lock held. */
    uint32_t chooseRankLocked(const Resident &r) const;

    /** Grant `b` its model cores on its target rank: the program's
     *  free reserved cores first, then free shared cores, capped by
     *  QosSpec::maxCores and the batch size. Core ids are global
     *  (rank * cores + c). Marks them busy. Lock held. */
    CoreSet acquireCoresLocked(const Batch &b);

    /** Inverse of acquireCoresLocked(). Lock held. */
    void releaseCoresLocked(const CoreSet &granted);

    /** True when the config enables fast-tier service predictions. */
    bool fastPredictions() const;

    /** Fast-tier predicted service time (us) of a `runs` x `cores`
     *  batch of `r`'s program; 0 while uncalibrated or when
     *  predictions are disabled. Lock held. */
    double predictedServiceUsLocked(const Resident &r, uint64_t runs,
                                    uint32_t cores) const;

    AsyncServerConfig config;

    mutable std::mutex mutex;
    std::condition_variable batcherCv; ///< submit/drain -> batcher.
    std::condition_variable workerCv;  ///< batcher/cores -> workers.
    std::condition_variable idleCv;    ///< workers -> drain().

    /** Resident programs; deque keeps addresses stable while growing. */
    std::deque<Resident> programs;

    /** Static core partition over all ranks' cores (global core id =
     *  rank * config.cores + c): owning program index, or -1 =
     *  shared. */
    std::vector<int32_t> coreReservedBy;
    /** Dynamic occupancy: true while a dispatched batch holds it. */
    std::vector<bool> coreBusy;
    /** Sum of granted minCores, per rank (a replicated program
     *  reserves on every rank, a pinned one only at home). */
    std::vector<uint32_t> reservedPerRank;

    std::vector<Batch> ready;
    uint64_t nextBatchSeq = 0;
    uint64_t outstanding = 0; ///< Accepted but not yet completed.
    uint32_t drainers = 0;    ///< drain() calls in progress.
    bool stopping = false;    ///< Destructor: threads exit when idle.
    Stats counters;

    std::thread batcher;
    std::vector<std::thread> pool;
};

} // namespace dpu

#endif // DPU_SIM_ASYNC_HH
