#include "sim/machine.hh"

#include <cmath>
#include <set>
#include <string>

#include "arch/interconnect.hh"
#include "dag/binarize.hh"
#include "dag/dag.hh"
#include "dag/eval.hh"
#include "support/logging.hh"

namespace dpu {

namespace {

/** One register: a value plus validity and an in-flight clock. */
struct Reg
{
    bool valid = false;
    double value = 0.0;
    uint64_t arrivesAt = 0; ///< First cycle the data may be read.
};

class Engine
{
  public:
    Engine(const CompiledProgram &prog, const SimOptions &opts)
        : prog(prog), opts(opts), cfg(prog.cfg), lay(cfg)
    {}

    SimResult
    run(const std::vector<double> &inputs)
    {
        initMemory(inputs);
        banks.assign(cfg.banks, std::vector<Reg>(cfg.regsPerBank));
        // A zero interval would mean "sample every cycle modulo
        // nothing" — treat it as 1 instead of dividing by zero.
        stats.traceStride = opts.traceOccupancy
                                ? std::max<uint64_t>(opts.traceInterval, 1)
                                : 0;

        for (now = 0; now < prog.instructions.size(); ++now)
            issue(prog.instructions[now]);

        // Let the pipeline drain.
        stats.cycles = prog.instructions.size() + cfg.pipelineStages();

        // Host↔rank transfer for this run: one dispatch moving the
        // input vector down and the output vector back. Statically
        // determined by the program, so every evaluator tier can
        // reproduce it exactly; 0 under the default free model.
        stats.transferCycles =
            opts.transfer.batchCycles(hostTransferBytes(prog), 1);

        // Every register must have been freed by a final read; a
        // leak means the compiler lost track of a value.
        for (uint32_t b = 0; b < cfg.banks; ++b)
            for (uint32_t r = 0; r < cfg.regsPerBank; ++r)
                dpu_assert(!banks[b][r].valid, "register leak at end");

        SimResult res;
        res.stats = std::move(stats);
        for (const auto &o : prog.outputs)
            res.outputs.push_back(mem[o.row][o.col]);
        return res;
    }

  private:
    void
    initMemory(const std::vector<double> &inputs)
    {
        dpu_assert(inputs.size() == prog.inputLocation.size(),
                   "wrong number of input values");
        mem.assign(prog.numRows, std::vector<double>(cfg.banks, 0.0));
        for (size_t k = 0; k < inputs.size(); ++k) {
            auto [row, col] = prog.inputLocation[k];
            mem[row][col] = inputs[k];
        }
    }

    /** Read a register, enforcing validity and pipeline timing. */
    double
    readReg(uint32_t bank, uint32_t addr)
    {
        dpu_assert(bank < cfg.banks && addr < cfg.regsPerBank,
                   "register index out of range");
        const Reg &r = banks[bank][addr];
        dpu_assert(r.valid, "read of invalid register");
        dpu_assert(r.arrivesAt <= now,
                   "pipeline hazard: data still in flight");
        return r.value;
    }

    /** Clear a valid bit (valid_rst semantics). */
    void
    freeReg(uint32_t bank, uint32_t addr)
    {
        Reg &r = banks[bank][addr];
        dpu_assert(r.valid, "valid_rst of an empty register");
        r.valid = false;
    }

    /** Automatic write: priority-encode the lowest free address. */
    void
    writeReg(uint32_t bank, double value, uint32_t latency)
    {
        auto &regs = banks[bank];
        for (uint32_t a = 0; a < cfg.regsPerBank; ++a) {
            if (!regs[a].valid) {
                regs[a] = {true, value, now + latency};
                ++stats.bankWrites;
                return;
            }
        }
        dpu_panic("write to a full register bank");
    }

    void
    sampleOccupancy()
    {
        if (!opts.traceOccupancy || now % stats.traceStride)
            return;
        std::vector<uint32_t> row(cfg.banks);
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            uint32_t live = 0;
            for (const Reg &r : banks[b])
                live += r.valid;
            row[b] = live;
        }
        stats.occupancyTrace.push_back(std::move(row));
        if (opts.maxTraceSamples &&
            stats.occupancyTrace.size() >= opts.maxTraceSamples) {
            // Stride-doubling decimation: drop the odd-index rows
            // and sample half as often from here on, so a run of any
            // length keeps a whole-run trace within the bound
            // (instead of the trace growing without limit, or
            // truncation losing the tail).
            auto &trace = stats.occupancyTrace;
            for (size_t i = 1; 2 * i < trace.size(); ++i)
                trace[i] = std::move(trace[2 * i]);
            trace.resize((trace.size() + 1) / 2);
            stats.traceStride *= 2;
        }
    }

    void
    trackPeak()
    {
        uint64_t live = 0;
        for (uint32_t b = 0; b < cfg.banks; ++b)
            for (const Reg &r : banks[b])
                live += r.valid;
        stats.peakLiveRegisters = std::max(stats.peakLiveRegisters, live);
    }

    void
    issue(const Instruction &instr)
    {
        ++stats.kindCount[static_cast<size_t>(kindOf(instr))];
        stats.instrBitsFetched += lay.lengthBits(instr);
        sampleOccupancy();
        std::visit([&](const auto &in) { exec(in); }, instr);
        trackPeak();
    }

    void exec(const NopInstr &) {}

    void
    exec(const LoadInstr &in)
    {
        dpu_assert(in.memRow < mem.size(), "load row out of range");
        ++stats.memReads;
        for (uint32_t b = 0; b < cfg.banks; ++b)
            if (in.enable[b])
                writeReg(b, mem[in.memRow][b], 2);
    }

    void
    exec(const StoreInstr &in)
    {
        dpu_assert(in.memRow < mem.size(), "store row out of range");
        ++stats.memWrites;
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.enable[b])
                continue;
            double v = readReg(b, in.readAddr[b]);
            ++stats.bankReads;
            freeReg(b, in.readAddr[b]); // stores are final reads
            mem[in.memRow][b] = v;
        }
    }

    void
    exec(const Store4Instr &in)
    {
        dpu_assert(in.memRow < mem.size(), "store_4 row out of range");
        ++stats.memWrites;
        for (const auto &s : in.slots) {
            if (!s.active)
                continue;
            double v = readReg(s.bank, s.addr);
            ++stats.bankReads;
            freeReg(s.bank, s.addr);
            mem[in.memRow][s.bank] = v;
        }
    }

    void
    exec(const Copy4Instr &in)
    {
        // Reads first, then valid_rst, then the automatic writes —
        // the issue-stage ordering contract shared with the compiler.
        double vals[4];
        for (size_t k = 0; k < 4; ++k) {
            if (!in.slots[k].active)
                continue;
            vals[k] = readReg(in.slots[k].srcBank, in.slots[k].srcAddr);
            ++stats.bankReads;
            ++stats.crossbarTransfers;
        }
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.validRst[b])
                continue;
            // valid_rst frees the register this copy read in bank b.
            for (const auto &s : in.slots)
                if (s.active && s.srcBank == b)
                    freeReg(b, s.srcAddr);
        }
        for (size_t k = 0; k < 4; ++k)
            if (in.slots[k].active)
                writeReg(in.slots[k].dstBank, vals[k], 2);
    }

    void
    exec(const ExecInstr &in)
    {
        // 1. Gather tree input ports through the crossbar. Only ports
        // an active PE consumes are read (an idle port's select is a
        // don't-care and may point at garbage).
        std::vector<double> port_val(cfg.banks, 0.0);
        std::set<uint32_t> banks_read;
        auto read_port = [&](uint32_t tree, uint32_t local) {
            uint32_t port = cfg.portBank(tree, local);
            uint32_t bank = in.inputSel[port];
            dpu_assert(bank < cfg.banks, "bad crossbar select");
            port_val[port] = readReg(bank, in.readAddr[bank]);
            banks_read.insert(bank);
            ++stats.crossbarTransfers;
        };

        // 2. Evaluate the trees layer by layer.
        // peOut[pe] = output value of each active PE.
        std::vector<double> pe_out(cfg.numPes(), 0.0);
        for (uint32_t t = 0; t < cfg.trees(); ++t) {
            for (uint32_t l = 1; l <= cfg.depth; ++l) {
                for (uint32_t i = 0; i < cfg.pesInLayer(l); ++i) {
                    uint32_t pe = cfg.peId({t, l, i});
                    PeOp op = in.peOp[pe];
                    if (op == PeOp::Nop)
                        continue;
                    double a, b;
                    auto input_of = [&](uint32_t side) -> double {
                        if (l == 1) {
                            read_port(t, i * 2 + side);
                            return port_val[cfg.portBank(t, i * 2 + side)];
                        }
                        uint32_t child = cfg.peId({t, l - 1,
                                                   i * 2 + side});
                        dpu_assert(in.peOp[child] != PeOp::Nop,
                                   "active PE fed by idle child");
                        return pe_out[child];
                    };
                    switch (op) {
                      case PeOp::Add:
                        a = input_of(0);
                        b = input_of(1);
                        pe_out[pe] = a + b;
                        ++stats.peOperations;
                        break;
                      case PeOp::Mul:
                        a = input_of(0);
                        b = input_of(1);
                        pe_out[pe] = a * b;
                        ++stats.peOperations;
                        break;
                      case PeOp::PassA:
                        pe_out[pe] = input_of(0);
                        ++stats.pePassThroughs;
                        break;
                      case PeOp::PassB:
                        pe_out[pe] = input_of(1);
                        ++stats.pePassThroughs;
                        break;
                      case PeOp::Nop:
                        break;
                    }
                }
            }
        }
        stats.bankReads += banks_read.size();

        // 3. valid_rst lanes free the registers read this cycle.
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.validRst[b])
                continue;
            dpu_assert(banks_read.count(b),
                       "valid_rst on a bank this exec did not read");
            freeReg(b, in.readAddr[b]);
        }

        // 4. Output interconnect: one write per enabled bank, from
        // the PE the bank's output mux selects.
        for (uint32_t b = 0; b < cfg.banks; ++b) {
            if (!in.writeEnable[b])
                continue;
            auto writers = writingPes(cfg, b);
            dpu_assert(in.outputSel[b] < writers.size(),
                       "output mux select out of range");
            uint32_t pe = writers[in.outputSel[b]];
            dpu_assert(in.peOp[pe] != PeOp::Nop,
                       "store-back from an idle PE");
            writeReg(b, pe_out[pe], cfg.pipelineStages());
        }
    }

    const CompiledProgram &prog;
    const SimOptions &opts;
    const ArchConfig &cfg;
    IsaLayout lay;

    std::vector<std::vector<Reg>> banks;
    std::vector<std::vector<double>> mem;
    SimStats stats;
    uint64_t now = 0;
};

} // namespace

CoreSet
CoreSet::firstN(uint32_t n)
{
    CoreSet s;
    s.ids.resize(n);
    for (uint32_t k = 0; k < n; ++k)
        s.ids[k] = k;
    return s;
}

void
CoreSet::validate() const
{
    for (size_t i = 0; i < ids.size(); ++i)
        for (size_t j = i + 1; j < ids.size(); ++j)
            dpu_assert(ids[i] != ids[j],
                       "core id " + std::to_string(ids[i]) +
                           " appears twice in a CoreSet");
}

Machine::Machine(const CompiledProgram &program, SimOptions options)
    : prog(program), opts(options)
{
    prog.cfg.check();
}

SimResult
Machine::run(const std::vector<double> &input_values)
{
    return Engine(prog, opts).run(input_values);
}

SimResult
runAndCheck(const CompiledProgram &program, const Dag &dag,
            const std::vector<double> &input_values, SimOptions options)
{
    Machine m(program, options);
    SimResult res = m.run(input_values);

    // Reference: evaluate the same binarized DAG the compiler saw.
    BinarizeResult bin = binarize(dag);
    auto ref = evaluate(bin.dag, input_values);

    dpu_assert(res.outputs.size() == program.outputs.size(),
               "output count mismatch");
    for (size_t k = 0; k < program.outputs.size(); ++k) {
        NodeId node = program.outputs[k].node;
        double want = ref[node];
        double got = res.outputs[k];
        double tol = 1e-12 * std::max(1.0, std::abs(want));
        if (std::abs(got - want) > tol) {
            dpu_panic("functional mismatch at output node " +
                      std::to_string(node) + ": simulator " +
                      std::to_string(got) + " vs reference " +
                      std::to_string(want));
        }
    }
    return res;
}

} // namespace dpu
