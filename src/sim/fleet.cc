#include "sim/fleet.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"

namespace dpu {

namespace {

/** Nearest-rank percentile over an unsorted latency sample. */
double
percentileCycles(std::vector<uint64_t> &lat, double q)
{
    if (lat.empty())
        return 0;
    size_t k = (size_t)((double)(lat.size() - 1) * q + 0.5);
    if (k >= lat.size())
        k = lat.size() - 1;
    std::nth_element(lat.begin(),
                     lat.begin() + (ptrdiff_t)k, lat.end());
    return (double)lat[(size_t)k];
}

/** One (rank, workload) coalescing slot. */
struct Slot
{
    std::vector<uint64_t> arrivals; ///< Arrival cycles, oldest first.
    uint64_t generation = 0; ///< Invalidates stale window timers.
};

} // namespace

FleetSimReport
simulateFleet(const FleetSimOptions &options,
              const std::vector<FleetWorkloadModel> &mix)
{
    options.topology.check();
    dpu_assert(!mix.empty(), "fleet mix needs at least one workload");
    double total_weight = 0;
    double mean_run = 0;
    for (const FleetWorkloadModel &w : mix) {
        dpu_assert(w.runCycles >= 1,
                   "fleet workload needs runCycles >= 1");
        dpu_assert(w.weight > 0, "fleet workload weight must be > 0");
        total_weight += w.weight;
        mean_run += w.weight * (double)w.runCycles;
    }
    mean_run /= total_weight;
    dpu_assert(options.load > 0, "fleet load must be > 0");
    dpu_assert(options.requests >= 1, "fleet needs >= 1 request");
    size_t max_batch = options.maxBatch < 1 ? 1 : options.maxBatch;

    const uint32_t ranks = options.topology.ranks;
    const uint32_t cores = options.topology.coresPerRank;

    // Offered load: arrivals per cycle = load x fleet retire rate.
    double capacity =
        (double)options.topology.totalCores() / mean_run;
    double mean_gap = 1.0 / (options.load * capacity);

    // Per-rank state: a serialized host link, per-core free times,
    // and a running assigned-compute counter (the replicate policy's
    // least-loaded signal — monotone, so placement is deterministic).
    std::vector<uint64_t> link_free(ranks, 0);
    std::vector<std::vector<uint64_t>> core_free(
        ranks, std::vector<uint64_t>(cores, 0));
    std::vector<uint64_t> assigned(ranks, 0);

    FleetSimReport rep;
    rep.perRank.resize(ranks);
    std::vector<std::vector<uint64_t>> latencies(ranks);

    std::vector<Slot> slots((size_t)ranks * mix.size());
    auto slot_at = [&](uint32_t rank, size_t w) -> Slot & {
        return slots[(size_t)rank * mix.size() + w];
    };

    // Window expirations, processed in cut-time order so the host
    // link sees causally ordered dispatches. (cut, rank, w, gen).
    using Timer = std::tuple<uint64_t, uint32_t, size_t, uint64_t>;
    std::priority_queue<Timer, std::vector<Timer>,
                        std::greater<Timer>> timers;

    uint64_t horizon = 0;

    // Dispatch a slot's batch at `cut`: the host link serializes the
    // payload, then min(cores, runs) lockstep cores run
    // ceil(runs/granted) programs back to back (BatchMachine's wall
    // clock), and every request in the batch completes together.
    auto dispatch = [&](uint32_t rank, size_t w, uint64_t cut) {
        Slot &slot = slot_at(rank, w);
        const FleetWorkloadModel &wl = mix[w];
        size_t runs = slot.arrivals.size();

        uint64_t xfer =
            options.transfer.batchCycles(wl.hostBytes, runs);
        uint64_t link_start = std::max(cut, link_free[rank]);
        uint64_t link_done = link_start + xfer;
        link_free[rank] = link_done;

        size_t granted = std::min<size_t>(cores, runs);
        // The `granted` earliest-free cores of the rank, ties to the
        // lowest core id.
        std::vector<uint32_t> order(cores);
        for (uint32_t c = 0; c < cores; ++c)
            order[c] = c;
        std::partial_sort(
            order.begin(), order.begin() + (ptrdiff_t)granted,
            order.end(), [&](uint32_t a, uint32_t b) {
                return std::tie(core_free[rank][a], a) <
                       std::tie(core_free[rank][b], b);
            });
        uint64_t start = link_done;
        for (size_t g = 0; g < granted; ++g)
            start = std::max(start, core_free[rank][order[g]]);
        uint64_t per_core = (runs + granted - 1) / granted;
        uint64_t completion = start + per_core * wl.runCycles;
        for (size_t g = 0; g < granted; ++g)
            core_free[rank][order[g]] = completion;

        FleetRankReport &rs = rep.perRank[rank];
        ++rs.batches;
        rs.requests += runs;
        rs.computeCycles += runs * wl.runCycles;
        rs.transferCycles += xfer;
        for (uint64_t arrival : slot.arrivals)
            latencies[rank].push_back(completion - arrival);
        horizon = std::max(horizon, completion);

        slot.arrivals.clear();
        ++slot.generation;
    };

    auto flush_due = [&](uint64_t now) {
        while (!timers.empty() && std::get<0>(timers.top()) <= now) {
            auto [cut, rank, w, gen] = timers.top();
            timers.pop();
            if (slot_at(rank, w).generation != gen)
                continue; // batch already cut (size or earlier timer)
            dispatch(rank, w, cut);
        }
    };

    // The seeded open loop, replayed in virtual cycle time.
    Rng rng(options.seed);
    double now_f = 0;
    for (uint64_t n = 0; n < options.requests; ++n) {
        now_f += -std::log(1.0 - rng.uniform()) * mean_gap;
        uint64_t now = (uint64_t)now_f;

        // Weighted workload pick.
        double u = rng.uniform() * total_weight;
        size_t w = 0;
        for (; w + 1 < mix.size(); ++w) {
            u -= mix[w].weight;
            if (u <= 0)
                break;
        }

        flush_due(now);

        // Placement, as in AsyncBatchServer: affinity pins workload
        // w to its home rank; replicate targets the rank with the
        // least compute assigned so far (ties to the lowest id).
        uint32_t rank;
        if (options.placement == Placement::Affinity) {
            rank = (uint32_t)(w % ranks);
        } else {
            rank = 0;
            for (uint32_t r = 1; r < ranks; ++r)
                if (assigned[r] < assigned[rank])
                    rank = r;
        }
        assigned[rank] += mix[w].runCycles;

        Slot &slot = slot_at(rank, w);
        if (slot.arrivals.empty())
            timers.emplace(now + options.windowCycles, rank, w,
                           slot.generation);
        slot.arrivals.push_back(now);
        if (slot.arrivals.size() >= max_batch)
            dispatch(rank, w, now);
    }

    // Drain: flush every remaining window.
    flush_due(UINT64_MAX - 1);

    // Fold the report.
    std::vector<uint64_t> all;
    all.reserve(options.requests);
    for (uint32_t r = 0; r < ranks; ++r) {
        FleetRankReport &rs = rep.perRank[r];
        rep.requests += rs.requests;
        rep.batches += rs.batches;
        rep.computeCycles += rs.computeCycles;
        rep.transferCycles += rs.transferCycles;
        uint64_t busy = rs.computeCycles + rs.transferCycles;
        rs.utilization = horizon
            ? (double)rs.computeCycles / ((double)cores * horizon)
            : 0;
        rs.transferOverhead =
            busy ? (double)rs.transferCycles / (double)busy : 0;
        rs.p50Cycles = percentileCycles(latencies[r], 0.50);
        rs.p95Cycles = percentileCycles(latencies[r], 0.95);
        rs.p99Cycles = percentileCycles(latencies[r], 0.99);
        all.insert(all.end(), latencies[r].begin(),
                   latencies[r].end());
    }
    rep.horizonCycles = horizon;
    rep.meanBatch =
        rep.batches ? (double)rep.requests / (double)rep.batches : 0;
    uint64_t fleet_busy = rep.computeCycles + rep.transferCycles;
    rep.transferOverhead = fleet_busy
        ? (double)rep.transferCycles / (double)fleet_busy
        : 0;
    rep.p50Cycles = percentileCycles(all, 0.50);
    rep.p95Cycles = percentileCycles(all, 0.95);
    rep.p99Cycles = percentileCycles(all, 0.99);
    return rep;
}

} // namespace dpu
