/**
 * @file
 * Cycle-accurate DPU-v2 simulator (substitute for the paper's RTL +
 * Synopsys VCS flow; see DESIGN.md).
 *
 * Models, per cycle: instruction issue (one per cycle — the dense
 * packing + aligning shifter of fig. 7 makes fetch stall-free), bank
 * reads with independent addresses, the input crossbar, the PE trees
 * with their D+1-stage pipeline, the restricted output interconnect,
 * automatic write-address generation via per-register valid bits
 * (fig. 5(d)), and the vector load/store path to data memory.
 *
 * The simulator *checks* rather than tolerates hazards: reading a
 * register whose data is still in flight, reading an invalid
 * register, or writing a full bank is a panic — the compiler is
 * required to produce hazard-free code, and the simulator is the
 * instrument that proves it.
 */

#ifndef DPU_SIM_MACHINE_HH
#define DPU_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "arch/isa.hh"
#include "arch/topology.hh"
#include "compiler/program.hh"

namespace dpu {

/** Bytes one run moves across the host↔rank boundary: the input
 *  vector down plus the output vector back, 8 bytes per value. */
inline uint64_t
hostTransferBytes(const CompiledProgram &prog)
{
    return 8ull *
           ((uint64_t)prog.inputLocation.size() + prog.outputs.size());
}

/** Event counts accumulated during simulation (feed the energy model). */
struct SimStats
{
    uint64_t cycles = 0;
    std::array<uint64_t, 6> kindCount{}; ///< Issued, by InstrKind.

    uint64_t bankReads = 0;      ///< Register-bank read accesses.
    uint64_t bankWrites = 0;     ///< Register-bank write accesses.
    uint64_t peOperations = 0;   ///< Add/Mul ops executed (incl. replicas).
    uint64_t pePassThroughs = 0; ///< Pass ops executed.
    uint64_t crossbarTransfers = 0; ///< Words moved through the input net.
    uint64_t memReads = 0;       ///< Data-memory row reads.
    uint64_t memWrites = 0;      ///< Data-memory row writes.
    uint64_t instrBitsFetched = 0; ///< Instruction-memory traffic.

    /** Peak over cycles of total live registers. */
    uint64_t peakLiveRegisters = 0;

    /** Per-bank occupancy trace, sampled every `traceStride` cycles
     *  when tracing is enabled (fig. 10(c,d)); bounded by
     *  SimOptions::maxTraceSamples via stride-doubling decimation. */
    std::vector<std::vector<uint32_t>> occupancyTrace;

    /** Effective sampling stride of occupancyTrace, in cycles:
     *  starts at SimOptions::traceInterval and doubles on every
     *  decimation. 0 when tracing was off. Sample i was taken at
     *  cycle i * traceStride. */
    uint64_t traceStride = 0;

    /** Modeled host↔rank transfer cycles (SimOptions::transfer),
     *  accounted separately from the compute `cycles` above. 0 under
     *  the default free transfer model. */
    uint64_t transferCycles = 0;
};

/** Simulation options. */
struct SimOptions
{
    bool traceOccupancy = false;
    uint32_t traceInterval = 16;

    /** Upper bound on occupancyTrace rows. When the trace fills up,
     *  every other row is dropped and the sampling stride doubles,
     *  so arbitrarily long runs keep a whole-run trace in bounded
     *  memory. 0 = unbounded (the historical behavior). */
    uint32_t maxTraceSamples = 4096;

    /** Host↔rank transfer cost charged per run (one dispatch moving
     *  one input/output vector pair). The default model is free, so
     *  stats stay byte-identical to the pre-fleet simulator. */
    HostTransferModel transfer{};
};

/** Result of a run: per-node output values, in program.outputs order. */
struct SimResult
{
    std::vector<double> outputs;
    SimStats stats;
};

/**
 * An explicit subset of the modeled machine's cores, identified by
 * core id. BatchMachine historically took only a core *count*; the
 * serving side partitions the modeled cores between resident programs
 * (per-program reservations), so a batch must be able to run on, say,
 * cores {2, 5} while another occupies {0, 1, 3, 4}. Core identity
 * never reaches the per-input simulation — a Machine models one core
 * regardless of its id — so it affects only the lockstep wall-clock
 * accounting and the occupancy attribution.
 */
struct CoreSet
{
    /** Member core ids; must be unique. Order is the round-robin
     *  slicing order. */
    std::vector<uint32_t> ids;

    /** The conventional contiguous set {0, 1, ..., n-1}. */
    static CoreSet firstN(uint32_t n);

    size_t count() const { return ids.size(); }
    bool empty() const { return ids.empty(); }

    /** Panic on duplicate ids (a double-booked model core). */
    void validate() const;
};

/**
 * A dispatch target in a fleet: a rank plus a set of that rank's
 * cores. Generalizes CoreSet — a RankSet on rank 0 with the same
 * cores behaves exactly like the bare CoreSet. Rank identity, like
 * core identity, never reaches the per-input simulation; it selects
 * which host link the transfer model charges and labels the
 * accounting.
 */
struct RankSet
{
    uint32_t rank = 0; ///< owning rank id
    CoreSet cores;     ///< cores of that rank

    /** The conventional single-rank set: rank 0, cores 0..n-1. */
    static RankSet
    firstN(uint32_t n)
    {
        return RankSet{0, CoreSet::firstN(n)};
    }

    size_t count() const { return cores.count(); }
    bool empty() const { return cores.empty(); }

    /** Panic on duplicate core ids within the rank. */
    void validate() const { cores.validate(); }
};

/** The machine. */
class Machine
{
  public:
    explicit Machine(const CompiledProgram &program,
                     SimOptions options = {});

    /**
     * Execute the program on one input vector (one value per DAG
     * input, in input-id order — same convention as dpu::evaluate).
     */
    SimResult run(const std::vector<double> &input_values);

  private:
    const CompiledProgram &prog;
    SimOptions opts;
};

/**
 * Convenience: simulate and compare against the golden evaluator.
 * Panics (with a diagnostic) on any mismatch beyond tolerance.
 * @return the simulation result.
 */
class Dag;
SimResult runAndCheck(const CompiledProgram &program, const Dag &dag,
                      const std::vector<double> &input_values,
                      SimOptions options = {});

} // namespace dpu

#endif // DPU_SIM_MACHINE_HH
