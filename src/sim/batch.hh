/**
 * @file
 * Multi-core batch execution (paper §V-C2): DPU-v2 (L) deploys four
 * cores that "can either perform batch execution (used for
 * benchmarking) or execute different DAGs". A BatchMachine runs one
 * compiled program over a batch of input vectors across N model
 * cores and reports aggregate throughput-relevant statistics.
 *
 * The *model* core count sets the round-robin slicing and the wall
 * clock of the simulated machine; independently, the per-input
 * simulations can be spread over a pool of *host* std::thread
 * workers (`threads`). Host threading changes only how fast the
 * simulation itself runs: every input is simulated by a private
 * Machine whose result lands in its submission-order slot, and the
 * cycle accounting is folded afterwards in that order, so the
 * BatchResult is byte-identical for any thread count.
 */

#ifndef DPU_SIM_BATCH_HH
#define DPU_SIM_BATCH_HH

#include <vector>

#include "sim/machine.hh"

namespace dpu {

/** Aggregate outcome of a batch run. */
struct BatchResult
{
    /** Per-input results, in submission order. */
    std::vector<SimResult> runs;

    /** Wall cycles: cores run in lockstep over round-robin slices. */
    uint64_t wallCycles = 0;

    /** Total operations executed across the batch. */
    uint64_t totalOperations = 0;

    /** Model core ids the batch ran on ({0..n-1} for the count
     *  constructor) and the cycles each accumulated; wallCycles is
     *  the maximum of perCoreCycles. */
    std::vector<uint32_t> coreIds;
    std::vector<uint64_t> perCoreCycles;

    /** Rank the batch was dispatched to (0 unless a RankSet was
     *  used). */
    uint32_t rank = 0;

    /** Host↔rank transfer cycles of this dispatch: one fixed
     *  dispatch cost plus the serialized input/output payload of
     *  every run. Accounted separately from the compute wallCycles;
     *  0 under the default free transfer model. */
    uint64_t transferCycles = 0;

    /** Transfer-inclusive wall clock of the dispatch: the host link
     *  serializes before the cores compute. */
    uint64_t
    totalWallCycles() const
    {
        return wallCycles + transferCycles;
    }

    /** Aggregate throughput at a clock frequency. */
    double
    throughputGops(double frequency_hz) const
    {
        return wallCycles
            ? static_cast<double>(totalOperations) /
                  (static_cast<double>(wallCycles) / frequency_hz) *
                  1e-9
            : 0.0;
    }
};

/** N identical cores executing one program over a batch of inputs. */
class BatchMachine
{
  public:
    /**
     * @param program Compiled program (shared by all cores — the
     *        static-DAG scenario).
     * @param cores Model core count (the paper's large system uses
     *        4); sets the round-robin slicing and the wall clock.
     * @param operations Operations per program execution (for
     *        throughput accounting).
     * @param threads Host worker threads simulating the batch
     *        (default 1 = sequential). Does not affect the result.
     */
    BatchMachine(const CompiledProgram &program, uint32_t cores,
                 uint64_t operations, uint32_t threads = 1);

    /**
     * Core-subset dispatch: run on an explicit set of model cores
     * (per-program core partitioning on the serving side). The set's
     * size plays the role of `cores` above; the ids only label the
     * wall-clock accounting. Per-input SimResults are identical for
     * any core set of the same program.
     */
    BatchMachine(const CompiledProgram &program, CoreSet core_set,
                 uint64_t operations, uint32_t threads = 1);

    /**
     * Fleet dispatch: run on a (rank, cores) target, charging the
     * host↔rank transfer model for the dispatch. Per-input
     * SimResults stay byte-identical to the single-machine path —
     * the transfer cost is batch-level accounting only
     * (BatchResult::transferCycles / totalWallCycles()).
     */
    BatchMachine(const CompiledProgram &program, RankSet rank_set,
                 uint64_t operations, uint32_t threads = 1,
                 HostTransferModel transfer_model = {});

    /** Run every input vector; inputs are dealt round-robin. */
    BatchResult run(const std::vector<std::vector<double>> &inputs);

  private:
    const CompiledProgram &prog;
    CoreSet cores;
    uint32_t rank = 0;
    HostTransferModel transfer{};
    uint64_t operations;
    uint32_t threads;
};

} // namespace dpu

#endif // DPU_SIM_BATCH_HH
