/**
 * @file
 * Fleet-scale serving model: hundreds of ranks, millions of requests.
 *
 * AsyncBatchServer serves *real* simulations on host threads, which
 * caps how much fleet a test machine can express (every request costs
 * a cycle-accurate Machine run). This model keeps the same serving
 * structure — per-(rank, program) batching windows, placement
 * policies, a serialized host link per rank charged by the
 * HostTransferModel, lockstep cores — but replaces execution with the
 * statically exact per-run cycle counts (latency is compile-time
 * exact on this machine; see model/evaluator). That turns a
 * million-request open loop over hundreds of ranks into arithmetic:
 * seeded Poisson arrivals are replayed in virtual cycle time and the
 * model reports transfer-inclusive latency percentiles, per-rank
 * utilization and transfer overhead.
 *
 * Deterministic by construction: the report is a pure function of
 * (options, workloads) — no wall clock, no host threads.
 */

#ifndef DPU_SIM_FLEET_HH
#define DPU_SIM_FLEET_HH

#include <cstdint>
#include <vector>

#include "arch/topology.hh"

namespace dpu {

/** One resident workload class in the modeled mix. The cycle counts
 *  come from a compiled program (prog.stats.cycles,
 *  hostTransferBytes(prog)) or are synthetic. */
struct FleetWorkloadModel
{
    uint64_t runCycles = 1; ///< Compute cycles of one run (exact).
    uint64_t hostBytes = 0; ///< Host↔rank bytes one run moves.
    double weight = 1.0;    ///< Share of the arrival mix.
};

/** Open-loop scenario knobs. */
struct FleetSimOptions
{
    FleetTopology topology;      ///< ranks x coresPerRank.
    HostTransferModel transfer;  ///< Per-rank host link.
    Placement placement = Placement::Replicate;

    size_t maxBatch = 8;          ///< Cut a batch at this size...
    uint64_t windowCycles = 2048; ///< ...or when the window expires.

    /** Offered load as a fraction of the fleet's aggregate compute
     *  capacity (1.0 = arrivals exactly match what the cores can
     *  retire, ignoring transfer). */
    double load = 0.7;

    uint64_t requests = 100000; ///< Open-loop arrivals to replay.
    uint64_t seed = 1;          ///< Arrival-process seed.
};

/** Per-rank outcome. */
struct FleetRankReport
{
    uint64_t requests = 0;
    uint64_t batches = 0;
    uint64_t computeCycles = 0;  ///< Summed core-busy cycles.
    uint64_t transferCycles = 0; ///< Summed host-link cycles.

    /** Core-busy fraction of (coresPerRank x horizon). */
    double utilization = 0;

    /** transferCycles / (computeCycles + transferCycles). */
    double transferOverhead = 0;

    /** Transfer-inclusive request latency percentiles, in cycles
     *  (arrival to batch completion, host link included). */
    double p50Cycles = 0, p95Cycles = 0, p99Cycles = 0;
};

/** Whole-fleet outcome. */
struct FleetSimReport
{
    uint64_t requests = 0;
    uint64_t batches = 0;
    uint64_t horizonCycles = 0;  ///< Last completion.
    uint64_t computeCycles = 0;  ///< Summed over ranks.
    uint64_t transferCycles = 0; ///< Summed over ranks.

    double meanBatch = 0;        ///< requests / batches.
    double transferOverhead = 0; ///< Fleet-wide transfer share.

    /** Fleet-wide transfer-inclusive latency percentiles (cycles). */
    double p50Cycles = 0, p95Cycles = 0, p99Cycles = 0;

    std::vector<FleetRankReport> perRank; ///< size = topology.ranks.
};

/**
 * Replay a seeded Poisson open loop against the modeled fleet.
 * Placement follows the serving policies: Replicate sends each batch
 * to the least-loaded rank at arrival time, Affinity pins workload k
 * to rank k % ranks. Identical (options, workloads) always produce
 * an identical report.
 */
FleetSimReport simulateFleet(const FleetSimOptions &options,
                             const std::vector<FleetWorkloadModel> &mix);

} // namespace dpu

#endif // DPU_SIM_FLEET_HH
