#include "sim/async.hh"

#include <algorithm>
#include <iterator>
#include <limits>
#include <string>

#include "support/logging.hh"

namespace dpu {

namespace {

/** Cap on recorded predicted-vs-actual service samples: enough for a
 *  bench run's error series without growing for server lifetime. */
constexpr size_t kMaxServiceSamples = 1024;

} // namespace

bool
AsyncBatchServer::fastPredictions() const
{
    // Cycle "fidelity" for admission means: don't predict — the only
    // cycle-accurate service measurement is running the batch, which
    // is exactly the pre-tier behavior.
    return config.admissionFidelity != EvalFidelity::Cycle;
}

double
AsyncBatchServer::predictedServiceUsLocked(const Resident &r,
                                           uint64_t runs,
                                           uint32_t cores) const
{
    if (!fastPredictions() || counters.usPerKilocycle <= 0 ||
        runs == 0 || cores == 0)
        return 0; // Uncalibrated (or degenerate): predictions inert.
    uint64_t wall = Evaluator::batchWallCycles(r.prog, runs, cores);
    // The host link serializes before the cores compute, and its
    // cost is statically exact at every tier (see HostTransferModel).
    wall += config.transfer.batchCycles(hostTransferBytes(r.prog), runs);
    return counters.usPerKilocycle * (double(wall) / 1000.0);
}

AsyncBatchServer::AsyncBatchServer(AsyncServerConfig config_)
    : config(config_)
{
    dpu_assert(config.cores >= 1, "need at least one model core");
    if (config.maxBatch < 1)
        config.maxBatch = 1;
    if (config.workers < 1)
        config.workers = 1;
    if (config.hostThreadsPerBatch < 1)
        config.hostThreadsPerBatch = 1;
    if (config.ranks < 1)
        config.ranks = 1;
    // Global core id = rank * config.cores + local core. Rank 0's
    // slice is the whole array on a single-rank server, so every
    // pre-fleet index computation is unchanged.
    size_t total = (size_t)config.ranks * config.cores;
    coreReservedBy.assign(total, -1);
    coreBusy.assign(total, false);
    reservedPerRank.assign(config.ranks, 0);
    counters.perRank.resize(config.ranks);

    try {
        batcher = std::thread([this] { batcherMain(); });
        pool.reserve(config.workers);
        for (uint32_t w = 0; w < config.workers; ++w)
            pool.emplace_back([this] { workerMain(); });
    } catch (...) {
        // Thread creation can fail under resource exhaustion; the
        // destructor will not run for a half-constructed object, so
        // stop and join whatever already started before rethrowing —
        // destroying a joinable std::thread would terminate().
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        batcherCv.notify_all();
        workerCv.notify_all();
        if (batcher.joinable())
            batcher.join();
        for (std::thread &t : pool)
            t.join();
        throw;
    }
}

AsyncBatchServer::~AsyncBatchServer()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    batcherCv.notify_all();
    workerCv.notify_all();
    batcher.join();
    for (std::thread &t : pool)
        t.join();
}

AsyncBatchServer::ProgramHandle
AsyncBatchServer::addProgram(CompiledProgram program, uint64_t operations)
{
    return addProgram(std::move(program), QosSpec{}, operations);
}

AsyncBatchServer::ProgramHandle
AsyncBatchServer::addProgram(CompiledProgram program, QosSpec qos,
                             uint64_t operations)
{
    if (operations == 0)
        operations = program.stats.numOperations;

    std::lock_guard<std::mutex> lock(mutex);
    if (qos.minCores > config.cores)
        dpu_fatal("addProgram: QosSpec::minCores " +
                  std::to_string(qos.minCores) + " exceeds the " +
                  std::to_string(config.cores) + " modeled cores");
    if (qos.maxCores != 0 && qos.maxCores < qos.minCores)
        dpu_fatal("addProgram: QosSpec::maxCores " +
                  std::to_string(qos.maxCores) + " below minCores " +
                  std::to_string(qos.minCores));

    // Resolve placement: a replicated program is resident (and
    // reserves cores) on every rank; a pinned one only at its home
    // rank, chosen round-robin by registration order.
    bool replicated =
        qos.placement.value_or(config.placement) == Placement::Replicate;
    uint32_t home =
        static_cast<uint32_t>(programs.size()) % config.ranks;
    auto places_on = [](bool repl, uint32_t home_rank, uint32_t rank) {
        return repl || home_rank == rank;
    };
    for (uint32_t rank = 0; rank < config.ranks; ++rank) {
        if (!places_on(replicated, home, rank))
            continue;
        if (reservedPerRank[rank] + qos.minCores > config.cores)
            dpu_fatal("addProgram: core reservations exhausted (" +
                      std::to_string(reservedPerRank[rank]) + " of " +
                      std::to_string(config.cores) +
                      " already reserved, requested " +
                      std::to_string(qos.minCores) + " more)");
        uint32_t shared_after =
            config.cores - reservedPerRank[rank] - qos.minCores;
        if (shared_after == 0) {
            bool unreserved_resident = qos.minCores == 0;
            for (const Resident &o : programs)
                if (places_on(o.replicated, o.homeRank, rank))
                    unreserved_resident |= o.qos.minCores == 0;
            if (unreserved_resident)
                dpu_fatal(
                    "addProgram: reservation would leave no shared "
                    "core for resident programs without one");
        }
    }

    programs.push_back(Resident{});
    Resident &r = programs.back();
    r.prog = std::move(program);
    r.qos = qos;
    r.index = static_cast<uint32_t>(programs.size() - 1);
    r.operations = operations;
    r.numInputs = r.prog.inputLocation.size();
    r.replicated = replicated;
    r.homeRank = home;

    // Grant the reservation on every rank the program is placed on:
    // the lowest-numbered shared cores of each rank become this
    // program's own. The partition is static for the server's
    // lifetime (programs cannot be removed).
    for (uint32_t rank = 0; rank < config.ranks; ++rank) {
        if (!places_on(replicated, home, rank))
            continue;
        uint32_t granted = 0;
        for (uint32_t c = 0;
             c < config.cores && granted < qos.minCores; ++c) {
            size_t g = (size_t)rank * config.cores + c;
            if (coreReservedBy[g] == -1) {
                coreReservedBy[g] = static_cast<int32_t>(r.index);
                ++granted;
            }
        }
        reservedPerRank[rank] += qos.minCores;
    }
    return static_cast<ProgramHandle>(r.index);
}

AsyncBatchServer::ProgramHandle
AsyncBatchServer::addProgram(const Dag &dag, const ArchConfig &cfg,
                             const CompileOptions &options,
                             ProgramCache *cache, QosSpec qos)
{
    // Compile outside the server lock: a cold compile can take
    // seconds, and submits for already-resident programs must keep
    // flowing underneath it.
    CompiledProgram prog = cache ? cache->compile(dag, cfg, options)
                                 : compile(dag, cfg, options);
    return addProgram(std::move(prog), qos);
}

std::future<SimResult>
AsyncBatchServer::submit(ProgramHandle handle, std::vector<double> input)
{
    SubmitResult r = trySubmit(handle, std::move(input));
    if (r.admission == Admission::RejectedQueueFull)
        dpu_fatal("submit: server queue full (queueDepth " +
                  std::to_string(config.queueDepth) + ")");
    if (r.admission == Admission::RejectedDeadline)
        dpu_fatal("submit: request deadline already unmeetable");
    return std::move(r.future);
}

SubmitResult
AsyncBatchServer::trySubmit(ProgramHandle handle,
                            std::vector<double> input,
                            const SubmitOptions &options)
{
    SubmitResult out;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (handle >= programs.size())
            dpu_fatal("submit: unknown program handle " +
                      std::to_string(handle));
        Resident &r = programs[handle];
        if (input.size() != r.numInputs)
            dpu_fatal("submit: program expects " +
                      std::to_string(r.numInputs) + " inputs, got " +
                      std::to_string(input.size()));

        Priority prio = options.priority.value_or(r.qos.priority);
        size_t cls = static_cast<size_t>(prio);
        ClassStats &cs = counters.perClass[cls];
        Clock::time_point now = Clock::now();

        // Resolve the deadline: absolute wins, then the per-request
        // relative one, then the program default.
        Clock::time_point deadline{};
        bool has_deadline = false;
        if (options.deadlineAt != Clock::time_point{}) {
            deadline = options.deadlineAt;
            has_deadline = true;
        } else {
            std::chrono::microseconds rel = options.deadline.count()
                ? options.deadline
                : r.qos.deadline;
            if (rel.count() != 0) {
                deadline = now + rel;
                has_deadline = true;
            }
        }

        // Admission control: backpressure before bookkeeping.
        if (config.queueDepth &&
            outstanding >= config.queueDepth) {
            ++cs.rejectedQueueFull;
            out.admission = Admission::RejectedQueueFull;
            return out;
        }
        if (has_deadline && deadline <= now) {
            ++cs.rejectedDeadline;
            out.admission = Admission::RejectedDeadline;
            return out;
        }
        if (has_deadline && config.predictiveAdmission &&
            fastPredictions()) {
            // Dead-on-arrival by prediction: even a lone-request
            // batch dispatched immediately would finish past the
            // deadline. The static wall-cycle count is exact; only
            // the us-per-kilocycle calibration is an estimate.
            double predicted_us = predictedServiceUsLocked(r, 1, 1);
            ++counters.admissionPredictions;
            if (predicted_us > 0 &&
                now + std::chrono::microseconds(
                          static_cast<int64_t>(predicted_us)) >
                    deadline) {
                ++cs.rejectedDeadline;
                ++counters.predictedDeadlineRejections;
                out.admission = Admission::RejectedDeadline;
                return out;
            }
        }

        Request rq;
        rq.input = std::move(input);
        rq.arrival = now;
        rq.deadline = deadline;
        rq.hasDeadline = has_deadline;
        rq.priority = prio;
        out.future = rq.promise.get_future();
        r.pending[cls].push_back(std::move(rq));
        ++counters.requests;
        ++cs.submitted;
        ++outstanding;
    }
    batcherCv.notify_one();
    return out;
}

void
AsyncBatchServer::drain()
{
    // A count, not a flag: concurrent drains must each keep the
    // batcher flushing until the last one has seen the queue empty.
    std::unique_lock<std::mutex> lock(mutex);
    ++drainers;
    batcherCv.notify_all();
    idleCv.wait(lock, [this] { return outstanding == 0; });
    --drainers;
}

AsyncBatchServer::Stats
AsyncBatchServer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

size_t
AsyncBatchServer::numPrograms() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return programs.size();
}

QosSpec
AsyncBatchServer::programQos(ProgramHandle handle) const
{
    std::lock_guard<std::mutex> lock(mutex);
    if (handle >= programs.size())
        dpu_fatal("programQos: unknown program handle " +
                  std::to_string(handle));
    return programs[handle].qos;
}

void
AsyncBatchServer::cutBatchLocked(Resident &r, size_t cls,
                                 uint64_t &reason)
{
    std::vector<Request> &queue = r.pending[cls];
    size_t n = std::min(queue.size(), config.maxBatch);
    Batch b;
    b.resident = &r;
    b.priority = static_cast<Priority>(cls);
    b.seq = nextBatchSeq++;
    b.rank = chooseRankLocked(r);
    b.requests.assign(std::make_move_iterator(queue.begin()),
                      std::make_move_iterator(queue.begin() +
                                              static_cast<ptrdiff_t>(n)));
    queue.erase(queue.begin(),
                queue.begin() + static_cast<ptrdiff_t>(n));
    for (const Request &rq : b.requests) {
        if (rq.hasDeadline &&
            (!b.hasDeadline || rq.deadline < b.deadline)) {
            b.deadline = rq.deadline;
            b.hasDeadline = true;
        }
    }
    ready.push_back(std::move(b));
    ++counters.batches;
    ++reason;
    counters.maxBatchObserved =
        std::max<uint64_t>(counters.maxBatchObserved, n);
}

void
AsyncBatchServer::batcherMain()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        if (stopping)
            return;

        Clock::time_point now = Clock::now();
        bool have_wake = false;
        Clock::time_point next_wake{};
        bool dispatched = false;
        for (Resident &r : programs) {
            for (size_t cls = 0; cls < kNumPriorities; ++cls) {
                std::vector<Request> &queue = r.pending[cls];
                if (queue.empty())
                    continue;
                if (queue.size() >= config.maxBatch) {
                    cutBatchLocked(r, cls, counters.sizeDispatches);
                    dispatched = true;
                    continue;
                }
                if (drainers > 0) {
                    cutBatchLocked(r, cls, counters.drainDispatches);
                    dispatched = true;
                    continue;
                }

                // The window says "wait for company"; a deadline says
                // "stop waiting while it is still meetable". Cut at
                // whichever comes first, leading the deadline by the
                // program's observed batch service time.
                Clock::time_point cut_at =
                    queue.front().arrival + config.batchWindow;
                bool deadline_driven = false;
                Clock::time_point min_deadline{};
                bool have_deadline = false;
                for (const Request &rq : queue) {
                    if (rq.hasDeadline &&
                        (!have_deadline ||
                         rq.deadline < min_deadline)) {
                        min_deadline = rq.deadline;
                        have_deadline = true;
                    }
                }
                if (have_deadline) {
                    // Deadline lead: the historical per-program EWMA,
                    // raised to the fast-tier model prediction for
                    // the batch this queue would cut right now. The
                    // model covers what history cannot — a pending
                    // batch shaped unlike anything served yet.
                    int64_t lead_us = r.ewmaBatchUs;
                    if (fastPredictions()) {
                        double predicted = predictedServiceUsLocked(
                            r, queue.size(),
                            std::min<uint32_t>(
                                config.cores,
                                static_cast<uint32_t>(queue.size())));
                        lead_us = std::max(
                            lead_us, static_cast<int64_t>(predicted));
                    }
                    Clock::time_point deadline_cut =
                        min_deadline -
                        std::chrono::microseconds(lead_us);
                    if (deadline_cut < cut_at) {
                        cut_at = deadline_cut;
                        deadline_driven = true;
                    }
                }
                if (now >= cut_at) {
                    cutBatchLocked(r, cls,
                                   deadline_driven
                                       ? counters.deadlineDispatches
                                       : counters.windowDispatches);
                    dispatched = true;
                } else if (!have_wake || cut_at < next_wake) {
                    next_wake = cut_at;
                    have_wake = true;
                }
            }
        }
        if (dispatched) {
            workerCv.notify_all();
            continue; // re-scan: a cut may have left a remainder
        }
        if (have_wake)
            batcherCv.wait_until(lock, next_wake);
        else
            batcherCv.wait(lock);
    }
}

uint32_t
AsyncBatchServer::chooseRankLocked(const Resident &r) const
{
    if (!r.replicated || config.ranks == 1)
        return r.homeRank;
    // Replicated (hot) program: send the batch to the rank with the
    // fewest busy cores right now, ties to the lowest rank id. On an
    // idle fleet this is rank 0, matching the single-rank server.
    uint32_t best_rank = 0;
    uint32_t best_busy = std::numeric_limits<uint32_t>::max();
    for (uint32_t rank = 0; rank < config.ranks; ++rank) {
        uint32_t busy = 0;
        for (uint32_t c = 0; c < config.cores; ++c)
            busy += coreBusy[(size_t)rank * config.cores + c];
        if (busy < best_busy) {
            best_busy = busy;
            best_rank = rank;
        }
    }
    return best_rank;
}

size_t
AsyncBatchServer::pickRunnableLocked() const
{
    // EDF within priority bands over the cut batches, restricted to
    // batches whose program can be granted a model core right now
    // (its own free reserved cores, or a free shared core). A lower
    // band never waits behind a higher one, but an un-runnable
    // high-band batch does not block backfilling the cores it cannot
    // use anyway.
    size_t best = std::numeric_limits<size_t>::max();
    for (size_t k = 0; k < ready.size(); ++k) {
        const Batch &b = ready[k];
        int32_t owner = static_cast<int32_t>(b.resident->index);
        size_t base = (size_t)b.rank * config.cores;
        bool runnable = false;
        for (uint32_t c = 0; c < config.cores && !runnable; ++c)
            runnable = !coreBusy[base + c] &&
                       (coreReservedBy[base + c] == owner ||
                        coreReservedBy[base + c] == -1);
        if (!runnable)
            continue;
        if (best == std::numeric_limits<size_t>::max()) {
            best = k;
            continue;
        }
        const Batch &cur = ready[best];
        bool better;
        if (b.priority != cur.priority)
            better = b.priority < cur.priority;
        else if (b.hasDeadline != cur.hasDeadline)
            better = b.hasDeadline;
        else if (b.hasDeadline && b.deadline != cur.deadline)
            better = b.deadline < cur.deadline;
        else
            better = b.seq < cur.seq;
        if (better)
            best = k;
    }
    return best;
}

CoreSet
AsyncBatchServer::acquireCoresLocked(const Batch &b)
{
    const Resident &r = *b.resident;
    size_t limit = r.qos.maxCores ? r.qos.maxCores : config.cores;
    limit = std::min(limit, b.requests.size());
    if (limit < 1)
        limit = 1;

    CoreSet granted;
    int32_t owner = static_cast<int32_t>(r.index);
    size_t base = (size_t)b.rank * config.cores;
    // Own reserved cores first — they are useless to anyone else —
    // then spread into the shared pool up to the cap. Only the
    // target rank's slice is eligible; ids stay global.
    for (uint32_t c = 0; c < config.cores && granted.count() < limit;
         ++c)
        if (!coreBusy[base + c] && coreReservedBy[base + c] == owner)
            granted.ids.push_back(static_cast<uint32_t>(base + c));
    for (uint32_t c = 0; c < config.cores && granted.count() < limit;
         ++c)
        if (!coreBusy[base + c] && coreReservedBy[base + c] == -1)
            granted.ids.push_back(static_cast<uint32_t>(base + c));
    dpu_assert(!granted.empty(),
               "picked a batch with no acquirable model core");
    for (uint32_t c : granted.ids)
        coreBusy[c] = true;
    return granted;
}

void
AsyncBatchServer::releaseCoresLocked(const CoreSet &granted)
{
    for (uint32_t c : granted.ids)
        coreBusy[c] = false;
}

void
AsyncBatchServer::workerMain()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        size_t idx = pickRunnableLocked();
        if (idx == std::numeric_limits<size_t>::max()) {
            if (stopping && ready.empty())
                return;
            // Woken by a new ready batch, a core release, or
            // stopping — all of which mutate under this mutex, so no
            // wakeup can be lost between the pick and the wait.
            workerCv.wait(lock);
            continue;
        }
        Batch batch = std::move(ready[idx]);
        ready.erase(ready.begin() + static_cast<ptrdiff_t>(idx));
        CoreSet granted = acquireCoresLocked(batch);
        Resident *resident = batch.resident;
        const CompiledProgram &prog = resident->prog;
        uint64_t operations = resident->operations;
        // Predict this batch's service time with the calibration as
        // of dispatch: the predicted-vs-actual pair is the
        // measurable record of admission-estimate error.
        double predicted_us = 0;
        if (fastPredictions()) {
            predicted_us = predictedServiceUsLocked(
                *resident, batch.requests.size(),
                static_cast<uint32_t>(granted.count()));
            ++counters.servicePredictions;
        }
        lock.unlock();

        std::vector<std::vector<double>> inputs;
        inputs.reserve(batch.requests.size());
        for (Request &rq : batch.requests)
            inputs.push_back(std::move(rq.input));

        Clock::time_point service_start = Clock::now();
        BatchResult br;
        std::exception_ptr error;
        try {
            br = BatchMachine(prog, RankSet{batch.rank, granted},
                              operations, config.hostThreadsPerBatch,
                              config.transfer)
                     .run(inputs);
        } catch (...) {
            error = std::current_exception();
        }
        Clock::time_point completion = Clock::now();
        int64_t service_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                completion - service_start)
                .count();

        if (error) {
            for (Request &rq : batch.requests)
                rq.promise.set_exception(error);
        } else {
            for (size_t k = 0; k < batch.requests.size(); ++k)
                batch.requests[k].promise.set_value(
                    std::move(br.runs[k]));
        }

        lock.lock();
        releaseCoresLocked(granted);
        if (!error) {
            // A failed batch's (often near-zero) duration must not
            // drag the service estimate toward 0 and erode the
            // deadline lead of healthy batches.
            resident->ewmaBatchUs = resident->ewmaBatchUs
                ? (3 * resident->ewmaBatchUs + service_us) / 4
                : service_us;
            counters.modeledWallCycles += br.wallCycles;
            counters.totalOperations += br.totalOperations;
            counters.transferCycles += br.transferCycles;
            Stats::RankStats &rs = counters.perRank[batch.rank];
            ++rs.batches;
            rs.requests += batch.requests.size();
            rs.wallCycles += br.wallCycles;
            rs.transferCycles += br.transferCycles;
            if (br.totalWallCycles() > 0) {
                // Calibrate the model-cycle -> wall-microsecond rate
                // that turns fast-tier cycle estimates into time
                // predictions. Server-wide: the rate is a property of
                // the host, not of any one resident program.
                // Transfer-inclusive, matching the prediction side
                // (identical to compute-only under a free model).
                double ratio = double(service_us)
                    / (double(br.totalWallCycles()) / 1000.0);
                counters.usPerKilocycle = counters.usPerKilocycle > 0
                    ? (3.0 * counters.usPerKilocycle + ratio) / 4.0
                    : ratio;
            }
            if (predicted_us > 0 &&
                counters.serviceSamples.size() < kMaxServiceSamples)
                counters.serviceSamples.push_back(
                    {predicted_us, double(service_us), br.wallCycles,
                     batch.requests.size()});
        }
        for (const Request &rq : batch.requests) {
            ClassStats &cs =
                counters.perClass[static_cast<size_t>(rq.priority)];
            ++cs.completed;
            cs.lastCompletionSeq = ++counters.completions;
            // The order observable is bounded (kMaxCompletionRecords)
            // so fleet-scale open loops don't grow the stats without
            // limit; the seq counters above stay exact regardless.
            if (counters.completionOrder.size() < kMaxCompletionRecords)
                counters.completionOrder.push_back(
                    {cs.lastCompletionSeq, batch.rank, rq.priority});
            if (rq.hasDeadline) {
                if (completion <= rq.deadline)
                    ++cs.deadlineHits;
                else
                    ++cs.deadlineMisses;
            }
        }
        outstanding -= batch.requests.size();
        if (outstanding == 0)
            idleCv.notify_all();
        // Freed cores may make a queued batch runnable for a waiting
        // worker; the refreshed service estimate may move a pending
        // deadline's cut time, so a sleeping batcher must recompute
        // its wake-up too.
        workerCv.notify_all();
        batcherCv.notify_all();
    }
}

} // namespace dpu
