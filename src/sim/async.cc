#include "sim/async.hh"

#include <algorithm>
#include <iterator>
#include <string>

#include "support/logging.hh"

namespace dpu {

AsyncBatchServer::AsyncBatchServer(AsyncServerConfig config_)
    : config(config_)
{
    dpu_assert(config.cores >= 1, "need at least one model core");
    if (config.maxBatch < 1)
        config.maxBatch = 1;
    if (config.workers < 1)
        config.workers = 1;
    if (config.hostThreadsPerBatch < 1)
        config.hostThreadsPerBatch = 1;

    try {
        batcher = std::thread([this] { batcherMain(); });
        pool.reserve(config.workers);
        for (uint32_t w = 0; w < config.workers; ++w)
            pool.emplace_back([this] { workerMain(); });
    } catch (...) {
        // Thread creation can fail under resource exhaustion; the
        // destructor will not run for a half-constructed object, so
        // stop and join whatever already started before rethrowing —
        // destroying a joinable std::thread would terminate().
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        batcherCv.notify_all();
        workerCv.notify_all();
        if (batcher.joinable())
            batcher.join();
        for (std::thread &t : pool)
            t.join();
        throw;
    }
}

AsyncBatchServer::~AsyncBatchServer()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    batcherCv.notify_all();
    workerCv.notify_all();
    batcher.join();
    for (std::thread &t : pool)
        t.join();
}

AsyncBatchServer::ProgramHandle
AsyncBatchServer::addProgram(CompiledProgram program, uint64_t operations)
{
    if (operations == 0)
        operations = program.stats.numOperations;
    std::lock_guard<std::mutex> lock(mutex);
    programs.push_back(Resident{});
    Resident &r = programs.back();
    r.prog = std::move(program);
    r.operations = operations;
    r.numInputs = r.prog.inputLocation.size();
    return static_cast<ProgramHandle>(programs.size() - 1);
}

AsyncBatchServer::ProgramHandle
AsyncBatchServer::addProgram(const Dag &dag, const ArchConfig &cfg,
                             const CompileOptions &options,
                             ProgramCache *cache)
{
    // Compile outside the server lock: a cold compile can take
    // seconds, and submits for already-resident programs must keep
    // flowing underneath it.
    CompiledProgram prog = cache ? cache->compile(dag, cfg, options)
                                 : compile(dag, cfg, options);
    return addProgram(std::move(prog));
}

std::future<SimResult>
AsyncBatchServer::submit(ProgramHandle handle, std::vector<double> input)
{
    std::future<SimResult> fut;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (handle >= programs.size())
            dpu_fatal("submit: unknown program handle " +
                      std::to_string(handle));
        Resident &r = programs[handle];
        if (input.size() != r.numInputs)
            dpu_fatal("submit: program expects " +
                      std::to_string(r.numInputs) + " inputs, got " +
                      std::to_string(input.size()));

        Request rq;
        rq.input = std::move(input);
        rq.arrival = Clock::now();
        fut = rq.promise.get_future();
        r.pending.push_back(std::move(rq));
        ++counters.requests;
        ++outstanding;
    }
    batcherCv.notify_one();
    return fut;
}

void
AsyncBatchServer::drain()
{
    // A count, not a flag: concurrent drains must each keep the
    // batcher flushing until the last one has seen the queue empty.
    std::unique_lock<std::mutex> lock(mutex);
    ++drainers;
    batcherCv.notify_all();
    idleCv.wait(lock, [this] { return outstanding == 0; });
    --drainers;
}

AsyncBatchServer::Stats
AsyncBatchServer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

size_t
AsyncBatchServer::numPrograms() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return programs.size();
}

void
AsyncBatchServer::cutBatchLocked(Resident &r, uint64_t &reason)
{
    size_t n = std::min(r.pending.size(), config.maxBatch);
    Batch b;
    b.resident = &r;
    b.requests.assign(std::make_move_iterator(r.pending.begin()),
                      std::make_move_iterator(r.pending.begin() +
                                              static_cast<ptrdiff_t>(n)));
    r.pending.erase(r.pending.begin(),
                    r.pending.begin() + static_cast<ptrdiff_t>(n));
    ready.push_back(std::move(b));
    ++counters.batches;
    ++reason;
    counters.maxBatchObserved =
        std::max<uint64_t>(counters.maxBatchObserved, n);
}

void
AsyncBatchServer::batcherMain()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        if (stopping)
            return;

        Clock::time_point now = Clock::now();
        bool have_deadline = false;
        Clock::time_point next_deadline{};
        bool dispatched = false;
        for (Resident &r : programs) {
            if (r.pending.empty())
                continue;
            if (r.pending.size() >= config.maxBatch) {
                cutBatchLocked(r, counters.sizeDispatches);
                dispatched = true;
            } else if (drainers > 0) {
                cutBatchLocked(r, counters.drainDispatches);
                dispatched = true;
            } else {
                Clock::time_point deadline =
                    r.pending.front().arrival + config.batchWindow;
                if (now >= deadline) {
                    cutBatchLocked(r, counters.windowDispatches);
                    dispatched = true;
                } else if (!have_deadline || deadline < next_deadline) {
                    next_deadline = deadline;
                    have_deadline = true;
                }
            }
        }
        if (dispatched) {
            workerCv.notify_all();
            continue; // re-scan: a cut may have left a remainder
        }
        if (have_deadline)
            batcherCv.wait_until(lock, next_deadline);
        else
            batcherCv.wait(lock);
    }
}

void
AsyncBatchServer::workerMain()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        workerCv.wait(lock,
                      [this] { return stopping || !ready.empty(); });
        if (ready.empty()) {
            if (stopping)
                return;
            continue;
        }
        Batch batch = std::move(ready.front());
        ready.pop_front();
        const CompiledProgram &prog = batch.resident->prog;
        uint64_t operations = batch.resident->operations;
        lock.unlock();

        std::vector<std::vector<double>> inputs;
        inputs.reserve(batch.requests.size());
        for (Request &rq : batch.requests)
            inputs.push_back(std::move(rq.input));

        BatchResult br;
        std::exception_ptr error;
        try {
            br = BatchMachine(prog, config.cores, operations,
                              config.hostThreadsPerBatch)
                     .run(inputs);
        } catch (...) {
            error = std::current_exception();
        }
        if (error) {
            for (Request &rq : batch.requests)
                rq.promise.set_exception(error);
        } else {
            for (size_t k = 0; k < batch.requests.size(); ++k)
                batch.requests[k].promise.set_value(
                    std::move(br.runs[k]));
        }

        lock.lock();
        if (!error) {
            counters.modeledWallCycles += br.wallCycles;
            counters.totalOperations += br.totalOperations;
        }
        outstanding -= batch.requests.size();
        if (outstanding == 0)
            idleCv.notify_all();
    }
}

} // namespace dpu
