/**
 * @file
 * E11 — fig. 13: breakdown of instruction categories per workload at
 * the min-EDP configuration.
 */

#include "harness.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig13_instruction_breakdown",
                       "Figure 13");
    double scale = ctx.scale();

    TablePrinter t({"workload", "exec %", "copy_4 %", "load %",
                    "store(+4) %", "nop %", "total instrs"});
    for (const auto &spec : smallSuite()) {
        // Only compile statistics are reported here, so this goes
        // through workloads/suite's cached-compile helper. In the
        // run_benches order this bench runs first and populates the
        // sweep's cache directory; fig14a then reuses the programs.
        auto prog =
            compileWorkload(spec, scale, minEdpConfig(), {}, ctx.cache());
        const auto &k = prog.stats.kindCount;
        double total = static_cast<double>(prog.stats.instructions);
        auto pct = [&](InstrKind kind) {
            return 100.0 * k[static_cast<size_t>(kind)] / total;
        };
        t.row()
            .cell(spec.name)
            .num(pct(InstrKind::Exec), 1)
            .num(pct(InstrKind::Copy4), 1)
            .num(pct(InstrKind::Load), 1)
            .num(pct(InstrKind::Store) + pct(InstrKind::Store4), 1)
            .num(pct(InstrKind::Nop), 1)
            .num(static_cast<long long>(total));
    }
    t.print();
    ctx.table(t);
    std::printf("\nExpected shape (paper): exec dominates; loads/"
                "stores grow on SpTRSV (many one-shot coefficient "
                "inputs) and on spill-heavy PCs; nops fill the "
                "remaining hazards.\n");
    return ctx.finish();
}
