/**
 * @file
 * serve_latency — the serving-mode bench (paper §V-C2: the deployed
 * cores "execute different DAGs" rather than one benchmarking batch).
 * The first latency-oriented workload in the repo: requests arrive
 * individually at an AsyncBatchServer holding several resident
 * programs, coalesce inside the batching window, and the report
 * carries p50/p95/p99 request latency plus throughput for two arrival
 * modes:
 *
 *   - open loop: exponential inter-arrival times at a rate calibrated
 *     to a fraction of measured service capacity (arrival times do
 *     not depend on completions — queueing shows up as tail latency),
 *   - closed loop: a fixed set of concurrent clients, each submitting
 *     its next request only when the previous one completed,
 *   - mixed-priority open loop: the same Poisson arrival schedule
 *     driven twice — once against the QoS scheduler (interactive
 *     band + deadline + a reserved core for the interactive program)
 *     and once against the plain FIFO coalescer — reporting
 *     per-class p50/p95/p99, deadline-hit rate and rejection rate as
 *     typed numeric series. The headline comparison is
 *     qos_interactive_p99_us vs fifo_interactive_p99_us: the QoS
 *     path must shield interactive tails from the batch backlog.
 *
 * QoS knobs (strictly validated, exit 2 on bad values):
 *   --priority-mix=<f>  fraction of interactive requests, in [0, 1]
 *   --deadline-us=<n>   interactive deadline, microseconds
 *   --queue-depth=<n>   admission bound (0 = unbounded)
 *
 * Per-request *results* are batching-invariant (see sim/async.hh);
 * only the latency numbers depend on timing, so this report is a host
 * measurement, not a modeled one — except the modeled-GOPS metric
 * folded from the server's batch accounting.
 */

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>

#include "harness.hh"
#include "model/tech28.hh"
#include "sim/async.hh"
#include "sim/fleet.hh"
#include "support/cli.hh"
#include "support/rng.hh"

using namespace dpu;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Sorted-vector percentile (nearest-rank). `xs` must be non-empty. */
double
percentile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(xs.size())));
    if (rank == 0)
        rank = 1;
    return xs[std::min(rank, xs.size()) - 1];
}

struct ModeResult
{
    std::vector<double> latencies; ///< Seconds, per request.
    double wallSeconds = 0;
    AsyncBatchServer::Stats stats;
};

/** One workload resident on the serving side. */
struct ResidentWorkload
{
    Dag dag;
    CompiledProgram prog;
    AsyncBatchServer::ProgramHandle handle = 0;
    std::vector<std::vector<double>> inputs; ///< Rotating pool.
};

/** The fleet flags (--ranks/--xfer-gbps/--placement), resolved once
 *  in main(). The defaults keep every server byte-identical to the
 *  pre-fleet single-rank configuration. */
struct FleetSettings
{
    uint32_t ranks = 1;
    HostTransferModel transfer{};
    Placement placement = Placement::Replicate;
};
FleetSettings fleetSettings;

AsyncServerConfig
serverConfig(uint32_t workers, size_t queue_depth = 0,
             EvalFidelity fidelity = EvalFidelity::Analytic)
{
    AsyncServerConfig cfg;
    cfg.cores = 4; // the paper's deployed system (per rank)
    cfg.maxBatch = 8;
    cfg.batchWindow = std::chrono::microseconds(200);
    cfg.workers = workers;
    cfg.queueDepth = queue_depth;
    cfg.admissionFidelity = fidelity;
    cfg.ranks = fleetSettings.ranks;
    cfg.transfer = fleetSettings.transfer;
    cfg.placement = fleetSettings.placement;
    return cfg;
}

/** serve_latency's own strictly-validated QoS flags; everything else
 *  passes through to the uniform harness CLI. */
struct QosFlags
{
    double priorityMix = 0.25; ///< Interactive fraction of arrivals.
    uint64_t deadlineUs = 20000; ///< Interactive deadline.
    uint32_t queueDepth = 0;     ///< Admission bound (0 = unbounded).
};

/** Split our flags out of argv (keeping argv[0]); exit 2 on invalid
 *  values, consistent with the harness's strict-validation contract. */
QosFlags
extractQosFlags(int argc, char **argv, std::vector<char *> &rest)
{
    QosFlags flags;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        char *a = argv[i];
        if (std::strncmp(a, "--priority-mix=", 15) == 0) {
            if (!parseFractionArg(a + 15, flags.priorityMix)) {
                std::fprintf(stderr,
                             "invalid value '%s' for --priority-mix "
                             "(expected a number in [0, 1])\n",
                             a + 15);
                std::exit(2);
            }
        } else if (std::strncmp(a, "--deadline-us=", 14) == 0) {
            if (!parseUint64Arg(a + 14, flags.deadlineUs) ||
                flags.deadlineUs == 0) {
                std::fprintf(stderr,
                             "invalid value '%s' for --deadline-us "
                             "(expected an integer >= 1)\n",
                             a + 14);
                std::exit(2);
            }
        } else if (std::strncmp(a, "--queue-depth=", 14) == 0) {
            if (!parseUint32Arg(a + 14, flags.queueDepth)) {
                std::fprintf(stderr,
                             "invalid value '%s' for --queue-depth "
                             "(expected an integer >= 0)\n",
                             a + 14);
                std::exit(2);
            }
        } else {
            rest.push_back(a);
        }
    }
    return flags;
}

/**
 * Drive a seeded Poisson open-loop arrival schedule: `submit(k)` is
 * called at each scheduled arrival on the submitter thread and
 * returns the request's future (an invalid future = rejected by
 * admission). Completion is observed by sweeping the outstanding
 * futures (~tens of µs resolution), so tails are honest even when
 * requests finish out of submission order across programs; a failed
 * batch rethrows via get(), so an errored request can never pass as
 * a clean latency sample. Returns per-request latency in seconds,
 * -2.0 for rejected requests; `wall_seconds` covers the first
 * arrival through the last completion.
 */
std::vector<double>
openLoopDrive(size_t n_requests, double arrival_rate_hz, uint64_t seed,
              const std::function<std::future<SimResult>(size_t)> &submit,
              double &wall_seconds)
{
    std::vector<std::future<SimResult>> futures(n_requests);
    std::vector<Clock::time_point> submitted(n_requests);
    // -1 = in flight, -2 = rejected, >= 0 = latency in seconds.
    std::vector<double> latency(n_requests, -1.0);
    std::atomic<size_t> n_submitted{0};

    Clock::time_point start = Clock::now();
    std::thread submitter([&] {
        Rng rng(seed);
        double t_next = 0; // scheduled arrival offset in seconds
        for (size_t k = 0; k < n_requests; ++k) {
            // Exponential inter-arrival gap for a Poisson process.
            t_next += -std::log(1.0 - rng.uniform()) / arrival_rate_hz;
            for (;;) {
                double dt = t_next - secondsSince(start);
                if (dt <= 0)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(dt));
            }
            submitted[k] = Clock::now();
            std::future<SimResult> f = submit(k);
            if (f.valid())
                futures[k] = std::move(f);
            else
                latency[k] = -2.0;
            n_submitted.store(k + 1, std::memory_order_release);
        }
    });

    // Completion sweep over the accepted, unrecorded futures.
    for (;;) {
        size_t hi = n_submitted.load(std::memory_order_acquire);
        bool progressed = false;
        size_t resolved = 0;
        for (size_t k = 0; k < hi; ++k) {
            if (latency[k] == -1.0 &&
                futures[k].wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                latency[k] = std::chrono::duration<double>(
                                 Clock::now() - submitted[k])
                                 .count();
                futures[k].get(); // rethrow a failed batch
                progressed = true;
            }
            if (latency[k] != -1.0)
                ++resolved;
        }
        if (hi == n_requests && resolved == n_requests)
            break;
        if (!progressed)
            std::this_thread::sleep_for(
                std::chrono::microseconds(20));
    }
    submitter.join();
    wall_seconds = secondsSince(start);
    return latency;
}

/** Open loop: uniform program rotation, no QoS, every request
 *  accepted (unbounded queue). */
ModeResult
runOpenLoop(std::vector<ResidentWorkload> &wl, uint32_t workers,
            size_t n_requests, double arrival_rate_hz,
            EvalFidelity fidelity)
{
    ModeResult out;
    AsyncBatchServer server(serverConfig(workers, 0, fidelity));
    for (auto &w : wl)
        w.handle = server.addProgram(w.prog);

    out.latencies = openLoopDrive(
        n_requests, arrival_rate_hz, 2201,
        [&](size_t k) {
            ResidentWorkload &w = wl[k % wl.size()];
            const auto &input = w.inputs[(k / wl.size()) %
                                         w.inputs.size()];
            return server.submit(w.handle, input);
        },
        out.wallSeconds);
    server.drain();
    out.stats = server.stats();
    return out;
}

/** Closed loop: `clients` threads, each submits its next request only
 *  after the previous completed; latency is exact per request. */
ModeResult
runClosedLoop(std::vector<ResidentWorkload> &wl, uint32_t workers,
              size_t n_requests, size_t clients)
{
    ModeResult out;
    AsyncBatchServer server(serverConfig(workers));
    for (auto &w : wl)
        w.handle = server.addProgram(w.prog);

    std::mutex collect;
    std::vector<double> latencies;
    latencies.reserve(n_requests);

    Clock::time_point start = Clock::now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            size_t mine = n_requests / clients +
                          (c < n_requests % clients ? 1 : 0);
            for (size_t k = 0; k < mine; ++k) {
                ResidentWorkload &w = wl[(c + k) % wl.size()];
                const auto &input =
                    w.inputs[(c * 131 + k) % w.inputs.size()];
                Clock::time_point t0 = Clock::now();
                SimResult r = server.submit(w.handle, input).get();
                double lat = std::chrono::duration<double>(
                                 Clock::now() - t0)
                                 .count();
                std::lock_guard<std::mutex> lock(collect);
                latencies.push_back(lat);
                (void)r;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    server.drain();
    out.wallSeconds = secondsSince(start);
    out.latencies = std::move(latencies);
    out.stats = server.stats();
    return out;
}

/** Outcome of one mixed-priority open-loop run, split by class.
 *  Index 0 = interactive, 1 = batch (matches Priority). */
struct MixedResult
{
    std::array<std::vector<double>, 2> latencies; ///< Seconds.
    std::array<uint64_t, 2> offered{};  ///< Arrivals per class.
    std::array<uint64_t, 2> rejected{}; ///< Admission rejections.
    double wallSeconds = 0;
    AsyncBatchServer::Stats stats;
};

/**
 * Mixed-priority open loop: the same seeded Poisson arrival schedule
 * and class assignment, served either by the QoS scheduler (`qos` =
 * true: interactive band with a deadline and a reserved core for the
 * interactive program, bounded queue) or by the plain FIFO coalescer
 * (`qos` = false: every request default class, no deadlines — but the
 * same queue bound, so admission pressure is comparable). Interactive
 * requests go to wl[0]; batch requests rotate over the rest.
 */
MixedResult
runMixedOpenLoop(std::vector<ResidentWorkload> &wl, uint32_t workers,
                 size_t n_requests, double arrival_rate_hz,
                 const QosFlags &flags, bool qos,
                 EvalFidelity fidelity)
{
    MixedResult out;
    AsyncServerConfig scfg =
        serverConfig(workers, flags.queueDepth, fidelity);
    // Under a fast tier the QoS run also gates admission on the
    // model's service-time prediction (reject what cannot make its
    // deadline even on an empty server).
    scfg.predictiveAdmission = qos && fidelity != EvalFidelity::Cycle;
    AsyncBatchServer server(scfg);
    for (size_t i = 0; i < wl.size(); ++i) {
        QosSpec spec; // default: batch class, shared cores
        if (qos && i == 0) {
            spec.priority = Priority::Interactive;
            spec.minCores = 1; // the interactive program's own core
            spec.deadline =
                std::chrono::microseconds(flags.deadlineUs);
        }
        wl[i].handle = server.addProgram(wl[i].prog, spec);
    }

    // Class assignment drawn up front from its own seed, so the qos
    // and fifo runs see the identical request mix and (via the drive
    // seed) the identical arrival schedule.
    std::vector<uint8_t> interactive(n_requests, 0);
    {
        Rng rng(1789);
        for (size_t k = 0; k < n_requests; ++k)
            interactive[k] = rng.uniform() < flags.priorityMix;
    }

    // Class and deadline come from the program QosSpecs set above;
    // the per-request override form is exercised by the unit tests.
    std::vector<double> latency = openLoopDrive(
        n_requests, arrival_rate_hz, 2301,
        [&](size_t k) {
            ResidentWorkload &w = interactive[k]
                ? wl[0]
                : wl[1 + k % (wl.size() - 1)];
            const auto &input = w.inputs[(k / wl.size()) %
                                         w.inputs.size()];
            return server.trySubmit(w.handle, input).future;
        },
        out.wallSeconds);
    server.drain();
    for (size_t k = 0; k < n_requests; ++k) {
        size_t cls = interactive[k] ? 0 : 1;
        ++out.offered[cls];
        if (latency[k] == -2.0)
            ++out.rejected[cls];
        else
            out.latencies[cls].push_back(latency[k]);
    }
    out.stats = server.stats();
    return out;
}

/** Percentile triple in microseconds; zeros when the class saw no
 *  completed requests (e.g. --priority-mix=0 or 1). */
std::vector<double>
latencyPcts(const std::vector<double> &xs)
{
    if (xs.empty())
        return {0.0, 0.0, 0.0};
    return {percentile(xs, 0.50) * 1e6, percentile(xs, 0.95) * 1e6,
            percentile(xs, 0.99) * 1e6};
}

/** Report one mixed run ("qos"/"fifo") as table rows, typed series
 *  and headline metrics. The deadline-hit rate is computed the same
 *  way for both runs — completion latency vs the interactive
 *  deadline — so the FIFO baseline is directly comparable even
 *  though it never told the server about deadlines. */
void
reportMixed(bench::Context &ctx, TablePrinter &t, const char *mode,
            const MixedResult &r, const QosFlags &flags)
{
    const char *cls_name[2] = {"interactive", "batch"};
    double deadline_s = static_cast<double>(flags.deadlineUs) * 1e-6;
    std::vector<double> hit_rate(2, 1.0);
    std::vector<double> rej_rate(2, 0.0);
    for (size_t cls = 0; cls < 2; ++cls) {
        const std::vector<double> &lat = r.latencies[cls];
        std::vector<double> pcts = latencyPcts(lat);
        if (cls == 0 && !lat.empty()) {
            size_t hits = 0;
            for (double s : lat)
                hits += s <= deadline_s;
            hit_rate[cls] = static_cast<double>(hits) /
                static_cast<double>(lat.size());
        }
        if (r.offered[cls])
            rej_rate[cls] = static_cast<double>(r.rejected[cls]) /
                static_cast<double>(r.offered[cls]);

        std::string prefix =
            std::string(mode) + "_" + cls_name[cls];
        t.row()
            .cell(prefix)
            .num(static_cast<double>(lat.size()), 0)
            .num(r.wallSeconds > 0
                     ? static_cast<double>(lat.size()) / r.wallSeconds
                     : 0.0,
                 1)
            .num(pcts[0], 1)
            .num(pcts[1], 1)
            .num(pcts[2], 1)
            .num(r.stats.meanBatch(), 2);
        ctx.series(prefix + "_latency_pcts_us", pcts);
        ctx.metric(prefix + "_p99_us", pcts[2]);
        ctx.metric(prefix + "_requests",
                   static_cast<double>(lat.size()));
    }
    ctx.series(std::string(mode) + "_deadline_hit_rate", hit_rate);
    ctx.series(std::string(mode) + "_rejection_rate", rej_rate);
    ctx.metric(std::string(mode) + "_interactive_deadline_hit_rate",
               hit_rate[0]);
    ctx.metric(std::string(mode) + "_interactive_rejection_rate",
               rej_rate[0]);
}

void
reportMode(bench::Context &ctx, TablePrinter &t, const char *mode,
           const ModeResult &r)
{
    double p50 = percentile(r.latencies, 0.50) * 1e6;
    double p95 = percentile(r.latencies, 0.95) * 1e6;
    double p99 = percentile(r.latencies, 0.99) * 1e6;
    double rps = r.wallSeconds > 0
        ? static_cast<double>(r.latencies.size()) / r.wallSeconds
        : 0.0;
    t.row()
        .cell(mode)
        .num(static_cast<double>(r.latencies.size()), 0)
        .num(rps, 1)
        .num(p50, 1)
        .num(p95, 1)
        .num(p99, 1)
        .num(r.stats.meanBatch(), 2);

    std::string prefix(mode);
    ctx.series(prefix + "_latency_pcts_us", {p50, p95, p99});
    ctx.metric(prefix + "_requests",
               static_cast<double>(r.latencies.size()));
    ctx.metric(prefix + "_rps", rps);
    ctx.metric(prefix + "_p50_us", p50);
    ctx.metric(prefix + "_p95_us", p95);
    ctx.metric(prefix + "_p99_us", p99);
    ctx.metric(prefix + "_mean_batch", r.stats.meanBatch());
    ctx.metric(prefix + "_batches",
               static_cast<double>(r.stats.batches));
    double modeled_gops = r.stats.modeledWallCycles
        ? static_cast<double>(r.stats.totalOperations) /
            (static_cast<double>(r.stats.modeledWallCycles) /
             tech28::frequencyHz) *
            1e-9
        : 0.0;
    ctx.metric(prefix + "_modeled_gops", modeled_gops);
}

/**
 * Fleet mode (--ranks > 1): replay a seeded million-request-capable
 * open loop in virtual cycle time over the modeled fleet (sim/fleet).
 * The live-thread modes above exercise the rank-aware server on host
 * time; this scenario scales to hundreds of ranks because no host
 * thread ever sleeps — every arrival, window cut, host-link transfer
 * and core grant is a deterministic event on the device clock. The
 * per-rank utilization, transfer-overhead and latency-percentile
 * series are the report tools/run_benches validates in fleet runs.
 */
void
runFleetScenario(bench::Context &ctx,
                 const std::vector<ResidentWorkload> &wl)
{
    const bench::Options &opts = ctx.options();
    FleetSimOptions fopts;
    fopts.topology.ranks = opts.ranks;
    fopts.topology.coresPerRank = 4; // matches serverConfig()
    fopts.transfer = fleetSettings.transfer;
    fopts.placement = opts.placement;
    fopts.maxBatch = 8;
    // The live server's 200 us batching window, on the device clock.
    fopts.windowCycles =
        static_cast<uint64_t>(200e-6 * tech28::frequencyHz);
    fopts.load = 0.7;
    fopts.seed = 2401;
    // Scale the open loop with the fleet: ~20k requests per run at
    // the default scale, growing with ranks up to the million-request
    // ceiling (virtual time keeps even that run in seconds).
    uint64_t base = std::max<uint64_t>(
        2000, static_cast<uint64_t>(100000.0 * ctx.scale()));
    fopts.requests =
        std::min<uint64_t>(1000000, base * opts.ranks);

    std::vector<FleetWorkloadModel> mix;
    for (const ResidentWorkload &w : wl) {
        FleetWorkloadModel m;
        m.runCycles = w.prog.stats.cycles;
        m.hostBytes = hostTransferBytes(w.prog);
        m.weight = 1.0;
        mix.push_back(m);
    }

    FleetSimReport rep = simulateFleet(fopts, mix);

    const double us_per_cycle = 1e6 / tech28::frequencyHz;
    std::vector<double> util, xfer_ovh, p50_us, p95_us, p99_us;
    for (const FleetRankReport &rs : rep.perRank) {
        util.push_back(rs.utilization);
        xfer_ovh.push_back(rs.transferOverhead);
        p50_us.push_back(rs.p50Cycles * us_per_cycle);
        p95_us.push_back(rs.p95Cycles * us_per_cycle);
        p99_us.push_back(rs.p99Cycles * us_per_cycle);
    }
    ctx.series("fleet_rank_utilization", util);
    ctx.series("fleet_rank_transfer_overhead", xfer_ovh);
    ctx.series("fleet_rank_p50_us", p50_us);
    ctx.series("fleet_rank_p95_us", p95_us);
    ctx.series("fleet_rank_p99_us", p99_us);

    ctx.metric("fleet_ranks", static_cast<double>(opts.ranks));
    ctx.metric("fleet_requests", static_cast<double>(rep.requests));
    ctx.metric("fleet_batches", static_cast<double>(rep.batches));
    ctx.metric("fleet_mean_batch", rep.meanBatch);
    ctx.metric("fleet_transfer_overhead", rep.transferOverhead);
    ctx.metric("fleet_p50_us", rep.p50Cycles * us_per_cycle);
    ctx.metric("fleet_p95_us", rep.p95Cycles * us_per_cycle);
    ctx.metric("fleet_p99_us", rep.p99Cycles * us_per_cycle);
    ctx.note("fleet_placement", placementName(opts.placement));

    TablePrinter ft({"rank", "requests", "batches", "util",
                     "xfer ovh", "p50 us", "p95 us", "p99 us"});
    size_t shown = std::min<size_t>(rep.perRank.size(), 16);
    for (size_t r = 0; r < shown; ++r) {
        const FleetRankReport &rs = rep.perRank[r];
        ft.row()
            .num(static_cast<double>(r), 0)
            .num(static_cast<double>(rs.requests), 0)
            .num(static_cast<double>(rs.batches), 0)
            .num(rs.utilization, 3)
            .num(rs.transferOverhead, 3)
            .num(p50_us[r], 1)
            .num(p95_us[r], 1)
            .num(p99_us[r], 1);
    }
    std::printf("\nFleet mode: %u ranks x %u cores, %s placement, "
                "%llu modeled requests (%llu batches).\n",
                opts.ranks, fopts.topology.coresPerRank,
                placementName(opts.placement),
                static_cast<unsigned long long>(rep.requests),
                static_cast<unsigned long long>(rep.batches));
    ft.print();
    ctx.table(ft, "fleet");
    if (shown < rep.perRank.size())
        std::printf("(table truncated to %zu of %zu ranks; the full "
                    "per-rank data is in the JSON series)\n",
                    shown, rep.perRank.size());
    std::printf("Fleet latency: p50 %.1f us, p95 %.1f us, p99 %.1f us "
                "(transfer-inclusive); transfer overhead %.1f%% of "
                "busy cycles.\n",
                rep.p50Cycles * us_per_cycle,
                rep.p95Cycles * us_per_cycle,
                rep.p99Cycles * us_per_cycle,
                100.0 * rep.transferOverhead);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<char *> harness_argv;
    QosFlags qflags = extractQosFlags(argc, argv, harness_argv);
    bench::Context ctx(static_cast<int>(harness_argv.size()),
                       harness_argv.data(), "serve_latency",
                       "§V-C2 serving mode (multi-DAG)", 0.2,
                       "Latency-oriented: individual requests, async "
                       "batching, QoS classes, multiple resident "
                       "DAGs.");
    uint32_t workers = ctx.threads();

    // Resolve the fleet flags once; every server built below (open,
    // closed, qos, fifo) runs rank-aware with the same settings. The
    // defaults (--ranks=1 --xfer-gbps=inf) are a free transfer model
    // on a single rank — byte-identical to the pre-fleet bench.
    fleetSettings.ranks = ctx.options().ranks;
    fleetSettings.transfer = HostTransferModel::fromGbps(
        ctx.options().xferGbps, tech28::frequencyHz);
    fleetSettings.placement = ctx.options().placement;

    // Three resident programs — a mixed multi-DAG population, like
    // the paper's deployed cores executing different DAGs.
    const auto suite = smallSuite();
    std::vector<ResidentWorkload> wl(3);
    for (size_t i = 0; i < wl.size(); ++i) {
        CompileOptions opt;
        wl[i].prog = compileWorkload(suite[i], ctx.scale(),
                                     minEdpConfig(), opt, ctx.cache(),
                                     &wl[i].dag);
        for (uint64_t s = 0; s < 8; ++s)
            wl[i].inputs.push_back(
                bench::randomInputs(wl[i].dag, 2100 + 10 * i + s));
        std::printf("resident[%zu] %-10s %7zu nodes, %6llu cycles\n",
                    i, suite[i].name.c_str(), wl[i].dag.numNodes(),
                    static_cast<unsigned long long>(
                        wl[i].prog.stats.cycles));
    }

    // Calibrate the open-loop arrival rate against measured service
    // capacity: mean sequential service time over a few warm-up runs.
    Clock::time_point cal0 = Clock::now();
    size_t cal_runs = 0;
    for (auto &w : wl)
        for (int k = 0; k < 3; ++k, ++cal_runs)
            Machine(w.prog).run(w.inputs[static_cast<size_t>(k)]);
    double mean_service =
        secondsSince(cal0) / static_cast<double>(cal_runs);
    // Worker threads beyond the physical cores are time-sliced, not
    // extra capacity; offering 0.6 * workers/service on a small host
    // would saturate the open loop and measure pure queueing.
    uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    double effective_workers = std::min(workers, hw);
    double capacity_rps =
        effective_workers / std::max(mean_service, 1e-7);
    double arrival_rate = 0.6 * capacity_rps; // below saturation
    std::printf("calibration: %.1f us mean service, %.0f rps capacity "
                "(%u workers, %u hw threads) -> open-loop rate "
                "%.0f rps\n\n",
                mean_service * 1e6, capacity_rps, workers, hw,
                arrival_rate);
    ctx.metric("mean_service_us", mean_service * 1e6);

    size_t n_requests = std::max<size_t>(
        48, static_cast<size_t>(600.0 * ctx.scale()));
    size_t clients = std::max<size_t>(2, 2 * workers);

    EvalFidelity fidelity = ctx.options().fidelity;
    ModeResult open =
        runOpenLoop(wl, workers, n_requests, arrival_rate, fidelity);
    ModeResult closed =
        runClosedLoop(wl, workers, n_requests, clients);

    // Mixed-priority comparison: identical arrival schedule, QoS
    // scheduler vs plain FIFO coalescing. Unlike the plain open loop
    // (kept below saturation to measure clean service latency), this
    // one is deliberately offered *above* capacity: only under a
    // standing backlog is there anything for the priority band and
    // the reserved core to shield interactive requests from.
    // 2x capacity builds a backlog that grows for the whole run; the
    // request count floor keeps enough interactive samples for a
    // stable p99 even at --quick (the run stays service-bound, so
    // this costs tens of milliseconds, not seconds).
    double mixed_rate = 2.0 * capacity_rps;
    size_t mixed_requests = std::max<size_t>(n_requests, 400);
    MixedResult mixed_qos = runMixedOpenLoop(
        wl, workers, mixed_requests, mixed_rate, qflags, true,
        fidelity);
    MixedResult mixed_fifo = runMixedOpenLoop(
        wl, workers, mixed_requests, mixed_rate, qflags, false,
        fidelity);

    TablePrinter t({"mode", "requests", "req/s", "p50 us", "p95 us",
                    "p99 us", "mean batch"});
    reportMode(ctx, t, "open", open);
    reportMode(ctx, t, "closed", closed);
    reportMixed(ctx, t, "qos", mixed_qos, qflags);
    reportMixed(ctx, t, "fifo", mixed_fifo, qflags);
    t.print();
    ctx.table(t);
    ctx.metric("resident_programs", static_cast<double>(wl.size()));
    ctx.metric("closed_clients", static_cast<double>(clients));
    ctx.metric("server_workers", workers);
    ctx.metric("priority_mix", qflags.priorityMix);
    ctx.metric("deadline_us", static_cast<double>(qflags.deadlineUs));
    ctx.metric("queue_depth", static_cast<double>(qflags.queueDepth));
    ctx.metric("qos_deadline_dispatches",
               static_cast<double>(mixed_qos.stats.deadlineDispatches));

    // Admission-estimate error: fast-tier predicted vs actual batch
    // service time, from the open-loop run (the clean, unsaturated
    // service measurement). Predictions start once the server has
    // calibrated its cycle->microsecond rate on the first batch.
    {
        std::vector<double> predicted_us, actual_us, rel_err;
        for (const auto &s : open.stats.serviceSamples) {
            predicted_us.push_back(s.predictedUs);
            actual_us.push_back(s.actualUs);
            if (s.actualUs > 0)
                rel_err.push_back(
                    std::abs(s.predictedUs - s.actualUs) / s.actualUs);
        }
        ctx.series("admission_predicted_service_us", predicted_us);
        ctx.series("admission_actual_service_us", actual_us);
        ctx.series("admission_estimate_rel_error", rel_err);
        double mean_err = 0;
        for (double e : rel_err)
            mean_err += e;
        if (!rel_err.empty())
            mean_err /= static_cast<double>(rel_err.size());
        ctx.metric("admission_estimate_mean_rel_error", mean_err);
        ctx.metric("admission_predictions",
                   static_cast<double>(open.stats.servicePredictions));
        ctx.metric("qos_predicted_deadline_rejections",
                   static_cast<double>(
                       mixed_qos.stats.predictedDeadlineRejections));
        ctx.note("fidelity", fidelityName(fidelity));
        std::printf("\nAdmission estimates (%s tier): %zu samples, "
                    "mean |rel error| %.3f; predictive rejections "
                    "%llu.\n",
                    fidelityName(fidelity), rel_err.size(), mean_err,
                    static_cast<unsigned long long>(
                        mixed_qos.stats.predictedDeadlineRejections));
    }

    std::printf("\nOpen loop: %.0f rps offered; batches cut by "
                "size/window/drain = %llu/%llu/%llu.\n",
                arrival_rate,
                static_cast<unsigned long long>(
                    open.stats.sizeDispatches),
                static_cast<unsigned long long>(
                    open.stats.windowDispatches),
                static_cast<unsigned long long>(
                    open.stats.drainDispatches));
    std::printf("Closed loop: %zu clients; mean batch %.2f (batching "
                "only helps when clients outnumber workers).\n",
                clients, closed.stats.meanBatch());

    auto p99_of = [](const MixedResult &m) {
        return latencyPcts(m.latencies[0])[2];
    };
    std::printf("Mixed priority (%.0f%% interactive, %llu us "
                "deadline): interactive p99 %.1f us under QoS vs "
                "%.1f us under FIFO; deadline cuts %llu, "
                "rejections %llu/%llu.\n",
                100.0 * qflags.priorityMix,
                static_cast<unsigned long long>(qflags.deadlineUs),
                p99_of(mixed_qos), p99_of(mixed_fifo),
                static_cast<unsigned long long>(
                    mixed_qos.stats.deadlineDispatches),
                static_cast<unsigned long long>(
                    mixed_qos.rejected[0] + mixed_qos.rejected[1]),
                static_cast<unsigned long long>(
                    mixed_fifo.rejected[0] + mixed_fifo.rejected[1]));

    if (fleetSettings.ranks > 1) {
        // The live server's own per-rank accounting (open loop), then
        // the virtual-time fleet scenario that scales past what host
        // threads can replay.
        std::vector<double> srv_batches, srv_requests, srv_xfer;
        for (const auto &rs : open.stats.perRank) {
            srv_batches.push_back(static_cast<double>(rs.batches));
            srv_requests.push_back(static_cast<double>(rs.requests));
            srv_xfer.push_back(
                static_cast<double>(rs.transferCycles));
        }
        ctx.series("server_rank_batches", srv_batches);
        ctx.series("server_rank_requests", srv_requests);
        ctx.series("server_rank_transfer_cycles", srv_xfer);
        ctx.metric("server_transfer_cycles",
                   static_cast<double>(open.stats.transferCycles));
        runFleetScenario(ctx, wl);
    }
    return ctx.finish();
}
