/**
 * @file
 * serve_latency — the serving-mode bench (paper §V-C2: the deployed
 * cores "execute different DAGs" rather than one benchmarking batch).
 * The first latency-oriented workload in the repo: requests arrive
 * individually at an AsyncBatchServer holding several resident
 * programs, coalesce inside the batching window, and the report
 * carries p50/p95/p99 request latency plus throughput for two arrival
 * modes:
 *
 *   - open loop: exponential inter-arrival times at a rate calibrated
 *     to a fraction of measured service capacity (arrival times do
 *     not depend on completions — queueing shows up as tail latency),
 *   - closed loop: a fixed set of concurrent clients, each submitting
 *     its next request only when the previous one completed.
 *
 * Per-request *results* are batching-invariant (see sim/async.hh);
 * only the latency numbers depend on timing, so this report is a host
 * measurement, not a modeled one — except the modeled-GOPS metric
 * folded from the server's batch accounting.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "harness.hh"
#include "model/tech28.hh"
#include "sim/async.hh"
#include "support/rng.hh"

using namespace dpu;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Sorted-vector percentile (nearest-rank). `xs` must be non-empty. */
double
percentile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(xs.size())));
    if (rank == 0)
        rank = 1;
    return xs[std::min(rank, xs.size()) - 1];
}

struct ModeResult
{
    std::vector<double> latencies; ///< Seconds, per request.
    double wallSeconds = 0;
    AsyncBatchServer::Stats stats;
};

/** One workload resident on the serving side. */
struct ResidentWorkload
{
    Dag dag;
    CompiledProgram prog;
    AsyncBatchServer::ProgramHandle handle = 0;
    std::vector<std::vector<double>> inputs; ///< Rotating pool.
};

AsyncServerConfig
serverConfig(uint32_t workers)
{
    AsyncServerConfig cfg;
    cfg.cores = 4; // the paper's deployed system
    cfg.maxBatch = 8;
    cfg.batchWindow = std::chrono::microseconds(200);
    cfg.workers = workers;
    return cfg;
}

/** Open loop: timed submits on one thread, completion polling on the
 *  caller. Completion is observed by sweeping the outstanding futures
 *  (~tens of µs resolution), so tails are honest even when requests
 *  finish out of submission order across programs. */
ModeResult
runOpenLoop(std::vector<ResidentWorkload> &wl, uint32_t workers,
            size_t n_requests, double arrival_rate_hz)
{
    ModeResult out;
    AsyncBatchServer server(serverConfig(workers));
    for (auto &w : wl)
        w.handle = server.addProgram(w.prog);

    std::vector<std::future<SimResult>> futures(n_requests);
    std::vector<Clock::time_point> submitted(n_requests);
    std::vector<double> latency(n_requests, -1.0);
    std::atomic<size_t> n_submitted{0};

    Clock::time_point start = Clock::now();
    std::thread submitter([&] {
        Rng rng(2201);
        double t_next = 0; // scheduled arrival offset in seconds
        for (size_t k = 0; k < n_requests; ++k) {
            // Exponential inter-arrival gap for a Poisson process.
            t_next += -std::log(1.0 - rng.uniform()) / arrival_rate_hz;
            for (;;) {
                double dt = t_next - secondsSince(start);
                if (dt <= 0)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(dt));
            }
            ResidentWorkload &w = wl[k % wl.size()];
            const auto &input = w.inputs[(k / wl.size()) %
                                         w.inputs.size()];
            submitted[k] = Clock::now();
            futures[k] = server.submit(w.handle, input);
            n_submitted.store(k + 1, std::memory_order_release);
        }
    });

    // Completion sweep over the submitted-but-unrecorded futures.
    size_t done = 0;
    while (done < n_requests) {
        size_t hi = n_submitted.load(std::memory_order_acquire);
        bool progressed = false;
        for (size_t k = 0; k < hi; ++k) {
            if (latency[k] >= 0)
                continue;
            if (futures[k].wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                latency[k] = std::chrono::duration<double>(
                                 Clock::now() - submitted[k])
                                 .count();
                // get() rethrows a failed batch; a request that
                // errored must not pass as a clean latency sample.
                futures[k].get();
                ++done;
                progressed = true;
            }
        }
        if (!progressed)
            std::this_thread::sleep_for(
                std::chrono::microseconds(20));
    }
    submitter.join();
    server.drain();
    out.wallSeconds = secondsSince(start);
    out.latencies = std::move(latency);
    out.stats = server.stats();
    return out;
}

/** Closed loop: `clients` threads, each submits its next request only
 *  after the previous completed; latency is exact per request. */
ModeResult
runClosedLoop(std::vector<ResidentWorkload> &wl, uint32_t workers,
              size_t n_requests, size_t clients)
{
    ModeResult out;
    AsyncBatchServer server(serverConfig(workers));
    for (auto &w : wl)
        w.handle = server.addProgram(w.prog);

    std::mutex collect;
    std::vector<double> latencies;
    latencies.reserve(n_requests);

    Clock::time_point start = Clock::now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            size_t mine = n_requests / clients +
                          (c < n_requests % clients ? 1 : 0);
            for (size_t k = 0; k < mine; ++k) {
                ResidentWorkload &w = wl[(c + k) % wl.size()];
                const auto &input =
                    w.inputs[(c * 131 + k) % w.inputs.size()];
                Clock::time_point t0 = Clock::now();
                SimResult r = server.submit(w.handle, input).get();
                double lat = std::chrono::duration<double>(
                                 Clock::now() - t0)
                                 .count();
                std::lock_guard<std::mutex> lock(collect);
                latencies.push_back(lat);
                (void)r;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    server.drain();
    out.wallSeconds = secondsSince(start);
    out.latencies = std::move(latencies);
    out.stats = server.stats();
    return out;
}

void
reportMode(bench::Context &ctx, TablePrinter &t, const char *mode,
           const ModeResult &r)
{
    double p50 = percentile(r.latencies, 0.50) * 1e6;
    double p95 = percentile(r.latencies, 0.95) * 1e6;
    double p99 = percentile(r.latencies, 0.99) * 1e6;
    double rps = r.wallSeconds > 0
        ? static_cast<double>(r.latencies.size()) / r.wallSeconds
        : 0.0;
    t.row()
        .cell(mode)
        .num(static_cast<double>(r.latencies.size()), 0)
        .num(rps, 1)
        .num(p50, 1)
        .num(p95, 1)
        .num(p99, 1)
        .num(r.stats.meanBatch(), 2);

    std::string prefix(mode);
    ctx.metric(prefix + "_requests",
               static_cast<double>(r.latencies.size()));
    ctx.metric(prefix + "_rps", rps);
    ctx.metric(prefix + "_p50_us", p50);
    ctx.metric(prefix + "_p95_us", p95);
    ctx.metric(prefix + "_p99_us", p99);
    ctx.metric(prefix + "_mean_batch", r.stats.meanBatch());
    ctx.metric(prefix + "_batches",
               static_cast<double>(r.stats.batches));
    double modeled_gops = r.stats.modeledWallCycles
        ? static_cast<double>(r.stats.totalOperations) /
            (static_cast<double>(r.stats.modeledWallCycles) /
             tech28::frequencyHz) *
            1e-9
        : 0.0;
    ctx.metric(prefix + "_modeled_gops", modeled_gops);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "serve_latency",
                       "§V-C2 serving mode (multi-DAG)", 0.2,
                       "Latency-oriented: individual requests, async "
                       "batching, multiple resident DAGs.");
    uint32_t workers = ctx.threads();

    // Three resident programs — a mixed multi-DAG population, like
    // the paper's deployed cores executing different DAGs.
    const auto suite = smallSuite();
    std::vector<ResidentWorkload> wl(3);
    for (size_t i = 0; i < wl.size(); ++i) {
        CompileOptions opt;
        wl[i].prog = compileWorkload(suite[i], ctx.scale(),
                                     minEdpConfig(), opt, ctx.cache(),
                                     &wl[i].dag);
        for (uint64_t s = 0; s < 8; ++s)
            wl[i].inputs.push_back(
                bench::randomInputs(wl[i].dag, 2100 + 10 * i + s));
        std::printf("resident[%zu] %-10s %7zu nodes, %6llu cycles\n",
                    i, suite[i].name.c_str(), wl[i].dag.numNodes(),
                    static_cast<unsigned long long>(
                        wl[i].prog.stats.cycles));
    }

    // Calibrate the open-loop arrival rate against measured service
    // capacity: mean sequential service time over a few warm-up runs.
    Clock::time_point cal0 = Clock::now();
    size_t cal_runs = 0;
    for (auto &w : wl)
        for (int k = 0; k < 3; ++k, ++cal_runs)
            Machine(w.prog).run(w.inputs[static_cast<size_t>(k)]);
    double mean_service =
        secondsSince(cal0) / static_cast<double>(cal_runs);
    // Worker threads beyond the physical cores are time-sliced, not
    // extra capacity; offering 0.6 * workers/service on a small host
    // would saturate the open loop and measure pure queueing.
    uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    double effective_workers = std::min(workers, hw);
    double capacity_rps =
        effective_workers / std::max(mean_service, 1e-7);
    double arrival_rate = 0.6 * capacity_rps; // below saturation
    std::printf("calibration: %.1f us mean service, %.0f rps capacity "
                "(%u workers, %u hw threads) -> open-loop rate "
                "%.0f rps\n\n",
                mean_service * 1e6, capacity_rps, workers, hw,
                arrival_rate);
    ctx.metric("mean_service_us", mean_service * 1e6);

    size_t n_requests = std::max<size_t>(
        48, static_cast<size_t>(600.0 * ctx.scale()));
    size_t clients = std::max<size_t>(2, 2 * workers);

    ModeResult open =
        runOpenLoop(wl, workers, n_requests, arrival_rate);
    ModeResult closed =
        runClosedLoop(wl, workers, n_requests, clients);

    TablePrinter t({"mode", "requests", "req/s", "p50 us", "p95 us",
                    "p99 us", "mean batch"});
    reportMode(ctx, t, "open", open);
    reportMode(ctx, t, "closed", closed);
    t.print();
    ctx.table(t);
    ctx.metric("resident_programs", static_cast<double>(wl.size()));
    ctx.metric("closed_clients", static_cast<double>(clients));
    ctx.metric("server_workers", workers);

    std::printf("\nOpen loop: %.0f rps offered; batches cut by "
                "size/window/drain = %llu/%llu/%llu.\n",
                arrival_rate,
                static_cast<unsigned long long>(
                    open.stats.sizeDispatches),
                static_cast<unsigned long long>(
                    open.stats.windowDispatches),
                static_cast<unsigned long long>(
                    open.stats.drainDispatches));
    std::printf("Closed loop: %zu clients; mean batch %.2f (batching "
                "only helps when clients outnumber workers).\n",
                clients, closed.stats.meanBatch());
    return ctx.finish();
}
