/**
 * @file
 * E17 — ablations of the compiler's two scheduling heuristics:
 * (1) conflict-aware vs random bank mapping, measured end-to-end in
 *     cycles (not just conflict counts — fig. 10(b)'s complement);
 * (2) the pipeline-reorder window (step 3): 1 (no reordering) vs 8
 *     vs the paper's 300.
 */

#include "harness.hh"

#include "workloads/pc_generator.hh"

#include <algorithm>
#include <thread>

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "ablation_mapper",
                       "design-choice ablation (DESIGN.md E17)", 0.5);
    double scale = ctx.scale();

    std::printf("Bank-mapping policy (end-to-end cycles):\n");
    TablePrinter t1({"workload", "conflict-aware", "random",
                     "slowdown", "copies aware", "copies random"});
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        CompileOptions smart;
        CompileOptions naive;
        naive.bankPolicy = BankPolicy::Random;
        auto a = bench::runWorkload(d, minEdpConfig(), smart);
        auto b = bench::runWorkload(d, minEdpConfig(), naive);
        using K = InstrKind;
        t1.row()
            .cell(spec.name)
            .num(static_cast<long long>(a.sim.stats.cycles))
            .num(static_cast<long long>(b.sim.stats.cycles))
            .num(double(b.sim.stats.cycles) / a.sim.stats.cycles, 2)
            .num(static_cast<long long>(
                a.program.stats.kindCount[size_t(K::Copy4)]))
            .num(static_cast<long long>(
                b.program.stats.kindCount[size_t(K::Copy4)]));
    }
    t1.print();
    ctx.table(t1, "bank_policy");

    std::printf("\nReorder window (step 3):\n");
    TablePrinter t2({"workload", "window=1", "window=8", "window=300",
                     "nops w=1", "nops w=300"});
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        uint64_t cycles[3], nops[3];
        uint32_t windows[3] = {1, 8, 300};
        for (int i = 0; i < 3; ++i) {
            CompileOptions opt;
            opt.reorderWindow = windows[i];
            auto r = bench::runWorkload(d, minEdpConfig(), opt);
            cycles[i] = r.sim.stats.cycles;
            nops[i] = r.program.stats.nops;
        }
        t2.row()
            .cell(spec.name)
            .num(static_cast<long long>(cycles[0]))
            .num(static_cast<long long>(cycles[1]))
            .num(static_cast<long long>(cycles[2]))
            .num(static_cast<long long>(nops[0]))
            .num(static_cast<long long>(nops[2]));
    }
    t2.print();
    ctx.table(t2, "reorder_window");

    // (3) Boundary-aware bank mapping on partitioned compiles:
    // boundary-oblivious mapping (each range mapped blind to its
    // predecessors) vs the default chained mapping. Conflicts and
    // instruction counts come straight from the compiler — no
    // simulation needed for this ablation.
    std::printf("\nBoundary-aware bank mapping (partitioned):\n");
    TablePrinter t3({"workload", "conflicts obliv", "conflicts aware",
                     "reduction", "instrs obliv", "instrs aware"});
    std::vector<double> confObliv, confAware, instrObliv, instrAware;
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        CompileOptions obliv;
        obliv.partitionNodes = std::max<uint32_t>(
            500, static_cast<uint32_t>(d.numOperations() / 8));
        obliv.boundaryAwareBanks = false;
        CompileOptions aware = obliv;
        aware.boundaryAwareBanks = true;
        CompiledProgram a = compile(d, minEdpConfig(), obliv);
        CompiledProgram b = compile(d, minEdpConfig(), aware);
        confObliv.push_back(double(a.stats.bankConflicts));
        confAware.push_back(double(b.stats.bankConflicts));
        instrObliv.push_back(double(a.stats.instructions));
        instrAware.push_back(double(b.stats.instructions));
        t3.row()
            .cell(spec.name)
            .num(static_cast<long long>(a.stats.bankConflicts))
            .num(static_cast<long long>(b.stats.bankConflicts))
            .num(a.stats.bankConflicts
                     ? 1.0 - double(b.stats.bankConflicts) /
                                 double(a.stats.bankConflicts)
                     : 0.0,
                 3)
            .num(static_cast<long long>(a.stats.instructions))
            .num(static_cast<long long>(b.stats.instructions));
    }
    t3.print();
    ctx.table(t3, "boundary_mapping");
    ctx.series("mapper_boundary_conflicts_oblivious", confObliv);
    ctx.series("mapper_boundary_conflicts_aware", confAware);
    ctx.series("mapper_boundary_instructions_oblivious", instrObliv);
    ctx.series("mapper_boundary_instructions_aware", instrAware);

    // (4) Pipelined steps 3-4: compile wall-clock of one partitioned
    // random PC at 1 thread vs the host's worker count. Both produce
    // byte-identical programs; only the latency differs.
    uint32_t host = std::max(2u, std::min(
        8u, std::thread::hardware_concurrency()));
    size_t ops = std::max<size_t>(4000, size_t(20000 * scale));
    Dag big = generateRandomDag(64, ops, 7);
    CompileOptions seq;
    seq.partitionNodes = 1000;
    seq.threads = 1;
    CompileOptions par = seq;
    par.threads = host;
    CompiledProgram p1 = compile(big, minEdpConfig(), seq);
    CompiledProgram pn = compile(big, minEdpConfig(), par);
    std::printf("\nPipelined steps 3-4 (%zu-op PC, %u partitions): "
                "%.3fs at 1 thread, %.3fs at %u threads (%.2fx)\n",
                ops, uint32_t((ops + 999) / 1000),
                p1.stats.compileSeconds, pn.stats.compileSeconds, host,
                pn.stats.compileSeconds > 0.0
                    ? p1.stats.compileSeconds / pn.stats.compileSeconds
                    : 0.0);
    ctx.series("compile_pipeline_seconds",
               {p1.stats.compileSeconds, pn.stats.compileSeconds});

    std::printf("\nExpected shape: random banking costs extra copy "
                "stalls; no reordering (window=1) drowns in nops; the "
                "paper's window of 300 recovers most of it; "
                "boundary-aware mapping trims cross-partition "
                "conflicts; pipelined reorder/finalize cuts "
                "partitioned compile latency.\n");
    return ctx.finish();
}
