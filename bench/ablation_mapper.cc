/**
 * @file
 * E17 — ablations of the compiler's two scheduling heuristics:
 * (1) conflict-aware vs random bank mapping, measured end-to-end in
 *     cycles (not just conflict counts — fig. 10(b)'s complement);
 * (2) the pipeline-reorder window (step 3): 1 (no reordering) vs 8
 *     vs the paper's 300.
 */

#include "harness.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "ablation_mapper",
                       "design-choice ablation (DESIGN.md E17)", 0.5);
    double scale = ctx.scale();

    std::printf("Bank-mapping policy (end-to-end cycles):\n");
    TablePrinter t1({"workload", "conflict-aware", "random",
                     "slowdown", "copies aware", "copies random"});
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        CompileOptions smart;
        CompileOptions naive;
        naive.bankPolicy = BankPolicy::Random;
        auto a = bench::runWorkload(d, minEdpConfig(), smart);
        auto b = bench::runWorkload(d, minEdpConfig(), naive);
        using K = InstrKind;
        t1.row()
            .cell(spec.name)
            .num(static_cast<long long>(a.sim.stats.cycles))
            .num(static_cast<long long>(b.sim.stats.cycles))
            .num(double(b.sim.stats.cycles) / a.sim.stats.cycles, 2)
            .num(static_cast<long long>(
                a.program.stats.kindCount[size_t(K::Copy4)]))
            .num(static_cast<long long>(
                b.program.stats.kindCount[size_t(K::Copy4)]));
    }
    t1.print();
    ctx.table(t1, "bank_policy");

    std::printf("\nReorder window (step 3):\n");
    TablePrinter t2({"workload", "window=1", "window=8", "window=300",
                     "nops w=1", "nops w=300"});
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        uint64_t cycles[3], nops[3];
        uint32_t windows[3] = {1, 8, 300};
        for (int i = 0; i < 3; ++i) {
            CompileOptions opt;
            opt.reorderWindow = windows[i];
            auto r = bench::runWorkload(d, minEdpConfig(), opt);
            cycles[i] = r.sim.stats.cycles;
            nops[i] = r.program.stats.nops;
        }
        t2.row()
            .cell(spec.name)
            .num(static_cast<long long>(cycles[0]))
            .num(static_cast<long long>(cycles[1]))
            .num(static_cast<long long>(cycles[2]))
            .num(static_cast<long long>(nops[0]))
            .num(static_cast<long long>(nops[2]));
    }
    t2.print();
    ctx.table(t2, "reorder_window");
    std::printf("\nExpected shape: random banking costs extra copy "
                "stalls; no reordering (window=1) drowns in nops; the "
                "paper's window of 300 recovers most of it.\n");
    return ctx.finish();
}
