/**
 * @file
 * Shared helpers for the bench binaries. Every bench regenerates one
 * table or figure of the paper (see DESIGN.md's per-experiment index)
 * and prints the corresponding rows/series, with the paper's values
 * alongside where they are fixed reference points.
 */

#ifndef DPU_BENCH_COMMON_HH
#define DPU_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <string>

#include "compiler/compiler.hh"
#include "model/energy.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "support/table.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace bench {

/** Everything one workload run produces. */
struct RunResult
{
    CompiledProgram program;
    SimResult sim;
    EnergyBreakdown energy;
};

/** Deterministic inputs in the well-conditioned band. */
inline std::vector<double>
randomInputs(const Dag &dag, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> in(dag.numInputs());
    for (double &x : in)
        x = 0.5 + rng.uniform();
    return in;
}

/** Compile + simulate (with functional check) + evaluate energy. */
inline RunResult
runWorkload(const Dag &dag, const ArchConfig &cfg,
            const CompileOptions &opt = {}, uint64_t seed = 1)
{
    RunResult r;
    r.program = compile(dag, cfg, opt);
    r.sim = runAndCheck(r.program, dag, randomInputs(dag, seed));
    r.energy = energyOf(cfg, r.sim.stats,
                        r.program.stats.numOperations);
    return r;
}

/** Parse a `--scale=<float>` / `--full` command line. */
inline double
parseScale(int argc, char **argv, double default_scale)
{
    double scale = default_scale;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            scale = std::atof(argv[i] + 8);
        else if (std::strcmp(argv[i], "--full") == 0)
            scale = 1.0;
    }
    return scale;
}

/** Standard bench banner. */
inline void
banner(const char *experiment, const char *paper_element,
       const std::string &note = "")
{
    std::printf("=== %s — reproduces %s ===\n", experiment,
                paper_element);
    if (!note.empty())
        std::printf("%s\n", note.c_str());
    std::printf("\n");
}

} // namespace bench
} // namespace dpu

#endif // DPU_BENCH_COMMON_HH
