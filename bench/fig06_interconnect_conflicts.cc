/**
 * @file
 * E3 — fig. 6(e): bank conflicts under the three output-interconnect
 * topologies (full crossbar / one-PE-per-layer / one-PE-per-bank),
 * normalized to the crossbar.
 */

#include "compiler/blocks.hh"
#include "compiler/mapper.hh"
#include "dag/binarize.hh"
#include "harness.hh"

using namespace dpu;

namespace {

uint64_t
conflictsFor(const Dag &dag, OutputInterconnect net)
{
    ArchConfig cfg = minEdpConfig();
    cfg.outputNet = net;
    auto bin = binarize(dag);
    auto dec = decomposeIntoBlocks(bin.dag, cfg, 1);
    return assignBanks(bin.dag, cfg, dec).readConflicts;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig06_interconnect_conflicts",
                       "Figure 6(e)");
    double scale = ctx.scale();

    uint64_t a = 0, b = 0, c = 0;
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        a += conflictsFor(d, OutputInterconnect::Crossbar);
        b += conflictsFor(d, OutputInterconnect::PerLayerSubtree);
        c += conflictsFor(d, OutputInterconnect::OnePerPe);
    }
    double base_b = static_cast<double>(std::max<uint64_t>(b, 1));
    TablePrinter t({"design", "output interconnect", "conflicts",
                    "vs (b)", "paper vs (b)"});
    t.row().cell("(a)").cell("full crossbar")
        .num(static_cast<long long>(a)).num(a / base_b, 2)
        .cell("0.42x");
    t.row().cell("(b)").cell("one PE per layer (D:1 mux)")
        .num(static_cast<long long>(b)).num(1.0, 2).cell("1x");
    t.row().cell("(c)").cell("one PE per bank")
        .num(static_cast<long long>(c)).num(c / base_b, 2)
        .cell("7.9x");
    t.print();
    ctx.table(t);
    ctx.metric("crossbar_vs_b", a / base_b);
    ctx.metric("one_per_pe_vs_b", c / base_b);
    std::printf("\nExpected shape (paper, renormalized to (b)): (a) "
                "below (b); (c) roughly an order of magnitude above. "
                "Our step-2 mapper removes (a)'s conflicts entirely "
                "(the paper's 1x baseline is small but nonzero).\n"
                "The paper selects (b): its conflicts cost ~1%% "
                "latency but the missing crossbar saves ~9%% power.\n");
    return ctx.finish();
}
