/**
 * @file
 * E7 — fig. 11: the 48-point design-space exploration over
 * (D, B, R): latency/op, energy/op and EDP per design point, plus
 * the three optima. Runs as a sharded sweep (model/dse.hh) on
 * --threads host workers; per-shard wall time and program-cache
 * hit rate land as typed series.
 */

#include <algorithm>
#include <chrono>
#include <cmath>

#include "harness.hh"
#include "model/dse.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig11_dse", "Figure 11 (a)-(c)",
                       0.3,
                       "Sweep of D in {1,2,3}, B in {8..64}, R in "
                       "{16..128} (use --full for paper-size "
                       "workloads, --threads=N for a sharded sweep).");

    DseSweepOptions sopt;
    sopt.space.workloadScale = ctx.scale();
    sopt.threads = ctx.threads();
    sopt.shards = std::max(4u, ctx.threads());
    sopt.cache = ctx.cache();
    sopt.fidelity = ctx.options().fidelity;
    auto start = std::chrono::steady_clock::now();
    DseSweepResult sweep = runDseSweep(sopt);
    double sweep_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const std::vector<DsePoint> &pts = sweep.points;

    TablePrinter t({"design", "latency/op (ns)", "energy/op (pJ)",
                    "EDP (pJ*ns)", "area (mm2)", "power (W)"});
    std::vector<double> latency_series, energy_series, edp_series;
    for (const auto &p : pts) {
        if (!p.feasible) {
            t.row().cell(p.cfg.label()).cell("-").cell("-")
                .cell("infeasible").num(p.areaMm2, 2).cell("-");
            continue;
        }
        t.row()
            .cell(p.cfg.label())
            .num(p.latencyPerOpNs, 3)
            .num(p.energyPerOpPj, 1)
            .num(p.edpPjNs, 1)
            .num(p.areaMm2, 2)
            .num(p.powerWatts, 3);
        latency_series.push_back(p.latencyPerOpNs);
        energy_series.push_back(p.energyPerOpPj);
        edp_series.push_back(p.edpPjNs);
    }
    t.print();
    ctx.table(t);
    ctx.series("latency_per_op_ns", latency_series);
    ctx.series("energy_per_op_pj", energy_series);
    ctx.series("edp_pj_ns", edp_series);

    // Per-shard execution profile: wall seconds and cache hit rate
    // are host-side observations (they vary run to run); the point
    // series above are model outputs and deterministic.
    std::vector<double> shard_seconds, shard_points, shard_hit_rate;
    for (const DseShardReport &r : sweep.shardReports) {
        shard_seconds.push_back(r.seconds);
        shard_points.push_back(static_cast<double>(r.points));
        shard_hit_rate.push_back(r.hitRate());
    }
    ctx.series("shard_seconds", shard_seconds);
    ctx.series("shard_points", shard_points);
    ctx.series("shard_cache_hit_rate", shard_hit_rate);
    ctx.metric("sweep_host_seconds", sweep_seconds);
    ctx.metric("sweep_shards",
               static_cast<double>(sweep.shardReports.size()));

    // Tier-error audit: with a fast --fidelity, re-evaluate only the
    // frontier points cycle-accurately and record the relative error
    // per metric (latency must come out exactly 0 — the fast tiers
    // are exact in latency; the energy series is the real envelope).
    if (ctx.options().fidelity != EvalFidelity::Cycle) {
        std::vector<size_t> frontier = paretoFrontier(pts);
        std::vector<WorkloadSpec> suite = sopt.space.suite.empty()
                                              ? smallSuite()
                                              : sopt.space.suite;
        std::vector<double> lat_err, energy_err;
        for (size_t i : frontier) {
            const DsePoint &fast = pts[i];
            DsePoint exact = evaluateDesign(
                fast.cfg, suite, fast.workloadScale, sopt.space.seed,
                fast.cores, ctx.cache());
            if (!exact.feasible)
                continue;
            lat_err.push_back(exact.latencyPerOpNs > 0
                                  ? std::abs(fast.latencyPerOpNs -
                                             exact.latencyPerOpNs) /
                                        exact.latencyPerOpNs
                                  : 0.0);
            energy_err.push_back(exact.energyPerOpPj > 0
                                     ? std::abs(fast.energyPerOpPj -
                                                exact.energyPerOpPj) /
                                           exact.energyPerOpPj
                                     : 0.0);
        }
        ctx.series("frontier_latency_rel_error", lat_err);
        ctx.series("frontier_energy_rel_error", energy_err);
        double worst = 0;
        for (double e : energy_err)
            worst = std::max(worst, e);
        ctx.metric("frontier_energy_rel_error_max", worst);
        std::printf("\ntier %s: worst frontier energy error %.4f "
                    "(declared envelope %.2f)\n",
                    fidelityName(ctx.options().fidelity), worst,
                    evalErrorBounds(ctx.options().fidelity).energyRel);
    }

    size_t min_latency = minLatencyIndex(pts);
    size_t min_energy = minEnergyIndex(pts);
    size_t min_edp = minEdpIndex(pts);
    if (min_edp == kDseNpos) {
        // Every point failed to fit the suite (tiny register axes);
        // report that instead of indexing nothing.
        std::printf("\nno feasible design point in the sweep\n");
        ctx.note("min_latency", "none");
        ctx.note("min_energy", "none");
        ctx.note("min_edp", "none");
        return ctx.finish();
    }
    std::printf("\nmin latency: %s (paper: D3.B64.R128)\n",
                pts[min_latency].cfg.label().c_str());
    std::printf("min energy:  %s (paper: D3.B16.R64)\n",
                pts[min_energy].cfg.label().c_str());
    std::printf("min EDP:     %s (paper: D3.B64.R32)\n",
                pts[min_edp].cfg.label().c_str());
    ctx.note("min_latency", pts[min_latency].cfg.label());
    ctx.note("min_energy", pts[min_energy].cfg.label());
    ctx.note("min_edp", pts[min_edp].cfg.label());
    ctx.metric("min_edp_pj_ns", pts[min_edp].edpPjNs);
    ctx.metric("frontier_size",
               static_cast<double>(paretoFrontier(pts).size()));
    return ctx.finish();
}
