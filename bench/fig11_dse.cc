/**
 * @file
 * E7 — fig. 11: the 48-point design-space exploration over
 * (D, B, R): latency/op, energy/op and EDP per design point, plus
 * the three optima.
 */

#include "harness.hh"
#include "model/dse.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig11_dse", "Figure 11 (a)-(c)",
                       0.3,
                       "Sweep of D in {1,2,3}, B in {8..64}, R in "
                       "{16..128} (use --full for paper-size "
                       "workloads).");
    double scale = ctx.scale();

    DseOptions opt;
    opt.workloadScale = scale;
    auto pts = exploreDesignSpace(opt);

    TablePrinter t({"design", "latency/op (ns)", "energy/op (pJ)",
                    "EDP (pJ*ns)", "area (mm2)", "power (W)"});
    for (const auto &p : pts) {
        if (!p.feasible) {
            t.row().cell(p.cfg.label()).cell("-").cell("-")
                .cell("infeasible").num(p.areaMm2, 2).cell("-");
            continue;
        }
        t.row()
            .cell(p.cfg.label())
            .num(p.latencyPerOpNs, 3)
            .num(p.energyPerOpPj, 1)
            .num(p.edpPjNs, 1)
            .num(p.areaMm2, 2)
            .num(p.powerWatts, 3);
    }
    t.print();
    ctx.table(t);

    std::printf("\nmin latency: %s (paper: D3.B64.R128)\n",
                pts[minLatencyIndex(pts)].cfg.label().c_str());
    std::printf("min energy:  %s (paper: D3.B16.R64)\n",
                pts[minEnergyIndex(pts)].cfg.label().c_str());
    std::printf("min EDP:     %s (paper: D3.B64.R32)\n",
                pts[minEdpIndex(pts)].cfg.label().c_str());
    ctx.note("min_latency", pts[minLatencyIndex(pts)].cfg.label());
    ctx.note("min_energy", pts[minEnergyIndex(pts)].cfg.label());
    ctx.note("min_edp", pts[minEdpIndex(pts)].cfg.label());
    ctx.metric("min_edp_pj_ns", pts[minEdpIndex(pts)].edpPjNs);
    return ctx.finish();
}
