/**
 * @file
 * E6 — fig. 10(c,d): active registers per bank over time, without
 * (R large enough) and with register spilling (R = 64).
 */

#include "harness.hh"
#include "support/stats.hh"

using namespace dpu;

namespace {

uint64_t
profile(const char *label, const Dag &dag, uint32_t regs_per_bank)
{
    ArchConfig cfg = minEdpConfig();
    cfg.regsPerBank = regs_per_bank;
    CompileOptions opt;
    auto prog = compile(dag, cfg, opt);
    SimOptions sopt;
    sopt.traceOccupancy = true;
    sopt.traceInterval = std::max<uint32_t>(
        1, static_cast<uint32_t>(prog.instructions.size() / 48));
    Machine m(prog, sopt);
    auto res = m.run(bench::randomInputs(dag, 3));

    std::printf("%s (R=%u, spill stores=%llu):\n", label, regs_per_bank,
                static_cast<unsigned long long>(
                    prog.stats.spillStores));
    std::printf("cycle      mean/bank  max/bank  profile (mean over "
                "banks)\n");
    uint64_t sample = 0;
    for (const auto &row : res.stats.occupancyTrace) {
        Summary s;
        for (uint32_t v : row)
            s.add(v);
        std::printf("%9llu  %9.1f  %8.0f  ",
                    static_cast<unsigned long long>(
                        sample++ * res.stats.traceStride),
                    s.mean(), s.max());
        int bars = static_cast<int>(s.mean() / 2);
        for (int i = 0; i < bars; ++i)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("\n");
    return prog.stats.spillStores;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig10_occupancy",
                       "Figure 10(c,d)",
                       1.0,
                       "Workload: bnetflix twin at the min-EDP "
                       "datapath.");
    double scale = ctx.scale();

    Dag dag = buildWorkloadDag(findWorkload("bnetflix"), scale);
    uint64_t no_spill = profile("(c) without spilling", dag, 256);
    uint64_t spill = profile("(d) with spilling", dag, 64);
    ctx.metric("spill_stores_r256", double(no_spill));
    ctx.metric("spill_stores_r64", double(spill));
    std::printf("Expected shape (paper): balanced occupancy across "
                "banks; with a small R the profile saturates at R and "
                "spilling activates.\n");
    return ctx.finish();
}
