#include "harness.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "model/tech28.hh"
#include "sim/batch.hh"
#include "support/cli.hh"
#include "support/logging.hh"
#include "support/parallel.hh"
#include "support/rng.hh"

namespace dpu {
namespace bench {

// ---------------------------------------------------------------- //
// Workload helpers.                                                //
// ---------------------------------------------------------------- //

std::vector<double>
randomInputs(const Dag &dag, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> in(dag.numInputs());
    for (double &x : in)
        x = 0.5 + rng.uniform();
    return in;
}

std::vector<WorkloadSpec>
matrixWorkloads(const Options &opts)
{
    std::vector<WorkloadSpec> specs;
    specs.reserve(opts.matrixPaths.size());
    for (const std::string &path : opts.matrixPaths)
        specs.push_back(matrixWorkload(path));
    return specs;
}

RunResult
runWorkload(const Dag &dag, const ArchConfig &cfg,
            const CompileOptions &opt, uint64_t seed,
            ProgramCache *cache)
{
    RunResult r;
    r.program = cache ? cache->compile(dag, cfg, opt)
                      : compile(dag, cfg, opt);
    r.sim = runAndCheck(r.program, dag, randomInputs(dag, seed));
    r.energy = energyOf(cfg, r.sim.stats,
                        r.program.stats.numOperations);
    return r;
}

// ---------------------------------------------------------------- //
// Registry.                                                        //
// ---------------------------------------------------------------- //

const std::vector<BenchInfo> &
benchRegistry()
{
    // Paper order; defaultScale mirrors each bench's historical
    // default. tools/run_benches iterates exactly this list, and
    // bench/CMakeLists.txt builds one binary per entry (plus the
    // google-benchmark micro_benchmarks, which is not harness-driven).
    static const std::vector<BenchInfo> registry = {
        {"fig01_cpu_gpu_throughput", "Figure 1(c)", 1.0},
        {"fig03_peak_utilization", "Figure 3(c)", 1.0},
        {"fig06_interconnect_conflicts", "Figure 6(e)", 1.0},
        {"fig07_instruction_lengths", "Figure 7(a)", 1.0},
        {"fig10_bank_conflicts", "Figure 10(b)", 1.0},
        {"fig10_occupancy", "Figure 10(c,d)", 1.0},
        {"fig11_dse", "Figure 11 (a)-(c)", 0.3},
        {"fig12_pareto", "Figure 12", 0.15},
        {"fig13_instruction_breakdown", "Figure 13", 1.0},
        {"fig14a_throughput", "Figure 14(a) / Table III left", 1.0},
        {"fig14b_large_pc", "Figure 14(b) / Table III right", 0.15},
        {"table1_workloads", "Table I", 0.25},
        {"table2_area_power", "Table II", 0.5},
        {"table3_comparison", "Table III", 0.5},
        {"table4_memory_footprint", "§III-B / §IV-E footprint", 1.0},
        {"ablation_blocks", "ablation E16 (block packing)", 1.0},
        {"ablation_mapper", "ablation E17 (mapper/reorder)", 0.5},
        {"serve_latency", "§V-C2 serving mode (multi-DAG)", 0.2},
        {"serve_latency_fleet", "§V-C2 fleet mode (ranks + link)",
         0.2, "--ranks=8 --xfer-gbps=4 --placement=replicate",
         "serve_latency"},
    };
    return registry;
}

const BenchInfo *
findBench(const std::string &name)
{
    for (const BenchInfo &b : benchRegistry())
        if (name == b.name)
            return &b;
    return nullptr;
}

// ---------------------------------------------------------------- //
// Uniform CLI.                                                     //
// ---------------------------------------------------------------- //

Options
parseOptions(int argc, char **argv, double default_scale)
{
    Options o;
    bool explicit_scale = false;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--scale=", 8) == 0) {
            // Strict parse: atof would turn a typo into scale 0 and
            // the bench would quietly run a degenerate workload.
            if (!parseDoubleArg(a + 8, o.scale) || o.scale <= 0) {
                std::fprintf(stderr,
                             "invalid value '%s' for --scale "
                             "(expected a number > 0)\n",
                             a + 8);
                std::exit(2);
            }
            explicit_scale = true;
        } else if (std::strcmp(a, "--full") == 0) {
            o.full = true;
        } else if (std::strcmp(a, "--quick") == 0) {
            o.quick = true;
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            o.jsonPath = a + 7;
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            if (!parseUint32Arg(a + 10, o.threads) || o.threads < 1) {
                std::fprintf(stderr,
                             "invalid value '%s' for --threads "
                             "(expected an integer >= 1)\n",
                             a + 10);
                std::exit(2);
            }
        } else if (std::strncmp(a, "--cache-dir=", 12) == 0) {
            o.cacheDir = a + 12;
        } else if (std::strcmp(a, "--no-cache") == 0) {
            o.noCache = true;
        } else if (std::strncmp(a, "--fidelity=", 11) == 0) {
            if (!parseFidelityName(a + 11, o.fidelity)) {
                std::fprintf(stderr,
                             "invalid value '%s' for --fidelity "
                             "(expected %s)\n",
                             a + 11, kFidelityChoicesHelp);
                std::exit(2);
            }
        } else if (std::strncmp(a, "--ranks=", 8) == 0) {
            if (!parseUint32Arg(a + 8, o.ranks) || o.ranks < 1) {
                std::fprintf(stderr,
                             "invalid value '%s' for --ranks "
                             "(expected an integer >= 1)\n",
                             a + 8);
                std::exit(2);
            }
        } else if (std::strncmp(a, "--xfer-gbps=", 12) == 0) {
            if (!parseGbpsArg(a + 12, o.xferGbps)) {
                std::fprintf(stderr,
                             "invalid value '%s' for --xfer-gbps "
                             "(expected a number > 0, or 'inf')\n",
                             a + 12);
                std::exit(2);
            }
        } else if (std::strncmp(a, "--placement=", 12) == 0) {
            if (!parsePlacementName(a + 12, o.placement)) {
                std::fprintf(stderr,
                             "invalid value '%s' for --placement "
                             "(expected %s)\n",
                             a + 12, kPlacementChoicesHelp);
                std::exit(2);
            }
        } else if (std::strncmp(a, "--matrix=", 9) == 0) {
            const char *path = a + 9;
            if (path[0] == '\0' || !std::ifstream(path).good()) {
                std::fprintf(stderr,
                             "invalid value '%s' for --matrix "
                             "(expected a readable .mtx file)\n",
                             path);
                std::exit(2);
            }
            o.matrixPaths.emplace_back(path);
        } else if (std::strncmp(a, "--matrix-dir=", 13) == 0) {
            std::vector<std::string> found =
                discoverMatrixFiles(a + 13);
            if (found.empty()) {
                std::fprintf(stderr,
                             "invalid value '%s' for --matrix-dir "
                             "(expected a directory containing .mtx "
                             "files)\n",
                             a + 13);
                std::exit(2);
            }
            o.matrixPaths.insert(o.matrixPaths.end(), found.begin(),
                                 found.end());
        } else {
            std::fprintf(stderr,
                         "unknown option '%s'\n"
                         "usage: bench [--scale=<f>] [--full] "
                         "[--quick] [--json=<file>] [--threads=N] "
                         "[--cache-dir=<dir>] [--no-cache] "
                         "[--fidelity=<tier>] [--ranks=N] "
                         "[--xfer-gbps=<v|inf>] "
                         "[--placement=<policy>] "
                         "[--matrix=<file.mtx>] "
                         "[--matrix-dir=<dir>]\n",
                         a);
            std::exit(1);
        }
    }
    if (!explicit_scale) {
        o.scale = default_scale;
        if (o.full)
            o.scale = 1.0;
        else if (o.quick)
            o.scale = default_scale / 10.0;
    }
    // --matrix and --matrix-dir may name the same file (e.g. a file
    // inside the discovered directory); run each matrix once, keeping
    // first-occurrence order.
    {
        std::vector<std::string> unique;
        std::vector<std::string> canon;
        for (const std::string &p : o.matrixPaths) {
            std::error_code ec;
            auto c = std::filesystem::weakly_canonical(p, ec);
            std::string key = ec ? p : c.string();
            if (std::find(canon.begin(), canon.end(), key) !=
                canon.end())
                continue;
            canon.push_back(std::move(key));
            unique.push_back(p);
        }
        o.matrixPaths = std::move(unique);
    }
    return o;
}

// ---------------------------------------------------------------- //
// Context.                                                         //
// ---------------------------------------------------------------- //

Context::Context(int argc, char **argv, const std::string &name_,
                 const std::string &paper_element,
                 double default_scale, const std::string &note_)
    : name(name_), paperElement(paper_element),
      opts(parseOptions(argc, argv, default_scale))
{
    if (!opts.noCache) {
        ProgramCacheConfig cc;
        cc.diskDir = opts.cacheDir;
        programCache = std::make_unique<ProgramCache>(cc);
    }
    std::printf("=== %s — reproduces %s ===\n", name.c_str(),
                paperElement.c_str());
    if (!note_.empty())
        std::printf("%s\n", note_.c_str());
    if (opts.quick)
        std::printf("(--quick: smoke-test sizes, scale=%g)\n",
                    opts.scale);
    if (!opts.cacheDir.empty()) {
        if (programCache && programCache->diskEnabled())
            std::printf("(program cache spills to %s)\n",
                        opts.cacheDir.c_str());
        else if (programCache)
            std::printf("(cache dir '%s' unwritable; in-memory "
                        "program cache only)\n",
                        opts.cacheDir.c_str());
    }
    std::printf("\n");
}

void
Context::table(const TablePrinter &t, const std::string &label)
{
    tables.push_back({label, t.header(), t.data()});
}

void
Context::metric(const std::string &key, double value)
{
    metrics.emplace_back(key, value);
}

void
Context::note(const std::string &key, const std::string &value)
{
    notes.emplace_back(key, value);
}

void
Context::series(const std::string &name,
                const std::vector<double> &values)
{
    seriesData.emplace_back(name, values);
}

namespace {

/** JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/** Emit a double as a JSON number (JSON has no NaN/Inf). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

} // namespace

int
Context::finish()
{
    if (programCache) {
        ProgramCache::Stats cs = programCache->stats();
        if (cs.hits + cs.diskHits + cs.misses) {
            metric("cache_hits", static_cast<double>(cs.hits));
            metric("cache_disk_hits", static_cast<double>(cs.diskHits));
            metric("cache_misses", static_cast<double>(cs.misses));
        }
    }
    if (opts.jsonPath.empty())
        return 0;

    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"paper_element\": \"" << jsonEscape(paperElement)
       << "\",\n";
    os << "  \"scale\": " << jsonNumber(opts.scale) << ",\n";
    os << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n";
    os << "  \"threads\": " << opts.threads << ",\n";

    os << "  \"metrics\": {";
    for (size_t i = 0; i < metrics.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(metrics[i].first)
           << "\": " << jsonNumber(metrics[i].second);
    os << "},\n";

    os << "  \"notes\": {";
    for (size_t i = 0; i < notes.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(notes[i].first)
           << "\": \"" << jsonEscape(notes[i].second) << "\"";
    os << "},\n";

    // Typed numeric series: always present (run_benches requires the
    // key), values as real JSON numbers rather than table strings.
    os << "  \"series\": {";
    for (size_t i = 0; i < seriesData.size(); ++i) {
        os << (i ? "," : "") << "\n    \""
           << jsonEscape(seriesData[i].first) << "\": [";
        const std::vector<double> &vals = seriesData[i].second;
        for (size_t v = 0; v < vals.size(); ++v)
            os << (v ? ", " : "") << jsonNumber(vals[v]);
        os << "]";
    }
    os << (seriesData.empty() ? "" : "\n  ") << "},\n";

    os << "  \"tables\": [";
    for (size_t t = 0; t < tables.size(); ++t) {
        const NamedTable &nt = tables[t];
        os << (t ? "," : "") << "\n    {\"label\": \""
           << jsonEscape(nt.label) << "\",\n     \"columns\": [";
        for (size_t c = 0; c < nt.columns.size(); ++c)
            os << (c ? ", " : "") << "\"" << jsonEscape(nt.columns[c])
               << "\"";
        os << "],\n     \"rows\": [";
        for (size_t r = 0; r < nt.rows.size(); ++r) {
            os << (r ? ", " : "") << "\n       [";
            for (size_t c = 0; c < nt.rows[r].size(); ++c)
                os << (c ? ", " : "") << "\""
                   << jsonEscape(nt.rows[r][c]) << "\"";
            os << "]";
        }
        os << "]}";
    }
    os << "\n  ]\n}\n";

    std::ofstream out(opts.jsonPath);
    if (!out) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", name.c_str(),
                     opts.jsonPath.c_str());
        return 1;
    }
    out << os.str();
    out.flush();
    if (!out) {
        std::fprintf(stderr, "%s: short write to '%s'\n",
                     name.c_str(), opts.jsonPath.c_str());
        return 1;
    }
    std::printf("wrote %s\n", opts.jsonPath.c_str());
    return 0;
}

// ---------------------------------------------------------------- //
// parallelFor + batch-simulation measurement.                      //
// ---------------------------------------------------------------- //

void
parallelFor(size_t n, uint32_t threads,
            const std::function<void(size_t)> &fn)
{
    dpu::parallelFor(n, threads, fn);
}

void
batchSimReport(Context &ctx, const CompiledProgram &prog,
               const std::vector<std::vector<double>> &inputs,
               uint32_t cores)
{
    BatchMachine bm(prog, cores, prog.stats.numOperations,
                    ctx.threads());
    auto start = std::chrono::steady_clock::now();
    BatchResult br = bm.run(inputs);
    double host_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    std::printf("\nBatch sim: %zu inputs, %u model cores, %u host "
                "threads: %.2f modeled GOPS, %.3fs host "
                "(%.1f sims/s).\n",
                br.runs.size(), cores, ctx.threads(),
                br.throughputGops(tech28::frequencyHz), host_s,
                host_s > 0 ? br.runs.size() / host_s : 0.0);
    ctx.metric("batch_modeled_gops",
               br.throughputGops(tech28::frequencyHz));
    ctx.metric("batch_host_seconds", host_s);
    ctx.metric("batch_host_threads", ctx.threads());
}

// ---------------------------------------------------------------- //
// JSON validation.                                                 //
// ---------------------------------------------------------------- //

namespace {

struct JsonParser
{
    const char *p;
    const char *end;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::strlen(word);
        if (static_cast<size_t>(end - p) < len ||
            std::strncmp(p, word, len) != 0)
            return fail(std::string("bad literal, expected ") + word);
        p += len;
        return true;
    }

    bool
    string()
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("truncated escape");
                if (*p == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++p;
                        if (p >= end || !std::isxdigit(
                                            static_cast<unsigned char>(*p)))
                            return fail("bad \\u escape");
                    }
                }
            }
            ++p;
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool
    number()
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end && std::isdigit(static_cast<unsigned char>(*p)))
            ++p;
        if (p < end && *p == '.') {
            ++p;
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p == start || (p == start + 1 && *start == '-'))
            return fail("bad number");
        return true;
    }

    bool
    value()
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++p; // '{'
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (p >= end || *p != ':')
                return fail("expected ':' in object");
            ++p;
            if (!value())
                return false;
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array()
    {
        ++p; // '['
        skipWs();
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }
};

} // namespace

bool
validJson(const std::string &text, std::string *error)
{
    JsonParser parser{text.data(), text.data() + text.size(), {}};
    bool ok = parser.value();
    if (ok) {
        parser.skipWs();
        if (parser.p != parser.end)
            ok = parser.fail("trailing content after JSON value");
    }
    if (!ok && error)
        *error = parser.error;
    return ok;
}

bool
validJsonFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return validJson(buf.str(), error);
}

bool
jsonTopLevelKey(const std::string &text, const std::string &key)
{
    size_t i = 0;
    const size_t n = text.size();
    auto is_ws = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    while (i < n && is_ws(text[i]))
        ++i;
    if (i >= n || text[i] != '{')
        return false;
    ++i;

    int depth = 1;
    bool expecting_key = true; ///< At depth 1: next string is a key.
    while (i < n && depth > 0) {
        char c = text[i];
        if (is_ws(c)) {
            ++i;
            continue;
        }
        if (c == '"') {
            std::string s;
            ++i;
            while (i < n && text[i] != '"') {
                if (text[i] == '\\' && i + 1 < n)
                    ++i; // keep the escaped char, drop the backslash
                s += text[i];
                ++i;
            }
            if (i >= n)
                return false; // unterminated string
            ++i;              // closing quote
            if (depth == 1 && expecting_key) {
                size_t j = i;
                while (j < n && is_ws(text[j]))
                    ++j;
                if (j < n && text[j] == ':' && s == key)
                    return true;
            }
            continue;
        }
        switch (c) {
        case '{':
        case '[': ++depth; break;
        case '}':
        case ']': --depth; break;
        case ':':
            if (depth == 1)
                expecting_key = false;
            break;
        case ',':
            if (depth == 1)
                expecting_key = true;
            break;
        default: break;
        }
        ++i;
    }
    return false;
}

} // namespace bench
} // namespace dpu
