/**
 * @file
 * E16 — ablation of step 1's packing: the full tree-depth-aware
 * block builder (deep cones packed into buddy slots) vs crippling
 * the datapath to depth-1 trees (every node its own block slot —
 * what a conventional VLIW array of PEs would do, cf. the BUG
 * discussion in §VI).
 */

#include "harness.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "ablation_blocks",
                       "design-choice ablation (DESIGN.md E16)");
    double scale = ctx.scale();

    ArchConfig deep = minEdpConfig(); // D=3, 56 PEs
    ArchConfig flat;                  // same bank count, no trees
    flat.depth = 1;
    flat.banks = 64;
    flat.regsPerBank = 32;

    TablePrinter t({"workload", "cycles D=3", "cycles D=1", "speedup",
                    "regfile reads D=3", "D=1"});
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        auto a = bench::runWorkload(d, deep);
        auto b = bench::runWorkload(d, flat);
        t.row()
            .cell(spec.name)
            .num(static_cast<long long>(a.sim.stats.cycles))
            .num(static_cast<long long>(b.sim.stats.cycles))
            .num(double(b.sim.stats.cycles) / a.sim.stats.cycles, 2)
            .num(static_cast<long long>(a.sim.stats.bankReads))
            .num(static_cast<long long>(b.sim.stats.bankReads));
    }
    t.print();
    ctx.table(t);
    std::printf("\nExpected shape: the PE trees cut both cycles and "
                "register-file reads (intermediate values stay in the "
                "datapath) — the §V-B observation that raising D "
                "improves latency at no power cost.\n");
    return ctx.finish();
}
