/**
 * @file
 * E4 — fig. 7(a): instruction lengths for the example configuration
 * (D=3, B=16, R=32) next to the paper's values.
 */

#include "arch/isa.hh"
#include "harness.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig07_instruction_lengths",
                       "Figure 7(a)");

    ArchConfig cfg;
    cfg.depth = 3;
    cfg.banks = 16;
    cfg.regsPerBank = 32;
    cfg.check();
    IsaLayout lay(cfg);

    struct Row
    {
        InstrKind kind;
        int paper;
    };
    const Row rows[] = {
        {InstrKind::Load, 52},   {InstrKind::Store, 132},
        {InstrKind::Store4, 56}, {InstrKind::Copy4, 72},
        {InstrKind::Exec, 272},  {InstrKind::Nop, 4},
    };
    TablePrinter t({"instruction", "ours (bits)", "paper (bits)"});
    for (const Row &r : rows)
        t.row()
            .cell(kindName(r.kind))
            .num(static_cast<long long>(lay.lengthBits(r.kind)))
            .num(static_cast<long long>(r.paper));
    t.print();
    ctx.table(t);
    ctx.metric("fetch_width_bits", lay.maxLengthBits());
    std::printf("\nIL (fetch width) = %u bits. Only exec deviates "
                "(-4 bits: 4-bit PE opcode field vs. unspecified "
                "encoding details in the paper).\n",
                lay.maxLengthBits());

    // Also show how lengths scale to the min-EDP configuration.
    IsaLayout minedp(minEdpConfig());
    std::printf("\nAt the min-EDP configuration (D3.B64.R32): exec=%u "
                "load=%u store=%u copy_4=%u (IL=%u bits).\n",
                minedp.lengthBits(InstrKind::Exec),
                minedp.lengthBits(InstrKind::Load),
                minedp.lengthBits(InstrKind::Store),
                minedp.lengthBits(InstrKind::Copy4),
                minedp.maxLengthBits());
    ctx.metric("minedp_fetch_width_bits", minedp.maxLengthBits());
    return ctx.finish();
}
