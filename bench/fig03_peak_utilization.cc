/**
 * @file
 * E2 — fig. 3(c): peak utilization of a systolic array vs a tree of
 * PEs as the input-port count grows.
 */

#include "compiler/spatial.hh"
#include "harness.hh"
#include "support/stats.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig03_peak_utilization",
                       "Figure 3(c)",
                       1.0,
                       "Randomized-greedy spatial probe over three "
                       "workloads (substitute for the [34] mapper).");

    const std::vector<std::string> names{"tretail", "mnist", "bp_200"};
    TablePrinter t({"inputs", "systolic PEs", "systolic util %",
                    "tree PEs", "tree util %"});
    for (uint32_t inputs : {2u, 4u, 8u, 16u}) {
        Summary sys, tree;
        for (const auto &name : names) {
            Dag d = buildWorkloadDag(findWorkload(name), 0.5);
            sys.add(systolicPeakUtilization(d, inputs, 48));
            tree.add(treePeakUtilization(d, inputs));
        }
        uint32_t k = inputs / 2;
        t.row()
            .num(static_cast<long long>(inputs))
            .num(static_cast<long long>(k * k))
            .num(sys.mean() * 100, 1)
            .num(static_cast<long long>(inputs - 1))
            .num(tree.mean() * 100, 1);
    }
    t.print();
    ctx.table(t);
    std::printf("\nExpected shape (paper): systolic utilization "
                "collapses with inputs (~100%% -> ~25%%);\n"
                "the tree stays close to fully utilizable.\n");
    return ctx.finish();
}
