/**
 * @file
 * E14 — Table III: the summary comparison across platforms for both
 * suites, including area, power and EDP.
 */

#include "baselines/baselines.hh"
#include "dag/binarize.hh"
#include "harness.hh"
#include "model/energy.hh"
#include "model/tech28.hh"
#include "sim/batch.hh"
#include "support/rng.hh"
#include "workloads/sptrsv.hh"

using namespace dpu;

namespace {

struct Platform
{
    std::string name;
    double gops = 0;
    double areaMm2 = 0;
    double powerW = 0;
    std::string tech;
    double freqGhz = 0;
};

void
printPlatforms(bench::Context &ctx, const char *label,
               const std::vector<Platform> &ps, double base_gops)
{
    TablePrinter t({"platform", "tech", "freq GHz", "area mm2",
                    "GOPS", "speedup", "power W", "EDP pJ*ns"});
    for (const auto &p : ps) {
        // EDP per op = (power * t_op) * t_op with t_op = 1/through.
        double t_op_ns = 1.0 / p.gops; // ns per op at GOPS scale
        double e_op_pj = p.powerW * t_op_ns; // W * ns = nJ? no:
        // W x ns = 1e-9 J x ... power[W] * t[ns] = p*1e-9 J = p nJ;
        // convert to pJ: *1000.
        e_op_pj *= 1000.0;
        t.row()
            .cell(p.name)
            .cell(p.tech)
            .num(p.freqGhz, 2)
            .num(p.areaMm2, 1)
            .num(p.gops, 2)
            .num(p.gops / base_gops, 2)
            .num(p.powerW, 3)
            .num(e_op_pj * t_op_ns, 1);
    }
    t.print();
    ctx.table(t, label);
    ctx.metric(std::string(label) + "_gops", ps[0].gops);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "table3_comparison", "Table III",
                       0.5,
                       "Large-PC scale = 0.3 x the suite scale "
                       "(--full).");
    double scale = ctx.scale();
    double large_scale = scale * 0.3;

    // ----- Small suite: DPU-v2 vs DPU vs CPU vs GPU.
    double v2_ops = 0, v2_sec = 0, v2_pj = 0;
    double dpu_ops = 0, dpu_sec = 0;
    double cpu_ops = 0, cpu_sec = 0;
    double gpu_ops = 0, gpu_sec = 0;
    for (const auto &spec : smallSuite()) {
        Dag raw = buildWorkloadDag(spec, scale);
        auto run = bench::runWorkload(raw, minEdpConfig(), {}, 1,
                                      ctx.cache());
        v2_ops += double(run.program.stats.numOperations);
        v2_sec += run.energy.seconds();
        v2_pj += run.energy.totalPj;
        Dag d = binarize(raw).dag;
        auto ops = double(d.numOperations());
        dpu_ops += ops;
        dpu_sec += runDpuV1Model(d).seconds;
        cpu_ops += ops;
        cpu_sec += runCpuModel(d).seconds;
        gpu_ops += ops;
        gpu_sec += runGpuModel(d).seconds;
    }
    double cpu_gops = cpu_ops / cpu_sec * 1e-9;
    std::printf("PC (a) and SpTRSV (b) workloads:\n");
    printPlatforms(
        ctx, "small_suite",
        {
            {"DPU-v2 (ours)", v2_ops / v2_sec * 1e-9,
             areaOf(minEdpConfig()).total, v2_pj * 1e-12 / v2_sec,
             "28nm", 0.3},
            {"DPU [46] (model)", dpu_ops / dpu_sec * 1e-9, 3.6,
             DpuV1ModelParams{}.powerWatts, "28nm", 0.3},
            {"CPU [44] (model)", cpu_gops, 0, 55, "14nm", 3.0},
            {"GPU [30] (model)", gpu_ops / gpu_sec * 1e-9, 754, 98,
             "12nm", 1.35},
        },
        cpu_gops);
    std::printf("Paper row: 4.2 / 3.1 / 1.2 / 0.4 GOPS; speedups 3.5x "
                "/ 2.6x / 1x / 0.3x; EDP 6.0 / 7.1 / 38k / 1M.\n\n");

    // ----- Large suite: DPU-v2 (L) 4 cores vs SPU vs CPUs vs GPU.
    constexpr int batchCores = 4;
    double l_ops = 0, l_sec = 0, l_pj = 0;
    double spu_ops = 0, spu_sec = 0, cspu_ops = 0, cspu_sec = 0;
    double lcpu_ops = 0, lcpu_sec = 0, lgpu_ops = 0, lgpu_sec = 0;
    for (const auto &spec : largePcSuite()) {
        Dag raw = buildWorkloadDag(spec, large_scale);
        CompileOptions opt;
        opt.partitionNodes = 20000;
        opt.threads = ctx.threads();
        auto run = bench::runWorkload(raw, largeConfig(), opt, 1,
                                      ctx.cache());
        l_ops += batchCores * double(run.program.stats.numOperations);
        l_sec += run.energy.seconds();
        l_pj += batchCores * run.energy.totalPj;
        Dag d = binarize(raw).dag;
        double ops = double(d.numOperations());
        spu_ops += ops;
        spu_sec += runSpuModel(d).seconds;
        cspu_ops += ops;
        cspu_sec += runCpuSpuModel(d).seconds;
        lcpu_ops += ops;
        lcpu_sec += runCpuModel(d).seconds;
        lgpu_ops += ops;
        lgpu_sec += runGpuModel(d).seconds;
    }
    double cspu_gops = cspu_ops / cspu_sec * 1e-9;
    double l_area = batchCores *
        areaOf(largeConfig(), 64 * 1024,
               double(largeConfig().dataMemRows) * 64 * 4).total;
    std::printf("Large PC (c) workloads:\n");
    printPlatforms(
        ctx, "large_suite",
        {
            {"DPU-v2 (L, 4 cores)", l_ops / l_sec * 1e-9, l_area,
             batchCores * l_pj * 1e-12 / (batchCores * l_sec), "28nm",
             0.3},
            {"SPU [11] (estimate)", spu_ops / spu_sec * 1e-9, 36.6, 16,
             "28nm", 0},
            {"CPU_SPU [11] (model)", cspu_gops, 0, 61, "14nm", 3.0},
            {"CPU [44] (model)", lcpu_ops / lcpu_sec * 1e-9, 0, 65,
             "14nm", 3.0},
            {"GPU (model)", lgpu_ops / lgpu_sec * 1e-9, 754, 155,
             "12nm", 1.35},
        },
        cspu_gops);
    std::printf("Paper row: 34.6 / 22.2 / 1.7 / 1.8 / 4.6 GOPS; "
                "speedups 20.7x / 13.3x / 1x / 1.1x / 2.8x; EDP 1.0 / "
                "57.4 / 36k / 27k / 9k.\n");

    // ----- Real matrices: DPU-v2 (simulated) vs the *measured* CPU
    // level-scheduled sparse solve over the identical (L, rhs batch)
    // inputs. Speedup compares time per solve, so the two platforms'
    // different op accounting (DAG ops vs solver flops) cancels out.
    const auto &matrix_paths = ctx.options().matrixPaths;
    if (!matrix_paths.empty()) {
        constexpr size_t kRhsBatch = 8;
        constexpr uint32_t kRealBatchCores = 4;
        std::printf("\nReal matrices (measured CPU sparse baseline, "
                    "batch of %zu RHS):\n",
                    kRhsBatch);
        TablePrinter mt({"matrix", "DPU-v2 GOPS", "DPU-v2 us/solve",
                         "CPU GOPS (meas)", "CPU us/solve",
                         "DPU speedup"});
        std::vector<double> dpu_gops_s, cpu_gops_s, speedup_s;
        for (const std::string &path : matrix_paths) {
            WorkloadSpec spec = matrixWorkload(path);
            SparseMatrixCsr lower = loadWorkloadMatrix(spec);
            SpTrsvDag lowered = buildSpTrsvDag(lower);
            CompiledProgram prog =
                ctx.cache()
                    ? ctx.cache()->compile(lowered.dag, minEdpConfig(),
                                           {})
                    : compile(lowered.dag, minEdpConfig(), {});

            std::vector<std::vector<double>> rhs_batch;
            Rng rng(spec.seed + 7);
            for (size_t b = 0; b < kRhsBatch; ++b) {
                std::vector<double> rhs(lower.dim());
                for (double &x : rhs)
                    x = 0.5 + rng.uniform();
                rhs_batch.push_back(std::move(rhs));
            }

            // DPU-v2: the same 8 RHS coalesced onto the 4-core batch
            // machine; per-solve time from the modeled wall clock.
            auto inputs = sptrsvBatchInputs(lowered, lower, rhs_batch);
            BatchMachine bm(prog, kRealBatchCores,
                            prog.stats.numOperations, ctx.threads());
            BatchResult br = bm.run(inputs);
            double dpu_batch_sec = static_cast<double>(br.wallCycles) /
                                   tech28::frequencyHz;
            double dpu_per_solve = dpu_batch_sec / kRhsBatch;
            double dpu_gops = br.throughputGops(tech28::frequencyHz);

            // CPU: measured level-scheduled forward substitution over
            // the identical inputs.
            auto cpu = runCpuSparseSolve(lower, rhs_batch,
                                         {ctx.threads(), 3});
            double cpu_per_solve = cpu.seconds / kRhsBatch;
            double speedup = cpu_per_solve / dpu_per_solve;

            mt.row()
                .cell(spec.name)
                .num(dpu_gops, 2)
                .num(dpu_per_solve * 1e6, 2)
                .num(cpu.throughputGops, 2)
                .num(cpu_per_solve * 1e6, 2)
                .num(speedup, 2);
            dpu_gops_s.push_back(dpu_gops);
            cpu_gops_s.push_back(cpu.throughputGops);
            speedup_s.push_back(speedup);
        }
        mt.print();
        ctx.table(mt, "real_matrices");
        ctx.series("real_matrix_dpu_gops", dpu_gops_s);
        ctx.series("real_cpu_sparse_gops", cpu_gops_s);
        ctx.series("real_matrix_speedup", speedup_s);
        std::printf("CPU columns are measured on this host (%u "
                    "threads, best of 3 repeats), not a calibrated "
                    "model; speedup is per-solve wall time over the "
                    "same (L, b) inputs.\n",
                    ctx.threads());
    }
    return ctx.finish();
}
