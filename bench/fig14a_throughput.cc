/**
 * @file
 * E12 — fig. 14(a): per-workload throughput of DPU-v2 (simulated at
 * the min-EDP configuration) against the DPU, CPU and GPU models.
 */

#include "baselines/baselines.hh"
#include "dag/binarize.hh"
#include "harness.hh"
#include "support/stats.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig14a_throughput",
                       "Figure 14(a) / Table III left");
    double scale = ctx.scale();

    TablePrinter t({"workload", "DPU-v2", "DPU", "CPU", "GPU",
                    "v2/DPU", "v2/CPU", "v2/GPU"});
    std::vector<double> r_dpu, r_cpu, r_gpu;
    double v2_ops = 0, v2_sec = 0;
    double dpu_gops_sum = 0, cpu_gops_sum = 0, gpu_gops_sum = 0;
    int n = 0;
    // Smallest compiled program of the sweep, kept for the batch-
    // simulation measurement below.
    CompiledProgram batch_prog;
    std::vector<std::vector<double>> batch_inputs;
    for (const auto &spec : smallSuite()) {
        Dag raw = buildWorkloadDag(spec, scale);
        auto run = bench::runWorkload(raw, minEdpConfig());
        if (batch_inputs.empty() ||
            run.program.stats.numOperations <
                batch_prog.stats.numOperations) {
            batch_prog = run.program;
            batch_inputs.clear();
            for (uint64_t k = 0; k < 8; ++k)
                batch_inputs.push_back(
                    bench::randomInputs(raw, 100 + k));
        }
        double v2 = run.program.stats.numOperations /
                    run.energy.seconds() * 1e-9;
        v2_ops += static_cast<double>(run.program.stats.numOperations);
        v2_sec += run.energy.seconds();

        Dag d = binarize(raw).dag;
        auto dpu = runDpuV1Model(d);
        auto cpu = runCpuModel(d);
        auto gpu = runGpuModel(d);
        r_dpu.push_back(v2 / dpu.throughputGops);
        r_cpu.push_back(v2 / cpu.throughputGops);
        r_gpu.push_back(v2 / gpu.throughputGops);
        dpu_gops_sum += dpu.throughputGops;
        cpu_gops_sum += cpu.throughputGops;
        gpu_gops_sum += gpu.throughputGops;
        ++n;

        t.row()
            .cell(spec.name)
            .num(v2, 2)
            .num(dpu.throughputGops, 2)
            .num(cpu.throughputGops, 2)
            .num(gpu.throughputGops, 2)
            .num(r_dpu.back(), 2)
            .num(r_cpu.back(), 2)
            .num(r_gpu.back(), 2);
    }
    t.print();
    ctx.table(t);
    ctx.metric("geomean_vs_dpu", geomean(r_dpu));
    ctx.metric("geomean_vs_cpu", geomean(r_cpu));
    ctx.metric("geomean_vs_gpu", geomean(r_gpu));
    ctx.metric("suite_gops", v2_ops / v2_sec * 1e-9);
    std::printf("\nGeomean speedups: vs DPU %.2fx (paper 1.4x), vs CPU "
                "%.2fx (paper 4.2x), vs GPU %.2fx (paper 10.5x).\n",
                geomean(r_dpu), geomean(r_cpu), geomean(r_gpu));
    std::printf("Suite-aggregate GOPS: DPU-v2 %.2f, DPU %.2f, CPU "
                "%.2f, GPU %.2f (paper: 4.2 / 3.1 / 1.2 / 0.4).\n",
                v2_ops / v2_sec * 1e-9, dpu_gops_sum / n,
                cpu_gops_sum / n, gpu_gops_sum / n);
    std::printf("Expected shape (paper): DPU-v2 wins everywhere "
                "except the most register-pressure-bound workloads "
                "(bnetflix/sieber class), where DPU's scratchpad "
                "prefetching wins.\n");

    // Batch-simulation measurement: 8 inputs through the paper's
    // 4-core batch machine on the smallest program of the sweep.
    bench::batchSimReport(ctx, batch_prog, batch_inputs, 4);
    return ctx.finish();
}
