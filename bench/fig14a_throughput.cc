/**
 * @file
 * E12 — fig. 14(a): per-workload throughput of DPU-v2 (simulated at
 * the min-EDP configuration) against the DPU, CPU and GPU models.
 *
 * The per-workload build/compile/simulate pipelines are independent,
 * so they run on the harness worker pool (--threads=N); rows are
 * emitted in suite order regardless, and compiles go through the
 * program cache when one is configured.
 */

#include <chrono>

#include "baselines/baselines.hh"
#include "dag/binarize.hh"
#include "harness.hh"
#include "model/tech28.hh"
#include "sim/batch.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "workloads/sptrsv.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig14a_throughput",
                       "Figure 14(a) / Table III left");
    double scale = ctx.scale();

    const auto suite = smallSuite();
    struct Row
    {
        Dag raw;
        bench::RunResult run;
        BaselineResult dpu, cpu, gpu;
    };
    std::vector<Row> rows(suite.size());
    auto compile_start = std::chrono::steady_clock::now();
    bench::parallelFor(suite.size(), ctx.threads(), [&](size_t i) {
        Row &r = rows[i];
        r.raw = buildWorkloadDag(suite[i], scale);
        r.run = bench::runWorkload(r.raw, minEdpConfig(), {}, 1,
                                   ctx.cache());
        Dag d = binarize(r.raw).dag;
        r.dpu = runDpuV1Model(d);
        r.cpu = runCpuModel(d);
        r.gpu = runGpuModel(d);
    });
    double sweep_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               compile_start)
                               .count();

    TablePrinter t({"workload", "DPU-v2", "DPU", "CPU", "GPU",
                    "v2/DPU", "v2/CPU", "v2/GPU"});
    std::vector<double> r_dpu, r_cpu, r_gpu;
    double v2_ops = 0, v2_sec = 0;
    double dpu_gops_sum = 0, cpu_gops_sum = 0, gpu_gops_sum = 0;
    double compile_seconds = 0;
    int cached_rows = 0;
    int n = 0;
    // Smallest compiled program of the sweep, kept for the batch-
    // simulation measurement below.
    const Row *batch_row = nullptr;
    for (size_t i = 0; i < suite.size(); ++i) {
        const Row &row = rows[i];
        if (!batch_row ||
            row.run.program.stats.numOperations <
                batch_row->run.program.stats.numOperations)
            batch_row = &row;
        double v2 = row.run.program.stats.numOperations /
                    row.run.energy.seconds() * 1e-9;
        v2_ops +=
            static_cast<double>(row.run.program.stats.numOperations);
        v2_sec += row.run.energy.seconds();
        // Only genuine compiles count toward the compile-time metric;
        // cache hits carry fetch times, which would make the number
        // meaningless on a warm cache directory.
        if (row.run.program.stats.cacheHits == 0)
            compile_seconds += row.run.program.stats.compileSeconds;
        else
            ++cached_rows;

        r_dpu.push_back(v2 / row.dpu.throughputGops);
        r_cpu.push_back(v2 / row.cpu.throughputGops);
        r_gpu.push_back(v2 / row.gpu.throughputGops);
        dpu_gops_sum += row.dpu.throughputGops;
        cpu_gops_sum += row.cpu.throughputGops;
        gpu_gops_sum += row.gpu.throughputGops;
        ++n;

        t.row()
            .cell(suite[i].name)
            .num(v2, 2)
            .num(row.dpu.throughputGops, 2)
            .num(row.cpu.throughputGops, 2)
            .num(row.gpu.throughputGops, 2)
            .num(r_dpu.back(), 2)
            .num(r_cpu.back(), 2)
            .num(r_gpu.back(), 2);
    }
    t.print();
    ctx.table(t);
    ctx.metric("geomean_vs_dpu", geomean(r_dpu));
    ctx.metric("geomean_vs_cpu", geomean(r_cpu));
    ctx.metric("geomean_vs_gpu", geomean(r_gpu));
    ctx.metric("suite_gops", v2_ops / v2_sec * 1e-9);
    ctx.metric("compile_seconds_total", compile_seconds);
    ctx.metric("compile_cached_workloads", cached_rows);
    ctx.metric("sweep_host_seconds", sweep_seconds);
    std::printf("\nGeomean speedups: vs DPU %.2fx (paper 1.4x), vs CPU "
                "%.2fx (paper 4.2x), vs GPU %.2fx (paper 10.5x).\n",
                geomean(r_dpu), geomean(r_cpu), geomean(r_gpu));
    std::printf("Suite-aggregate GOPS: DPU-v2 %.2f, DPU %.2f, CPU "
                "%.2f, GPU %.2f (paper: 4.2 / 3.1 / 1.2 / 0.4).\n",
                v2_ops / v2_sec * 1e-9, dpu_gops_sum / n,
                cpu_gops_sum / n, gpu_gops_sum / n);
    std::printf("Compile: %.2fs summed over fresh compiles (%d of %d "
                "workloads came from the program cache), %.2fs host "
                "wall for the whole sweep at %u threads.\n",
                compile_seconds, cached_rows, n, sweep_seconds,
                ctx.threads());
    std::printf("Expected shape (paper): DPU-v2 wins everywhere "
                "except the most register-pressure-bound workloads "
                "(bnetflix/sieber class), where DPU's scratchpad "
                "prefetching wins.\n");

    // Batch-simulation measurement: 8 inputs through the paper's
    // 4-core batch machine on the smallest program of the sweep.
    std::vector<std::vector<double>> batch_inputs;
    for (uint64_t k = 0; k < 8; ++k)
        batch_inputs.push_back(bench::randomInputs(batch_row->raw,
                                                   100 + k));
    bench::batchSimReport(ctx, batch_row->run.program, batch_inputs, 4);

    // Real matrices (--matrix / --matrix-dir): single-RHS DPU-v2
    // throughput, batched multi-RHS throughput (one factorization, 8
    // right-hand sides coalesced onto the 4-core batch machine), and
    // the *measured* CPU level-scheduled solve over the same inputs.
    const auto &matrix_paths = ctx.options().matrixPaths;
    if (!matrix_paths.empty()) {
        constexpr size_t kRhsBatch = 8;
        constexpr uint32_t kBatchCores = 4;
        std::printf("\nReal matrices (batch of %zu right-hand "
                    "sides):\n",
                    kRhsBatch);
        TablePrinter mt({"matrix", "DPU-v2 1-RHS", "DPU-v2 8-RHS",
                         "CPU measured", "v2-batch/CPU"});
        std::vector<double> single_s, multi_s, cpu_s;
        for (const std::string &path : matrix_paths) {
            WorkloadSpec spec = matrixWorkload(path);
            SparseMatrixCsr lower = loadWorkloadMatrix(spec);
            SpTrsvDag lowered = buildSpTrsvDag(lower);
            CompiledProgram prog =
                ctx.cache()
                    ? ctx.cache()->compile(lowered.dag, minEdpConfig(),
                                           {})
                    : compile(lowered.dag, minEdpConfig(), {});

            std::vector<std::vector<double>> rhs_batch;
            Rng rng(spec.seed + 7);
            for (size_t b = 0; b < kRhsBatch; ++b) {
                std::vector<double> rhs(lower.dim());
                for (double &x : rhs)
                    x = 0.5 + rng.uniform();
                rhs_batch.push_back(std::move(rhs));
            }
            auto inputs =
                sptrsvBatchInputs(lowered, lower, rhs_batch);

            auto single =
                bench::runWorkload(lowered.dag, minEdpConfig(), {}, 1,
                                   ctx.cache());
            double gops_single = single.program.stats.numOperations /
                                 single.energy.seconds() * 1e-9;

            BatchMachine bm(prog, kBatchCores,
                            prog.stats.numOperations, ctx.threads());
            BatchResult br = bm.run(inputs);
            double gops_multi =
                br.throughputGops(tech28::frequencyHz);

            auto cpu = runCpuSparseSolve(lower, rhs_batch,
                                         {ctx.threads(), 3});

            mt.row()
                .cell(spec.name)
                .num(gops_single, 2)
                .num(gops_multi, 2)
                .num(cpu.throughputGops, 2)
                .num(gops_multi / cpu.throughputGops, 2);
            single_s.push_back(gops_single);
            multi_s.push_back(gops_multi);
            cpu_s.push_back(cpu.throughputGops);
        }
        mt.print();
        ctx.table(mt, "real_matrices");
        ctx.series("real_matrix_gops", single_s);
        ctx.series("real_matrix_multi_rhs_gops", multi_s);
        ctx.series("real_cpu_sparse_gops", cpu_s);
        std::printf("CPU row is measured level-scheduled forward "
                    "substitution on this host (%u threads), not a "
                    "model.\n",
                    ctx.threads());
    }
    return ctx.finish();
}
