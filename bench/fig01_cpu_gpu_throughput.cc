/**
 * @file
 * E1 — fig. 1(c): CPU and GPU throughput across DAG sizes, showing
 * both far below peak and the GPU underperforming the CPU until DAGs
 * reach ~100K nodes.
 */

#include <algorithm>

#include "baselines/baselines.hh"
#include "dag/binarize.hh"
#include "harness.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig01_cpu_gpu_throughput",
                       "Figure 1(c)",
                       1.0,
                       "CPU/GPU models on the suite plus one large PC "
                       "(scale flag applies to the large PC only).");
    double scale = ctx.scale();

    struct Row
    {
        std::string name;
        size_t nodes;
        double cpu, gpu;
    };
    std::vector<Row> rows;

    for (const auto &spec : smallSuite()) {
        Dag d = binarize(buildWorkloadDag(spec)).dag;
        rows.push_back({spec.name, d.numOperations(),
                        runCpuModel(d).throughputGops,
                        runGpuModel(d).throughputGops});
    }
    // One large PC to show the GPU crossover. Captured before the
    // sort below: at small --scale it need not be the biggest row.
    double large_gpu_over_cpu;
    {
        const auto &spec = largePcSuite()[0]; // pigs, 0.6M nodes
        Dag d = binarize(buildWorkloadDag(spec, scale)).dag;
        rows.push_back({spec.name + " (large)", d.numOperations(),
                        runCpuModel(d).throughputGops,
                        runGpuModel(d).throughputGops});
        large_gpu_over_cpu = rows.back().gpu / rows.back().cpu;
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.nodes < b.nodes; });

    TablePrinter t({"workload", "nodes", "CPU GOPS", "GPU GOPS",
                    "GPU/CPU"});
    for (const auto &r : rows) {
        t.row()
            .cell(r.name)
            .num(static_cast<long long>(r.nodes))
            .num(r.cpu, 3)
            .num(r.gpu, 3)
            .num(r.gpu / r.cpu, 2);
    }
    t.print();
    ctx.table(t);
    ctx.metric("large_pc_gpu_over_cpu", large_gpu_over_cpu);
    std::printf("\nExpected shape (paper): both far below the 3.4 TOPS "
                "peak; GPU < CPU for DAGs under ~100K nodes,\n"
                "GPU overtakes on the large PC.\n");
    return ctx.finish();
}
