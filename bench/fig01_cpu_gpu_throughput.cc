/**
 * @file
 * E1 — fig. 1(c): CPU and GPU throughput across DAG sizes, showing
 * both far below peak and the GPU underperforming the CPU until DAGs
 * reach ~100K nodes.
 */

#include <algorithm>

#include "baselines/baselines.hh"
#include "bench/common.hh"
#include "dag/binarize.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    bench::banner("fig01_cpu_gpu_throughput", "Figure 1(c)",
                  "CPU/GPU models on the suite plus one large PC "
                  "(scale flag applies to the large PC only).");

    struct Row
    {
        std::string name;
        size_t nodes;
        double cpu, gpu;
    };
    std::vector<Row> rows;

    for (const auto &spec : smallSuite()) {
        Dag d = binarize(buildWorkloadDag(spec)).dag;
        rows.push_back({spec.name, d.numOperations(),
                        runCpuModel(d).throughputGops,
                        runGpuModel(d).throughputGops});
    }
    // One large PC to show the GPU crossover.
    {
        const auto &spec = largePcSuite()[0]; // pigs, 0.6M nodes
        Dag d = binarize(buildWorkloadDag(spec, scale)).dag;
        rows.push_back({spec.name + " (large)", d.numOperations(),
                        runCpuModel(d).throughputGops,
                        runGpuModel(d).throughputGops});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.nodes < b.nodes; });

    TablePrinter t({"workload", "nodes", "CPU GOPS", "GPU GOPS",
                    "GPU/CPU"});
    for (const auto &r : rows) {
        t.row()
            .cell(r.name)
            .num(static_cast<long long>(r.nodes))
            .num(r.cpu, 3)
            .num(r.gpu, 3)
            .num(r.gpu / r.cpu, 2);
    }
    t.print();
    std::printf("\nExpected shape (paper): both far below the 3.4 TOPS "
                "peak; GPU < CPU for DAGs under ~100K nodes,\n"
                "GPU overtakes on the large PC.\n");
    return 0;
}
