/**
 * @file
 * The bench harness: every bench binary regenerates one table or
 * figure of the paper (see the per-experiment index in each file's
 * header) and goes through this harness for
 *
 *   - a uniform command line: --scale=<f> --full --quick
 *     --json=<file> --threads=N,
 *   - the human-readable banner + aligned tables (support/table.hh),
 *   - machine-readable JSON output consumed by tools/run_benches,
 *     which writes the BENCH_*.json perf-trajectory files,
 *   - the registry that tells tools/run_benches which bench binaries
 *     exist and how they map to paper elements.
 *
 * Library headers are included src-relative ("sim/machine.hh");
 * bench binaries include this header file-relative ("harness.hh").
 * Those are the only two include styles in the tree — the build adds
 * no other include roots, so a third style cannot silently appear.
 */

#ifndef DPU_BENCH_HARNESS_HH
#define DPU_BENCH_HARNESS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/cache.hh"
#include "compiler/compiler.hh"
#include "model/energy.hh"
#include "model/evaluator.hh"
#include "sim/machine.hh"
#include "support/table.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace bench {

// ---------------------------------------------------------------- //
// Workload helpers (shared by most benches).                       //
// ---------------------------------------------------------------- //

/** Everything one workload run produces. */
struct RunResult
{
    CompiledProgram program;
    SimResult sim;
    EnergyBreakdown energy;
};

/** Deterministic inputs in the well-conditioned band. */
std::vector<double> randomInputs(const Dag &dag, uint64_t seed);

/** Compile + simulate (with functional check) + evaluate energy.
 *  When `cache` is given the compile goes through it (see
 *  Context::cache()), so identical (DAG, config, options) pairs are
 *  compiled once per cache — or once per bench *sweep* with the
 *  on-disk spill tools/run_benches sets up. */
RunResult runWorkload(const Dag &dag, const ArchConfig &cfg,
                      const CompileOptions &opt = {},
                      uint64_t seed = 1, ProgramCache *cache = nullptr);

// ---------------------------------------------------------------- //
// Registry.                                                        //
// ---------------------------------------------------------------- //

/** Static description of one bench scenario. Most entries are one
 *  binary run with the uniform flags; a scenario entry reuses another
 *  entry's binary with extra flags (e.g. the fleet serve_latency
 *  sweep). */
struct BenchInfo
{
    const char *name;         ///< Scenario name and JSON file stem.
    const char *paperElement; ///< Figure/table it regenerates.
    double defaultScale;      ///< Workload scale with no flags.
    const char *extraFlags = ""; ///< Space-separated scenario flags.
    const char *binary = nullptr; ///< Binary name; nullptr = `name`.
};

/** Every harness-driven bench binary, in paper order. */
const std::vector<BenchInfo> &benchRegistry();

/** Look a bench up by name; nullptr when unknown. */
const BenchInfo *findBench(const std::string &name);

// ---------------------------------------------------------------- //
// Uniform CLI.                                                     //
// ---------------------------------------------------------------- //

/** Parsed uniform bench command line. */
struct Options
{
    double scale = 1.0;    ///< Workload scale (--scale=f / --full).
    bool quick = false;    ///< --quick: smoke-test sizes.
    bool full = false;     ///< --full: paper-size workloads.
    uint32_t threads = 1;  ///< --threads=N: host worker threads.
    std::string jsonPath;  ///< --json=<file>: write a JSON report.
    std::string cacheDir;  ///< --cache-dir=<dir>: on-disk spill.
    bool noCache = false;  ///< --no-cache: disable the program cache.

    /** --fidelity=<tier>: evaluation tier for benches that honor it
     *  (fig11_dse, fig12_pareto, serve_latency); others accept and
     *  ignore the flag so sweep scripts can pass it uniformly. */
    EvalFidelity fidelity = EvalFidelity::Cycle;

    /** Fleet flags, honored by the benches that model a fleet
     *  (serve_latency); others accept and ignore them. The defaults
     *  (--ranks=1 --xfer-gbps=inf) reproduce pre-fleet behavior
     *  byte-identically. */
    uint32_t ranks = 1;        ///< --ranks=N: modeled ranks.
    double xferGbps =          ///< --xfer-gbps=<v|inf>: host link.
        std::numeric_limits<double>::infinity();
    Placement placement =      ///< --placement=<replicate|affinity>.
        Placement::Replicate;

    /** Real-matrix flags: each --matrix=<file.mtx> appends one path
     *  (must be readable at parse time, exit 2 otherwise) and
     *  --matrix-dir=<dir> appends every `*.mtx` directly under the
     *  directory, sorted (exit 2 when none are found). Honored by
     *  table1_workloads / fig14a_throughput / table3_comparison;
     *  others accept and ignore them. */
    std::vector<std::string> matrixPaths;
};

/**
 * Parse `--scale=<f> --full --quick --json=<file> --threads=N
 * --cache-dir=<dir> --no-cache --fidelity=<tier> --ranks=N
 * --xfer-gbps=<v|inf> --placement=<policy>`. `--quick` divides
 * the default scale by 10 unless an explicit `--scale`/`--full`
 * overrides it. Unknown flags are fatal (exit 1) so CI catches typos;
 * invalid values (`--threads=0`, `--threads=abc`, `--scale=x`,
 * `--fidelity=bogus`, `--ranks=0`, `--xfer-gbps=junk`,
 * `--placement=bogus`) are rejected with exit 2 instead of being
 * silently clamped.
 */
Options parseOptions(int argc, char **argv, double default_scale);

/** One file-backed WorkloadSpec per --matrix/--matrix-dir path, in
 *  flag order (fatals on malformed matrix content — readability was
 *  already checked at parse time). */
std::vector<WorkloadSpec> matrixWorkloads(const Options &opts);

// ---------------------------------------------------------------- //
// Per-bench context: banner in, JSON report out.                   //
// ---------------------------------------------------------------- //

/**
 * One per bench main(). Parses the uniform CLI, prints the banner,
 * accumulates tables/metrics, and writes the JSON report on
 * finish(). Typical shape:
 *
 *     bench::Context ctx(argc, argv, "fig10_bank_conflicts",
 *                        "Figure 10(b)");
 *     ...
 *     t.print();
 *     ctx.table(t);
 *     ctx.metric("reduction_x", reduction);
 *     return ctx.finish();
 */
class Context
{
  public:
    Context(int argc, char **argv, const std::string &name,
            const std::string &paper_element,
            double default_scale = 1.0, const std::string &note = "");

    double scale() const { return opts.scale; }
    uint32_t threads() const { return opts.threads; }
    bool quick() const { return opts.quick; }
    const Options &options() const { return opts; }

    /** The bench's program cache (in-memory LRU, plus the on-disk
     *  spill when --cache-dir was given); nullptr with --no-cache.
     *  finish() records its hit/miss counters as metrics. */
    ProgramCache *cache() { return programCache.get(); }

    /** Record a table for the JSON report (print it yourself). */
    void table(const TablePrinter &t, const std::string &label = "main");

    /** Record one headline number for the perf trajectory. */
    void metric(const std::string &key, double value);

    /**
     * Record a typed numeric series (name -> vector of numbers) for
     * the JSON report. Unlike table(), which carries formatted
     * strings, series land as real JSON number arrays under a
     * top-level "series" object — the machine-readable form trend
     * tooling consumes (e.g. serve_latency's per-class latency
     * percentiles). The "series" object is always emitted, possibly
     * empty, so tools/run_benches can require its presence.
     */
    void series(const std::string &name,
                const std::vector<double> &values);

    /** Record a free-form string annotation. */
    void note(const std::string &key, const std::string &value);

    /**
     * Write the JSON report when --json was given. Returns the
     * process exit code (0, or 1 when the report cannot be written).
     */
    int finish();

  private:
    struct NamedTable
    {
        std::string label;
        std::vector<std::string> columns;
        std::vector<std::vector<std::string>> rows;
    };

    std::string name;
    std::string paperElement;
    Options opts;
    std::unique_ptr<ProgramCache> programCache;
    std::vector<NamedTable> tables;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::string>> notes;
    std::vector<std::pair<std::string, std::vector<double>>> seriesData;
};

// ---------------------------------------------------------------- //
// Host-parallelism + JSON utilities.                               //
// ---------------------------------------------------------------- //

/**
 * Run fn(0..n-1) on up to `threads` std::thread workers (dynamic
 * work stealing over an atomic index; the iteration space is
 * partitioned, never replicated). With threads <= 1 this is a plain
 * loop. The first exception thrown by any worker is rethrown on the
 * caller after all workers joined.
 */
void parallelFor(size_t n, uint32_t threads,
                 const std::function<void(size_t)> &fn);

/**
 * The shared batch-simulation measurement of the batch throughput
 * benches (fig14a/fig14b): run `inputs` through a BatchMachine with
 * `cores` model cores and ctx.threads() host workers, print the
 * modeled GOPS + host wall time, and record the batch_modeled_gops /
 * batch_host_seconds / batch_host_threads metrics. The modeled
 * numbers are thread-count-independent; only the host seconds drop
 * as --threads grows.
 */
void batchSimReport(Context &ctx, const CompiledProgram &prog,
                    const std::vector<std::vector<double>> &inputs,
                    uint32_t cores);

/**
 * Minimal JSON well-formedness check (objects/arrays/strings/
 * numbers/bools/null, full nesting). Used by tools/run_benches and
 * the CI smoke job to validate BENCH_*.json files.
 */
bool validJson(const std::string &text, std::string *error = nullptr);

/** validJson() over a file's contents; false when unreadable. */
bool validJsonFile(const std::string &path,
                   std::string *error = nullptr);

/**
 * True when `text` is a JSON object carrying `key` at its top level.
 * Structure-aware (string/escape/nesting state), so the key name
 * appearing inside a nested object or a string *value* does not
 * count — the check tools/run_benches uses to require the "series"
 * object in every harness report.
 */
bool jsonTopLevelKey(const std::string &text, const std::string &key);

} // namespace bench
} // namespace dpu

#endif // DPU_BENCH_HARNESS_HH
