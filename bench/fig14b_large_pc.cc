/**
 * @file
 * E13 — fig. 14(b): large-PC throughput. DPU-v2 (L) is the large
 * configuration (R=256, 2 MB data memory, instructions streamed) run
 * as 4 batch cores; SPU / CPU_SPU / CPU / GPU come from the baseline
 * models.
 *
 * Default runs the large PCs scaled to 15% (the compiler handles the
 * full sizes — use --full — but the sweep then takes tens of
 * minutes, like the paper's >24h artifact note, scaled down).
 */

#include "baselines/baselines.hh"
#include "bench/common.hh"
#include "dag/binarize.hh"
#include "support/stats.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 0.15);
    bench::banner("fig14b_large_pc", "Figure 14(b) / Table III right",
                  "Scale = " + std::to_string(scale) +
                      " of the paper's node counts (--full for "
                      "paper-size).");
    constexpr int batchCores = 4;

    TablePrinter t({"workload", "nodes", "DPU-v2 (L)", "SPU",
                    "CPU_SPU", "CPU", "GPU"});
    std::vector<double> r_spu, r_cpuspu, r_cpu, r_gpu;
    for (const auto &spec : largePcSuite()) {
        Dag raw = buildWorkloadDag(spec, scale);
        CompileOptions opt;
        opt.partitionNodes = 20000; // paper: 20k-node partitions
        auto run = bench::runWorkload(raw, largeConfig(), opt);
        // 4 cores execute 4 batch inputs in parallel.
        double v2 = batchCores * run.program.stats.numOperations /
                    run.energy.seconds() * 1e-9;

        Dag d = binarize(raw).dag;
        auto spu = runSpuModel(d);
        auto cpuspu = runCpuSpuModel(d);
        auto cpu = runCpuModel(d);
        auto gpu = runGpuModel(d);
        r_spu.push_back(v2 / spu.throughputGops);
        r_cpuspu.push_back(v2 / cpuspu.throughputGops);
        r_cpu.push_back(v2 / cpu.throughputGops);
        r_gpu.push_back(v2 / gpu.throughputGops);

        t.row()
            .cell(spec.name)
            .num(static_cast<long long>(raw.numOperations()))
            .num(v2, 2)
            .num(spu.throughputGops, 2)
            .num(cpuspu.throughputGops, 2)
            .num(cpu.throughputGops, 2)
            .num(gpu.throughputGops, 2);
    }
    t.print();
    std::printf("\nGeomean speedups of DPU-v2 (L): vs SPU %.2fx "
                "(paper 1.6x), vs CPU_SPU %.2fx (paper 20.7x), vs CPU "
                "%.2fx (paper 19.2x), vs GPU %.2fx (paper 7.5x).\n",
                geomean(r_spu), geomean(r_cpuspu), geomean(r_cpu),
                geomean(r_gpu));
    std::printf("Expected shape (paper): DPU-v2 (L) > SPU > GPU > "
                "CPU on large PCs; GPU recovers on these sizes but "
                "stays behind the specialized designs.\n");
    return 0;
}
