/**
 * @file
 * E13 — fig. 14(b): large-PC throughput. DPU-v2 (L) is the large
 * configuration (R=256, 2 MB data memory, instructions streamed) run
 * as 4 batch cores; SPU / CPU_SPU / CPU / GPU come from the baseline
 * models.
 *
 * Default runs the large PCs scaled to 15% (the compiler handles the
 * full sizes — use --full — but the sweep then takes tens of
 * minutes, like the paper's >24h artifact note, scaled down).
 */

#include "baselines/baselines.hh"
#include "dag/binarize.hh"
#include "harness.hh"
#include "support/stats.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig14b_large_pc",
                       "Figure 14(b) / Table III right",
                       0.15,
                       "Scale relative to the paper's node counts "
                       "(--full for paper-size).");
    double scale = ctx.scale();
    constexpr int batchCores = 4;

    TablePrinter t({"workload", "nodes", "DPU-v2 (L)", "SPU",
                    "CPU_SPU", "CPU", "GPU"});
    std::vector<double> r_spu, r_cpuspu, r_cpu, r_gpu;
    double compile_seconds = 0;
    // Smallest compiled program of the sweep, for the batch-
    // simulation measurement below.
    CompiledProgram batch_prog;
    std::vector<std::vector<double>> batch_inputs;
    for (const auto &spec : largePcSuite()) {
        Dag raw = buildWorkloadDag(spec, scale);
        CompileOptions opt;
        opt.partitionNodes = 20000; // paper: 20k-node partitions
        opt.threads = ctx.threads(); // partition-parallel compile
        // Compile off the cache — compile_seconds_total must measure
        // real compiles so a --threads sweep is meaningful — but
        // insert the artifact so later benches (table3) reuse it.
        auto run = bench::runWorkload(raw, largeConfig(), opt);
        if (ctx.cache())
            ctx.cache()->insert(raw, largeConfig(), opt, run.program);
        compile_seconds += run.program.stats.compileSeconds;
        if (batch_inputs.empty() ||
            run.program.stats.numOperations <
                batch_prog.stats.numOperations) {
            batch_prog = run.program;
            batch_inputs.clear();
            for (uint64_t k = 0; k < batchCores; ++k)
                batch_inputs.push_back(
                    bench::randomInputs(raw, 100 + k));
        }
        // 4 cores execute 4 batch inputs in parallel.
        double v2 = batchCores * run.program.stats.numOperations /
                    run.energy.seconds() * 1e-9;

        Dag d = binarize(raw).dag;
        auto spu = runSpuModel(d);
        auto cpuspu = runCpuSpuModel(d);
        auto cpu = runCpuModel(d);
        auto gpu = runGpuModel(d);
        r_spu.push_back(v2 / spu.throughputGops);
        r_cpuspu.push_back(v2 / cpuspu.throughputGops);
        r_cpu.push_back(v2 / cpu.throughputGops);
        r_gpu.push_back(v2 / gpu.throughputGops);

        t.row()
            .cell(spec.name)
            .num(static_cast<long long>(raw.numOperations()))
            .num(v2, 2)
            .num(spu.throughputGops, 2)
            .num(cpuspu.throughputGops, 2)
            .num(cpu.throughputGops, 2)
            .num(gpu.throughputGops, 2);
    }
    t.print();
    ctx.table(t);
    ctx.metric("geomean_vs_spu", geomean(r_spu));
    ctx.metric("geomean_vs_cpu_spu", geomean(r_cpuspu));
    ctx.metric("geomean_vs_cpu", geomean(r_cpu));
    ctx.metric("geomean_vs_gpu", geomean(r_gpu));
    ctx.metric("compile_seconds_total", compile_seconds);
    ctx.metric("compile_threads", ctx.threads());
    std::printf("Compile: %.2fs total at %u threads (20k-node "
                "partitions compile partition-parallel).\n",
                compile_seconds, ctx.threads());
    std::printf("\nGeomean speedups of DPU-v2 (L): vs SPU %.2fx "
                "(paper 1.6x), vs CPU_SPU %.2fx (paper 20.7x), vs CPU "
                "%.2fx (paper 19.2x), vs GPU %.2fx (paper 7.5x).\n",
                geomean(r_spu), geomean(r_cpuspu), geomean(r_cpu),
                geomean(r_gpu));
    std::printf("Expected shape (paper): DPU-v2 (L) > SPU > GPU > "
                "CPU on large PCs; GPU recovers on these sizes but "
                "stays behind the specialized designs.\n");

    // Batch-simulation measurement: one input per model core through
    // the threaded BatchMachine on the smallest large-PC program.
    bench::batchSimReport(ctx, batch_prog, batch_inputs, batchCores);
    return ctx.finish();
}
