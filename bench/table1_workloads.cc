/**
 * @file
 * E9 — Table I: workload statistics (nodes, longest path, n/l) of
 * the synthetic twins next to the paper's values, plus our compile
 * time at the min-EDP configuration. The per-workload builds and
 * compiles are independent, so they run on the harness worker pool
 * (--threads=N); rows are emitted in suite order regardless.
 */

#include "dag/algorithms.hh"
#include "harness.hh"
#include "workloads/sptrsv.hh"

using namespace dpu;

namespace {

double
section(bench::Context &ctx, const char *title, const char *label,
        const std::vector<WorkloadSpec> &suite, double scale,
        bool compile_them, bool partition_compile = false)
{
    struct Row
    {
        DagStats stats;
        double compileSecs = 0;
    };
    std::vector<Row> rows(suite.size());
    // The large-PC section measures the partition-parallel compiler,
    // so --threads goes *inside* each compile there (one workload at
    // a time keeps the per-workload wall clock interpretable); the
    // small sections parallelize across workloads instead. Either
    // way this is a compile-*time* measurement, so it stays off the
    // program cache.
    uint32_t outer = partition_compile ? 1 : ctx.threads();
    bench::parallelFor(suite.size(), outer, [&](size_t i) {
        Dag d = buildWorkloadDag(suite[i], scale);
        rows[i].stats = computeStats(d);
        if (compile_them) {
            CompileOptions opt;
            if (partition_compile &&
                rows[i].stats.numOperations > 100000) {
                opt.partitionNodes = 20000;
                opt.threads = ctx.threads();
            }
            auto prog = compile(d, minEdpConfig(), opt);
            rows[i].compileSecs = prog.stats.compileSeconds;
        }
    });

    std::printf("%s\n", title);
    TablePrinter t({"workload", "nodes", "paper n", "longest path",
                    "paper l", "n/l", "compile (s)"});
    for (size_t i = 0; i < suite.size(); ++i) {
        const WorkloadSpec &spec = suite[i];
        const DagStats &s = rows[i].stats;
        t.row()
            .cell(spec.name)
            .num(static_cast<long long>(s.numOperations))
            .num(static_cast<long long>(
                static_cast<size_t>(spec.paperNodes * scale)))
            .num(static_cast<long long>(s.longestPath))
            .num(static_cast<long long>(spec.paperLongestPath))
            .num(s.parallelism, 0)
            .num(rows[i].compileSecs, 2);
    }
    t.print();
    ctx.table(t, label);
    std::printf("\n");
    double total = 0;
    for (const Row &r : rows)
        total += r.compileSecs;
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "table1_workloads", "Table I",
                       0.25,
                       "Synthetic structural twins; paper columns "
                       "show the targets. Scale flag applies to the "
                       "large PCs (--full).");
    double large_scale = ctx.scale();
    double compile_seconds = 0;
    compile_seconds += section(ctx, "(a) Probabilistic circuits", "pc",
                               pcSuite(), 1.0, true);
    compile_seconds += section(ctx,
                               "(b) Sparse matrix triangular solves",
                               "sptrsv", sptrsvSuite(), 1.0, true);
    compile_seconds += section(ctx, "(c) Large probabilistic circuits",
                               "large_pc", largePcSuite(), large_scale,
                               true, /*partition_compile=*/true);

    // (d) Real matrices: file-backed SpTRSV workloads (--matrix /
    // --matrix-dir). No "paper" columns here — every number is
    // measured on the actual matrix.
    if (!ctx.options().matrixPaths.empty()) {
        auto specs = bench::matrixWorkloads(ctx.options());
        struct MatrixRow
        {
            uint32_t dim = 0;
            size_t nnz = 0;
            size_t depth = 0;
            DagStats stats;
            double compileSecs = 0;
        };
        std::vector<MatrixRow> mrows(specs.size());
        bench::parallelFor(specs.size(), ctx.threads(), [&](size_t i) {
            SparseMatrixCsr lower = loadWorkloadMatrix(specs[i]);
            mrows[i].dim = lower.dim();
            mrows[i].nnz = lower.nnz();
            mrows[i].depth = lower.dependencyDepth();
            Dag d = buildSpTrsvDag(lower).dag;
            mrows[i].stats = computeStats(d);
            auto prog = compile(d, minEdpConfig(), {});
            mrows[i].compileSecs = prog.stats.compileSeconds;
        });
        std::printf("(d) Real matrices\n");
        TablePrinter mt({"matrix", "dim", "nnz", "dep depth", "nodes",
                         "longest path", "n/l", "compile (s)"});
        std::vector<double> nodes_s, path_s, depth_s, nnz_s;
        for (size_t i = 0; i < specs.size(); ++i) {
            const MatrixRow &r = mrows[i];
            mt.row()
                .cell(specs[i].name)
                .num(static_cast<long long>(r.dim))
                .num(static_cast<long long>(r.nnz))
                .num(static_cast<long long>(r.depth))
                .num(static_cast<long long>(r.stats.numOperations))
                .num(static_cast<long long>(r.stats.longestPath))
                .num(r.stats.parallelism, 0)
                .num(r.compileSecs, 2);
            nodes_s.push_back(
                static_cast<double>(r.stats.numOperations));
            path_s.push_back(static_cast<double>(r.stats.longestPath));
            depth_s.push_back(static_cast<double>(r.depth));
            nnz_s.push_back(static_cast<double>(r.nnz));
            compile_seconds += r.compileSecs;
        }
        mt.print();
        ctx.table(mt, "real_matrices");
        ctx.series("real_matrix_nodes", nodes_s);
        ctx.series("real_matrix_longest_path", path_s);
        ctx.series("real_matrix_depth", depth_s);
        ctx.series("real_matrix_nnz", nnz_s);
        std::printf("\n");
    }

    ctx.metric("compile_seconds_total", compile_seconds);
    ctx.metric("compile_threads", ctx.threads());
    std::printf("Compile: %.2fs total at %u threads (large PCs "
                "compile partition-parallel over 20k-node "
                "partitions).\n",
                compile_seconds, ctx.threads());
    std::printf("Note: the paper's compile times (minutes) come from "
                "its Python compiler; this C++ compiler is orders of "
                "magnitude faster, which is a quality-of-"
                "implementation difference, not an algorithmic "
                "claim.\n");
    return ctx.finish();
}
