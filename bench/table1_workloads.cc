/**
 * @file
 * E9 — Table I: workload statistics (nodes, longest path, n/l) of
 * the synthetic twins next to the paper's values, plus our compile
 * time at the min-EDP configuration.
 */

#include "bench/common.hh"
#include "dag/algorithms.hh"

using namespace dpu;

namespace {

void
section(const char *title, const std::vector<WorkloadSpec> &suite,
        double scale, bool compile_them)
{
    std::printf("%s\n", title);
    TablePrinter t({"workload", "nodes", "paper n", "longest path",
                    "paper l", "n/l", "compile (s)"});
    for (const auto &spec : suite) {
        Dag d = buildWorkloadDag(spec, scale);
        DagStats s = computeStats(d);
        double secs = 0;
        if (compile_them) {
            CompileOptions opt;
            if (s.numOperations > 100000)
                opt.partitionNodes = 20000;
            auto prog = compile(d, minEdpConfig(), opt);
            secs = prog.stats.compileSeconds;
        }
        t.row()
            .cell(spec.name)
            .num(static_cast<long long>(s.numOperations))
            .num(static_cast<long long>(
                static_cast<size_t>(spec.paperNodes * scale)))
            .num(static_cast<long long>(s.longestPath))
            .num(static_cast<long long>(spec.paperLongestPath))
            .num(s.parallelism, 0)
            .num(secs, 2);
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    double large_scale = bench::parseScale(argc, argv, 0.25);
    bench::banner("table1_workloads", "Table I",
                  "Synthetic structural twins; paper columns show the "
                  "targets. Large-PC scale = " +
                      std::to_string(large_scale) + " (--full).");
    section("(a) Probabilistic circuits", pcSuite(), 1.0, true);
    section("(b) Sparse matrix triangular solves", sptrsvSuite(), 1.0,
            true);
    section("(c) Large probabilistic circuits", largePcSuite(),
            large_scale, true);
    std::printf("Note: the paper's compile times (minutes) come from "
                "its Python compiler; this C++ compiler is orders of "
                "magnitude faster, which is a quality-of-"
                "implementation difference, not an algorithmic "
                "claim.\n");
    return 0;
}
