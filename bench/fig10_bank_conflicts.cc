/**
 * @file
 * E5 — fig. 10(b): bank conflicts, conflict-aware mapping (alg. 2)
 * vs random bank allocation.
 */

#include "compiler/blocks.hh"
#include "compiler/mapper.hh"
#include "dag/binarize.hh"
#include "harness.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig10_bank_conflicts",
                       "Figure 10(b)");
    double scale = ctx.scale();

    ArchConfig cfg = minEdpConfig();
    TablePrinter t({"workload", "conflict-aware", "random", "ratio"});
    uint64_t smart_total = 0, naive_total = 0;
    for (const auto &spec : smallSuite()) {
        Dag raw = buildWorkloadDag(spec, scale);
        auto bin = binarize(raw);
        auto dec = decomposeIntoBlocks(bin.dag, cfg, 1);
        auto smart =
            assignBanks(bin.dag, cfg, dec, BankPolicy::ConflictAware);
        auto naive = assignBanks(bin.dag, cfg, dec, BankPolicy::Random);
        smart_total += smart.readConflicts;
        naive_total += naive.readConflicts;
        double ratio = smart.readConflicts
            ? double(naive.readConflicts) / smart.readConflicts
            : double(naive.readConflicts);
        t.row()
            .cell(spec.name)
            .num(static_cast<long long>(smart.readConflicts))
            .num(static_cast<long long>(naive.readConflicts))
            .num(ratio, 1);
    }
    t.print();
    ctx.table(t);
    ctx.metric("reduction_x",
               smart_total ? double(naive_total) / smart_total
                           : double(naive_total));
    std::printf("\nSuite total: conflict-aware %llu vs random %llu "
                "(%.0fx reduction; paper reports 292x on its "
                "workload).\n",
                static_cast<unsigned long long>(smart_total),
                static_cast<unsigned long long>(naive_total),
                smart_total ? double(naive_total) / smart_total
                            : double(naive_total));
    return ctx.finish();
}
