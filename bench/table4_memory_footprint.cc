/**
 * @file
 * E15 — the memory-footprint claims of §III-B and §IV-E: the
 * automatic write policy shrinks programs ~30%, and the total
 * instruction+data footprint undercuts the CSR representation ~48%.
 */

#include "harness.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "table4_memory_footprint",
                       "§III-B (30% program-size) and §IV-E (48% vs "
                       "CSR)");
    double scale = ctx.scale();

    TablePrinter t({"workload", "program KB", "explicit-wr KB",
                    "auto-wr saves %", "prog+data KB", "CSR KB",
                    "vs CSR %"});
    double sum_ours = 0, sum_csr = 0, sum_auto = 0, sum_explicit = 0;
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        auto prog = compile(d, minEdpConfig());
        const auto &s = prog.stats;
        double kb = 1.0 / (8 * 1024);
        double ours = double(s.programBits + s.dataBits);
        t.row()
            .cell(spec.name)
            .num(s.programBits * kb, 1)
            .num(s.programBitsExplicitWrites * kb, 1)
            .num(100.0 * (1.0 - double(s.programBits) /
                                    s.programBitsExplicitWrites),
                 1)
            .num(ours * kb, 1)
            .num(s.csrBits * kb, 1)
            .num(100.0 * (1.0 - ours / double(s.csrBits)), 1);
        sum_ours += ours;
        sum_csr += double(s.csrBits);
        sum_auto += double(s.programBits);
        sum_explicit += double(s.programBitsExplicitWrites);
    }
    t.print();
    ctx.table(t);
    ctx.metric("auto_write_saves_pct",
               100.0 * (1.0 - sum_auto / sum_explicit));
    ctx.metric("vs_csr_saves_pct", 100.0 * (1.0 - sum_ours / sum_csr));
    std::printf("\nSuite totals: automatic write addressing saves "
                "%.0f%% program size (paper: ~30%%); instructions+"
                "data are %.0f%% smaller than CSR (paper: 48%%).\n",
                100.0 * (1.0 - sum_auto / sum_explicit),
                100.0 * (1.0 - sum_ours / sum_csr));
    return ctx.finish();
}
