/**
 * @file
 * E8 — fig. 12: latency vs energy scatter of the design space with
 * the constant-EDP curve through the min-EDP point.
 */

#include <cmath>

#include "harness.hh"
#include "model/dse.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig12_pareto", "Figure 12",
                       0.15,
                       "Latency-energy scatter; '*' marks the min-EDP "
                       "design, 'o' points on its constant-EDP curve "
                       "within 10%.");
    double scale = ctx.scale();

    DseOptions opt;
    opt.workloadScale = scale;
    auto pts = exploreDesignSpace(opt);
    double min_edp = pts[minEdpIndex(pts)].edpPjNs;

    TablePrinter t({"design", "latency/op (ns)", "energy/op (pJ)",
                    "EDP", "mark"});
    for (const auto &p : pts) {
        if (!p.feasible)
            continue;
        std::string mark;
        if (p.edpPjNs == min_edp)
            mark = "* min-EDP";
        else if (std::abs(p.edpPjNs - min_edp) < 0.1 * min_edp)
            mark = "o on-curve";
        t.row()
            .cell(p.cfg.label())
            .num(p.latencyPerOpNs, 3)
            .num(p.energyPerOpPj, 1)
            .num(p.edpPjNs, 1)
            .cell(mark);
    }
    t.print();
    ctx.table(t);
    ctx.metric("min_edp_pj_ns", min_edp);
    std::printf("\nExpected shape (paper): latency varies much more "
                "than energy across the space (the constant-EDP curve "
                "is shallow in the energy direction).\n");
    return ctx.finish();
}
