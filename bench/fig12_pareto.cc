/**
 * @file
 * E8 — fig. 12: latency vs energy scatter of the design space with
 * the Pareto frontier (model/dse.hh paretoFrontier over latency/
 * energy/area) and the min-EDP design marked. Runs as a sharded
 * sweep; per-shard timing and cache hit rate land as typed series.
 */

#include <algorithm>
#include <cmath>

#include "harness.hh"
#include "model/dse.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig12_pareto", "Figure 12",
                       0.15,
                       "Latency-energy scatter; '*' marks the min-EDP "
                       "design, 'o' the other points of the latency/"
                       "energy/area Pareto frontier.");

    DseSweepOptions sopt;
    sopt.space.workloadScale = ctx.scale();
    sopt.threads = ctx.threads();
    sopt.shards = std::max(4u, ctx.threads());
    sopt.cache = ctx.cache();
    DseSweepResult sweep = runDseSweep(sopt);
    const std::vector<DsePoint> &pts = sweep.points;

    std::vector<size_t> frontier = paretoFrontier(pts);
    size_t min_edp = minEdpIndex(pts);

    TablePrinter t({"design", "latency/op (ns)", "energy/op (pJ)",
                    "EDP", "mark"});
    std::vector<double> frontier_latency, frontier_energy;
    for (size_t i = 0; i < pts.size(); ++i) {
        const DsePoint &p = pts[i];
        if (!p.feasible)
            continue;
        bool on_frontier = std::find(frontier.begin(), frontier.end(),
                                     i) != frontier.end();
        std::string mark;
        if (i == min_edp)
            mark = "* min-EDP";
        else if (on_frontier)
            mark = "o frontier";
        if (on_frontier) {
            frontier_latency.push_back(p.latencyPerOpNs);
            frontier_energy.push_back(p.energyPerOpPj);
        }
        t.row()
            .cell(p.cfg.label())
            .num(p.latencyPerOpNs, 3)
            .num(p.energyPerOpPj, 1)
            .num(p.edpPjNs, 1)
            .cell(mark);
    }
    t.print();
    ctx.table(t);
    ctx.series("frontier_latency_per_op_ns", frontier_latency);
    ctx.series("frontier_energy_per_op_pj", frontier_energy);

    std::vector<double> shard_seconds, shard_hit_rate;
    for (const DseShardReport &r : sweep.shardReports) {
        shard_seconds.push_back(r.seconds);
        shard_hit_rate.push_back(r.hitRate());
    }
    ctx.series("shard_seconds", shard_seconds);
    ctx.series("shard_cache_hit_rate", shard_hit_rate);
    ctx.metric("frontier_size", static_cast<double>(frontier.size()));

    if (min_edp == kDseNpos) {
        std::printf("\nno feasible design point in the sweep\n");
        ctx.note("min_edp", "none");
        return ctx.finish();
    }
    ctx.metric("min_edp_pj_ns", pts[min_edp].edpPjNs);
    ctx.note("min_edp", pts[min_edp].cfg.label());
    std::printf("\nExpected shape (paper): latency varies much more "
                "than energy across the space (the frontier is "
                "shallow in the energy direction).\n");
    return ctx.finish();
}
