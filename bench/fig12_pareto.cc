/**
 * @file
 * E8 — fig. 12: latency vs energy scatter of the design space with
 * the Pareto frontier (model/dse.hh paretoFrontier over latency/
 * energy/area) and the min-EDP design marked. Runs as a sharded
 * sweep; per-shard timing and cache hit rate land as typed series.
 */

#include <algorithm>
#include <cmath>

#include "harness.hh"
#include "model/dse.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "fig12_pareto", "Figure 12",
                       0.15,
                       "Latency-energy scatter; '*' marks the min-EDP "
                       "design, 'o' the other points of the latency/"
                       "energy/area Pareto frontier.");

    DseSweepOptions sopt;
    sopt.space.workloadScale = ctx.scale();
    sopt.threads = ctx.threads();
    sopt.shards = std::max(4u, ctx.threads());
    sopt.cache = ctx.cache();
    sopt.fidelity = ctx.options().fidelity;
    // A fast tier turns this bench into the adaptive-refinement
    // pipeline: coarse sweep, then cycle re-evaluation of only the
    // margin-undominated neighborhood — the frontier below is then
    // cycle-exact either way.
    sopt.refine = sopt.fidelity != EvalFidelity::Cycle;
    DseSweepResult sweep = runDseSweep(sopt);
    const std::vector<DsePoint> &pts = sweep.points;

    std::vector<size_t> frontier = paretoFrontier(pts);
    size_t min_edp = minEdpIndex(pts);

    TablePrinter t({"design", "latency/op (ns)", "energy/op (pJ)",
                    "EDP", "mark"});
    std::vector<double> frontier_latency, frontier_energy;
    for (size_t i = 0; i < pts.size(); ++i) {
        const DsePoint &p = pts[i];
        if (!p.feasible)
            continue;
        bool on_frontier = std::find(frontier.begin(), frontier.end(),
                                     i) != frontier.end();
        std::string mark;
        if (i == min_edp)
            mark = "* min-EDP";
        else if (on_frontier)
            mark = "o frontier";
        if (on_frontier) {
            frontier_latency.push_back(p.latencyPerOpNs);
            frontier_energy.push_back(p.energyPerOpPj);
        }
        t.row()
            .cell(p.cfg.label())
            .num(p.latencyPerOpNs, 3)
            .num(p.energyPerOpPj, 1)
            .num(p.edpPjNs, 1)
            .cell(mark);
    }
    t.print();
    ctx.table(t);
    ctx.series("frontier_latency_per_op_ns", frontier_latency);
    ctx.series("frontier_energy_per_op_pj", frontier_energy);

    std::vector<double> shard_seconds, shard_hit_rate;
    for (const DseShardReport &r : sweep.shardReports) {
        shard_seconds.push_back(r.seconds);
        shard_hit_rate.push_back(r.hitRate());
    }
    ctx.series("shard_seconds", shard_seconds);
    ctx.series("shard_cache_hit_rate", shard_hit_rate);
    ctx.metric("frontier_size", static_cast<double>(frontier.size()));

    if (sopt.refine) {
        ctx.metric("cycle_evaluated_points",
                   static_cast<double>(sweep.cycleEvaluatedPoints));
        ctx.metric("refine_survivors",
                   static_cast<double>(sweep.refineSurvivors));
        double reduction = sweep.cycleEvaluatedPoints
                               ? static_cast<double>(pts.size()) /
                                     static_cast<double>(
                                         sweep.cycleEvaluatedPoints)
                               : static_cast<double>(pts.size());
        ctx.metric("cycle_eval_reduction_x", reduction);
        std::printf("\nrefinement (%s tier): %zu of %zu points "
                    "cycle-evaluated (%.1fx reduction)\n",
                    fidelityName(sopt.fidelity),
                    sweep.cycleEvaluatedPoints, pts.size(), reduction);

        // Tier-error series over the (cycle-exact) frontier: the fast
        // tiers are static estimates, so re-estimating each frontier
        // point costs one compile-cache hit, not a simulation.
        Evaluator fast(sopt.fidelity);
        std::vector<WorkloadSpec> suite = smallSuite();
        std::vector<double> energy_err;
        for (size_t i : frontier) {
            const DsePoint &exact = pts[i];
            DsePoint est = evaluateDesign(
                exact.cfg, suite, exact.workloadScale,
                sopt.space.seed, exact.cores, ctx.cache(), nullptr,
                &fast);
            if (est.feasible && exact.energyPerOpPj > 0)
                energy_err.push_back(
                    std::abs(est.energyPerOpPj - exact.energyPerOpPj) /
                    exact.energyPerOpPj);
        }
        ctx.series("frontier_energy_rel_error", energy_err);
    }

    if (min_edp == kDseNpos) {
        std::printf("\nno feasible design point in the sweep\n");
        ctx.note("min_edp", "none");
        return ctx.finish();
    }
    ctx.metric("min_edp_pj_ns", pts[min_edp].edpPjNs);
    ctx.note("min_edp", pts[min_edp].cfg.label());
    std::printf("\nExpected shape (paper): latency varies much more "
                "than energy across the space (the frontier is "
                "shallow in the energy direction).\n");
    return ctx.finish();
}
