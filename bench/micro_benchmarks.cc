/**
 * @file
 * Google-benchmark micro-benchmarks of the toolchain itself:
 * compiler throughput (single-threaded and partition-parallel),
 * simulator speed, encode/decode bandwidth. Not a paper figure —
 * engineering health of the reproduction.
 *
 * The main() accepts three harness-style flags so tools/run_benches
 * can drive this binary alongside the paper benches: `--quick`
 * (shrink the fixture DAG for a smoke pass), `--threads=N` (workers
 * for the parallel-compile benchmark) and `--json=<file>` (alias for
 * --benchmark_out=<file> --benchmark_out_format=json). Everything
 * else is passed to google-benchmark untouched.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "arch/isa.hh"
#include "compiler/compiler.hh"
#include "dag/eval.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

bool g_quick = false;
uint32_t g_threads = 2;

Dag &
benchDag()
{
    static Dag dag = [] {
        PcParams p;
        p.targetOperations = g_quick ? 2000 : 20000;
        p.depth = 32;
        p.seed = 5;
        return generatePc(p);
    }();
    return dag;
}

CompiledProgram &
benchProgram()
{
    static CompiledProgram prog = compile(benchDag(), minEdpConfig());
    return prog;
}

void
BM_CompileMinEdp(benchmark::State &state)
{
    const Dag &d = benchDag();
    for (auto _ : state) {
        auto prog = compile(d, minEdpConfig());
        benchmark::DoNotOptimize(prog.instructions.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(d.numOperations()));
}
BENCHMARK(BM_CompileMinEdp)->Unit(benchmark::kMillisecond);

void
BM_CompileParallelPartitions(benchmark::State &state)
{
    const Dag &d = benchDag();
    CompileOptions opt;
    opt.partitionNodes = g_quick ? 250 : 2000;
    opt.threads = g_threads;
    for (auto _ : state) {
        auto prog = compile(d, minEdpConfig(), opt);
        benchmark::DoNotOptimize(prog.instructions.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(d.numOperations()));
    state.counters["threads"] = g_threads;
}
BENCHMARK(BM_CompileParallelPartitions)->Unit(benchmark::kMillisecond);

void
BM_Simulate(benchmark::State &state)
{
    const auto &prog = benchProgram();
    Rng rng(1);
    std::vector<double> in(benchDag().numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    Machine m(prog);
    for (auto _ : state) {
        auto res = m.run(in);
        benchmark::DoNotOptimize(res.outputs.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(prog.instructions.size()));
}
BENCHMARK(BM_Simulate)->Unit(benchmark::kMillisecond);

void
BM_EncodeProgram(benchmark::State &state)
{
    const auto &prog = benchProgram();
    for (auto _ : state) {
        auto image = encodeProgram(prog.cfg, prog.instructions);
        benchmark::DoNotOptimize(image.data());
    }
    state.SetBytesProcessed(
        state.iterations() *
        int64_t(programSizeBits(prog.cfg, prog.instructions) / 8));
}
BENCHMARK(BM_EncodeProgram)->Unit(benchmark::kMillisecond);

void
BM_DecodeProgram(benchmark::State &state)
{
    const auto &prog = benchProgram();
    auto image = encodeProgram(prog.cfg, prog.instructions);
    for (auto _ : state) {
        auto back =
            decodeProgram(prog.cfg, image, prog.instructions.size());
        benchmark::DoNotOptimize(back.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            int64_t(image.size()));
}
BENCHMARK(BM_DecodeProgram)->Unit(benchmark::kMillisecond);

void
BM_ReferenceEvaluate(benchmark::State &state)
{
    const Dag &d = benchDag();
    Rng rng(2);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    for (auto _ : state) {
        auto v = evaluate(d, in);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(d.numOperations()));
}
BENCHMARK(BM_ReferenceEvaluate)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace dpu

int
main(int argc, char **argv)
{
    // Translate the harness-style flags (see file header), keep the
    // rest for google-benchmark.
    std::vector<std::string> storage;
    storage.reserve(argc + 2);
    storage.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--quick") == 0) {
            dpu::g_quick = true;
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            int n = std::atoi(a + 10);
            dpu::g_threads = n < 1 ? 1 : static_cast<uint32_t>(n);
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            storage.push_back(std::string("--benchmark_out=") +
                              (a + 7));
            storage.push_back("--benchmark_out_format=json");
        } else {
            storage.push_back(a);
        }
    }
    std::vector<char *> args;
    args.reserve(storage.size());
    for (std::string &s : storage)
        args.push_back(s.data());
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
