/**
 * @file
 * Google-benchmark micro-benchmarks of the toolchain itself:
 * compiler throughput, simulator speed, encode/decode bandwidth.
 * Not a paper figure — engineering health of the reproduction.
 */

#include <benchmark/benchmark.h>

#include "arch/isa.hh"
#include "compiler/compiler.hh"
#include "dag/eval.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

Dag &
benchDag()
{
    static Dag dag = [] {
        PcParams p;
        p.targetOperations = 20000;
        p.depth = 32;
        p.seed = 5;
        return generatePc(p);
    }();
    return dag;
}

CompiledProgram &
benchProgram()
{
    static CompiledProgram prog = compile(benchDag(), minEdpConfig());
    return prog;
}

void
BM_CompileMinEdp(benchmark::State &state)
{
    const Dag &d = benchDag();
    for (auto _ : state) {
        auto prog = compile(d, minEdpConfig());
        benchmark::DoNotOptimize(prog.instructions.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(d.numOperations()));
}
BENCHMARK(BM_CompileMinEdp)->Unit(benchmark::kMillisecond);

void
BM_Simulate(benchmark::State &state)
{
    const auto &prog = benchProgram();
    Rng rng(1);
    std::vector<double> in(benchDag().numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    Machine m(prog);
    for (auto _ : state) {
        auto res = m.run(in);
        benchmark::DoNotOptimize(res.outputs.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(prog.instructions.size()));
}
BENCHMARK(BM_Simulate)->Unit(benchmark::kMillisecond);

void
BM_EncodeProgram(benchmark::State &state)
{
    const auto &prog = benchProgram();
    for (auto _ : state) {
        auto image = encodeProgram(prog.cfg, prog.instructions);
        benchmark::DoNotOptimize(image.data());
    }
    state.SetBytesProcessed(
        state.iterations() *
        int64_t(programSizeBits(prog.cfg, prog.instructions) / 8));
}
BENCHMARK(BM_EncodeProgram)->Unit(benchmark::kMillisecond);

void
BM_DecodeProgram(benchmark::State &state)
{
    const auto &prog = benchProgram();
    auto image = encodeProgram(prog.cfg, prog.instructions);
    for (auto _ : state) {
        auto back =
            decodeProgram(prog.cfg, image, prog.instructions.size());
        benchmark::DoNotOptimize(back.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            int64_t(image.size()));
}
BENCHMARK(BM_DecodeProgram)->Unit(benchmark::kMillisecond);

void
BM_ReferenceEvaluate(benchmark::State &state)
{
    const Dag &d = benchDag();
    Rng rng(2);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    for (auto _ : state) {
        auto v = evaluate(d, in);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(d.numOperations()));
}
BENCHMARK(BM_ReferenceEvaluate)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace dpu

BENCHMARK_MAIN();
