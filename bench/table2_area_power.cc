/**
 * @file
 * E10 — Table II: area and power breakdown of the min-EDP design,
 * with the workload-averaged power from simulation-driven activity.
 */

#include "harness.hh"
#include "model/energy.hh"

using namespace dpu;

int
main(int argc, char **argv)
{
    bench::Context ctx(argc, argv, "table2_area_power", "Table II",
                       0.5,
                       "Activity from simulating the suite "
                       "(--full for paper-size).");
    double scale = ctx.scale();

    ArchConfig cfg = minEdpConfig();
    auto area = areaOf(cfg);

    constexpr size_t modules = static_cast<size_t>(Module::Count);
    double pj[modules] = {};
    double seconds = 0;
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, scale);
        auto run = bench::runWorkload(d, cfg);
        for (size_t m = 0; m < modules; ++m)
            pj[m] += run.energy.byModule[m];
        seconds += run.energy.seconds();
    }

    const double paper_area[modules] = {0.13, 0.04, 0.14, 0.01, 0.35,
                                        0.03, 0.06, 0.04, 0.01, 1.20,
                                        1.20};
    const double paper_mw[modules] = {11.9, 8.0, 10.0, 0.5, 24.0, 7.8,
                                      7.0, 2.6, 2.7, 27.7, 6.7};

    TablePrinter t({"module", "area mm2", "paper", "power mW",
                    "paper"});
    double mw_total = 0;
    for (size_t m = 0; m < modules; ++m) {
        double mw = pj[m] * 1e-12 / seconds * 1e3;
        mw_total += mw;
        t.row()
            .cell(moduleName(static_cast<Module>(m)))
            .num(area.byModule[m], 3)
            .num(paper_area[m], 2)
            .num(mw, 1)
            .num(paper_mw[m], 1);
    }
    t.row()
        .cell("TOTAL")
        .num(area.total, 2)
        .num(3.2, 1)
        .num(mw_total, 1)
        .num(108.9, 1);
    t.print();
    ctx.table(t);
    ctx.metric("area_mm2", area.total);
    ctx.metric("power_mw", mw_total);
    return ctx.finish();
}
