/**
 * @file
 * Tests for the energy/area model and the design-space exploration.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "model/dse.hh"
#include "model/energy.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks, uint32_t regs)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = regs;
    return c;
}

/** Simulate one workload and return (stats, operations). */
std::pair<SimStats, uint64_t>
simulate(const WorkloadSpec &spec, const ArchConfig &cfg, double scale)
{
    Dag d = buildWorkloadDag(spec, scale);
    auto prog = compile(d, cfg);
    Rng rng(spec.seed);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    auto res = Machine(prog).run(in);
    return {res.stats, prog.stats.numOperations};
}

TEST(AreaModel, MatchesTableTwoAtMinEdp)
{
    auto a = areaOf(minEdpConfig());
    // Paper Table II: 3.2 mm^2 total.
    EXPECT_NEAR(a.total, 3.2, 0.15);
    EXPECT_NEAR(a.byModule[static_cast<size_t>(Module::Pes)], 0.13,
                0.02);
    EXPECT_NEAR(a.byModule[static_cast<size_t>(Module::RegisterBanks)],
                0.35, 0.05);
    EXPECT_NEAR(a.byModule[static_cast<size_t>(Module::InstrMemory)],
                1.20, 0.05);
}

TEST(AreaModel, GrowsWithEveryParameter)
{
    ArchConfig base = minEdpConfig();
    ArchConfig fewer_banks = cfgOf(3, 32, 32);
    ArchConfig more_regs = cfgOf(3, 64, 128);
    EXPECT_LT(areaOf(fewer_banks).total, areaOf(base).total);
    EXPECT_GT(areaOf(more_regs).total, areaOf(base).total);
}

TEST(EnergyModel, PowerMatchesTableTwoOnSuite)
{
    // Average power over the (scaled) suite at min-EDP should land
    // near the paper's 108.9 mW.
    ArchConfig cfg = minEdpConfig();
    double pj = 0, sec = 0;
    for (const auto &spec : smallSuite()) {
        auto [stats, ops] = simulate(spec, cfg, 0.2);
        auto e = energyOf(cfg, stats, ops);
        pj += e.totalPj;
        sec += e.seconds();
    }
    double watts = pj * 1e-12 / sec;
    EXPECT_NEAR(watts, 0.1089, 0.025);
}

TEST(EnergyModel, DerivedMetricsConsistent)
{
    ArchConfig cfg = minEdpConfig();
    auto [stats, ops] = simulate(pcSuite()[0], cfg, 0.2);
    auto e = energyOf(cfg, stats, ops);
    EXPECT_GT(e.totalPj, 0);
    EXPECT_NEAR(e.edpPjNs(), e.energyPerOpPj() * e.latencyPerOpNs(),
                1e-9);
    EXPECT_NEAR(e.seconds(), double(stats.cycles) / 300e6, 1e-12);
    EXPECT_GT(e.wallPowerWatts(), 0.01);
    EXPECT_LT(e.wallPowerWatts(), 1.0);
}

TEST(EnergyModel, MoreBanksMorePowerButFaster)
{
    ArchConfig c16 = cfgOf(3, 16, 32);
    auto [stats16, ops16] = simulate(pcSuite()[1], c16, 0.2);
    auto [stats64, ops64] = simulate(pcSuite()[1], minEdpConfig(), 0.2);
    auto e16 = energyOf(c16, stats16, ops16);
    auto e64 = energyOf(minEdpConfig(), stats64, ops64);
    EXPECT_LT(e16.wallPowerWatts(), e64.wallPowerWatts());
    EXPECT_GT(e16.latencyPerOpNs(), e64.latencyPerOpNs());
}

TEST(Dse, SmallSweepFindsSaneOptima)
{
    DseOptions o;
    o.depths = {1, 3};
    o.banks = {8, 64};
    o.regs = {32};
    o.workloadScale = 0.08;
    auto pts = exploreDesignSpace(o);
    ASSERT_EQ(pts.size(), 4u);
    // Deeper trees + more banks = fastest.
    auto &fastest = pts[minLatencyIndex(pts)];
    EXPECT_EQ(fastest.cfg.depth, 3u);
    EXPECT_EQ(fastest.cfg.banks, 64u);
    for (auto &p : pts) {
        EXPECT_TRUE(p.feasible);
        EXPECT_GT(p.throughputGops, 0);
        EXPECT_GT(p.areaMm2, 0);
    }
}

TEST(Dse, InfeasiblePointsMarked)
{
    DseOptions o;
    o.depths = {3};
    o.banks = {8};
    o.regs = {2}; // hopeless register file
    o.workloadScale = 0.05;
    auto pts = exploreDesignSpace(o);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_FALSE(pts[0].feasible);
}

TEST(Dse, EvaluateSingleDesignMatchesSweepShape)
{
    auto suite = std::vector<WorkloadSpec>{pcSuite()[0]};
    auto small = evaluateDesign(cfgOf(1, 8, 32), suite, 0.1, 1);
    auto big = evaluateDesign(minEdpConfig(), suite, 0.1, 1);
    EXPECT_GT(small.latencyPerOpNs, big.latencyPerOpNs);
    EXPECT_LT(small.powerWatts, big.powerWatts);
}

} // namespace
} // namespace dpu
