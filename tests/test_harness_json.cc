/**
 * @file
 * Unit tests for the bench harness's JSON report, centered on the
 * typed series emitter: bench reports used to carry table rows only
 * as formatted strings; Context::series() adds name -> numeric-vector
 * entries as real JSON number arrays under a top-level "series"
 * object (required by tools/run_benches). Pinned by a golden sample
 * of the full report text, so any format drift is a deliberate,
 * reviewed change.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hh"

namespace dpu {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Run a Context through finish() with a fixed argv; returns the
 *  report text. */
std::string
emitReport(const std::string &json_path,
           const std::function<void(bench::Context &)> &populate)
{
    std::string a0 = "test_harness_json";
    std::string a1 = "--json=" + json_path;
    std::string a2 = "--no-cache"; // keep cache metrics out of the report
    char *argv[] = {a0.data(), a1.data(), a2.data()};
    bench::Context ctx(3, argv, "golden", "unit test");
    populate(ctx);
    EXPECT_EQ(ctx.finish(), 0);
    return slurp(json_path);
}

TEST(HarnessJson, GoldenReportWithTypedSeries)
{
    std::string path = ::testing::TempDir() + "harness_golden.json";
    std::string text = emitReport(path, [](bench::Context &ctx) {
        ctx.metric("rps", 123.5);
        ctx.series("latency_us", {10.5, 20, 30.25});
        ctx.series("empty", {});
    });
    std::remove(path.c_str());

    const char *golden = "{\n"
                         "  \"bench\": \"golden\",\n"
                         "  \"paper_element\": \"unit test\",\n"
                         "  \"scale\": 1,\n"
                         "  \"quick\": false,\n"
                         "  \"threads\": 1,\n"
                         "  \"metrics\": {\"rps\": 123.5},\n"
                         "  \"notes\": {},\n"
                         "  \"series\": {\n"
                         "    \"latency_us\": [10.5, 20, 30.25],\n"
                         "    \"empty\": []\n"
                         "  },\n"
                         "  \"tables\": [\n"
                         "  ]\n"
                         "}\n";
    EXPECT_EQ(text, golden);

    std::string error;
    EXPECT_TRUE(bench::validJson(text, &error)) << error;
}

TEST(HarnessJson, SeriesObjectPresentEvenWhenEmpty)
{
    // tools/run_benches requires the "series" key in every harness
    // report; a bench that records none must still emit the object.
    std::string path = ::testing::TempDir() + "harness_noseries.json";
    std::string text = emitReport(path, [](bench::Context &) {});
    std::remove(path.c_str());

    EXPECT_NE(text.find("\"series\": {},"), std::string::npos);
    std::string error;
    EXPECT_TRUE(bench::validJson(text, &error)) << error;
}

TEST(HarnessJson, NonFiniteSeriesValuesBecomeNull)
{
    // JSON has no NaN/Inf; the emitter must not produce an invalid
    // report when a metric degenerates.
    std::string path = ::testing::TempDir() + "harness_nan.json";
    std::string text = emitReport(path, [](bench::Context &ctx) {
        ctx.series("degenerate",
                   {1.0, std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::infinity()});
    });
    std::remove(path.c_str());

    EXPECT_NE(text.find("\"degenerate\": [1, null, null]"),
              std::string::npos);
    std::string error;
    EXPECT_TRUE(bench::validJson(text, &error)) << error;
}

TEST(HarnessJson, TopLevelKeyCheckIsStructureAware)
{
    // The run_benches "series" requirement must not be fooled by the
    // key name appearing as a string value or in a nested object —
    // only a real top-level key counts.
    EXPECT_TRUE(bench::jsonTopLevelKey("{\"series\": {}}", "series"));
    EXPECT_TRUE(bench::jsonTopLevelKey(
        "{ \"a\": [1, {\"x\": 2}], \"series\" : {\"s\": [1]} }",
        "series"));

    EXPECT_FALSE(bench::jsonTopLevelKey(
        "{\"notes\": {\"doc\": \"see \\\"series\\\" docs\"}}",
        "series"));
    EXPECT_FALSE(bench::jsonTopLevelKey(
        "{\"notes\": {\"series\": [1, 2]}}", "series"));
    EXPECT_FALSE(bench::jsonTopLevelKey("{\"a\": \"series\"}",
                                        "series"));
    EXPECT_FALSE(bench::jsonTopLevelKey("[{\"series\": {}}]",
                                        "series")); // not an object
    EXPECT_FALSE(bench::jsonTopLevelKey("", "series"));

    // The real report shape passes.
    std::string path = ::testing::TempDir() + "harness_key.json";
    std::string text = emitReport(path, [](bench::Context &ctx) {
        ctx.note("doc", "a note mentioning \"series\" in prose");
    });
    std::remove(path.c_str());
    EXPECT_TRUE(bench::jsonTopLevelKey(text, "series"));
    EXPECT_FALSE(bench::jsonTopLevelKey(text, "nope"));
}

TEST(HarnessJson, ValidatorRejectsMalformedSeries)
{
    // The validator run_benches applies must actually catch a
    // truncated series array.
    std::string bad = "{\"series\": {\"x\": [1, 2, }}";
    std::string error;
    EXPECT_FALSE(bench::validJson(bad, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace dpu
