/**
 * @file
 * Tests for the async batch-submission server: per-request results
 * must be byte-identical to a standalone Machine run regardless of
 * arrival order, batching window, max-batch size, or worker thread
 * counts (the serving analogue of the ParallelCompile byte-identical
 * guarantee), across multiple resident programs, with the cold-submit
 * compile path going through the program cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <numeric>
#include <random>

#include "compiler/compiler.hh"
#include "sim/async.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
smallConfig()
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 8;
    c.regsPerBank = 32;
    return c;
}

std::vector<std::vector<double>>
makeInputs(const Dag &d, size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> inputs;
    for (size_t k = 0; k < count; ++k) {
        std::vector<double> in(d.numInputs());
        for (auto &x : in)
            x = 0.5 + rng.uniform();
        inputs.push_back(std::move(in));
    }
    return inputs;
}

/** Byte-identical SimResult comparison (same bits, same counters). */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (size_t i = 0; i < a.outputs.size(); ++i)
        EXPECT_EQ(a.outputs[i], b.outputs[i]) << "output " << i;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.kindCount, b.stats.kindCount);
    EXPECT_EQ(a.stats.bankReads, b.stats.bankReads);
    EXPECT_EQ(a.stats.bankWrites, b.stats.bankWrites);
    EXPECT_EQ(a.stats.peOperations, b.stats.peOperations);
    EXPECT_EQ(a.stats.pePassThroughs, b.stats.pePassThroughs);
    EXPECT_EQ(a.stats.crossbarTransfers, b.stats.crossbarTransfers);
    EXPECT_EQ(a.stats.memReads, b.stats.memReads);
    EXPECT_EQ(a.stats.memWrites, b.stats.memWrites);
    EXPECT_EQ(a.stats.instrBitsFetched, b.stats.instrBitsFetched);
    EXPECT_EQ(a.stats.peakLiveRegisters, b.stats.peakLiveRegisters);
}

TEST(AsyncServer, ResultsMatchStandaloneMachine)
{
    Dag d = generateRandomDag(12, 300, 51);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 9, 52);

    AsyncServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchWindow = std::chrono::microseconds(100);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    std::vector<std::future<SimResult>> futures;
    for (const auto &in : inputs)
        futures.push_back(server.submit(h, in));
    for (size_t k = 0; k < inputs.size(); ++k)
        expectIdentical(futures[k].get(), Machine(prog).run(inputs[k]));

    auto s = server.stats();
    EXPECT_EQ(s.requests, inputs.size());
    EXPECT_GE(s.batches, 1u);
    EXPECT_LE(s.maxBatchObserved, cfg.maxBatch);
    EXPECT_EQ(s.sizeDispatches + s.windowDispatches + s.drainDispatches,
              s.batches);
}

TEST(AsyncServer, DeterministicAcrossArrivalOrdersAndConfigs)
{
    Dag d = generateRandomDag(16, 500, 53);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 12, 54);

    // Reference: what each request must yield, independent of the
    // serving side.
    std::vector<SimResult> reference;
    for (const auto &in : inputs)
        reference.push_back(Machine(prog).run(in));

    struct Shape
    {
        size_t maxBatch;
        std::chrono::microseconds window;
        uint32_t workers;
        uint32_t perBatch;
    };
    const Shape shapes[] = {
        {1, std::chrono::microseconds(0), 1, 1},   // no coalescing
        {3, std::chrono::microseconds(50), 2, 1},  // tiny window
        {16, std::chrono::microseconds(5000), 4, 4}, // big batches
    };

    std::mt19937 gen(55);
    for (const Shape &shape : shapes) {
        for (int round = 0; round < 3; ++round) {
            std::vector<size_t> order(inputs.size());
            std::iota(order.begin(), order.end(), 0);
            std::shuffle(order.begin(), order.end(), gen);

            AsyncServerConfig cfg;
            cfg.maxBatch = shape.maxBatch;
            cfg.batchWindow = shape.window;
            cfg.workers = shape.workers;
            cfg.hostThreadsPerBatch = shape.perBatch;
            AsyncBatchServer server(cfg);
            auto h = server.addProgram(prog);

            std::vector<std::future<SimResult>> futures(inputs.size());
            for (size_t k : order)
                futures[k] = server.submit(h, inputs[k]);
            server.drain();
            for (size_t k = 0; k < inputs.size(); ++k)
                expectIdentical(futures[k].get(), reference[k]);
        }
    }
}

TEST(AsyncServer, MultipleResidentPrograms)
{
    // The paper's "execute different DAGs" mode: interleave requests
    // for two different programs; each result must match its own
    // program's standalone run.
    Dag d1 = generateRandomDag(12, 250, 56);
    Dag d2 = generateRandomDag(10, 400, 57);
    auto p1 = compile(d1, smallConfig());
    auto p2 = compile(d2, smallConfig());
    auto in1 = makeInputs(d1, 6, 58);
    auto in2 = makeInputs(d2, 6, 59);

    AsyncServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchWindow = std::chrono::microseconds(200);
    cfg.workers = 2;
    AsyncBatchServer server(cfg);
    auto h1 = server.addProgram(p1);
    auto h2 = server.addProgram(p2);
    EXPECT_EQ(server.numPrograms(), 2u);

    std::vector<std::future<SimResult>> f1, f2;
    for (size_t k = 0; k < 6; ++k) {
        f1.push_back(server.submit(h1, in1[k]));
        f2.push_back(server.submit(h2, in2[k]));
    }
    server.drain();
    for (size_t k = 0; k < 6; ++k) {
        expectIdentical(f1[k].get(), Machine(p1).run(in1[k]));
        expectIdentical(f2[k].get(), Machine(p2).run(in2[k]));
    }
    EXPECT_EQ(server.stats().requests, 12u);
}

TEST(AsyncServer, ColdSubmitCompilesThroughCache)
{
    Dag d = generateRandomDag(12, 300, 60);
    ArchConfig cfg = smallConfig();
    ProgramCache cache;
    auto inputs = makeInputs(d, 3, 61);

    SimResult first_result;
    {
        AsyncBatchServer server;
        auto h = server.addProgram(d, cfg, {}, &cache);
        first_result = server.submit(h, inputs[0]).get();
    }
    EXPECT_EQ(cache.stats().misses, 1u);

    // A second server loading the same DAG hits the cache — and the
    // cached program serves byte-identical results.
    {
        AsyncBatchServer server;
        auto h = server.addProgram(d, cfg, {}, &cache);
        expectIdentical(server.submit(h, inputs[0]).get(),
                        first_result);
    }
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(AsyncServer, DrainFlushesAnOpenWindow)
{
    Dag d = generateRandomDag(10, 200, 62);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 2, 63);

    AsyncServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.batchWindow = std::chrono::seconds(30); // would stall a sweep
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    auto f0 = server.submit(h, inputs[0]);
    auto f1 = server.submit(h, inputs[1]);
    server.drain(); // must not wait out the 30s window
    expectIdentical(f0.get(), Machine(prog).run(inputs[0]));
    expectIdentical(f1.get(), Machine(prog).run(inputs[1]));

    auto s = server.stats();
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.drainDispatches, 1u);
    EXPECT_EQ(s.maxBatchObserved, 2u);
    EXPECT_DOUBLE_EQ(s.meanBatch(), 2.0);
}

TEST(AsyncServer, FullBatchDispatchesWithoutDrain)
{
    Dag d = generateRandomDag(10, 200, 64);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 4, 65);

    AsyncServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchWindow = std::chrono::seconds(30);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    std::vector<std::future<SimResult>> futures;
    for (const auto &in : inputs)
        futures.push_back(server.submit(h, in));
    // The fourth submit fills the batch; the futures complete without
    // any drain() and long before the 30s window.
    for (auto &f : futures)
        f.get();
    EXPECT_GE(server.stats().sizeDispatches, 1u);
}

TEST(AsyncServer, SubmitValidatesHandleAndInputSize)
{
    Dag d = generateRandomDag(10, 200, 66);
    auto prog = compile(d, smallConfig());

    AsyncBatchServer server;
    auto h = server.addProgram(prog);
    EXPECT_THROW(server.submit(h + 1, std::vector<double>(d.numInputs())),
                 FatalError);
    EXPECT_THROW(server.submit(h, std::vector<double>(d.numInputs() + 1)),
                 FatalError);
    // Valid submits still work after the rejected ones.
    auto in = makeInputs(d, 1, 67)[0];
    expectIdentical(server.submit(h, in).get(), Machine(prog).run(in));
}

TEST(AsyncServer, ModeledCyclesAccumulate)
{
    Dag d = generateRandomDag(10, 200, 68);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 8, 69);

    AsyncServerConfig cfg;
    cfg.cores = 4;
    cfg.maxBatch = 8;
    // Window long enough that the only dispatch triggers are a full
    // batch or the drain — the test needs exactly one batch of 8.
    cfg.batchWindow = std::chrono::seconds(5);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);
    for (const auto &in : inputs)
        server.submit(h, in);
    server.drain();

    auto s = server.stats();
    // One batch of 8 on 4 model cores: wall = 2 runs back-to-back.
    EXPECT_EQ(s.modeledWallCycles, 2 * prog.stats.cycles);
    EXPECT_EQ(s.totalOperations, 8 * prog.stats.numOperations);
}

} // namespace
} // namespace dpu
