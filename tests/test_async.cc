/**
 * @file
 * Tests for the async batch-submission server: per-request results
 * must be byte-identical to a standalone Machine run regardless of
 * arrival order, batching window, max-batch size, or worker thread
 * counts (the serving analogue of the ParallelCompile byte-identical
 * guarantee), across multiple resident programs, with the cold-submit
 * compile path going through the program cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <numeric>
#include <random>

#include "compiler/compiler.hh"
#include "sim/async.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"

namespace dpu {
namespace {

ArchConfig
smallConfig()
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 8;
    c.regsPerBank = 32;
    return c;
}

std::vector<std::vector<double>>
makeInputs(const Dag &d, size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> inputs;
    for (size_t k = 0; k < count; ++k) {
        std::vector<double> in(d.numInputs());
        for (auto &x : in)
            x = 0.5 + rng.uniform();
        inputs.push_back(std::move(in));
    }
    return inputs;
}

/** Byte-identical SimResult comparison (same bits, same counters). */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (size_t i = 0; i < a.outputs.size(); ++i)
        EXPECT_EQ(a.outputs[i], b.outputs[i]) << "output " << i;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.kindCount, b.stats.kindCount);
    EXPECT_EQ(a.stats.bankReads, b.stats.bankReads);
    EXPECT_EQ(a.stats.bankWrites, b.stats.bankWrites);
    EXPECT_EQ(a.stats.peOperations, b.stats.peOperations);
    EXPECT_EQ(a.stats.pePassThroughs, b.stats.pePassThroughs);
    EXPECT_EQ(a.stats.crossbarTransfers, b.stats.crossbarTransfers);
    EXPECT_EQ(a.stats.memReads, b.stats.memReads);
    EXPECT_EQ(a.stats.memWrites, b.stats.memWrites);
    EXPECT_EQ(a.stats.instrBitsFetched, b.stats.instrBitsFetched);
    EXPECT_EQ(a.stats.peakLiveRegisters, b.stats.peakLiveRegisters);
}

TEST(AsyncServer, ResultsMatchStandaloneMachine)
{
    Dag d = generateRandomDag(12, 300, 51);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 9, 52);

    AsyncServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchWindow = std::chrono::microseconds(100);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    std::vector<std::future<SimResult>> futures;
    for (const auto &in : inputs)
        futures.push_back(server.submit(h, in));
    for (size_t k = 0; k < inputs.size(); ++k)
        expectIdentical(futures[k].get(), Machine(prog).run(inputs[k]));

    auto s = server.stats();
    EXPECT_EQ(s.requests, inputs.size());
    EXPECT_GE(s.batches, 1u);
    EXPECT_LE(s.maxBatchObserved, cfg.maxBatch);
    EXPECT_EQ(s.sizeDispatches + s.windowDispatches +
                  s.drainDispatches + s.deadlineDispatches,
              s.batches);
}

TEST(AsyncServer, DeterministicAcrossArrivalOrdersAndConfigs)
{
    Dag d = generateRandomDag(16, 500, 53);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 12, 54);

    // Reference: what each request must yield, independent of the
    // serving side.
    std::vector<SimResult> reference;
    for (const auto &in : inputs)
        reference.push_back(Machine(prog).run(in));

    struct Shape
    {
        size_t maxBatch;
        std::chrono::microseconds window;
        uint32_t workers;
        uint32_t perBatch;
    };
    const Shape shapes[] = {
        {1, std::chrono::microseconds(0), 1, 1},   // no coalescing
        {3, std::chrono::microseconds(50), 2, 1},  // tiny window
        {16, std::chrono::microseconds(5000), 4, 4}, // big batches
    };

    std::mt19937 gen(55);
    for (const Shape &shape : shapes) {
        for (int round = 0; round < 3; ++round) {
            std::vector<size_t> order(inputs.size());
            std::iota(order.begin(), order.end(), 0);
            std::shuffle(order.begin(), order.end(), gen);

            AsyncServerConfig cfg;
            cfg.maxBatch = shape.maxBatch;
            cfg.batchWindow = shape.window;
            cfg.workers = shape.workers;
            cfg.hostThreadsPerBatch = shape.perBatch;
            AsyncBatchServer server(cfg);
            auto h = server.addProgram(prog);

            std::vector<std::future<SimResult>> futures(inputs.size());
            for (size_t k : order)
                futures[k] = server.submit(h, inputs[k]);
            server.drain();
            for (size_t k = 0; k < inputs.size(); ++k)
                expectIdentical(futures[k].get(), reference[k]);
        }
    }
}

TEST(AsyncServer, SpTrsvMultiRhsCoalescedByteIdentical)
{
    // The "many users, same model" serving shape: one resident SpTRSV
    // program, many right-hand sides submitted individually and
    // coalesced into batches. Every per-RHS result must be
    // byte-identical to an independent single-RHS Machine solve.
    LowerTriangularParams p;
    p.dim = 80;
    p.depthLevels = 10;
    p.avgOffDiagonal = 3.0;
    p.seed = 61;
    auto lower = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(lower);
    auto prog = compile(lowered.dag, smallConfig());

    std::vector<std::vector<double>> rhs_batch;
    Rng rng(62);
    for (int b = 0; b < 10; ++b) {
        std::vector<double> rhs(lower.dim());
        for (auto &x : rhs)
            x = rng.uniform() * 2 - 1;
        rhs_batch.push_back(std::move(rhs));
    }
    auto inputs = sptrsvBatchInputs(lowered, lower, rhs_batch);

    std::vector<SimResult> reference;
    for (size_t b = 0; b < rhs_batch.size(); ++b)
        reference.push_back(Machine(prog).run(
            sptrsvInputValues(lowered, lower, rhs_batch[b])));

    for (uint32_t workers : {1u, 2u, 4u}) {
        AsyncServerConfig cfg;
        cfg.maxBatch = 4;
        cfg.batchWindow = std::chrono::microseconds(200);
        cfg.workers = workers;
        AsyncBatchServer server(cfg);
        auto h = server.addProgram(prog);

        std::vector<std::future<SimResult>> futures;
        for (const auto &in : inputs)
            futures.push_back(server.submit(h, in));
        server.drain();
        for (size_t b = 0; b < inputs.size(); ++b)
            expectIdentical(futures[b].get(), reference[b]);
    }
}

TEST(AsyncServer, MultipleResidentPrograms)
{
    // The paper's "execute different DAGs" mode: interleave requests
    // for two different programs; each result must match its own
    // program's standalone run.
    Dag d1 = generateRandomDag(12, 250, 56);
    Dag d2 = generateRandomDag(10, 400, 57);
    auto p1 = compile(d1, smallConfig());
    auto p2 = compile(d2, smallConfig());
    auto in1 = makeInputs(d1, 6, 58);
    auto in2 = makeInputs(d2, 6, 59);

    AsyncServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchWindow = std::chrono::microseconds(200);
    cfg.workers = 2;
    AsyncBatchServer server(cfg);
    auto h1 = server.addProgram(p1);
    auto h2 = server.addProgram(p2);
    EXPECT_EQ(server.numPrograms(), 2u);

    std::vector<std::future<SimResult>> f1, f2;
    for (size_t k = 0; k < 6; ++k) {
        f1.push_back(server.submit(h1, in1[k]));
        f2.push_back(server.submit(h2, in2[k]));
    }
    server.drain();
    for (size_t k = 0; k < 6; ++k) {
        expectIdentical(f1[k].get(), Machine(p1).run(in1[k]));
        expectIdentical(f2[k].get(), Machine(p2).run(in2[k]));
    }
    EXPECT_EQ(server.stats().requests, 12u);
}

TEST(AsyncServer, ColdSubmitCompilesThroughCache)
{
    Dag d = generateRandomDag(12, 300, 60);
    ArchConfig cfg = smallConfig();
    ProgramCache cache;
    auto inputs = makeInputs(d, 3, 61);

    SimResult first_result;
    {
        AsyncBatchServer server;
        auto h = server.addProgram(d, cfg, {}, &cache);
        first_result = server.submit(h, inputs[0]).get();
    }
    EXPECT_EQ(cache.stats().misses, 1u);

    // A second server loading the same DAG hits the cache — and the
    // cached program serves byte-identical results.
    {
        AsyncBatchServer server;
        auto h = server.addProgram(d, cfg, {}, &cache);
        expectIdentical(server.submit(h, inputs[0]).get(),
                        first_result);
    }
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(AsyncServer, DrainFlushesAnOpenWindow)
{
    Dag d = generateRandomDag(10, 200, 62);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 2, 63);

    AsyncServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.batchWindow = std::chrono::seconds(30); // would stall a sweep
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    auto f0 = server.submit(h, inputs[0]);
    auto f1 = server.submit(h, inputs[1]);
    server.drain(); // must not wait out the 30s window
    expectIdentical(f0.get(), Machine(prog).run(inputs[0]));
    expectIdentical(f1.get(), Machine(prog).run(inputs[1]));

    auto s = server.stats();
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.drainDispatches, 1u);
    EXPECT_EQ(s.maxBatchObserved, 2u);
    EXPECT_DOUBLE_EQ(s.meanBatch(), 2.0);
}

TEST(AsyncServer, FullBatchDispatchesWithoutDrain)
{
    Dag d = generateRandomDag(10, 200, 64);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 4, 65);

    AsyncServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.batchWindow = std::chrono::seconds(30);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    std::vector<std::future<SimResult>> futures;
    for (const auto &in : inputs)
        futures.push_back(server.submit(h, in));
    // The fourth submit fills the batch; the futures complete without
    // any drain() and long before the 30s window.
    for (auto &f : futures)
        f.get();
    EXPECT_GE(server.stats().sizeDispatches, 1u);
}

TEST(AsyncServer, SubmitValidatesHandleAndInputSize)
{
    Dag d = generateRandomDag(10, 200, 66);
    auto prog = compile(d, smallConfig());

    AsyncBatchServer server;
    auto h = server.addProgram(prog);
    EXPECT_THROW(server.submit(h + 1, std::vector<double>(d.numInputs())),
                 FatalError);
    EXPECT_THROW(server.submit(h, std::vector<double>(d.numInputs() + 1)),
                 FatalError);
    // Valid submits still work after the rejected ones.
    auto in = makeInputs(d, 1, 67)[0];
    expectIdentical(server.submit(h, in).get(), Machine(prog).run(in));
}

TEST(AsyncServer, ModeledCyclesAccumulate)
{
    Dag d = generateRandomDag(10, 200, 68);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 8, 69);

    AsyncServerConfig cfg;
    cfg.cores = 4;
    cfg.maxBatch = 8;
    // Window long enough that the only dispatch triggers are a full
    // batch or the drain — the test needs exactly one batch of 8.
    cfg.batchWindow = std::chrono::seconds(5);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);
    for (const auto &in : inputs)
        server.submit(h, in);
    server.drain();

    auto s = server.stats();
    // One batch of 8 on 4 model cores: wall = 2 runs back-to-back.
    EXPECT_EQ(s.modeledWallCycles, 2 * prog.stats.cycles);
    EXPECT_EQ(s.totalOperations, 8 * prog.stats.numOperations);
}

// ---------------------------------------------------------------- //
// QoS layer: admission control, spec validation, priority bands,   //
// core reservations, deadline-aware dispatch.                      //
// ---------------------------------------------------------------- //

TEST(AsyncServer, QueueFullRejectsWithBackpressure)
{
    Dag d = generateRandomDag(10, 200, 70);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 4, 71);

    AsyncServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.batchWindow = std::chrono::seconds(30); // nothing dispatches
    cfg.queueDepth = 2;
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    auto a = server.trySubmit(h, inputs[0]);
    auto b = server.trySubmit(h, inputs[1]);
    ASSERT_TRUE(a.accepted());
    ASSERT_TRUE(b.accepted());
    EXPECT_TRUE(a.future.valid());

    // Third request exceeds the depth: rejected, nothing enqueued,
    // no future to wait on.
    auto c = server.trySubmit(h, inputs[2]);
    EXPECT_EQ(c.admission, Admission::RejectedQueueFull);
    EXPECT_FALSE(c.future.valid());

    // The throwing submit() surfaces the same rejection as an error.
    EXPECT_THROW(server.submit(h, inputs[2]), FatalError);

    auto s = server.stats();
    EXPECT_EQ(s.requests, 2u);
    EXPECT_EQ(s.forClass(Priority::Batch).rejectedQueueFull, 2u);

    // Draining frees the queue; admission recovers. (The second
    // drain flushes the recovered request's still-open 30s window.)
    server.drain();
    auto after = server.trySubmit(h, inputs[3]);
    EXPECT_TRUE(after.accepted());
    server.drain();
    expectIdentical(after.future.get(), Machine(prog).run(inputs[3]));
    expectIdentical(a.future.get(), Machine(prog).run(inputs[0]));
    expectIdentical(b.future.get(), Machine(prog).run(inputs[1]));
}

TEST(AsyncServer, PastDeadlineSubmissionRejected)
{
    Dag d = generateRandomDag(10, 200, 72);
    auto prog = compile(d, smallConfig());
    auto in = makeInputs(d, 1, 73)[0];

    AsyncBatchServer server;
    auto h = server.addProgram(prog);

    // A negative relative deadline is dead on arrival.
    SubmitOptions late;
    late.deadline = std::chrono::microseconds(-10);
    auto r1 = server.trySubmit(h, in, late);
    EXPECT_EQ(r1.admission, Admission::RejectedDeadline);
    EXPECT_FALSE(r1.future.valid());

    // So is an absolute deadline already in the past.
    SubmitOptions past;
    past.deadlineAt = AsyncBatchServer::Clock::now() -
        std::chrono::milliseconds(5);
    auto r2 = server.trySubmit(h, in, past);
    EXPECT_EQ(r2.admission, Admission::RejectedDeadline);

    EXPECT_EQ(server.stats().forClass(Priority::Batch).rejectedDeadline,
              2u);
    EXPECT_EQ(server.stats().requests, 0u);

    // A meetable deadline is admitted and served normally.
    SubmitOptions fine;
    fine.deadline = std::chrono::seconds(10);
    auto r3 = server.trySubmit(h, in, fine);
    ASSERT_TRUE(r3.accepted());
    expectIdentical(r3.future.get(), Machine(prog).run(in));
    auto cs = server.stats().forClass(Priority::Batch);
    EXPECT_EQ(cs.deadlineHits, 1u);
    EXPECT_EQ(cs.deadlineMisses, 0u);
    EXPECT_DOUBLE_EQ(cs.deadlineHitRate(), 1.0);
}

TEST(AsyncServer, QosSpecValidatesCoreBounds)
{
    Dag d = generateRandomDag(10, 200, 74);
    auto prog = compile(d, smallConfig());

    AsyncServerConfig cfg;
    cfg.cores = 4;
    AsyncBatchServer server(cfg);

    QosSpec too_many;
    too_many.minCores = 5; // > cfg.cores
    EXPECT_THROW(server.addProgram(prog, too_many), FatalError);

    QosSpec inverted;
    inverted.minCores = 3;
    inverted.maxCores = 2; // cap below the reservation
    EXPECT_THROW(server.addProgram(prog, inverted), FatalError);

    // An unreserved program plus a reservation that would eat every
    // core: the unreserved program could never run.
    auto h0 = server.addProgram(prog); // minCores = 0
    QosSpec greedy;
    greedy.minCores = 4;
    EXPECT_THROW(server.addProgram(prog, greedy), FatalError);

    // A fitting reservation is granted, and the failed attempts did
    // not leak partial state.
    QosSpec fair;
    fair.minCores = 2;
    fair.maxCores = 2;
    auto h1 = server.addProgram(prog, fair);
    EXPECT_EQ(server.numPrograms(), 2u);
    EXPECT_EQ(server.programQos(h1).minCores, 2u);
    EXPECT_EQ(server.programQos(h0).minCores, 0u);

    auto in = makeInputs(d, 1, 75)[0];
    expectIdentical(server.submit(h1, in).get(), Machine(prog).run(in));
}

TEST(AsyncServer, CoreReservationBoundsModeledBatchCores)
{
    Dag d = generateRandomDag(10, 200, 76);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 8, 77);

    AsyncServerConfig cfg;
    cfg.cores = 4;
    cfg.maxBatch = 8;
    cfg.batchWindow = std::chrono::seconds(5);
    AsyncBatchServer server(cfg);

    // Pinned to 2 of the 4 modeled cores: a full batch of 8 runs as
    // 4 back-to-back programs per core instead of 2 — visible in the
    // deterministic modeled wall clock.
    QosSpec pinned;
    pinned.minCores = 2;
    pinned.maxCores = 2;
    auto h = server.addProgram(prog, pinned);
    for (const auto &in : inputs)
        server.submit(h, in);
    server.drain();

    auto s = server.stats();
    EXPECT_EQ(s.modeledWallCycles, 4 * prog.stats.cycles);
    EXPECT_EQ(s.totalOperations, 8 * prog.stats.numOperations);
}

TEST(AsyncServer, InteractiveBandBypassesBatchBacklog)
{
    Dag d = generateRandomDag(12, 300, 78);
    auto prog = compile(d, smallConfig());
    const size_t backlog = 16;
    auto inputs = makeInputs(d, backlog + 1, 79);

    AsyncServerConfig cfg;
    cfg.workers = 1; // serialize dispatch so band order is observable
    cfg.maxBatch = 64;
    // A window long enough that the whole load is submitted while
    // the queues are still coalescing: nothing reaches a worker
    // before both class batches exist, making the band-order check
    // deterministic rather than a race against the worker.
    cfg.batchWindow = std::chrono::milliseconds(250);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog); // Batch class by default

    // One interactive request first (its window expires first), then
    // a batch-class backlog. The batcher cuts the interactive batch
    // no later than the backlog batch, and the scheduler must start
    // it first, so the interactive future resolves while the backlog
    // has barely run.
    SubmitOptions urgent;
    urgent.priority = Priority::Interactive;
    auto fast = server.trySubmit(h, inputs[backlog], urgent);
    ASSERT_TRUE(fast.accepted());
    std::vector<std::future<SimResult>> backlog_futures;
    for (size_t k = 0; k < backlog; ++k)
        backlog_futures.push_back(server.submit(h, inputs[k]));

    expectIdentical(fast.future.get(),
                    Machine(prog).run(inputs[backlog]));
    server.drain();
    for (size_t k = 0; k < backlog; ++k)
        expectIdentical(backlog_futures[k].get(),
                        Machine(prog).run(inputs[k]));

    // The completion-order observable (recorded under the server
    // lock) pins the band order without racing the worker: the
    // interactive request finished first, before any of the backlog
    // — a FIFO scheduler would have finished it last.
    auto s = server.stats();
    EXPECT_EQ(s.forClass(Priority::Interactive).submitted, 1u);
    EXPECT_EQ(s.forClass(Priority::Interactive).lastCompletionSeq, 1u);
    EXPECT_EQ(s.forClass(Priority::Batch).completed, backlog);
    EXPECT_EQ(s.forClass(Priority::Batch).lastCompletionSeq,
              backlog + 1);
    EXPECT_EQ(s.completions, backlog + 1);
}

TEST(AsyncServer, CompletionOrderBoundedWhileCountersStayExact)
{
    // Regression: Stats::completionOrder used to grow one record per
    // completion without bound — a million-request open loop carried
    // a million-entry observable in every stats() copy. It is now
    // capped like the ServiceSamples; the completions counter and the
    // per-class lastCompletionSeq must stay exact past the cap.
    Dag d = generateRandomDag(8, 60, 90);
    auto prog = compile(d, smallConfig());
    auto in = makeInputs(d, 1, 91)[0];

    const size_t total = kMaxCompletionRecords + 200;
    AsyncServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.batchWindow = std::chrono::microseconds(100);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    std::vector<std::future<SimResult>> futures;
    for (size_t k = 0; k < total; ++k)
        futures.push_back(server.submit(h, in));
    server.drain();
    for (auto &f : futures)
        (void)f.get();

    auto s = server.stats();
    EXPECT_EQ(s.completions, total);
    EXPECT_EQ(s.completionOrder.size(), kMaxCompletionRecords);
    // The recorded prefix is the first kMaxCompletionRecords
    // completions, in order.
    for (size_t i = 0; i < s.completionOrder.size(); ++i)
        EXPECT_EQ(s.completionOrder[i].seq, i + 1);
    // lastCompletionSeq tracks the true completion count, not the
    // bounded record.
    EXPECT_EQ(s.forClass(Priority::Batch).lastCompletionSeq, total);
    EXPECT_EQ(s.forClass(Priority::Batch).completed, total);
}

TEST(AsyncServer, DeadlineCutsBatchBeforeWindowExpires)
{
    Dag d = generateRandomDag(10, 200, 80);
    auto prog = compile(d, smallConfig());
    auto in = makeInputs(d, 1, 81)[0];

    AsyncServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.batchWindow = std::chrono::seconds(30); // would stall alone
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    SubmitOptions opts;
    opts.deadline = std::chrono::milliseconds(5);
    auto r = server.trySubmit(h, in, opts);
    ASSERT_TRUE(r.accepted());
    // Resolves in ~5ms, not 30s: the dispatcher cut the batch early
    // for the deadline.
    expectIdentical(r.future.get(), Machine(prog).run(in));
    auto s = server.stats();
    EXPECT_EQ(s.deadlineDispatches, 1u);
    EXPECT_EQ(s.windowDispatches, 0u);
}

TEST(AsyncServer, DestructorResolvesPendingFutures)
{
    // Drain-on-shutdown: a server destroyed with an open window and
    // pending requests must resolve every accepted future (no
    // deadlock, no broken promise).
    Dag d = generateRandomDag(10, 200, 82);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 5, 83);

    std::vector<std::future<SimResult>> futures;
    {
        AsyncServerConfig cfg;
        cfg.maxBatch = 64;
        cfg.batchWindow = std::chrono::seconds(30);
        cfg.workers = 2;
        AsyncBatchServer server(cfg);
        auto h = server.addProgram(prog);
        for (const auto &in : inputs)
            futures.push_back(server.submit(h, in));
        // Destructor runs here with all five requests still pending.
    }
    for (size_t k = 0; k < inputs.size(); ++k)
        expectIdentical(futures[k].get(), Machine(prog).run(inputs[k]));
}

TEST(AsyncServer, PerRequestDeadlineDefaultsFromProgramQos)
{
    Dag d = generateRandomDag(10, 200, 84);
    auto prog = compile(d, smallConfig());
    auto in = makeInputs(d, 1, 85)[0];

    AsyncServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.batchWindow = std::chrono::seconds(30);
    AsyncBatchServer server(cfg);

    QosSpec spec;
    spec.priority = Priority::Interactive;
    spec.deadline = std::chrono::milliseconds(5);
    auto h = server.addProgram(prog, spec);

    // No per-request options: the program's QoS supplies class and
    // deadline, so the request is cut early and counted interactive.
    auto fut = server.submit(h, in);
    expectIdentical(fut.get(), Machine(prog).run(in));
    auto s = server.stats();
    EXPECT_EQ(s.forClass(Priority::Interactive).submitted, 1u);
    EXPECT_EQ(s.forClass(Priority::Batch).submitted, 0u);
    EXPECT_EQ(s.deadlineDispatches, 1u);
}

TEST(AsyncServer, FastTierCalibratesServicePredictions)
{
    // Default admission fidelity is Analytic: every dispatched batch
    // makes a static wall-cycle prediction, and observed service
    // times feed the server-wide us-per-kilocycle EWMA. The first
    // batch runs uncalibrated (prediction 0, not recorded); later
    // batches record predicted-vs-actual samples.
    Dag d = generateRandomDag(12, 300, 95);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 6, 96);

    AsyncServerConfig cfg;
    cfg.maxBatch = 2;
    cfg.batchWindow = std::chrono::microseconds(50);
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    // Serialize the batches so calibration from batch k is visible
    // at batch k+1's dispatch.
    for (size_t k = 0; k + 1 < inputs.size(); k += 2) {
        auto f0 = server.submit(h, inputs[k]);
        auto f1 = server.submit(h, inputs[k + 1]);
        f0.get();
        f1.get();
    }

    auto s = server.stats();
    EXPECT_GE(s.batches, 3u);
    EXPECT_EQ(s.servicePredictions, s.batches);
    EXPECT_GT(s.usPerKilocycle, 0.0);
    // All but the uncalibrated first dispatch leave a sample.
    ASSERT_GE(s.serviceSamples.size(), 1u);
    EXPECT_LE(s.serviceSamples.size(), s.batches - 1);
    for (const auto &sample : s.serviceSamples) {
        EXPECT_GT(sample.predictedUs, 0.0);
        EXPECT_GT(sample.wallCycles, 0u);
        EXPECT_GE(sample.batchSize, 1u);
        EXPECT_LE(sample.batchSize, cfg.maxBatch);
    }
}

TEST(AsyncServer, CycleAdmissionFidelityDisablesPredictions)
{
    // admissionFidelity = Cycle is the pre-tier behavior: no static
    // predictions, no calibration samples, predictiveAdmission inert.
    Dag d = generateRandomDag(12, 300, 97);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 4, 98);

    AsyncServerConfig cfg;
    cfg.maxBatch = 2;
    cfg.admissionFidelity = EvalFidelity::Cycle;
    cfg.predictiveAdmission = true; // must have no effect
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    SubmitOptions opt;
    opt.deadline = std::chrono::seconds(10);
    for (const auto &in : inputs) {
        auto r = server.trySubmit(h, in, opt);
        ASSERT_TRUE(r.accepted());
        r.future.get();
    }

    auto s = server.stats();
    EXPECT_EQ(s.servicePredictions, 0u);
    EXPECT_EQ(s.admissionPredictions, 0u);
    EXPECT_EQ(s.predictedDeadlineRejections, 0u);
    EXPECT_TRUE(s.serviceSamples.empty());
    // The EWMA still calibrates (it is an observation, not a
    // prediction) so flipping fidelity later starts warm.
    EXPECT_GT(s.usPerKilocycle, 0.0);
}

TEST(AsyncServer, PredictiveAdmissionRejectsDoomedDeadlines)
{
    // Once calibrated, a deadlined request whose predicted lone-run
    // service time already exceeds its slack is rejected at
    // admission (RejectedDeadline before any queueing) — but only
    // under predictiveAdmission, and never while uncalibrated.
    Dag d = generateRandomDag(14, 600, 99);
    auto prog = compile(d, smallConfig());
    auto inputs = makeInputs(d, 3, 100);

    AsyncServerConfig cfg;
    cfg.maxBatch = 1;
    cfg.predictiveAdmission = true;
    AsyncBatchServer server(cfg);
    auto h = server.addProgram(prog);

    // Uncalibrated: even an absurd 1us deadline passes the
    // predictive gate (prediction 0 = "no idea"), so admission falls
    // through to the plain past-deadline check, which it meets.
    SubmitOptions tight;
    tight.deadline = std::chrono::microseconds(1);
    auto r0 = server.trySubmit(h, inputs[0], tight);
    EXPECT_EQ(server.stats().predictedDeadlineRejections, 0u);
    if (r0.accepted())
        r0.future.get();

    // Calibrate with a couple of normal runs.
    for (size_t k = 1; k < inputs.size(); ++k)
        server.submit(h, inputs[k]).get();
    ASSERT_GT(server.stats().usPerKilocycle, 0.0);

    // Now the same hopeless deadline is rejected by prediction.
    auto r1 = server.trySubmit(h, inputs[0], tight);
    EXPECT_EQ(r1.admission, Admission::RejectedDeadline);
    EXPECT_FALSE(r1.future.valid());
    auto s = server.stats();
    EXPECT_EQ(s.predictedDeadlineRejections, 1u);
    EXPECT_GE(s.admissionPredictions, 1u);

    // A generous deadline sails through the same gate.
    SubmitOptions fine;
    fine.deadline = std::chrono::seconds(10);
    auto r2 = server.trySubmit(h, inputs[0], fine);
    ASSERT_TRUE(r2.accepted());
    expectIdentical(r2.future.get(), Machine(prog).run(inputs[0]));
    EXPECT_EQ(server.stats().predictedDeadlineRejections, 1u);
}

} // namespace
} // namespace dpu
