/**
 * @file
 * Unit tests for compilation step 2: PE/register-bank mapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/interconnect.hh"
#include "compiler/blocks.hh"
#include "compiler/mapper.hh"
#include "workloads/pc_generator.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks,
      OutputInterconnect net = OutputInterconnect::PerLayerSubtree)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = 32;
    c.outputNet = net;
    return c;
}

/** Structural invariants every assignment must satisfy. */
void
checkAssignment(const Dag &d, const ArchConfig &cfg,
                const BlockDecomposition &dec, const BankAssignment &ba)
{
    for (NodeId v = 0; v < d.numNodes(); ++v) {
        if (!dec.isIo[v]) {
            EXPECT_EQ(ba.bankOf[v], BankAssignment::invalid);
            continue;
        }
        ASSERT_NE(ba.bankOf[v], BankAssignment::invalid) << "node " << v;
        ASSERT_LT(ba.bankOf[v], cfg.banks);
        if (d.node(v).isInput())
            continue;
        // Constraint H: the chosen writer PE reaches the chosen bank
        // and holds a replica of v.
        uint32_t pe = ba.peOf[v];
        ASSERT_NE(pe, BankAssignment::invalid);
        auto banks = writableBanks(cfg, pe);
        EXPECT_NE(std::find(banks.begin(), banks.end(), ba.bankOf[v]),
                  banks.end());
        const auto &reps =
            dec.blocks[dec.blockOf[v]].placements.at(v);
        EXPECT_NE(std::find(reps.begin(), reps.end(), pe), reps.end());
    }
    // Constraint G: block outputs occupy distinct banks.
    for (const Block &b : dec.blocks) {
        std::set<uint32_t> used;
        for (NodeId v : b.outputs) {
            EXPECT_TRUE(used.insert(ba.bankOf[v]).second)
                << "write conflict in a block";
        }
    }
}

TEST(Mapper, InvariantsOnRandomDag)
{
    Dag d = generateRandomDag(24, 800, 11);
    ArchConfig cfg = cfgOf(3, 16);
    auto dec = decomposeIntoBlocks(d, cfg);
    auto ba = assignBanks(d, cfg, dec);
    checkAssignment(d, cfg, dec, ba);
}

TEST(Mapper, InvariantsUnderCrossbar)
{
    Dag d = generateRandomDag(24, 800, 12);
    ArchConfig cfg = cfgOf(3, 16, OutputInterconnect::Crossbar);
    auto dec = decomposeIntoBlocks(d, cfg);
    auto ba = assignBanks(d, cfg, dec);
    checkAssignment(d, cfg, dec, ba);
}

TEST(Mapper, InvariantsUnderOnePerPe)
{
    Dag d = generateRandomDag(24, 800, 13);
    ArchConfig cfg = cfgOf(3, 16, OutputInterconnect::OnePerPe);
    auto dec = decomposeIntoBlocks(d, cfg);
    auto ba = assignBanks(d, cfg, dec);
    checkAssignment(d, cfg, dec, ba);
}

TEST(Mapper, RandomPolicyAlsoSatisfiesHardConstraints)
{
    Dag d = generateRandomDag(24, 800, 14);
    ArchConfig cfg = cfgOf(3, 16);
    auto dec = decomposeIntoBlocks(d, cfg);
    auto ba = assignBanks(d, cfg, dec, BankPolicy::Random);
    checkAssignment(d, cfg, dec, ba);
}

TEST(Mapper, ConflictAwareBeatsRandomByALot)
{
    // fig. 10(b): the paper reports 292x on a real workload; on a
    // mid-size synthetic PC we only insist on a large gap.
    PcParams p;
    p.targetOperations = 6000;
    p.depth = 30;
    p.seed = 21;
    Dag d = generatePc(p);
    ArchConfig cfg = cfgOf(3, 64);
    auto dec = decomposeIntoBlocks(d, cfg);
    auto smart = assignBanks(d, cfg, dec, BankPolicy::ConflictAware, 3);
    auto naive = assignBanks(d, cfg, dec, BankPolicy::Random, 3);
    EXPECT_LT(smart.readConflicts * 5, naive.readConflicts)
        << "smart=" << smart.readConflicts
        << " naive=" << naive.readConflicts;
}

TEST(Mapper, CrossbarOutputNoWorseThanPerLayer)
{
    // fig. 6(e): design (a) <= design (b) <= design (c) in conflicts.
    Dag d = generateRandomDag(32, 3000, 15);
    auto dec_a = decomposeIntoBlocks(
        d, cfgOf(3, 32, OutputInterconnect::Crossbar));
    auto dec_b = decomposeIntoBlocks(
        d, cfgOf(3, 32, OutputInterconnect::PerLayerSubtree));
    auto dec_c = decomposeIntoBlocks(
        d, cfgOf(3, 32, OutputInterconnect::OnePerPe));
    auto a = assignBanks(d, cfgOf(3, 32, OutputInterconnect::Crossbar),
                         dec_a);
    auto b = assignBanks(
        d, cfgOf(3, 32, OutputInterconnect::PerLayerSubtree), dec_b);
    auto c = assignBanks(d, cfgOf(3, 32, OutputInterconnect::OnePerPe),
                         dec_c);
    EXPECT_LE(a.readConflicts, b.readConflicts + 1);
    EXPECT_LT(b.readConflicts, c.readConflicts + 1);
}

TEST(Mapper, BankLoadIsBalanced)
{
    // Objective J: io values spread across banks.
    PcParams p;
    p.targetOperations = 4000;
    p.depth = 25;
    p.seed = 22;
    Dag d = generatePc(p);
    ArchConfig cfg = cfgOf(3, 16);
    auto dec = decomposeIntoBlocks(d, cfg);
    auto ba = assignBanks(d, cfg, dec);
    std::vector<uint32_t> count(cfg.banks, 0);
    uint64_t total = 0;
    for (NodeId v = 0; v < d.numNodes(); ++v)
        if (ba.bankOf[v] != BankAssignment::invalid) {
            ++count[ba.bankOf[v]];
            ++total;
        }
    double mean = static_cast<double>(total) / cfg.banks;
    for (uint32_t b = 0; b < cfg.banks; ++b)
        EXPECT_LT(count[b], mean * 2.0) << "bank " << b;
}

TEST(Mapper, CountReadConflictsMatchesField)
{
    Dag d = generateRandomDag(16, 500, 23);
    ArchConfig cfg = cfgOf(2, 16);
    auto dec = decomposeIntoBlocks(d, cfg);
    auto ba = assignBanks(d, cfg, dec);
    EXPECT_EQ(ba.readConflicts, countReadConflicts(dec, ba));
}

TEST(Mapper, CountReadConflictsBeyond64Banks)
{
    // The helper is public and must size its scratch from the
    // assignment, not a hardcoded 64 — bank ids past 63 used to write
    // out of bounds (caught by ASAN).
    BlockDecomposition dec;
    Block b;
    b.inputs = {0, 1, 2};
    dec.blocks.push_back(b);
    BankAssignment ba;
    ba.bankOf = {127, 127, 5};
    EXPECT_EQ(countReadConflicts(dec, ba), 1u);
}

TEST(Mapper, ConfigRejectsMoreThan64Banks)
{
    // Every conflict bookkeeping path keys banks into 64-bit masks,
    // so configurations beyond 64 banks must die at check() instead
    // of corrupting a compile.
    ArchConfig cfg = cfgOf(2, 128);
    EXPECT_THROW(cfg.check(), FatalError);
}

} // namespace
} // namespace dpu
