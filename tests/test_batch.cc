/**
 * @file
 * Edge-case and determinism tests for the batch machine: zero-cycle
 * throughput, empty batches, and byte-identical results between the
 * sequential path and the std::thread worker pool.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/compiler.hh"
#include "sim/batch.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"

namespace dpu {
namespace {

ArchConfig
smallConfig()
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 8;
    c.regsPerBank = 32;
    return c;
}

std::vector<std::vector<double>>
makeBatch(const Dag &d, size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> batch;
    for (size_t k = 0; k < count; ++k) {
        std::vector<double> in(d.numInputs());
        for (auto &x : in)
            x = 0.5 + rng.uniform();
        batch.push_back(std::move(in));
    }
    return batch;
}

void
expectIdenticalResults(const BatchResult &a, const BatchResult &b)
{
    ASSERT_EQ(a.runs.size(), b.runs.size());
    EXPECT_EQ(a.wallCycles, b.wallCycles);
    EXPECT_EQ(a.totalOperations, b.totalOperations);
    for (size_t k = 0; k < a.runs.size(); ++k) {
        const SimResult &ra = a.runs[k];
        const SimResult &rb = b.runs[k];
        ASSERT_EQ(ra.outputs.size(), rb.outputs.size());
        for (size_t i = 0; i < ra.outputs.size(); ++i)
            // Byte-identical, not just approximately equal: the
            // same Machine must have produced the same bits.
            EXPECT_EQ(ra.outputs[i], rb.outputs[i])
                << "run " << k << " output " << i;
        EXPECT_EQ(ra.stats.cycles, rb.stats.cycles);
        EXPECT_EQ(ra.stats.kindCount, rb.stats.kindCount);
        EXPECT_EQ(ra.stats.bankReads, rb.stats.bankReads);
        EXPECT_EQ(ra.stats.bankWrites, rb.stats.bankWrites);
        EXPECT_EQ(ra.stats.peOperations, rb.stats.peOperations);
        EXPECT_EQ(ra.stats.pePassThroughs, rb.stats.pePassThroughs);
        EXPECT_EQ(ra.stats.crossbarTransfers,
                  rb.stats.crossbarTransfers);
        EXPECT_EQ(ra.stats.memReads, rb.stats.memReads);
        EXPECT_EQ(ra.stats.memWrites, rb.stats.memWrites);
        EXPECT_EQ(ra.stats.instrBitsFetched,
                  rb.stats.instrBitsFetched);
        EXPECT_EQ(ra.stats.peakLiveRegisters,
                  rb.stats.peakLiveRegisters);
    }
}

TEST(BatchResult, ZeroWallCyclesThroughputIsZero)
{
    BatchResult r;
    r.wallCycles = 0;
    r.totalOperations = 12345; // inconsistent on purpose
    EXPECT_EQ(r.throughputGops(300e6), 0.0);
}

TEST(BatchMachine, EmptyBatch)
{
    Dag d = generateRandomDag(8, 100, 41);
    auto prog = compile(d, smallConfig());
    BatchMachine bm(prog, 4, prog.stats.numOperations);
    auto r = bm.run({});
    EXPECT_TRUE(r.runs.empty());
    EXPECT_EQ(r.wallCycles, 0u);
    EXPECT_EQ(r.totalOperations, 0u);
    EXPECT_EQ(r.throughputGops(300e6), 0.0);
}

TEST(BatchMachine, EmptyBatchThreaded)
{
    Dag d = generateRandomDag(8, 100, 42);
    auto prog = compile(d, smallConfig());
    BatchMachine bm(prog, 4, prog.stats.numOperations, 8);
    auto r = bm.run({});
    EXPECT_TRUE(r.runs.empty());
    EXPECT_EQ(r.wallCycles, 0u);
}

TEST(BatchMachine, ThreadedMatchesSequential)
{
    Dag d = generateRandomDag(16, 600, 43);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 7, 44);

    BatchMachine seq(prog, 4, prog.stats.numOperations, 1);
    BatchMachine par(prog, 4, prog.stats.numOperations, 4);
    auto r1 = seq.run(batch);
    auto r4 = par.run(batch);
    ASSERT_EQ(r1.runs.size(), 7u);
    expectIdenticalResults(r1, r4);
}

TEST(BatchMachine, MoreThreadsThanInputs)
{
    Dag d = generateRandomDag(8, 150, 45);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 3, 46);

    BatchMachine seq(prog, 2, prog.stats.numOperations, 1);
    BatchMachine par(prog, 2, prog.stats.numOperations, 16);
    expectIdenticalResults(seq.run(batch), par.run(batch));
}

TEST(BatchMachine, MoreCoresThanInputs)
{
    // Idle-core accounting: with cores > batch size, the extra cores
    // contribute zero cycles and must not distort the wall clock
    // (lockstep wall = busiest core = exactly one run) or the
    // operation count (only executed runs count).
    Dag d = generateRandomDag(8, 150, 49);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 3, 50);

    BatchMachine bm(prog, 8, prog.stats.numOperations);
    auto r = bm.run(batch);
    ASSERT_EQ(r.runs.size(), 3u);
    EXPECT_EQ(r.wallCycles, prog.stats.cycles);
    EXPECT_EQ(r.totalOperations, 3 * prog.stats.numOperations);
    EXPECT_GT(r.throughputGops(300e6), 0.0);
}

TEST(BatchMachine, MoreCoresThanInputsThreaded)
{
    // Same accounting when the host worker pool is wider than both
    // the batch and the model core count.
    Dag d = generateRandomDag(8, 150, 51);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 2, 52);

    BatchMachine seq(prog, 16, prog.stats.numOperations, 1);
    BatchMachine par(prog, 16, prog.stats.numOperations, 8);
    auto rs = seq.run(batch);
    auto rp = par.run(batch);
    EXPECT_EQ(rs.wallCycles, prog.stats.cycles);
    expectIdenticalResults(rs, rp);
}

TEST(BatchMachine, SingleInputManyCores)
{
    Dag d = generateRandomDag(8, 150, 53);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 1, 54);

    BatchMachine bm(prog, 4, prog.stats.numOperations);
    auto r = bm.run(batch);
    EXPECT_EQ(r.wallCycles, prog.stats.cycles);
    EXPECT_EQ(r.totalOperations, prog.stats.numOperations);
}

TEST(CoreSet, FirstNAndValidation)
{
    CoreSet s = CoreSet::firstN(3);
    ASSERT_EQ(s.count(), 3u);
    EXPECT_EQ(s.ids, (std::vector<uint32_t>{0, 1, 2}));
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(CoreSet::firstN(0).empty());
    s.validate(); // unique ids pass

    CoreSet dup;
    dup.ids = {2, 5, 2};
    EXPECT_THROW(dup.validate(), PanicError);
}

TEST(BatchMachine, CoreSubsetMatchesEquivalentCount)
{
    // Core-subset dispatch (per-program partitioning on the serving
    // side): running on cores {1, 3, 5} is byte-identical to running
    // on 3 conventionally numbered cores — identity only labels the
    // accounting.
    Dag d = generateRandomDag(16, 600, 55);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 7, 56);

    CoreSet subset;
    subset.ids = {1, 3, 5};
    BatchMachine by_count(prog, 3, prog.stats.numOperations);
    BatchMachine by_set(prog, subset, prog.stats.numOperations, 2);
    auto rc = by_count.run(batch);
    auto rs = by_set.run(batch);
    expectIdenticalResults(rc, rs);
    EXPECT_EQ(rs.coreIds, subset.ids);
    EXPECT_EQ(rc.coreIds, (std::vector<uint32_t>{0, 1, 2}));
    EXPECT_EQ(rs.perCoreCycles, rc.perCoreCycles);
}

TEST(BatchMachine, PerCoreCyclesFoldToWallClock)
{
    Dag d = generateRandomDag(8, 150, 57);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 5, 58);

    CoreSet subset;
    subset.ids = {7, 2};
    BatchMachine bm(prog, subset, prog.stats.numOperations);
    auto r = bm.run(batch);
    ASSERT_EQ(r.perCoreCycles.size(), 2u);
    // Round-robin over 2 cores: first core (id 7) gets 3 slices.
    EXPECT_EQ(r.perCoreCycles[0], 3 * prog.stats.cycles);
    EXPECT_EQ(r.perCoreCycles[1], 2 * prog.stats.cycles);
    EXPECT_EQ(r.wallCycles,
              *std::max_element(r.perCoreCycles.begin(),
                                r.perCoreCycles.end()));
}

TEST(BatchMachine, EmptyCoreSetRejected)
{
    Dag d = generateRandomDag(8, 100, 59);
    auto prog = compile(d, smallConfig());
    EXPECT_THROW(BatchMachine(prog, CoreSet{}, 1), PanicError);
    EXPECT_THROW(BatchMachine(prog, 0u, 1), PanicError);
}

TEST(BatchSpTrsv, MultiRhsByteIdenticalToSingleSolves)
{
    // The batched multi-RHS serving contract: one factorization, many
    // right-hand sides coalesced into one BatchMachine dispatch, with
    // every per-RHS result byte-identical to an independent
    // single-RHS solve — at every worker / batch-size / core-count
    // combination (seeded; runs in the TSAN suite).
    LowerTriangularParams p;
    p.dim = 96;
    p.depthLevels = 12;
    p.avgOffDiagonal = 3.0;
    p.seed = 31;
    auto lower = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(lower);
    auto prog = compile(lowered.dag, smallConfig());

    for (size_t batch_size : {size_t(1), size_t(3), size_t(8)}) {
        Rng rng(50 + batch_size);
        std::vector<std::vector<double>> rhs_batch;
        for (size_t b = 0; b < batch_size; ++b) {
            std::vector<double> rhs(lower.dim());
            for (auto &x : rhs)
                x = rng.uniform() * 2 - 1;
            rhs_batch.push_back(std::move(rhs));
        }
        auto inputs = sptrsvBatchInputs(lowered, lower, rhs_batch);

        // Independent single-RHS solves, one Machine run each.
        std::vector<SimResult> singles;
        for (size_t b = 0; b < batch_size; ++b)
            singles.push_back(runAndCheck(
                prog, lowered.dag,
                sptrsvInputValues(lowered, lower, rhs_batch[b])));

        for (uint32_t cores : {1u, 4u}) {
            for (uint32_t threads : {1u, 2u, 4u}) {
                BatchMachine bm(prog, cores,
                                prog.stats.numOperations, threads);
                auto br = bm.run(inputs);
                ASSERT_EQ(br.runs.size(), batch_size);
                for (size_t b = 0; b < batch_size; ++b) {
                    const auto &got = br.runs[b].outputs;
                    const auto &want = singles[b].outputs;
                    ASSERT_EQ(got.size(), want.size());
                    for (size_t i = 0; i < got.size(); ++i)
                        EXPECT_EQ(got[i], want[i]) // bitwise
                            << "batch " << batch_size << " cores "
                            << cores << " threads " << threads
                            << " rhs " << b << " output " << i;
                    EXPECT_EQ(br.runs[b].stats.cycles,
                              singles[b].stats.cycles);
                }
            }
        }
    }
}

TEST(BatchMachine, ThreadCountDoesNotChangeModelClock)
{
    // The host worker pool must not leak into the modeled machine:
    // wall cycles depend only on cores and the batch.
    Dag d = generateRandomDag(8, 150, 47);
    auto prog = compile(d, smallConfig());
    auto batch = makeBatch(d, 5, 48);

    BatchMachine four_cores(prog, 4, prog.stats.numOperations, 3);
    auto r = four_cores.run(batch);
    // Core 0 gets 2 slices, the rest 1: wall = 2 runs.
    EXPECT_EQ(r.wallCycles, 2 * prog.stats.cycles);
}

} // namespace
} // namespace dpu
