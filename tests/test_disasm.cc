/**
 * @file
 * Tests for the disassembler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/disasm.hh"
#include "compiler/compiler.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
smallCfg()
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 8;
    c.regsPerBank = 16;
    return c;
}

TEST(Disasm, Nop)
{
    EXPECT_EQ(disassemble(smallCfg(), NopInstr{}), "nop");
}

TEST(Disasm, LoadListsBanks)
{
    LoadInstr ld;
    ld.memRow = 7;
    ld.enable.assign(8, false);
    ld.enable[1] = ld.enable[5] = true;
    std::string s = disassemble(smallCfg(), ld);
    EXPECT_EQ(s, "load row=7 banks{1,5}");
}

TEST(Disasm, StoreShowsAddresses)
{
    StoreInstr st;
    st.memRow = 3;
    st.enable.assign(8, false);
    st.readAddr.assign(8, 0);
    st.enable[2] = true;
    st.readAddr[2] = 9;
    std::string s = disassemble(smallCfg(), st);
    EXPECT_NE(s.find("store row=3"), std::string::npos);
    EXPECT_NE(s.find("b2@9"), std::string::npos);
}

TEST(Disasm, CopyShowsRoutesAndRst)
{
    Copy4Instr cp;
    cp.validRst.assign(8, false);
    cp.slots[0] = {true, 1, 4, 6};
    cp.validRst[1] = true;
    std::string s = disassemble(smallCfg(), cp);
    EXPECT_NE(s.find("copy_4"), std::string::npos);
    EXPECT_NE(s.find("b1@4!->b6"), std::string::npos);
}

TEST(Disasm, ExecShowsTreeShape)
{
    ArchConfig cfg = smallCfg(); // 2 trees of 3 PEs
    ExecInstr ex;
    ex.peOp.assign(cfg.numPes(), PeOp::Nop);
    ex.peOp[cfg.peId({0, 1, 0})] = PeOp::Mul;
    ex.peOp[cfg.peId({0, 1, 1})] = PeOp::PassA;
    ex.peOp[cfg.peId({0, 2, 0})] = PeOp::Add;
    ex.inputSel.assign(cfg.banks, 0);
    ex.readAddr.assign(cfg.banks, 0);
    ex.validRst.assign(cfg.banks, false);
    ex.writeEnable.assign(cfg.banks, false);
    ex.outputSel.assign(cfg.banks, 0);
    ex.writeEnable[3] = true;
    std::string s = disassemble(cfg, ex);
    EXPECT_NE(s.find("t0["), std::string::npos);
    EXPECT_NE(s.find("L2.0:add"), std::string::npos);
    EXPECT_NE(s.find("L1.0:mul"), std::string::npos);
    EXPECT_NE(s.find("wr b3<-pe"), std::string::npos);
    // Tree 1 is idle and must not appear.
    EXPECT_EQ(s.find("t1["), std::string::npos);
}

TEST(Disasm, WholeProgramHasSummary)
{
    PcParams p;
    p.targetOperations = 200;
    p.depth = 8;
    p.seed = 2;
    Dag d = generatePc(p);
    ArchConfig cfg = smallCfg();
    auto prog = compile(d, cfg);
    std::ostringstream os;
    disassembleProgram(cfg, prog.instructions, os);
    std::string s = os.str();
    EXPECT_NE(s.find("instructions,"), std::string::npos);
    EXPECT_NE(s.find("exec:"), std::string::npos);
    // One line per instruction plus summary lines.
    size_t lines = std::count(s.begin(), s.end(), '\n');
    EXPECT_GT(lines, prog.instructions.size());
}

TEST(Disasm, EveryInstructionOfARealProgramRenders)
{
    Dag d = generateRandomDag(16, 500, 9);
    ArchConfig cfg;
    cfg.depth = 3;
    cfg.banks = 16;
    cfg.regsPerBank = 8; // force spills -> store_4 traffic
    auto prog = compile(d, cfg);
    for (const auto &in : prog.instructions) {
        std::string s = disassemble(cfg, in);
        EXPECT_FALSE(s.empty());
    }
}

} // namespace
} // namespace dpu
