/**
 * @file
 * Seeded randomized stress suite for the async serving subsystem: N
 * resident programs x M concurrent submitter threads firing requests
 * with random priorities, deadlines and inter-arrival jitter, against
 * server configurations with random batching windows and queue
 * depths. The pinned property is the serving determinism guarantee:
 * every request the server *accepts* must resolve to a SimResult
 * byte-identical to a serial single-threaded replay of the same input
 * — across seeds and 1/4/8-worker configurations. Admission outcomes
 * (queue-full rejections) are timing-dependent and deliberately not
 * pinned; rejected requests simply drop out of the comparison.
 *
 * This suite also runs under ThreadSanitizer in CI (see
 * .github/workflows/ci.yml), where the random interleavings double as
 * a data-race probe for the QoS scheduler's core allocator and
 * priority bands.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <tuple>
#include <vector>

#include "compiler/compiler.hh"
#include "sim/async.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
smallConfig()
{
    ArchConfig c;
    c.depth = 2;
    c.banks = 8;
    c.regsPerBank = 32;
    return c;
}

/** One resident program, its input pool, and the serial-replay
 *  reference results (the single-threaded ground truth). */
struct StressProgram
{
    CompiledProgram prog;
    std::vector<std::vector<double>> inputs;
    std::vector<SimResult> reference;
};

constexpr size_t kPrograms = 3;
constexpr size_t kInputsPerProgram = 4;
constexpr size_t kSubmitters = 4;
constexpr size_t kRequestsPerSubmitter = 12;

/** Compile the resident population once for every test instance; the
 *  per-seed randomness is all on the serving side. */
const std::vector<StressProgram> &
stressPrograms()
{
    static const std::vector<StressProgram> programs = [] {
        std::vector<StressProgram> out(kPrograms);
        const uint64_t dag_seeds[kPrograms] = {91, 92, 93};
        const uint32_t dag_inputs[kPrograms] = {10, 14, 12};
        const uint32_t dag_nodes[kPrograms] = {220, 420, 300};
        for (size_t p = 0; p < kPrograms; ++p) {
            Dag d = generateRandomDag(dag_inputs[p], dag_nodes[p],
                                      dag_seeds[p]);
            out[p].prog = compile(d, smallConfig());
            Rng rng(1000 + dag_seeds[p]);
            for (size_t k = 0; k < kInputsPerProgram; ++k) {
                std::vector<double> in(d.numInputs());
                for (auto &x : in)
                    x = 0.5 + rng.uniform();
                // Serial single-threaded replay: one private Machine,
                // no batching, no threads — the reference every
                // served result must match byte for byte.
                out[p].reference.push_back(
                    Machine(out[p].prog).run(in));
                out[p].inputs.push_back(std::move(in));
            }
        }
        return out;
    }();
    return programs;
}

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (size_t i = 0; i < a.outputs.size(); ++i)
        EXPECT_EQ(a.outputs[i], b.outputs[i]) << "output " << i;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.kindCount, b.stats.kindCount);
    EXPECT_EQ(a.stats.bankReads, b.stats.bankReads);
    EXPECT_EQ(a.stats.bankWrites, b.stats.bankWrites);
    EXPECT_EQ(a.stats.peOperations, b.stats.peOperations);
    EXPECT_EQ(a.stats.pePassThroughs, b.stats.pePassThroughs);
    EXPECT_EQ(a.stats.crossbarTransfers, b.stats.crossbarTransfers);
    EXPECT_EQ(a.stats.memReads, b.stats.memReads);
    EXPECT_EQ(a.stats.memWrites, b.stats.memWrites);
    EXPECT_EQ(a.stats.instrBitsFetched, b.stats.instrBitsFetched);
    EXPECT_EQ(a.stats.peakLiveRegisters, b.stats.peakLiveRegisters);
}

/** (seed, worker count) sweep. */
class AsyncStress
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>>
{
};

TEST_P(AsyncStress, ServedResultsMatchSerialReplay)
{
    const uint64_t seed = std::get<0>(GetParam());
    const uint32_t workers = std::get<1>(GetParam());
    const auto &population = stressPrograms();

    // Server shape drawn from the seed: window, batch size, queue
    // bound, and one program pinned to a core reservation.
    Rng shape_rng(seed);
    AsyncServerConfig cfg;
    cfg.cores = 4;
    cfg.workers = workers;
    cfg.maxBatch = 1 + shape_rng.next() % 8;
    const uint64_t window_us[] = {0, 100, 2000};
    cfg.batchWindow =
        std::chrono::microseconds(window_us[shape_rng.next() % 3]);
    cfg.hostThreadsPerBatch = 1 + shape_rng.next() % 2;
    // Either unbounded or roomy-but-finite: small depths would turn
    // most of the load into (legitimate) rejections and starve the
    // determinism comparison of samples.
    cfg.queueDepth = shape_rng.next() % 2 ? 0 : 64;
    AsyncBatchServer server(cfg);

    std::vector<AsyncBatchServer::ProgramHandle> handles;
    for (size_t p = 0; p < population.size(); ++p) {
        QosSpec qos;
        qos.priority = p == 0 ? Priority::Interactive : Priority::Batch;
        if (p == 0) {
            qos.minCores = 1; // partitioned: one core is p0's alone
            qos.deadline = std::chrono::milliseconds(20);
        }
        handles.push_back(
            server.addProgram(population[p].prog, qos));
    }

    struct Submitted
    {
        size_t program;
        size_t input;
        std::future<SimResult> future; ///< Invalid when rejected.
    };
    std::vector<std::vector<Submitted>> per_thread(kSubmitters);

    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            // Per-thread deterministic request stream; only the
            // interleaving across threads is left to the scheduler.
            Rng rng(seed * 1000 + t);
            for (size_t k = 0; k < kRequestsPerSubmitter; ++k) {
                size_t p = rng.next() % population.size();
                size_t i = rng.next() % kInputsPerProgram;
                SubmitOptions opts;
                switch (rng.next() % 3) {
                case 0: // class/deadline from the program's QosSpec
                    break;
                case 1:
                    opts.priority = Priority::Interactive;
                    opts.deadline = std::chrono::milliseconds(
                        1 + rng.next() % 50);
                    break;
                case 2:
                    opts.priority = Priority::Batch;
                    break;
                }
                SubmitResult r = server.trySubmit(
                    handles[p], population[p].inputs[i], opts);
                per_thread[t].push_back(
                    {p, i, std::move(r.future)});
                if (rng.next() % 4 == 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(rng.next() % 200));
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    server.drain();

    size_t served = 0;
    for (auto &thread_reqs : per_thread) {
        for (Submitted &s : thread_reqs) {
            if (!s.future.valid())
                continue; // rejected by admission: not pinned
            SCOPED_TRACE("program " + std::to_string(s.program) +
                         " input " + std::to_string(s.input));
            expectIdentical(
                s.future.get(),
                population[s.program].reference[s.input]);
            ++served;
        }
    }
    // The sweep must actually exercise the comparison: with these
    // depths, most of the 48 requests are admitted.
    EXPECT_GE(served, kSubmitters * kRequestsPerSubmitter / 2);

    auto st = server.stats();
    EXPECT_EQ(st.requests, served);
    EXPECT_EQ(st.forClass(Priority::Interactive).completed +
                  st.forClass(Priority::Batch).completed,
              served);
    EXPECT_EQ(st.sizeDispatches + st.windowDispatches +
                  st.drainDispatches + st.deadlineDispatches,
              st.batches);
}

INSTANTIATE_TEST_SUITE_P(
    AsyncStressSweep, AsyncStress,
    ::testing::Combine(::testing::Values(uint64_t{71}, uint64_t{72},
                                         uint64_t{73}),
                       ::testing::Values(1u, 4u, 8u)),
    [](const ::testing::TestParamInfo<AsyncStress::ParamType> &info) {
        return "seed" +
               std::to_string(std::get<0>(info.param)) + "_workers" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace dpu
