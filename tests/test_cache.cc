/**
 * @file
 * Tests for the compiled-program cache: hit/miss/eviction behaviour
 * of the in-memory LRU, the on-disk spill, key sensitivity, and the
 * serialization round trip.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "arch/isa.hh"
#include "compiler/cache.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks, uint32_t regs)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = regs;
    return c;
}

/** Scratch directory under the test's working directory, removed on
 *  destruction (keeps everything inside the build tree). */
struct ScratchDir
{
    std::filesystem::path path;

    explicit ScratchDir(const std::string &name)
        : path(std::filesystem::current_path() / name)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

void
expectSamePrograms(const CompiledProgram &a, const CompiledProgram &b)
{
    EXPECT_EQ(encodeProgram(a.cfg, a.instructions),
              encodeProgram(b.cfg, b.instructions));
    EXPECT_EQ(a.numRows, b.numRows);
    EXPECT_EQ(a.inputLocation, b.inputLocation);
    EXPECT_EQ(a.stats.instructions, b.stats.instructions);
}

TEST(ProgramCache, SecondCompileIsAHit)
{
    Dag d = generateRandomDag(16, 400, 71);
    ArchConfig cfg = cfgOf(2, 8, 32);
    ProgramCache cache;

    auto first = cache.compile(d, cfg);
    EXPECT_EQ(first.stats.cacheHits, 0u);
    auto second = cache.compile(d, cfg);
    EXPECT_EQ(second.stats.cacheHits, 1u);
    expectSamePrograms(first, second);

    auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(cache.size(), 1u);
    // The derived counters the sweep drivers report per shard.
    EXPECT_EQ(s.lookups(), 2u);
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.5);
    EXPECT_DOUBLE_EQ(ProgramCache::Stats{}.hitRate(), 0.0);
}

TEST(ProgramCache, KeyCoversDagConfigAndOptions)
{
    Dag d1 = generateRandomDag(16, 400, 72);
    Dag d2 = generateRandomDag(16, 400, 73);
    ArchConfig cfg = cfgOf(2, 8, 32);
    ProgramCache cache;

    cache.compile(d1, cfg);
    // Different DAG, config or compile options: all misses.
    EXPECT_EQ(cache.compile(d2, cfg).stats.cacheHits, 0u);
    EXPECT_EQ(cache.compile(d1, cfgOf(2, 8, 64)).stats.cacheHits, 0u);
    CompileOptions seeded;
    seeded.seed = 9;
    EXPECT_EQ(cache.compile(d1, cfg, seeded).stats.cacheHits, 0u);
    CompileOptions windowed;
    windowed.reorderWindow = 10;
    EXPECT_EQ(cache.compile(d1, cfg, windowed).stats.cacheHits, 0u);
    EXPECT_EQ(cache.stats().misses, 5u);
}

TEST(ProgramCache, ThreadsAndValidateDoNotChangeTheKey)
{
    // The parallel compiler is byte-identical for every thread count,
    // so a threads=8 compile may reuse a threads=1 artifact.
    Dag d = generateRandomDag(24, 900, 74);
    ArchConfig cfg = cfgOf(3, 16, 32);
    ProgramCache cache;
    CompileOptions opt;
    opt.partitionNodes = 200;
    opt.threads = 1;
    auto seq = cache.compile(d, cfg, opt);
    opt.threads = 8;
    opt.validate = true;
    auto par = cache.compile(d, cfg, opt);
    EXPECT_EQ(par.stats.cacheHits, 1u);
    expectSamePrograms(seq, par);
}

TEST(ProgramCache, FragmentReuseAcrossRegisterCounts)
{
    // regsPerBank only matters from step 3 on, so two compiles
    // differing only in R miss the program cache but share their
    // (single) fragment — and the reuse is output-preserving.
    Dag d = generateRandomDag(16, 600, 84);
    ProgramCache cache;
    cache.compile(d, cfgOf(2, 8, 32));
    auto s1 = cache.stats();
    EXPECT_EQ(s1.fragMisses, 1u);
    EXPECT_EQ(s1.fragHits, 0u);
    auto warm = cache.compile(d, cfgOf(2, 8, 64));
    EXPECT_EQ(warm.stats.cacheHits, 0u); // program-level miss...
    auto s2 = cache.stats();
    EXPECT_EQ(s2.fragMisses, 1u); // ...but the fragment was reused
    EXPECT_EQ(s2.fragHits, 1u);
    CompiledProgram cold = compile(d, cfgOf(2, 8, 64));
    EXPECT_EQ(encodeProgram(cold.cfg, cold.instructions),
              encodeProgram(warm.cfg, warm.instructions));
}

TEST(ProgramCache, FragmentReusePartitionedCompile)
{
    Dag d = generateRandomDag(32, 2000, 85);
    ProgramCache cache;
    CompileOptions opt;
    opt.partitionNodes = 400;
    opt.threads = 4;
    cache.compile(d, cfgOf(3, 16, 32), opt);
    uint64_t parts = cache.stats().fragMisses;
    EXPECT_GE(parts, 4u); // 2000 ops / 400 per partition
    auto warm = cache.compile(d, cfgOf(3, 16, 64), opt);
    auto s = cache.stats();
    EXPECT_EQ(s.fragHits, parts); // every partition reused
    EXPECT_EQ(s.fragMisses, parts);
    CompiledProgram cold = compile(d, cfgOf(3, 16, 64), opt);
    EXPECT_EQ(encodeProgram(cold.cfg, cold.instructions),
              encodeProgram(warm.cfg, warm.instructions));
}

TEST(ProgramCache, InsertSeedsLaterHits)
{
    // Benches that must time a real compile still feed the cache.
    ScratchDir dir("progcache_test_insert");
    ProgramCacheConfig cc;
    cc.diskDir = dir.path.string();
    Dag d = generateRandomDag(16, 400, 70);
    ArchConfig cfg = cfgOf(2, 8, 32);

    ProgramCache cache(cc);
    auto fresh = compile(d, cfg);
    cache.insert(d, cfg, {}, fresh);
    auto s = cache.stats();
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.diskWrites, 1u);

    auto hit = cache.compile(d, cfg);
    EXPECT_EQ(hit.stats.cacheHits, 1u);
    expectSamePrograms(fresh, hit);

    ProgramCache fresh_instance(cc); // and the spill is shared too
    EXPECT_EQ(fresh_instance.compile(d, cfg).stats.cacheHits, 1u);
}

TEST(ProgramCache, LruEvictsOldestEntry)
{
    ProgramCacheConfig cc;
    cc.maxEntries = 2;
    ProgramCache cache(cc);
    ArchConfig cfg = cfgOf(2, 8, 32);
    Dag a = generateRandomDag(8, 200, 75);
    Dag b = generateRandomDag(8, 200, 76);
    Dag c = generateRandomDag(8, 200, 77);

    cache.compile(a, cfg);
    cache.compile(b, cfg);
    cache.compile(c, cfg); // evicts a
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.compile(c, cfg).stats.cacheHits, 1u);
    EXPECT_EQ(cache.compile(a, cfg).stats.cacheHits, 0u); // was evicted
}

TEST(ProgramCache, CachedProgramStillSimulatesCorrectly)
{
    Dag d = generateRandomDag(16, 500, 78);
    ArchConfig cfg = cfgOf(2, 8, 32);
    ProgramCache cache;
    cache.compile(d, cfg);
    auto prog = cache.compile(d, cfg);
    ASSERT_EQ(prog.stats.cacheHits, 1u);
    Rng rng(79);
    std::vector<double> in(d.numInputs());
    for (auto &x : in)
        x = 0.5 + rng.uniform();
    runAndCheck(prog, d, in);
}

TEST(ProgramCache, DiskSpillSurvivesAcrossInstances)
{
    ScratchDir dir("progcache_test_disk");
    ProgramCacheConfig cc;
    cc.diskDir = dir.path.string();

    Dag d = generateRandomDag(16, 400, 80);
    ArchConfig cfg = cfgOf(2, 8, 32);
    CompiledProgram first;
    {
        ProgramCache writer(cc);
        first = writer.compile(d, cfg);
        EXPECT_EQ(writer.stats().diskWrites, 1u);
    }
    // A fresh cache (fresh process, conceptually) hits the spill.
    ProgramCache reader(cc);
    auto again = reader.compile(d, cfg);
    EXPECT_EQ(again.stats.cacheHits, 1u);
    auto s = reader.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.misses, 0u);
    expectSamePrograms(first, again);
}

TEST(ProgramCache, SerializationRoundTrip)
{
    Dag d = generateRandomDag(16, 600, 81);
    ArchConfig cfg = cfgOf(3, 16, 16); // small R: spills in the image
    auto prog = compile(d, cfg);
    auto image = serializeProgram(prog);
    CompiledProgram back;
    ASSERT_TRUE(deserializeProgram(image, back));
    expectSamePrograms(prog, back);
    ASSERT_EQ(back.outputs.size(), prog.outputs.size());
    for (size_t i = 0; i < back.outputs.size(); ++i) {
        EXPECT_EQ(back.outputs[i].node, prog.outputs[i].node);
        EXPECT_EQ(back.outputs[i].row, prog.outputs[i].row);
        EXPECT_EQ(back.outputs[i].col, prog.outputs[i].col);
    }
    EXPECT_EQ(back.stats.spillStores, prog.stats.spillStores);
    EXPECT_EQ(back.stats.programBits, prog.stats.programBits);
    EXPECT_DOUBLE_EQ(back.stats.verifySeconds, prog.stats.verifySeconds);

    // Corrupt images are rejected, not crashed on.
    CompiledProgram junk;
    EXPECT_FALSE(deserializeProgram({1, 2, 3, 4}, junk));
    auto truncated = image;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(deserializeProgram(truncated, junk));
}

TEST(ProgramCache, TruncatedSpillFileIsRejectedAsAMiss)
{
    ScratchDir dir("progcache_test_trunc");
    ProgramCacheConfig cc;
    cc.diskDir = dir.path.string();

    Dag d = generateRandomDag(16, 400, 82);
    ArchConfig cfg = cfgOf(2, 8, 32);
    CompiledProgram first;
    {
        ProgramCache writer(cc);
        first = writer.compile(d, cfg);
    }
    // Truncate the spill file mid-image (a torn write, a full disk,
    // bit rot): the reload must warn, count a reject, and recompile
    // — never propagate a malformed program.
    std::filesystem::path file =
        dir.path / (programCacheKey(d, cfg, {}) + ".dpuprog");
    ASSERT_TRUE(std::filesystem::exists(file));
    auto size = std::filesystem::file_size(file);
    std::filesystem::resize_file(file, size / 2);

    ProgramCache reader(cc);
    auto again = reader.compile(d, cfg);
    EXPECT_EQ(again.stats.cacheHits, 0u);
    auto s = reader.stats();
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.diskRejects, 1u);
    expectSamePrograms(first, again);
}

TEST(ProgramCache, CorruptButDeserializableSpillFailsVerification)
{
    ScratchDir dir("progcache_test_corrupt");
    ProgramCacheConfig cc;
    cc.diskDir = dir.path.string();

    Dag d = generateRandomDag(16, 400, 83);
    ArchConfig cfg = cfgOf(2, 8, 32);
    {
        ProgramCache writer(cc);
        writer.compile(d, cfg);
    }
    // Tamper with a stats field and rewrite the image: it still
    // deserializes, so only the static verifier (V040) catches it.
    std::filesystem::path file =
        dir.path / (programCacheKey(d, cfg, {}) + ".dpuprog");
    std::vector<uint8_t> image;
    {
        std::ifstream in(file, std::ios::binary);
        image.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    CompiledProgram prog;
    ASSERT_TRUE(deserializeProgram(image, prog));
    prog.stats.instructions += 7;
    auto tampered = serializeProgram(prog);
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(tampered.data()),
                  static_cast<std::streamsize>(tampered.size()));
    }

    ProgramCache reader(cc);
    auto again = reader.compile(d, cfg);
    EXPECT_EQ(again.stats.cacheHits, 0u);
    auto s = reader.stats();
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.diskRejects, 1u);
}

TEST(ProgramCache, UnwritableDiskDirFallsBackToMemory)
{
    // A diskDir that cannot exist (a path component is a regular
    // file) must degrade to in-memory-only caching with a warning,
    // not abort the sweep. This stands in for a read-only FS, which
    // cannot be faked with permission bits when running as root.
    ScratchDir dir("progcache_test_unwritable");
    std::filesystem::path blocker = dir.path / "file";
    { std::ofstream(blocker) << "not a directory"; }

    ProgramCacheConfig cc;
    cc.diskDir = (blocker / "sub").string();
    ProgramCache cache(cc);
    EXPECT_FALSE(cache.diskEnabled());

    Dag d = generateRandomDag(16, 400, 84);
    ArchConfig cfg = cfgOf(2, 8, 32);
    auto first = cache.compile(d, cfg);
    EXPECT_EQ(first.stats.cacheHits, 0u);
    auto second = cache.compile(d, cfg); // memory LRU still works
    EXPECT_EQ(second.stats.cacheHits, 1u);
    expectSamePrograms(first, second);

    auto s = cache.stats();
    EXPECT_EQ(s.diskWrites, 0u);
    EXPECT_EQ(s.diskHits, 0u);
}

TEST(ProgramCache, EnsureWritableDirectoryProbes)
{
    ScratchDir dir("progcache_test_probe");
    // Creates missing components recursively and leaves no probe file.
    std::filesystem::path fresh = dir.path / "a" / "b";
    EXPECT_TRUE(ensureWritableDirectory(fresh.string()));
    EXPECT_TRUE(std::filesystem::is_directory(fresh));
    EXPECT_TRUE(std::filesystem::is_empty(fresh));
    // Idempotent on an existing directory.
    EXPECT_TRUE(ensureWritableDirectory(fresh.string()));

    std::filesystem::path blocker = dir.path / "file";
    { std::ofstream(blocker) << "x"; }
    EXPECT_FALSE(ensureWritableDirectory((blocker / "sub").string()));
}

TEST(ProgramCache, StructuralHashSeparatesDags)
{
    Dag a = generateRandomDag(16, 300, 82);
    Dag b = generateRandomDag(16, 300, 83);
    EXPECT_EQ(dagStructuralHash(a), dagStructuralHash(a));
    EXPECT_NE(dagStructuralHash(a), dagStructuralHash(b));

    // Operator identity matters, not just shape.
    Dag c1, c2;
    NodeId i0 = c1.addInput(), i1 = c1.addInput();
    c1.addNode(OpType::Add, {i0, i1});
    NodeId j0 = c2.addInput(), j1 = c2.addInput();
    c2.addNode(OpType::Mul, {j0, j1});
    EXPECT_NE(dagStructuralHash(c1), dagStructuralHash(c2));
}

TEST(ProgramCache, EvalStatsMemoKeysOnFidelityAndCores)
{
    // The per-tier evaluation memo: a (program key, fidelity tag,
    // cores) triple pins one SimStats. Different tiers and core
    // counts are distinct entries; hits/misses are counted.
    ProgramCache cache;
    SimStats s1;
    s1.cycles = 100;
    s1.peOperations = 40;
    SimStats s2;
    s2.cycles = 110; // same program, different tier's estimate
    s2.peOperations = 44;

    SimStats out;
    EXPECT_FALSE(cache.lookupEvalStats("prog-a", 0, 1, out));
    EXPECT_EQ(cache.stats().evalMisses, 1u);

    cache.storeEvalStats("prog-a", 0, 1, s1);
    cache.storeEvalStats("prog-a", 2, 1, s2);

    ASSERT_TRUE(cache.lookupEvalStats("prog-a", 0, 1, out));
    EXPECT_EQ(out.cycles, 100u);
    ASSERT_TRUE(cache.lookupEvalStats("prog-a", 2, 1, out));
    EXPECT_EQ(out.cycles, 110u);
    EXPECT_EQ(cache.stats().evalHits, 2u);

    // Fidelity 1 and a different core count both miss despite the
    // shared program key.
    EXPECT_FALSE(cache.lookupEvalStats("prog-a", 1, 1, out));
    EXPECT_FALSE(cache.lookupEvalStats("prog-a", 0, 2, out));
    EXPECT_FALSE(cache.lookupEvalStats("prog-b", 0, 1, out));
    EXPECT_EQ(cache.stats().evalMisses, 4u);

    // A re-store overwrites in place.
    s1.cycles = 99;
    cache.storeEvalStats("prog-a", 0, 1, s1);
    ASSERT_TRUE(cache.lookupEvalStats("prog-a", 0, 1, out));
    EXPECT_EQ(out.cycles, 99u);
}

} // namespace
} // namespace dpu
