/**
 * @file
 * Seeded stress suite for the sharded DSE engine: the pinned
 * property is sweep determinism — for every (seed, threads, shards)
 * combination the merged point vector must be byte-identical to the
 * serial (1 thread, 1 shard) sweep, and a sweep killed after k
 * journaled points (modelled by truncating the journal, including
 * mid-line torn writes) and resumed must reproduce both the
 * identical point vector and the identical final journal bytes.
 *
 * Runs under ThreadSanitizer in CI (see .github/workflows/ci.yml)
 * like AsyncStress, where the shard interleavings double as a
 * data-race probe for the sweep engine's merge and journal paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "model/dse.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

/** Small but multi-axis space: 4 configs x 2 scales x 2 core counts
 *  = 16 points over a 2-workload suite — enough shards/points to
 *  interleave, small enough for TSAN. */
DseOptions
stressSpace(uint64_t seed)
{
    DseOptions o;
    o.depths = {1, 2};
    o.banks = {8, 16};
    o.regs = {32};
    o.scales = {0.03, 0.05};
    o.cores = {1, 2};
    o.seed = seed;
    o.suite = {pcSuite()[0], sptrsvSuite()[0]};
    return o;
}

void
expectIdentical(const DsePoint &a, const DsePoint &b)
{
    EXPECT_EQ(a.cfg.depth, b.cfg.depth);
    EXPECT_EQ(a.cfg.banks, b.cfg.banks);
    EXPECT_EQ(a.cfg.regsPerBank, b.cfg.regsPerBank);
    EXPECT_EQ(a.workloadScale, b.workloadScale);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.latencyPerOpNs, b.latencyPerOpNs);
    EXPECT_EQ(a.energyPerOpPj, b.energyPerOpPj);
    EXPECT_EQ(a.edpPjNs, b.edpPjNs);
    EXPECT_EQ(a.areaMm2, b.areaMm2);
    EXPECT_EQ(a.powerWatts, b.powerWatts);
    EXPECT_EQ(a.throughputGops, b.throughputGops);
    EXPECT_EQ(a.feasible, b.feasible);
}

void
expectIdenticalSweep(const std::vector<DsePoint> &a,
                     const std::vector<DsePoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectIdentical(a[i], b[i]);
    }
}

/** The serial ground truth, computed once per seed. */
const std::vector<DsePoint> &
serialReference(uint64_t seed)
{
    static std::map<uint64_t, std::vector<DsePoint>> cache;
    auto it = cache.find(seed);
    if (it == cache.end()) {
        DseSweepOptions o; // threads = 1, shards = 1: the serial sweep
        o.space = stressSpace(seed);
        it = cache.emplace(seed, runDseSweep(o).points).first;
    }
    return it->second;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------------------------- //
// (seed, threads, shards) determinism sweep.                       //
// ---------------------------------------------------------------- //

class DseStress : public ::testing::TestWithParam<
                      std::tuple<uint64_t, uint32_t, uint32_t>>
{
};

TEST_P(DseStress, ShardedSweepMatchesSerialByteForByte)
{
    const auto [seed, threads, shards] = GetParam();
    DseSweepOptions o;
    o.space = stressSpace(seed);
    o.threads = threads;
    o.shards = shards;
    // A shared program cache must not perturb results either: cores
    // axis points share compile keys, so whichever shard compiles
    // first seeds hits for the others.
    ProgramCache cache;
    o.cache = &cache;

    DseSweepResult sweep = runDseSweep(o);
    expectIdenticalSweep(sweep.points, serialReference(seed));

    ASSERT_EQ(sweep.shardReports.size(),
              std::min<size_t>(shards, sweep.points.size()));
    size_t covered = 0, evaluated = 0;
    for (const DseShardReport &r : sweep.shardReports) {
        covered += r.points;
        evaluated += r.evaluated;
    }
    EXPECT_EQ(covered, sweep.points.size());
    EXPECT_EQ(evaluated, sweep.points.size()); // nothing resumed
    EXPECT_EQ(sweep.resumedPoints, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DseStressSweep, DseStress,
    ::testing::Combine(::testing::Values(uint64_t{81}, uint64_t{82},
                                         uint64_t{83}),
                       ::testing::Values(1u, 4u, 8u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<DseStress::ParamType> &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
               "_threads" + std::to_string(std::get<1>(info.param)) +
               "_shards" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------- //
// Kill + resume reproduces the identical final journal.            //
// ---------------------------------------------------------------- //

TEST(DseStressResume, TruncatedJournalResumesToIdenticalResults)
{
    const uint64_t seed = 91;
    std::string path = ::testing::TempDir() + "dse_stress.jsonl";

    // Reference: one uninterrupted journaled sweep.
    DseSweepOptions ref;
    ref.space = stressSpace(seed);
    ref.threads = 2;
    ref.shards = 4;
    ref.journalPath = path;
    DseSweepResult reference = runDseSweep(ref);
    std::string reference_journal = slurp(path);
    ASSERT_FALSE(reference_journal.empty());

    // Split into lines (header + one per point, canonical order).
    std::vector<std::string> lines;
    {
        std::istringstream in(reference_journal);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), reference.points.size() + 1);

    // Kill-at-point-k: rebuild the journal as if the sweep died
    // after k completed points — optionally mid-write (torn tail) —
    // then resume with a different thread/shard shape.
    struct Cut
    {
        size_t keep;  ///< Completed point lines to keep.
        bool torn;    ///< Append half of the next line.
    };
    for (Cut cut : {Cut{0, false}, Cut{3, false}, Cut{3, true},
                    Cut{9, true}, Cut{reference.points.size(), false}}) {
        SCOPED_TRACE("keep " + std::to_string(cut.keep) +
                     (cut.torn ? " + torn tail" : ""));
        {
            std::ofstream out(path, std::ios::trunc);
            for (size_t i = 0; i <= cut.keep; ++i)
                out << lines[i] << "\n";
            if (cut.torn && cut.keep + 1 < lines.size())
                out << lines[cut.keep + 1].substr(
                    0, lines[cut.keep + 1].size() / 2);
        }

        DseSweepOptions res;
        res.space = stressSpace(seed);
        res.threads = 4;
        res.shards = 2;
        res.journalPath = path;
        res.resume = true;
        DseSweepResult resumed = runDseSweep(res);

        EXPECT_EQ(resumed.resumedPoints, cut.keep);
        expectIdenticalSweep(resumed.points, reference.points);
        EXPECT_EQ(slurp(path), reference_journal)
            << "final journal bytes differ after resume";
    }

    // Resuming the already-complete journal recomputes nothing.
    DseSweepOptions done;
    done.space = stressSpace(seed);
    done.threads = 1;
    done.shards = 1;
    done.journalPath = path;
    done.resume = true;
    DseSweepResult noop = runDseSweep(done);
    EXPECT_EQ(noop.resumedPoints, reference.points.size());
    size_t evaluated = 0;
    for (const DseShardReport &r : noop.shardReports)
        evaluated += r.evaluated;
    EXPECT_EQ(evaluated, 0u);
    expectIdenticalSweep(noop.points, reference.points);
    EXPECT_EQ(slurp(path), reference_journal);

    std::remove(path.c_str());
}

TEST(DseStressResume, JournalFromDifferentSpaceIsRejected)
{
    std::string path = ::testing::TempDir() + "dse_mismatch.jsonl";
    DseSweepOptions first;
    first.space = stressSpace(101);
    first.journalPath = path;
    runDseSweep(first);

    DseSweepOptions other;
    other.space = stressSpace(102); // different seed => different space
    other.journalPath = path;
    other.resume = true;
    EXPECT_THROW(runDseSweep(other), FatalError);
    std::remove(path.c_str());
}

} // namespace
} // namespace dpu
