/**
 * @file
 * Unit tests for the workload suite: sparse matrices, SpTRSV lowering,
 * PC generation, and the Table I twins.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dag/algorithms.hh"
#include "dag/eval.hh"
#include "workloads/pc_generator.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

TEST(SparseMatrix, FromTripletsSortsAndMerges)
{
    auto m = SparseMatrixCsr::fromTriplets(
        3, {{2, 1, 1.0}, {0, 0, 2.0}, {2, 1, 0.5}, {1, 0, -1.0},
            {1, 1, 3.0}});
    EXPECT_EQ(m.dim(), 3u);
    EXPECT_EQ(m.nnz(), 4u); // duplicate (2,1) merged
    EXPECT_DOUBLE_EQ(m.at(2, 1), 1.5);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
    EXPECT_TRUE(m.isLowerTriangular());
}

TEST(SparseMatrix, NotLowerTriangular)
{
    auto m = SparseMatrixCsr::fromTriplets(2, {{0, 1, 1.0}, {1, 1, 1.0}});
    EXPECT_FALSE(m.isLowerTriangular());
}

TEST(SparseMatrix, DependencyDepthOfChain)
{
    // Bidiagonal: every row depends on the previous one.
    std::vector<Triplet> t;
    for (uint32_t i = 0; i < 10; ++i) {
        t.push_back({i, i, 1.0});
        if (i)
            t.push_back({i, i - 1, 0.5});
    }
    auto m = SparseMatrixCsr::fromTriplets(10, t);
    EXPECT_EQ(m.dependencyDepth(), 10u);
}

TEST(SparseMatrix, DependencyDepthOfDiagonal)
{
    std::vector<Triplet> t;
    for (uint32_t i = 0; i < 10; ++i)
        t.push_back({i, i, 1.0});
    auto m = SparseMatrixCsr::fromTriplets(10, t);
    EXPECT_EQ(m.dependencyDepth(), 1u);
}

TEST(SparseMatrix, GeneratorHitsDepthExactly)
{
    LowerTriangularParams p;
    p.dim = 512;
    p.depthLevels = 32;
    p.avgOffDiagonal = 3.0;
    p.seed = 5;
    auto m = makeLowerTriangular(p);
    EXPECT_TRUE(m.isLowerTriangular());
    EXPECT_EQ(m.dependencyDepth(), 32u);
}

TEST(SparseMatrix, GeneratorNnzNearTarget)
{
    LowerTriangularParams p;
    p.dim = 2048;
    p.depthLevels = 64;
    p.avgOffDiagonal = 4.0;
    p.seed = 9;
    auto m = makeLowerTriangular(p);
    double off = static_cast<double>(m.nnz()) - p.dim;
    EXPECT_NEAR(off / p.dim, 4.0, 0.5);
}

TEST(SparseMatrix, MatrixMarketRoundTrip)
{
    LowerTriangularParams p;
    p.dim = 64;
    p.depthLevels = 8;
    p.seed = 2;
    auto m = makeLowerTriangular(p);
    std::stringstream ss;
    writeMatrixMarket(m, ss);
    auto back = readMatrixMarket(ss);
    ASSERT_EQ(back.dim(), m.dim());
    ASSERT_EQ(back.nnz(), m.nnz());
    for (uint32_t r = 0; r < m.dim(); ++r)
        for (size_t k = m.rowBegin(r); k < m.rowEnd(r); ++k)
            EXPECT_NEAR(back.at(r, m.colAt(k)), m.valueAt(k), 1e-9);
}

TEST(SparseMatrix, MatrixMarketRejectsGarbage)
{
    std::stringstream ss("not a matrix\n");
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(SparseMatrix, ForwardSubstitutionSolves)
{
    LowerTriangularParams p;
    p.dim = 128;
    p.depthLevels = 16;
    p.seed = 3;
    auto m = makeLowerTriangular(p);
    Rng rng(4);
    std::vector<double> b(m.dim());
    for (auto &x : b)
        x = rng.uniform() * 2 - 1;
    auto x = solveLowerTriangular(m, b);
    // Verify L x = b.
    for (uint32_t r = 0; r < m.dim(); ++r) {
        double acc = 0;
        for (size_t k = m.rowBegin(r); k < m.rowEnd(r); ++k)
            acc += m.valueAt(k) * x[m.colAt(k)];
        EXPECT_NEAR(acc, b[r], 1e-8) << "row " << r;
    }
}

TEST(SpTrsv, DagMatchesForwardSubstitution)
{
    LowerTriangularParams p;
    p.dim = 256;
    p.depthLevels = 24;
    p.avgOffDiagonal = 3.0;
    p.seed = 6;
    auto m = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(m);
    EXPECT_TRUE(lowered.dag.isBinary());

    Rng rng(7);
    std::vector<double> b(m.dim());
    for (auto &x : b)
        x = rng.uniform() * 2 - 1;

    auto ref = solveLowerTriangular(m, b);
    auto inputs = sptrsvInputValues(lowered, m, b);
    auto values = evaluate(lowered.dag, inputs);
    auto x = sptrsvSolution(lowered, values);
    ASSERT_EQ(x.size(), ref.size());
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-8 + 1e-6 * std::abs(ref[i]))
            << "row " << i;
}

TEST(SpTrsv, RhsChangeOnlyChangesInputs)
{
    // The static-DAG assumption: a new rhs reuses the same DAG.
    LowerTriangularParams p;
    p.dim = 64;
    p.depthLevels = 8;
    p.seed = 8;
    auto m = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(m);
    for (uint64_t trial = 0; trial < 3; ++trial) {
        Rng rng(100 + trial);
        std::vector<double> b(m.dim());
        for (auto &x : b)
            x = rng.uniform();
        auto ref = solveLowerTriangular(m, b);
        auto x = sptrsvSolution(
            lowered, evaluate(lowered.dag,
                              sptrsvInputValues(lowered, m, b)));
        for (size_t i = 0; i < x.size(); ++i)
            EXPECT_NEAR(x[i], ref[i], 1e-8 + 1e-6 * std::abs(ref[i]));
    }
}

TEST(PcGenerator, ExactCountsAndDepth)
{
    PcParams p;
    p.targetOperations = 5000;
    p.depth = 37;
    p.seed = 11;
    Dag d = generatePc(p);
    EXPECT_EQ(d.numOperations(), 5000u);
    EXPECT_EQ(longestPathLength(d), 37u);
    EXPECT_TRUE(d.isBinary());
}

TEST(PcGenerator, AlternatingOperators)
{
    PcParams p;
    p.targetOperations = 300;
    p.depth = 10;
    p.seed = 12;
    Dag d = generatePc(p);
    auto levels = asapLevels(d);
    for (NodeId id = 0; id < d.numNodes(); ++id) {
        const Node &n = d.node(id);
        if (n.isInput())
            continue;
        // Layer parity decides the operator (layer 1 = Mul).
        OpType expect =
            (levels[id] % 2 == 1) ? OpType::Mul : OpType::Add;
        EXPECT_EQ(n.op, expect) << "node " << id;
    }
}

TEST(PcGenerator, FewSinks)
{
    PcParams p;
    p.targetOperations = 4000;
    p.depth = 25;
    p.seed = 13;
    Dag d = generatePc(p);
    // The cover-unconsumed-first policy keeps spurious sinks rare
    // (under 10% of operations; learned PCs also have multiple roots
    // when compiled as multi-query circuits).
    EXPECT_LT(d.sinks().size(), d.numOperations() / 10);
}

TEST(PcGenerator, RandomDagIsWellFormed)
{
    Dag d = generateRandomDag(10, 500, 14);
    EXPECT_EQ(d.numOperations(), 500u);
    EXPECT_TRUE(d.isBinary());
    auto v = evaluate(d, std::vector<double>(10, 1.0));
    EXPECT_EQ(v.size(), d.numNodes());
}

TEST(PcGenerator, DefaultInputCountHasAFloorOfEight)
{
    // numInputs = 0 means max(8, targetOperations / 8): tiny circuits
    // keep a sane leaf pool (pins the documented floor behaviour).
    PcParams tiny;
    tiny.targetOperations = 16;
    tiny.depth = 4;
    tiny.seed = 15;
    EXPECT_EQ(generatePc(tiny).numInputs(), 8u);

    PcParams mid;
    mid.targetOperations = 160;
    mid.depth = 8;
    mid.seed = 16;
    EXPECT_EQ(generatePc(mid).numInputs(), 20u);

    PcParams pinned = tiny;
    pinned.numInputs = 3;
    EXPECT_EQ(generatePc(pinned).numInputs(), 3u);
}

class SuiteTwinTest : public ::testing::TestWithParam<WorkloadSpec>
{};

TEST_P(SuiteTwinTest, MatchesPaperStats)
{
    const WorkloadSpec &spec = GetParam();
    Dag d = buildWorkloadDag(spec);
    DagStats s = computeStats(d);
    double node_ratio = static_cast<double>(s.numOperations) /
                        static_cast<double>(spec.paperNodes);
    double path_ratio = static_cast<double>(s.longestPath) /
                        static_cast<double>(spec.paperLongestPath);
    EXPECT_GT(node_ratio, 0.9) << spec.name;
    EXPECT_LT(node_ratio, 1.1) << spec.name;
    EXPECT_GT(path_ratio, 0.85) << spec.name;
    EXPECT_LT(path_ratio, 1.15) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    SmallSuite, SuiteTwinTest, ::testing::ValuesIn(smallSuite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        return info.param.name;
    });

TEST(Suite, FindWorkloadByName)
{
    const auto &w = findWorkload("mnist");
    EXPECT_EQ(w.cls, WorkloadClass::Pc);
    EXPECT_THROW(findWorkload("nope"), FatalError);
}

TEST(Suite, ScaleReducesNodes)
{
    const auto &w = findWorkload("tretail");
    Dag full = buildWorkloadDag(w, 1.0);
    Dag half = buildWorkloadDag(w, 0.5);
    EXPECT_NEAR(static_cast<double>(half.numOperations()),
                static_cast<double>(full.numOperations()) / 2, 200);
}

TEST(Suite, LargeSuiteSpecsPresent)
{
    EXPECT_EQ(largePcSuite().size(), 4u);
    EXPECT_EQ(pcSuite().size(), 6u);
    EXPECT_EQ(sptrsvSuite().size(), 6u);
}

} // namespace
} // namespace dpu
