/**
 * @file
 * Unit tests for the workload suite: sparse matrices, SpTRSV lowering,
 * PC generation, and the Table I twins.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dag/algorithms.hh"
#include "dag/eval.hh"
#include "workloads/pc_generator.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

TEST(SparseMatrix, FromTripletsSortsAndMerges)
{
    auto m = SparseMatrixCsr::fromTriplets(
        3, {{2, 1, 1.0}, {0, 0, 2.0}, {2, 1, 0.5}, {1, 0, -1.0},
            {1, 1, 3.0}});
    EXPECT_EQ(m.dim(), 3u);
    EXPECT_EQ(m.nnz(), 4u); // duplicate (2,1) merged
    EXPECT_DOUBLE_EQ(m.at(2, 1), 1.5);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
    EXPECT_TRUE(m.isLowerTriangular());
}

TEST(SparseMatrix, NotLowerTriangular)
{
    auto m = SparseMatrixCsr::fromTriplets(2, {{0, 1, 1.0}, {1, 1, 1.0}});
    EXPECT_FALSE(m.isLowerTriangular());
}

TEST(SparseMatrix, DependencyDepthOfChain)
{
    // Bidiagonal: every row depends on the previous one.
    std::vector<Triplet> t;
    for (uint32_t i = 0; i < 10; ++i) {
        t.push_back({i, i, 1.0});
        if (i)
            t.push_back({i, i - 1, 0.5});
    }
    auto m = SparseMatrixCsr::fromTriplets(10, t);
    EXPECT_EQ(m.dependencyDepth(), 10u);
}

TEST(SparseMatrix, DependencyDepthOfDiagonal)
{
    std::vector<Triplet> t;
    for (uint32_t i = 0; i < 10; ++i)
        t.push_back({i, i, 1.0});
    auto m = SparseMatrixCsr::fromTriplets(10, t);
    EXPECT_EQ(m.dependencyDepth(), 1u);
}

TEST(SparseMatrix, GeneratorHitsDepthExactly)
{
    LowerTriangularParams p;
    p.dim = 512;
    p.depthLevels = 32;
    p.avgOffDiagonal = 3.0;
    p.seed = 5;
    auto m = makeLowerTriangular(p);
    EXPECT_TRUE(m.isLowerTriangular());
    EXPECT_EQ(m.dependencyDepth(), 32u);
}

TEST(SparseMatrix, GeneratorNnzNearTarget)
{
    LowerTriangularParams p;
    p.dim = 2048;
    p.depthLevels = 64;
    p.avgOffDiagonal = 4.0;
    p.seed = 9;
    auto m = makeLowerTriangular(p);
    double off = static_cast<double>(m.nnz()) - p.dim;
    EXPECT_NEAR(off / p.dim, 4.0, 0.5);
}

TEST(SparseMatrix, MatrixMarketRoundTrip)
{
    LowerTriangularParams p;
    p.dim = 64;
    p.depthLevels = 8;
    p.seed = 2;
    auto m = makeLowerTriangular(p);
    std::stringstream ss;
    writeMatrixMarket(m, ss);
    auto back = readMatrixMarket(ss);
    ASSERT_EQ(back.dim(), m.dim());
    ASSERT_EQ(back.nnz(), m.nnz());
    for (uint32_t r = 0; r < m.dim(); ++r)
        for (size_t k = m.rowBegin(r); k < m.rowEnd(r); ++k)
            EXPECT_NEAR(back.at(r, m.colAt(k)), m.valueAt(k), 1e-9);
}

TEST(SparseMatrix, MatrixMarketRejectsGarbage)
{
    std::stringstream ss("not a matrix\n");
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(SparseMatrix, MatrixMarketSymmetricMirrors)
{
    std::stringstream ss("%%MatrixMarket matrix coordinate real "
                         "symmetric\n"
                         "3 3 4\n"
                         "1 1 2.0\n2 2 2.0\n3 3 2.0\n3 1 -0.5\n");
    auto m = readMatrixMarket(ss);
    EXPECT_EQ(m.nnz(), 5u);
    EXPECT_DOUBLE_EQ(m.at(2, 0), -0.5);
    EXPECT_DOUBLE_EQ(m.at(0, 2), -0.5); // mirrored with +v
}

TEST(SparseMatrix, MatrixMarketSkewSymmetricNegatesMirror)
{
    // The old substring banner check classified skew-symmetric as
    // symmetric and mirrored with the wrong sign.
    std::stringstream ss("%%MatrixMarket matrix coordinate real "
                         "skew-symmetric\n"
                         "3 3 2\n"
                         "2 1 0.5\n3 2 -0.25\n");
    auto m = readMatrixMarket(ss);
    EXPECT_EQ(m.nnz(), 4u);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(m.at(0, 1), -0.5); // mirrored with -v
    EXPECT_DOUBLE_EQ(m.at(2, 1), -0.25);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 0.25);
}

TEST(SparseMatrix, MatrixMarketRejectsUnsupportedBanners)
{
    for (const char *banner :
         {"%%MatrixMarket matrix coordinate complex general\n",
          "%%MatrixMarket matrix coordinate real hermitian\n",
          "%%MatrixMarket matrix coordinate pattern general\n",
          "%%MatrixMarket matrix array real general\n",
          "%%MatrixMarket vector coordinate real general\n"}) {
        std::stringstream ss(std::string(banner) + "2 2 1\n1 1 1.0\n");
        EXPECT_THROW(readMatrixMarket(ss), FatalError) << banner;
    }
}

TEST(SparseMatrix, MatrixMarketAllowsBlankLines)
{
    // Real SuiteSparse files separate comments from the size line
    // with blank lines; the old skip loop stopped at the first one.
    std::stringstream ss("%%MatrixMarket matrix coordinate real "
                         "general\n"
                         "% a comment\n"
                         "\n"
                         "   \n"
                         "2 2 3\n"
                         "1 1 1.0\n2 1 0.5\n2 2 1.0\n");
    auto m = readMatrixMarket(ss);
    EXPECT_EQ(m.dim(), 2u);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 0.5);
}

TEST(SparseMatrix, MatrixMarketRejectsHugeEntriesHeader)
{
    // entries > rows*cols must fail before any multi-GB reserve.
    std::stringstream ss("%%MatrixMarket matrix coordinate real "
                         "general\n"
                         "4 4 1000000000000000000\n"
                         "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(SparseMatrix, MatrixMarketRejectsOversizedDimensions)
{
    // Dimensions past the uint32 index range used to be silently
    // truncated by a static_cast.
    std::stringstream ss("%%MatrixMarket matrix coordinate real "
                         "general\n"
                         "8589934592 8589934592 1\n"
                         "1 1 1.0\n");
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(SparseMatrix, MatrixMarketTruncatedEntriesFatal)
{
    std::stringstream ss("%%MatrixMarket matrix coordinate real "
                         "general\n"
                         "3 3 3\n"
                         "1 1 1.0\n2 2 1.0\n");
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(SparseMatrix, MatrixMarketIntegerFieldAccepted)
{
    std::stringstream ss("%%MatrixMarket matrix coordinate integer "
                         "general\n"
                         "2 2 2\n"
                         "1 1 3\n2 2 4\n");
    auto m = readMatrixMarket(ss);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
}

TEST(SparseMatrix, LowerTriangularFromKeepsLowerAndFixesDiagonal)
{
    // Full matrix with an upper entry, a zero diagonal and a missing
    // diagonal: the extraction drops the upper triangle and
    // substitutes unit diagonals.
    auto m = SparseMatrixCsr::fromTriplets(
        3, {{0, 0, 0.0}, {0, 2, 9.0}, {1, 0, -2.0}, {2, 1, 3.0},
            {2, 2, 4.0}});
    auto lower = lowerTriangularFrom(m);
    EXPECT_TRUE(lower.isLowerTriangular());
    EXPECT_DOUBLE_EQ(lower.at(0, 0), 1.0); // zero diag -> unit
    EXPECT_DOUBLE_EQ(lower.at(1, 1), 1.0); // missing diag -> unit
    EXPECT_DOUBLE_EQ(lower.at(2, 2), 4.0); // kept
    EXPECT_DOUBLE_EQ(lower.at(1, 0), -2.0);
    EXPECT_DOUBLE_EQ(lower.at(0, 2), 0.0); // upper dropped
}

TEST(SparseMatrix, GoldenFixturesLoadAndMirror)
{
    const std::string dir = DPU_DATA_DIR;
    auto chain = readMatrixMarketFile(dir + "/chain16.mtx");
    EXPECT_EQ(chain.dim(), 16u);
    EXPECT_EQ(chain.nnz(), 31u);
    EXPECT_TRUE(chain.isLowerTriangular());
    EXPECT_EQ(chain.dependencyDepth(), 16u);

    // Symmetric mirroring round-trip: write the mirrored matrix as
    // general and reread — identical entries.
    auto mesh = readMatrixMarketFile(dir + "/mesh33.mtx");
    EXPECT_EQ(mesh.dim(), 9u);
    EXPECT_EQ(mesh.nnz(), 33u); // 21 stored, 12 mirrored
    EXPECT_DOUBLE_EQ(mesh.at(0, 1), mesh.at(1, 0));
    std::stringstream ss;
    writeMatrixMarket(mesh, ss);
    auto back = readMatrixMarket(ss);
    ASSERT_EQ(back.nnz(), mesh.nnz());
    for (uint32_t r = 0; r < mesh.dim(); ++r)
        for (size_t k = mesh.rowBegin(r); k < mesh.rowEnd(r); ++k)
            EXPECT_NEAR(back.at(r, mesh.colAt(k)), mesh.valueAt(k),
                        1e-12);

    auto skew = readMatrixMarketFile(dir + "/skew7.mtx");
    EXPECT_EQ(skew.dim(), 7u);
    EXPECT_EQ(skew.nnz(), 16u); // 8 stored, 8 mirrored
    EXPECT_DOUBLE_EQ(skew.at(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(skew.at(0, 1), -0.5);
}

TEST(SparseMatrix, ReadMatrixMarketFileMissingFatal)
{
    EXPECT_THROW(readMatrixMarketFile("/nonexistent/nope.mtx"),
                 FatalError);
}

TEST(SparseMatrix, ForwardSubstitutionSolves)
{
    LowerTriangularParams p;
    p.dim = 128;
    p.depthLevels = 16;
    p.seed = 3;
    auto m = makeLowerTriangular(p);
    Rng rng(4);
    std::vector<double> b(m.dim());
    for (auto &x : b)
        x = rng.uniform() * 2 - 1;
    auto x = solveLowerTriangular(m, b);
    // Verify L x = b.
    for (uint32_t r = 0; r < m.dim(); ++r) {
        double acc = 0;
        for (size_t k = m.rowBegin(r); k < m.rowEnd(r); ++k)
            acc += m.valueAt(k) * x[m.colAt(k)];
        EXPECT_NEAR(acc, b[r], 1e-8) << "row " << r;
    }
}

TEST(SpTrsv, DagMatchesForwardSubstitution)
{
    LowerTriangularParams p;
    p.dim = 256;
    p.depthLevels = 24;
    p.avgOffDiagonal = 3.0;
    p.seed = 6;
    auto m = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(m);
    EXPECT_TRUE(lowered.dag.isBinary());

    Rng rng(7);
    std::vector<double> b(m.dim());
    for (auto &x : b)
        x = rng.uniform() * 2 - 1;

    auto ref = solveLowerTriangular(m, b);
    auto inputs = sptrsvInputValues(lowered, m, b);
    auto values = evaluate(lowered.dag, inputs);
    auto x = sptrsvSolution(lowered, values);
    ASSERT_EQ(x.size(), ref.size());
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-8 + 1e-6 * std::abs(ref[i]))
            << "row " << i;
}

TEST(SpTrsv, RhsChangeOnlyChangesInputs)
{
    // The static-DAG assumption: a new rhs reuses the same DAG.
    LowerTriangularParams p;
    p.dim = 64;
    p.depthLevels = 8;
    p.seed = 8;
    auto m = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(m);
    for (uint64_t trial = 0; trial < 3; ++trial) {
        Rng rng(100 + trial);
        std::vector<double> b(m.dim());
        for (auto &x : b)
            x = rng.uniform();
        auto ref = solveLowerTriangular(m, b);
        auto x = sptrsvSolution(
            lowered, evaluate(lowered.dag,
                              sptrsvInputValues(lowered, m, b)));
        for (size_t i = 0; i < x.size(); ++i)
            EXPECT_NEAR(x[i], ref[i], 1e-8 + 1e-6 * std::abs(ref[i]));
    }
}

TEST(PcGenerator, ExactCountsAndDepth)
{
    PcParams p;
    p.targetOperations = 5000;
    p.depth = 37;
    p.seed = 11;
    Dag d = generatePc(p);
    EXPECT_EQ(d.numOperations(), 5000u);
    EXPECT_EQ(longestPathLength(d), 37u);
    EXPECT_TRUE(d.isBinary());
}

TEST(PcGenerator, AlternatingOperators)
{
    PcParams p;
    p.targetOperations = 300;
    p.depth = 10;
    p.seed = 12;
    Dag d = generatePc(p);
    auto levels = asapLevels(d);
    for (NodeId id = 0; id < d.numNodes(); ++id) {
        const Node &n = d.node(id);
        if (n.isInput())
            continue;
        // Layer parity decides the operator (layer 1 = Mul).
        OpType expect =
            (levels[id] % 2 == 1) ? OpType::Mul : OpType::Add;
        EXPECT_EQ(n.op, expect) << "node " << id;
    }
}

TEST(PcGenerator, FewSinks)
{
    PcParams p;
    p.targetOperations = 4000;
    p.depth = 25;
    p.seed = 13;
    Dag d = generatePc(p);
    // The cover-unconsumed-first policy keeps spurious sinks rare
    // (under 10% of operations; learned PCs also have multiple roots
    // when compiled as multi-query circuits).
    EXPECT_LT(d.sinks().size(), d.numOperations() / 10);
}

TEST(PcGenerator, RandomDagIsWellFormed)
{
    Dag d = generateRandomDag(10, 500, 14);
    EXPECT_EQ(d.numOperations(), 500u);
    EXPECT_TRUE(d.isBinary());
    auto v = evaluate(d, std::vector<double>(10, 1.0));
    EXPECT_EQ(v.size(), d.numNodes());
}

TEST(PcGenerator, DefaultInputCountHasAFloorOfEight)
{
    // numInputs = 0 means max(8, targetOperations / 8): tiny circuits
    // keep a sane leaf pool (pins the documented floor behaviour).
    PcParams tiny;
    tiny.targetOperations = 16;
    tiny.depth = 4;
    tiny.seed = 15;
    EXPECT_EQ(generatePc(tiny).numInputs(), 8u);

    PcParams mid;
    mid.targetOperations = 160;
    mid.depth = 8;
    mid.seed = 16;
    EXPECT_EQ(generatePc(mid).numInputs(), 20u);

    PcParams pinned = tiny;
    pinned.numInputs = 3;
    EXPECT_EQ(generatePc(pinned).numInputs(), 3u);
}

class SuiteTwinTest : public ::testing::TestWithParam<WorkloadSpec>
{};

TEST_P(SuiteTwinTest, MatchesPaperStats)
{
    const WorkloadSpec &spec = GetParam();
    Dag d = buildWorkloadDag(spec);
    DagStats s = computeStats(d);
    double node_ratio = static_cast<double>(s.numOperations) /
                        static_cast<double>(spec.paperNodes);
    double path_ratio = static_cast<double>(s.longestPath) /
                        static_cast<double>(spec.paperLongestPath);
    EXPECT_GT(node_ratio, 0.9) << spec.name;
    EXPECT_LT(node_ratio, 1.1) << spec.name;
    EXPECT_GT(path_ratio, 0.85) << spec.name;
    EXPECT_LT(path_ratio, 1.15) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    SmallSuite, SuiteTwinTest, ::testing::ValuesIn(smallSuite()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        return info.param.name;
    });

TEST(Suite, FindWorkloadByName)
{
    const auto &w = findWorkload("mnist");
    EXPECT_EQ(w.cls, WorkloadClass::Pc);
    EXPECT_THROW(findWorkload("nope"), FatalError);
}

TEST(Suite, ScaleReducesNodes)
{
    const auto &w = findWorkload("tretail");
    Dag full = buildWorkloadDag(w, 1.0);
    Dag half = buildWorkloadDag(w, 0.5);
    EXPECT_NEAR(static_cast<double>(half.numOperations()),
                static_cast<double>(full.numOperations()) / 2, 200);
}

TEST(Suite, LargeSuiteSpecsPresent)
{
    EXPECT_EQ(largePcSuite().size(), 4u);
    EXPECT_EQ(pcSuite().size(), 6u);
    EXPECT_EQ(sptrsvSuite().size(), 6u);
}

TEST(Suite, MatrixWorkloadCarriesMeasuredStats)
{
    const std::string dir = DPU_DATA_DIR;
    WorkloadSpec spec = matrixWorkload(dir + "/chain16.mtx");
    EXPECT_EQ(spec.name, "chain16");
    EXPECT_EQ(spec.cls, WorkloadClass::SpTrsv);
    EXPECT_EQ(spec.matrixDim, 16u);
    EXPECT_FALSE(spec.matrixPath.empty());

    Dag d = buildWorkloadDag(spec); // scale ignored for file-backed
    DagStats s = computeStats(d);
    EXPECT_EQ(s.numOperations, spec.paperNodes);
    EXPECT_EQ(s.longestPath, spec.paperLongestPath);
}

TEST(Suite, FileBackedWorkloadSolvesCorrectly)
{
    const std::string dir = DPU_DATA_DIR;
    WorkloadSpec spec = matrixWorkload(dir + "/mesh33.mtx");
    SparseMatrixCsr lower = loadWorkloadMatrix(spec);
    EXPECT_TRUE(lower.isLowerTriangular());
    EXPECT_EQ(lower.dependencyDepth(), 5u);

    auto lowered = buildSpTrsvDag(lower);
    Rng rng(11);
    std::vector<double> b(lower.dim());
    for (auto &x : b)
        x = rng.uniform() * 2 - 1;
    auto ref = solveLowerTriangular(lower, b);
    auto x = sptrsvSolution(
        lowered,
        evaluate(lowered.dag, sptrsvInputValues(lowered, lower, b)));
    ASSERT_EQ(x.size(), ref.size());
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-8 + 1e-6 * std::abs(ref[i]));
}

TEST(Suite, DiscoverMatrixFilesSortedAndFiltered)
{
    auto found = discoverMatrixFiles(DPU_DATA_DIR);
    ASSERT_EQ(found.size(), 3u); // eval_table.json filtered out
    EXPECT_TRUE(std::is_sorted(found.begin(), found.end()));
    EXPECT_NE(found[0].find("chain16.mtx"), std::string::npos);
    EXPECT_TRUE(discoverMatrixFiles("/nonexistent/dir").empty());
}

TEST(SpTrsv, BatchInputsBitIdenticalToSingle)
{
    const std::string dir = DPU_DATA_DIR;
    SparseMatrixCsr lower = lowerTriangularFrom(
        readMatrixMarketFile(dir + "/skew7.mtx"));
    auto lowered = buildSpTrsvDag(lower);

    std::vector<std::vector<double>> rhs_batch;
    Rng rng(21);
    for (int b = 0; b < 5; ++b) {
        std::vector<double> rhs(lower.dim());
        for (auto &x : rhs)
            x = rng.uniform() * 2 - 1;
        rhs_batch.push_back(std::move(rhs));
    }
    auto batch = sptrsvBatchInputs(lowered, lower, rhs_batch);
    ASSERT_EQ(batch.size(), rhs_batch.size());
    for (size_t b = 0; b < rhs_batch.size(); ++b) {
        auto single =
            sptrsvInputValues(lowered, lower, rhs_batch[b]);
        ASSERT_EQ(batch[b].size(), single.size());
        for (size_t i = 0; i < single.size(); ++i)
            EXPECT_EQ(batch[b][i], single[i]) // bitwise, not NEAR
                << "rhs " << b << " input " << i;
    }
}

} // namespace
} // namespace dpu
