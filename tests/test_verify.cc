/**
 * @file
 * Tests for the static program verifier (compiler/verify.hh): one
 * golden-diagnostic test per code over hand-corrupted programs, the
 * VerifyError contract, and a sweep asserting the verifier is clean
 * on every suite workload across arch configs and thread counts.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "compiler/compiler.hh"
#include "compiler/verify.hh"
#include "support/logging.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

ArchConfig
cfgOf(uint32_t depth, uint32_t banks, uint32_t regs)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = regs;
    return c;
}

/** The hand-built test machine: one tree, one PE, two banks of two
 *  registers, two pipeline stages. Small enough that every corrupt
 *  program below is auditable by hand. */
ArchConfig
tinyCfg()
{
    return cfgOf(1, 2, 2);
}

/** Wrap instructions into a CompiledProgram whose CompileStats are
 *  exactly consistent, so only the deliberately planted corruption
 *  fires (and never a collateral V040). */
CompiledProgram
makeProgram(std::vector<Instruction> instrs, uint32_t num_rows = 2)
{
    CompiledProgram prog;
    prog.cfg = tinyCfg();
    prog.instructions = std::move(instrs);
    prog.numRows = num_rows;
    CompileStats &s = prog.stats;
    for (const Instruction &in : prog.instructions) {
        ++s.kindCount[static_cast<size_t>(kindOf(in))];
        if (const auto *ex = std::get_if<ExecInstr>(&in))
            for (PeOp op : ex->peOp)
                if (op == PeOp::Add || op == PeOp::Mul)
                    ++s.peOpsExecuted;
    }
    s.instructions = prog.instructions.size();
    s.cycles = s.instructions + prog.cfg.pipelineStages();
    s.nops = s.kindCount[static_cast<size_t>(InstrKind::Nop)];
    s.programBits = programSizeBits(prog.cfg, prog.instructions);
    s.dataBits = uint64_t(prog.numRows) * prog.cfg.banks * 32;
    return prog;
}

LoadInstr
load(uint32_t row, std::vector<bool> enable)
{
    LoadInstr in;
    in.memRow = row;
    in.enable = std::move(enable);
    return in;
}

StoreInstr
store(uint32_t row, std::vector<bool> enable,
      std::vector<uint16_t> addr)
{
    StoreInstr in;
    in.memRow = row;
    in.enable = std::move(enable);
    in.readAddr = std::move(addr);
    return in;
}

/** Exec on the tiny machine: one PE, selects/addresses per bank. */
ExecInstr
exec(PeOp op, std::vector<uint16_t> sel, std::vector<uint16_t> addr,
     std::vector<bool> rst, std::vector<bool> we)
{
    ExecInstr in;
    in.peOp = {op};
    in.inputSel = std::move(sel);
    in.readAddr = std::move(addr);
    in.validRst = std::move(rst);
    in.writeEnable = std::move(we);
    in.outputSel = {0, 0};
    return in;
}

/** The only diagnostic in the report, formatted. */
std::string
soleDiagnostic(const VerifyReport &report)
{
    EXPECT_EQ(report.diagnostics.size(), 1u) << report.toString(0);
    return report.diagnostics.empty()
               ? std::string()
               : report.diagnostics.front().format();
}

// ------------------------------------------------------------------ //
// A legal baseline, then one golden test per diagnostic code.        //
// ------------------------------------------------------------------ //

/** load both banks -> exec add (frees both, writes b0) -> store. */
std::vector<Instruction>
legalBaseline()
{
    return {
        load(0, {true, true}),
        NopInstr{},
        NopInstr{},
        exec(PeOp::Add, {0, 1}, {0, 0}, {true, true}, {true, false}),
        NopInstr{},
        NopInstr{},
        store(1, {true, false}, {0, 0}),
    };
}

TEST(Verify, LegalProgramIsClean)
{
    VerifyReport report = verifyProgram(makeProgram(legalBaseline()));
    EXPECT_TRUE(report.clean()) << report.toString(0);
    EXPECT_EQ(report.errorCount(), 0u);
    EXPECT_EQ(report.summary(), "0 error(s), 0 warning(s)");
}

TEST(Verify, V001UseBeforeDef)
{
    // An exec reading bank 0 of a fresh machine: nothing was written.
    VerifyReport report = verifyProgram(makeProgram({
        exec(PeOp::PassA, {0, 0}, {0, 0}, {false, false},
             {false, false}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 0: error V001-use-before-def: read of "
              "never-written register b0@0");
}

TEST(Verify, V002ReadAfterFree)
{
    // The store is b0@0's final read; the exec reads it afterwards.
    VerifyReport report = verifyProgram(makeProgram({
        load(0, {true, false}),
        NopInstr{},
        NopInstr{},
        store(1, {true, false}, {0, 0}),
        exec(PeOp::PassA, {0, 0}, {0, 0}, {false, false},
             {false, false}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 4: error V002-read-after-free: read of freed "
              "register b0@0");
}

TEST(Verify, V003BankDoubleWrite)
{
    // Both copy_4 slots land in bank 0: two writes, one write port.
    Copy4Instr copy;
    copy.slots[0] = {true, 0, 0, 0};
    copy.slots[1] = {true, 1, 0, 0};
    copy.validRst = {true, false};
    VerifyReport report = verifyProgram(makeProgram({
        load(0, {true, true}),
        NopInstr{},
        NopInstr{},
        copy,
        NopInstr{},
        NopInstr{},
        store(1, {true, true}, {0, 0}),
        store(1, {true, false}, {1, 0}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 3: error V003-bank-conflict: two copy_4 slots "
              "write bank 0 (one write per bank per cycle)");
}

TEST(Verify, V004RegisterFileOverflow)
{
    // Three loads into a two-register bank.
    VerifyReport report = verifyProgram(makeProgram({
        load(0, {true, false}),
        load(0, {true, false}),
        load(0, {true, false}),
        store(1, {true, false}, {0, 0}),
        store(1, {true, false}, {1, 0}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 2: error V004-regfile-overflow: write to full "
              "bank 0 (occupancy would exceed R=2)");
}

TEST(Verify, V005RegisterLeak)
{
    // A load whose register is never freed by a last read.
    VerifyReport report = verifyProgram(makeProgram({
        load(0, {true, false}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "program: error V005-register-leak: bank 0 ends with 1 "
              "register(s) still valid (never freed)");
}

TEST(Verify, V006DoubleFree)
{
    // valid_rst on bank 1, which this exec does not read.
    VerifyReport report = verifyProgram(makeProgram({
        load(0, {true, true}),
        NopInstr{},
        NopInstr{},
        exec(PeOp::PassA, {0, 0}, {0, 0}, {true, true},
             {false, false}),
        store(1, {false, true}, {0, 0}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 3: error V006-double-free: exec valid_rst on "
              "bank 1 which this exec does not read (frees nothing)");
}

TEST(Verify, V010RowOutOfBounds)
{
    VerifyReport report = verifyProgram(makeProgram({
        load(7, {false, false}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 0: error V010-row-out-of-bounds: load of row 7 "
              "outside the 2 data-memory rows this program uses");
}

TEST(Verify, V011IoLocationOutOfBounds)
{
    CompiledProgram prog = makeProgram(legalBaseline());
    prog.inputLocation.push_back({5, 0});
    VerifyReport report = verifyProgram(prog);
    EXPECT_EQ(soleDiagnostic(report),
              "program: error V011-io-location-out-of-bounds: input 0 "
              "at (5, 0) outside data memory (2 rows x 2 cols)");
}

TEST(Verify, V011RowsAboveDataMemIsAWarning)
{
    // Using more rows than the configured data memory is suspicious
    // (the workload will not fit on the real machine) but the program
    // itself is legal — a warning, not an error.
    CompiledProgram prog = makeProgram({}, /*num_rows=*/4097);
    VerifyReport report = verifyProgram(prog);
    ASSERT_EQ(report.diagnostics.size(), 1u) << report.toString(0);
    EXPECT_EQ(report.diagnostics[0].severity, VerifySeverity::Warning);
    EXPECT_EQ(report.errorCount(), 0u);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.diagnostics[0].format(),
              "program: warning V011-io-location-out-of-bounds: "
              "program uses 4097 data-memory rows but the "
              "configuration provides 4096");
}

TEST(Verify, V020SelectOutOfBounds)
{
    VerifyReport report = verifyProgram(makeProgram({
        exec(PeOp::PassA, {5, 0}, {0, 0}, {false, false},
             {false, false}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 0: error V020-select-out-of-bounds: crossbar "
              "select 5 on port 0 of 2 banks");
}

TEST(Verify, V022MalformedInstruction)
{
    VerifyReport report = verifyProgram(makeProgram({
        load(0, {true}), // one enable lane on a two-bank machine
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 0: error V022-malformed-instruction: load enable "
              "has 1 lanes for 2 banks");
}

TEST(Verify, V030PipelineHazard)
{
    // The load's data is in flight for 2 cycles; the exec reads at 1.
    VerifyReport report = verifyProgram(makeProgram({
        load(0, {true, false}),
        exec(PeOp::PassA, {0, 0}, {0, 0}, {true, false},
             {false, false}),
    }));
    EXPECT_EQ(soleDiagnostic(report),
              "instr 1: error V030-pipeline-hazard: read of register "
              "b0@0 while its data is in flight until cycle 2");
}

TEST(Verify, V040StatsMismatch)
{
    CompiledProgram prog = makeProgram(legalBaseline());
    prog.stats.instructions += 1;
    VerifyReport report = verifyProgram(prog);
    EXPECT_EQ(soleDiagnostic(report),
              "program: error V040-stats-mismatch: "
              "stats.instructions claims 8 but the program has 7");
}

TEST(Verify, IllegalConfigIsASingleDiagnosticNotACrash)
{
    // A corrupt spill image can carry garbage configs; the verifier
    // must diagnose, never assert.
    CompiledProgram prog = makeProgram(legalBaseline());
    prog.cfg.banks = 3; // not a power of two
    VerifyReport report = verifyProgram(prog);
    ASSERT_EQ(report.diagnostics.size(), 1u) << report.toString(0);
    EXPECT_EQ(report.diagnostics[0].code,
              VerifyCode::MalformedInstruction);
    EXPECT_EQ(report.diagnostics[0].instrIndex, kVerifyNoInstr);
}

// ------------------------------------------------------------------ //
// IR-level pass.                                                     //
// ------------------------------------------------------------------ //

/** Minimal IR: one instance in bank 0, loaded then stored. */
IrProgram
tinyIr()
{
    IrProgram ir;
    ir.instances.push_back({invalidNode, 0, static_cast<uint32_t>(-1)});
    ir.inputRows = 1;
    ir.outputRows = 1;

    IrInstr ld;
    ld.kind = InstrKind::Load;
    ld.memRow = 0;
    ld.writes.push_back({0});
    ir.instrs.push_back(ld);

    IrInstr st;
    st.kind = InstrKind::Store;
    st.memRow = 1;
    st.reads.push_back({0, true});
    ir.instrs.push_back(st);
    return ir;
}

TEST(VerifyIr, CleanWithoutHazardResolution)
{
    // Pre-reorder IR: the store reads 1 cycle after the load's write
    // (latency 2) — a hazard, but not diagnosed until resolved.
    VerifyReport report = verifyIr(tinyIr(), tinyCfg());
    EXPECT_TRUE(report.clean()) << report.toString(0);
}

TEST(VerifyIr, V030AfterHazardResolution)
{
    VerifyIrOptions opt;
    opt.hazardsResolved = true;
    VerifyReport report = verifyIr(tinyIr(), tinyCfg(), opt);
    EXPECT_EQ(soleDiagnostic(report),
              "instr 1: error V030-pipeline-hazard: read of instance "
              "#0 while its data is in flight until t=2");
}

TEST(VerifyIr, V007DoubleWrite)
{
    IrProgram ir = tinyIr();
    IrInstr ld2 = ir.instrs[0];
    ir.instrs.insert(ir.instrs.begin() + 1, ld2);
    VerifyReport report = verifyIr(ir, tinyCfg());
    EXPECT_EQ(soleDiagnostic(report),
              "instr 1: error V007-double-write: instance #0 is "
              "written twice (instances are single-assignment)");
}

TEST(VerifyIr, V021BlockOutOfBounds)
{
    IrProgram ir;
    ir.inputRows = 1;
    IrInstr ex;
    ex.kind = InstrKind::Exec;
    ex.blockId = 5;
    ex.inputSel = {0, 0};
    ir.instrs.push_back(ex);

    VerifyIrOptions opt;
    opt.numBlocks = 2;
    VerifyReport report = verifyIr(ir, tinyCfg(), opt);
    EXPECT_EQ(soleDiagnostic(report),
              "instr 0: error V021-block-out-of-bounds: exec "
              "references block 5 of 2");
}

TEST(VerifyIr, V005UnfreedInstanceLeaks)
{
    IrProgram ir = tinyIr();
    ir.instrs.pop_back(); // drop the store: never freed
    VerifyReport report = verifyIr(ir, tinyCfg());
    ASSERT_EQ(report.diagnostics.size(), 1u) << report.toString(0);
    EXPECT_EQ(report.diagnostics[0].code, VerifyCode::RegisterLeak);
}

// ------------------------------------------------------------------ //
// Report / error plumbing.                                           //
// ------------------------------------------------------------------ //

TEST(Verify, ThrowIfVerifyErrorsContract)
{
    VerifyReport clean;
    EXPECT_NO_THROW(throwIfVerifyErrors(clean, "codegen"));

    VerifyReport warn_only;
    warn_only.diagnostics.push_back({VerifySeverity::Warning,
                                     VerifyCode::IoLocOutOfBounds,
                                     kVerifyNoInstr, "w"});
    EXPECT_NO_THROW(throwIfVerifyErrors(warn_only, "codegen"));

    VerifyReport bad;
    bad.diagnostics.push_back({VerifySeverity::Error,
                               VerifyCode::UseBeforeDef, 3, "boom"});
    try {
        throwIfVerifyErrors(bad, "schedule");
        FAIL() << "expected VerifyError";
    } catch (const VerifyError &e) {
        EXPECT_EQ(e.stage(), "schedule");
        ASSERT_EQ(e.report().diagnostics.size(), 1u);
        EXPECT_NE(std::string(e.what()).find("V001-use-before-def"),
                  std::string::npos);
    }
}

TEST(Verify, VerifyErrorIsAPanicNotAFatal)
{
    // DSE sweeps swallow FatalError as "design infeasible"; a
    // verifier failure is a compiler bug and must never be swallowed.
    static_assert(std::is_base_of_v<PanicError, VerifyError>);
    static_assert(!std::is_base_of_v<FatalError, VerifyError>);
}

TEST(Verify, CodeNamesAreStable)
{
    EXPECT_STREQ(verifyCodeName(VerifyCode::UseBeforeDef),
                 "V001-use-before-def");
    EXPECT_STREQ(verifyCodeName(VerifyCode::ReadAfterFree),
                 "V002-read-after-free");
    EXPECT_STREQ(verifyCodeName(VerifyCode::BankConflict),
                 "V003-bank-conflict");
    EXPECT_STREQ(verifyCodeName(VerifyCode::RegFileOverflow),
                 "V004-regfile-overflow");
    EXPECT_STREQ(verifyCodeName(VerifyCode::RegisterLeak),
                 "V005-register-leak");
    EXPECT_STREQ(verifyCodeName(VerifyCode::DoubleFree),
                 "V006-double-free");
    EXPECT_STREQ(verifyCodeName(VerifyCode::DoubleWrite),
                 "V007-double-write");
    EXPECT_STREQ(verifyCodeName(VerifyCode::RowOutOfBounds),
                 "V010-row-out-of-bounds");
    EXPECT_STREQ(verifyCodeName(VerifyCode::IoLocOutOfBounds),
                 "V011-io-location-out-of-bounds");
    EXPECT_STREQ(verifyCodeName(VerifyCode::SelectOutOfBounds),
                 "V020-select-out-of-bounds");
    EXPECT_STREQ(verifyCodeName(VerifyCode::BlockOutOfBounds),
                 "V021-block-out-of-bounds");
    EXPECT_STREQ(verifyCodeName(VerifyCode::MalformedInstruction),
                 "V022-malformed-instruction");
    EXPECT_STREQ(verifyCodeName(VerifyCode::PipelineHazard),
                 "V030-pipeline-hazard");
    EXPECT_STREQ(verifyCodeName(VerifyCode::StatsMismatch),
                 "V040-stats-mismatch");
}

TEST(Verify, ReportTruncatesAtTheCap)
{
    // 300 never-written reads: the cap (256) stops recording but the
    // replay (and the truncated marker) keep going.
    std::vector<Instruction> instrs(
        300, exec(PeOp::PassA, {0, 0}, {0, 0}, {false, false},
                  {false, false}));
    VerifyReport report = verifyProgram(makeProgram(std::move(instrs)));
    EXPECT_TRUE(report.truncated);
    EXPECT_EQ(report.diagnostics.size(), 256u);
    EXPECT_NE(report.summary().find("truncated"), std::string::npos);
}

// ------------------------------------------------------------------ //
// The whole workload suite verifies clean.                           //
// ------------------------------------------------------------------ //

TEST(VerifySweep, SuiteIsCleanAcrossConfigsAndThreads)
{
    const double scale = 0.05;
    const std::vector<ArchConfig> cfgs = {minEdpConfig(),
                                          cfgOf(2, 16, 8)};
    for (const WorkloadSpec &spec : smallSuite()) {
        for (const ArchConfig &cfg : cfgs) {
            for (uint32_t threads : {1u, 3u}) {
                CompileOptions opt;
                opt.verify = true; // throws VerifyError on any issue
                opt.threads = threads;
                opt.partitionNodes = threads > 1 ? 400 : 0;
                CompiledProgram prog =
                    compileWorkload(spec, scale, cfg, opt);
                VerifyReport report = verifyProgram(prog);
                EXPECT_EQ(report.errorCount(), 0u)
                    << spec.name << " @ " << cfg.label() << " t"
                    << threads << ": " << report.toString();
            }
        }
    }
}

} // namespace
} // namespace dpu
