/**
 * @file
 * Unit tests for compilation step 1: block decomposition.
 */

#include <gtest/gtest.h>

#include "compiler/blocks.hh"
#include "compiler/partitioner.hh"
#include "dag/algorithms.hh"
#include "dag/binarize.hh"
#include "workloads/pc_generator.hh"

namespace dpu {
namespace {

ArchConfig
smallConfig(uint32_t depth = 3, uint32_t banks = 16)
{
    ArchConfig c;
    c.depth = depth;
    c.banks = banks;
    c.regsPerBank = 32;
    return c;
}

TEST(Blocks, ChainDecomposesAndValidates)
{
    Dag d;
    NodeId prev = d.addInput();
    NodeId other = d.addInput();
    for (int i = 0; i < 20; ++i)
        prev = d.addNode(OpType::Add, {prev, other});
    ArchConfig cfg = smallConfig();
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    // A pure chain cannot pack more than D nodes per block.
    EXPECT_GE(dec.blocks.size(), 20u / cfg.depth);
}

TEST(Blocks, SingleNodeDag)
{
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    d.addNode(OpType::Mul, {a, b});
    ArchConfig cfg = smallConfig();
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    ASSERT_EQ(dec.blocks.size(), 1u);
    EXPECT_EQ(dec.blocks[0].subgraphs.size(), 1u);
}

TEST(Blocks, DeepConeFillsTree)
{
    // A complete binary reduction over 8 inputs fits one D=3 tree.
    Dag d;
    std::vector<NodeId> vals;
    for (int i = 0; i < 8; ++i)
        vals.push_back(d.addInput());
    while (vals.size() > 1) {
        std::vector<NodeId> next;
        for (size_t i = 0; i + 1 < vals.size(); i += 2)
            next.push_back(d.addNode(OpType::Add, {vals[i], vals[i + 1]}));
        vals = std::move(next);
    }
    ArchConfig cfg = smallConfig(3, 8); // exactly one tree
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    EXPECT_EQ(dec.blocks.size(), 1u);
    EXPECT_EQ(dec.blocks[0].subgraphs[0].depth, 3u);
    // All 7 PEs perform arithmetic.
    uint32_t active = 0;
    for (PeOp op : dec.blocks[0].peOps)
        if (op == PeOp::Add || op == PeOp::Mul)
            ++active;
    EXPECT_EQ(active, 7u);
}

TEST(Blocks, ReplicationHandlesSharedNodes)
{
    // fig. 9(c): x feeds two paths inside one cone.
    Dag d;
    NodeId i1 = d.addInput();
    NodeId i2 = d.addInput();
    NodeId x = d.addNode(OpType::Add, {i1, i2});
    NodeId y = d.addNode(OpType::Mul, {x, i1});
    d.addNode(OpType::Add, {x, y});
    ArchConfig cfg = smallConfig(3, 8);
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    ASSERT_EQ(dec.blocks.size(), 1u);
    // x is replicated: placed on more than one PE.
    EXPECT_GE(dec.blocks[0].placements.at(x).size(), 2u);
}

TEST(Blocks, PassThroughForDeepRegisterOperands)
{
    // A chain whose upper nodes mix register operands with tree
    // operands forces pass-through PEs.
    Dag d;
    NodeId a = d.addInput();
    NodeId b = d.addInput();
    NodeId s = d.addNode(OpType::Add, {a, b});
    NodeId t = d.addNode(OpType::Mul, {s, a});
    d.addNode(OpType::Add, {t, b});
    ArchConfig cfg = smallConfig(3, 8);
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    ASSERT_EQ(dec.blocks.size(), 1u);
    bool has_pass = false;
    for (PeOp op : dec.blocks[0].peOps)
        if (op == PeOp::PassA || op == PeOp::PassB)
            has_pass = true;
    EXPECT_TRUE(has_pass);
}

TEST(Blocks, IoMarksMatchConsumers)
{
    Dag d = generateRandomDag(12, 300, 5);
    ArchConfig cfg = smallConfig();
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    for (NodeId v = 0; v < d.numNodes(); ++v) {
        if (d.node(v).isInput()) {
            EXPECT_TRUE(dec.isIo[v]);
            continue;
        }
        bool crosses = d.successors(v).empty();
        for (NodeId s : d.successors(v))
            if (dec.blockOf[s] != dec.blockOf[v])
                crosses = true;
        EXPECT_EQ(dec.isIo[v], crosses) << "node " << v;
    }
}

TEST(Blocks, BlockInputsAreIoOrInputs)
{
    Dag d = generateRandomDag(10, 400, 6);
    ArchConfig cfg = smallConfig(2, 16);
    auto dec = decomposeIntoBlocks(d, cfg);
    for (const Block &b : dec.blocks)
        for (NodeId v : b.inputs)
            EXPECT_TRUE(dec.isIo[v]);
}

TEST(Blocks, UtilizationBeatsOneNodePerBlock)
{
    PcParams p;
    p.targetOperations = 2000;
    p.depth = 20;
    p.seed = 9;
    Dag d = generatePc(p);
    ArchConfig cfg = smallConfig(3, 64);
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    double nodes_per_block =
        static_cast<double>(d.numOperations()) /
        static_cast<double>(dec.blocks.size());
    // 64 banks = 8 trees x 7 PEs; a sane packing squeezes well over
    // one node per exec.
    EXPECT_GT(nodes_per_block, 4.0);
}

TEST(Blocks, RespectsTreeCount)
{
    Dag d = generateRandomDag(16, 500, 7);
    ArchConfig cfg = smallConfig(1, 8); // 8 trees of a single PE
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
    for (const Block &b : dec.blocks) {
        EXPECT_LE(b.subgraphs.size(), 8u);
        for (const Subgraph &sg : b.subgraphs)
            EXPECT_EQ(sg.depth, 1u);
    }
}

TEST(Blocks, PartitionedDecompositionRespectsRanges)
{
    Dag raw = generateRandomDag(16, 2000, 8);
    auto bin = binarize(raw);
    auto parts = partitionByCount(bin.dag, 500);
    EXPECT_GE(parts.size(), 4u);

    ArchConfig cfg = smallConfig();
    auto dec = decomposeIntoBlocks(bin.dag, cfg, 1, parts);
    validateDecomposition(bin.dag, cfg, dec);

    // Blocks must not mix partitions, and partition order must be
    // monotone over the block sequence.
    uint32_t last_part = 0;
    auto part_of = [&](NodeId v) {
        for (uint32_t p = 0; p < parts.size(); ++p)
            if (v >= parts[p].first && v < parts[p].second)
                return p;
        return static_cast<uint32_t>(parts.size());
    };
    for (const Block &b : dec.blocks) {
        uint32_t p = part_of(b.subgraphs[0].sink);
        for (const Subgraph &sg : b.subgraphs)
            for (NodeId v : sg.nodes)
                EXPECT_EQ(part_of(v), p);
        EXPECT_GE(p, last_part);
        last_part = p;
    }
}

TEST(Partitioner, EmptyDagYieldsNoRanges)
{
    Dag d;
    EXPECT_TRUE(partitionByCount(d, 5).empty());
}

TEST(Partitioner, InputOnlyDagYieldsNoRanges)
{
    // Regression: this used to return one compute-free range.
    Dag d;
    for (int i = 0; i < 6; ++i)
        d.addInput();
    EXPECT_TRUE(partitionByCount(d, 5).empty());
}

TEST(Partitioner, ExactMultipleSplitHasNoRuntRange)
{
    // 10 compute nodes at max 5: exactly two ranges of 5 each.
    Dag d;
    NodeId a = d.addInput();
    NodeId prev = d.addInput();
    for (int i = 0; i < 10; ++i)
        prev = d.addNode(OpType::Add, {prev, a});
    auto parts = partitionByCount(d, 5);
    ASSERT_EQ(parts.size(), 2u);
    for (auto [lo, hi] : parts) {
        size_t compute = 0;
        for (NodeId v = lo; v < hi; ++v)
            if (!d.node(v).isInput())
                ++compute;
        EXPECT_EQ(compute, 5u);
    }
    EXPECT_EQ(parts.front().first, 0u);
    EXPECT_EQ(parts.back().second, d.numNodes());
}

TEST(Partitioner, InputOnlyTailMergesIntoLastRange)
{
    // Regression: a split landing exactly on the last compute node
    // with trailing inputs must not strand those inputs in a
    // compute-free range (they would lose their bank owner in the
    // partition-parallel pipeline).
    Dag d;
    NodeId a = d.addInput();
    NodeId prev = d.addInput();
    for (int i = 0; i < 10; ++i)
        prev = d.addNode(OpType::Add, {prev, a});
    d.addInput();
    d.addInput();
    auto parts = partitionByCount(d, 5);
    ASSERT_FALSE(parts.empty());
    EXPECT_EQ(parts.back().second, d.numNodes());
    for (size_t i = 1; i < parts.size(); ++i)
        EXPECT_EQ(parts[i].first, parts[i - 1].second);
    for (auto [lo, hi] : parts) {
        size_t compute = 0;
        for (NodeId v = lo; v < hi; ++v)
            if (!d.node(v).isInput())
                ++compute;
        EXPECT_GE(compute, 1u);
        EXPECT_LE(compute, 5u);
    }
}

TEST(Partitioner, CountsAndCoverage)
{
    Dag d = generateRandomDag(10, 1000, 9);
    auto parts = partitionByCount(d, 256);
    EXPECT_EQ(parts.front().first, 0u);
    EXPECT_EQ(parts.back().second, d.numNodes());
    for (size_t i = 1; i < parts.size(); ++i)
        EXPECT_EQ(parts[i].first, parts[i - 1].second);
    // Each range holds at most 256 compute nodes.
    for (auto [lo, hi] : parts) {
        size_t count = 0;
        for (NodeId v = lo; v < hi; ++v)
            if (!d.node(v).isInput())
                ++count;
        EXPECT_LE(count, 256u);
    }
    EXPECT_GT(countCrossEdges(d, parts), 0u);
}

class BlocksConfigTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{};

TEST_P(BlocksConfigTest, ValidatesOnRandomDag)
{
    auto [depth, banks] = GetParam();
    if (banks < (1u << depth))
        GTEST_SKIP() << "infeasible configuration";
    Dag d = generateRandomDag(20, 600, depth * 131 + banks);
    ArchConfig cfg = smallConfig(depth, banks);
    auto dec = decomposeIntoBlocks(d, cfg);
    validateDecomposition(d, cfg, dec);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlocksConfigTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(8u, 16u, 32u, 64u)));

} // namespace
} // namespace dpu
