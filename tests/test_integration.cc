/**
 * @file
 * End-to-end property tests: for arbitrary DAGs and arbitrary
 * architecture configurations, compile + simulate must reproduce the
 * golden evaluator exactly, with zero hazards and no register leaks
 * (all enforced inside the simulator).
 *
 * This is the repository's core correctness argument: the simulator
 * panics on any pipeline hazard, bank overflow, invalid read, mux
 * misroute, or functional mismatch, so a green sweep means the whole
 * compiler pipeline is sound for that configuration.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "compiler/compiler.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/sparse_matrix.hh"
#include "workloads/sptrsv.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

std::vector<double>
randomInputs(const Dag &d, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> v(d.numInputs());
    for (auto &x : v)
        x = 0.5 + rng.uniform();
    return v;
}

/** (D, B, R, output interconnect) sweep axis. */
using ConfigParam =
    std::tuple<uint32_t, uint32_t, uint32_t, OutputInterconnect>;

class EndToEnd : public ::testing::TestWithParam<ConfigParam>
{
  protected:
    ArchConfig
    config() const
    {
        auto [d, b, r, net] = GetParam();
        ArchConfig c;
        c.depth = d;
        c.banks = b;
        c.regsPerBank = r;
        c.outputNet = net;
        return c;
    }
};

TEST_P(EndToEnd, RandomDagMatchesReference)
{
    ArchConfig cfg = config();
    if (cfg.banks < (1u << cfg.depth))
        GTEST_SKIP() << "infeasible configuration";
    uint64_t seed = cfg.depth * 1000 + cfg.banks * 10 + cfg.regsPerBank;
    Dag d = generateRandomDag(24, 700, seed);
    CompileOptions opt;
    opt.validate = true;
    opt.seed = seed;
    auto prog = compile(d, cfg, opt);
    runAndCheck(prog, d, randomInputs(d, seed + 1));
}

TEST_P(EndToEnd, PcMatchesReference)
{
    ArchConfig cfg = config();
    if (cfg.banks < (1u << cfg.depth))
        GTEST_SKIP() << "infeasible configuration";
    PcParams p;
    p.targetOperations = 1500;
    p.depth = 18;
    p.seed = cfg.banks + cfg.depth;
    Dag d = generatePc(p);
    CompileOptions opt;
    opt.validate = true;
    auto prog = compile(d, cfg, opt);
    runAndCheck(prog, d, randomInputs(d, 5));
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, EndToEnd,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 3u),
        ::testing::Values(8u, 16u, 32u, 64u),
        ::testing::Values(16u, 32u),
        ::testing::Values(OutputInterconnect::PerLayerSubtree)),
    [](const ::testing::TestParamInfo<ConfigParam> &info) {
        // Built with += (not literal + string&&): that form trips
        // GCC 12's bogus -Wrestrict diagnostic (GCC PR 105329).
        std::string s = "D";
        s += std::to_string(std::get<0>(info.param));
        s += "_B";
        s += std::to_string(std::get<1>(info.param));
        s += "_R";
        s += std::to_string(std::get<2>(info.param));
        return s;
    });

INSTANTIATE_TEST_SUITE_P(
    InterconnectSweep, EndToEnd,
    ::testing::Combine(
        ::testing::Values(2u, 3u),
        ::testing::Values(16u, 32u),
        ::testing::Values(32u),
        ::testing::Values(OutputInterconnect::Crossbar,
                          OutputInterconnect::OnePerPe)),
    [](const ::testing::TestParamInfo<ConfigParam> &info) {
        bool xbar =
            std::get<3>(info.param) == OutputInterconnect::Crossbar;
        std::string s = xbar ? "xbar" : "oneperpe";
        s += "_D";
        s += std::to_string(std::get<0>(info.param));
        s += "_B";
        s += std::to_string(std::get<1>(info.param));
        return s;
    });

TEST(EndToEndSeeds, ManyRandomDagsOnMinEdp)
{
    ArchConfig cfg = minEdpConfig();
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Dag d = generateRandomDag(16 + seed, 300 + 40 * seed, seed);
        CompileOptions opt;
        opt.validate = true;
        opt.seed = seed;
        auto prog = compile(d, cfg, opt);
        runAndCheck(prog, d, randomInputs(d, seed * 3 + 1));
    }
}

TEST(EndToEndSeeds, SpillHeavySweep)
{
    // Tiny register files force heavy spilling on every seed.
    ArchConfig cfg;
    cfg.depth = 2;
    cfg.banks = 8;
    cfg.regsPerBank = 6;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        Dag d = generateRandomDag(32, 800, 100 + seed);
        CompileOptions opt;
        opt.validate = true;
        auto prog = compile(d, cfg, opt);
        EXPECT_GT(prog.stats.spillStores, 0u) << "seed " << seed;
        runAndCheck(prog, d, randomInputs(d, seed));
    }
}

TEST(EndToEndSeeds, RandomBankPolicyStaysCorrect)
{
    // The random mapper is slower (more copies) but must be correct.
    ArchConfig cfg;
    cfg.depth = 3;
    cfg.banks = 16;
    cfg.regsPerBank = 64;
    Dag d = generateRandomDag(24, 600, 77);
    CompileOptions opt;
    opt.bankPolicy = BankPolicy::Random;
    opt.validate = true;
    auto prog = compile(d, cfg, opt);
    runAndCheck(prog, d, randomInputs(d, 78));
}

TEST(EndToEndWorkloads, SmallSuiteScaledDown)
{
    // Every named workload (scaled to ~8%) through the whole stack.
    ArchConfig cfg = minEdpConfig();
    for (const auto &spec : smallSuite()) {
        Dag d = buildWorkloadDag(spec, 0.08);
        CompileOptions opt;
        opt.validate = true;
        auto prog = compile(d, cfg, opt);
        runAndCheck(prog, d, randomInputs(d, spec.seed));
    }
}

TEST(EndToEndWorkloads, SptrsvSolutionIsCorrect)
{
    LowerTriangularParams p;
    p.dim = 300;
    p.depthLevels = 25;
    p.avgOffDiagonal = 4.0;
    p.seed = 80;
    auto m = makeLowerTriangular(p);
    auto lowered = buildSpTrsvDag(m);
    auto prog = compile(lowered.dag, minEdpConfig());

    Rng rng(81);
    std::vector<double> b(m.dim());
    for (auto &x : b)
        x = rng.uniform() * 2 - 1;
    auto inputs = sptrsvInputValues(lowered, m, b);
    runAndCheck(prog, lowered.dag, inputs);
}

} // namespace
} // namespace dpu
