/**
 * @file
 * Tests for the baseline platform models and the spatial probes.
 */

#include <gtest/gtest.h>

#include "baselines/baselines.hh"
#include "compiler/spatial.hh"
#include "dag/binarize.hh"
#include "support/rng.hh"
#include "workloads/pc_generator.hh"
#include "workloads/suite.hh"

namespace dpu {
namespace {

Dag
mediumPc(uint64_t seed = 7)
{
    PcParams p;
    p.targetOperations = 20000;
    p.depth = 30;
    p.seed = seed;
    return generatePc(p);
}

TEST(CpuModel, ThroughputInCalibratedBand)
{
    // Calibrated relative to our DPU-v2 absolute scale (DESIGN.md):
    // small workloads land around 0.4-1.0 GOPS.
    for (const auto &spec : smallSuite()) {
        Dag d = binarize(buildWorkloadDag(spec, 0.5)).dag;
        auto r = runCpuModel(d);
        EXPECT_GT(r.throughputGops, 0.2) << spec.name;
        EXPECT_LT(r.throughputGops, 1.5) << spec.name;
        EXPECT_DOUBLE_EQ(r.powerWatts, 55);
    }
}

TEST(CpuModel, MoreCoresHelpOnWideDags)
{
    Dag d = binarize(mediumPc()).dag;
    CpuModelParams one;
    one.cores = 1;
    CpuModelParams many;
    many.cores = 18;
    EXPECT_GT(runCpuModel(d, many).throughputGops,
              runCpuModel(d, one).throughputGops * 4);
}

TEST(CpuModel, SyncDominatesDeepNarrowDags)
{
    // A pure chain gains nothing from parallel cores.
    Dag d;
    NodeId prev = d.addInput();
    NodeId other = d.addInput();
    for (int i = 0; i < 4000; ++i)
        prev = d.addNode(OpType::Add, {prev, other});
    CpuModelParams one;
    one.cores = 1;
    CpuModelParams many;
    many.cores = 18;
    double t1 = runCpuModel(d, one).seconds;
    double t18 = runCpuModel(d, many).seconds;
    EXPECT_GT(t18, t1 * 0.8);
}

TEST(GpuModel, LaunchBoundOnSmallDags)
{
    // Below ~100K nodes the GPU underperforms the CPU (fig. 1(c)).
    Dag d = binarize(buildWorkloadDag(findWorkload("tretail"))).dag;
    auto gpu = runGpuModel(d);
    auto cpu = runCpuModel(d);
    EXPECT_LT(gpu.throughputGops, cpu.throughputGops);
}

TEST(GpuModel, CatchesUpOnHugeDags)
{
    PcParams p;
    p.targetOperations = 500000;
    p.depth = 60;
    p.seed = 9;
    Dag d = binarize(generatePc(p)).dag;
    auto gpu = runGpuModel(d);
    auto cpu = runCpuModel(d);
    EXPECT_GT(gpu.throughputGops, cpu.throughputGops);
}

TEST(GpuModel, MoreLevelsMoreLaunchTime)
{
    PcParams shallow;
    shallow.targetOperations = 10000;
    shallow.depth = 10;
    shallow.seed = 3;
    PcParams deep = shallow;
    deep.depth = 100;
    auto a = runGpuModel(binarize(generatePc(shallow)).dag);
    auto b = runGpuModel(binarize(generatePc(deep)).dag);
    EXPECT_GT(a.throughputGops, b.throughputGops);
}

TEST(DpuV1Model, PlateausWithParallelism)
{
    Dag wide = binarize(buildWorkloadDag(findWorkload("msnbc"), 0.5)).dag;
    Dag narrow =
        binarize(buildWorkloadDag(findWorkload("bp_200"), 0.5)).dag;
    auto w = runDpuV1Model(wide);
    auto n = runDpuV1Model(narrow);
    EXPECT_GT(w.throughputGops, n.throughputGops);
    // Never exceeds the plateau.
    DpuV1ModelParams p;
    EXPECT_LE(w.throughputGops,
              p.peakOpsPerCycle * p.frequencyHz * 1e-9 + 1e-9);
}

TEST(SpuModel, IsScaledCpuSpu)
{
    Dag d = binarize(mediumPc()).dag;
    auto cpu = runCpuSpuModel(d);
    auto spu = runSpuModel(d);
    EXPECT_NEAR(spu.throughputGops, cpu.throughputGops * 13.3, 1e-9);
    EXPECT_DOUBLE_EQ(spu.powerWatts, 16);
}

TEST(CpuSpu, SlightlySlowerThanGraphopt)
{
    Dag d = binarize(mediumPc()).dag;
    EXPECT_LT(runCpuSpuModel(d).throughputGops,
              runCpuModel(d).throughputGops);
}

TEST(Spatial, SystolicDegradesTreeHoldsUp)
{
    // fig. 3(c): the headline architectural argument.
    Dag d = buildWorkloadDag(findWorkload("mnist"), 0.5);
    double sys2 = systolicPeakUtilization(d, 2, 16);
    double sys8 = systolicPeakUtilization(d, 8, 16);
    double sys16 = systolicPeakUtilization(d, 16, 16);
    EXPECT_DOUBLE_EQ(sys2, 1.0);
    EXPECT_LT(sys8, 0.6);
    EXPECT_LT(sys16, sys8 + 0.05);
    EXPECT_GT(treePeakUtilization(d, 8), 0.85);
    EXPECT_GT(treePeakUtilization(d, 16), 0.8);
}

namespace {

std::vector<std::vector<double>>
seededRhsBatch(uint32_t dim, size_t batch, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> out;
    for (size_t b = 0; b < batch; ++b) {
        std::vector<double> rhs(dim);
        for (double &x : rhs)
            x = rng.uniform() * 2 - 1;
        out.push_back(std::move(rhs));
    }
    return out;
}

} // namespace

TEST(CpuSparse, MatchesReferenceSolve)
{
    LowerTriangularParams p;
    p.dim = 120;
    p.depthLevels = 15;
    p.avgOffDiagonal = 3.0;
    p.seed = 21;
    auto lower = makeLowerTriangular(p);
    auto rhs_batch = seededRhsBatch(lower.dim(), 4, 22);

    auto r = runCpuSparseSolve(lower, rhs_batch);
    ASSERT_EQ(r.solutions.size(), rhs_batch.size());
    EXPECT_EQ(r.levels, lower.dependencyDepth());
    EXPECT_GT(r.seconds, 0);
    EXPECT_GT(r.throughputGops, 0);
    uint64_t per_solve =
        2 * (uint64_t(lower.nnz()) - lower.dim()) + lower.dim();
    EXPECT_EQ(r.flops, per_solve * rhs_batch.size());
    for (size_t b = 0; b < rhs_batch.size(); ++b) {
        auto ref = solveLowerTriangular(lower, rhs_batch[b]);
        ASSERT_EQ(r.solutions[b].size(), ref.size());
        for (size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(r.solutions[b][i], ref[i], 1e-9) << b << " " << i;
    }
}

TEST(CpuSparse, SolutionsInvariantAcrossThreadCounts)
{
    // The level barrier makes the arithmetic order within a row fixed
    // regardless of how rows are split across threads, so solutions
    // must be bitwise identical for any thread count.
    LowerTriangularParams p;
    p.dim = 200;
    p.depthLevels = 12;
    p.avgOffDiagonal = 4.0;
    p.seed = 33;
    auto lower = makeLowerTriangular(p);
    auto rhs_batch = seededRhsBatch(lower.dim(), 3, 34);

    auto one = runCpuSparseSolve(lower, rhs_batch, {1, 1});
    for (uint32_t threads : {2u, 4u, 8u}) {
        auto many = runCpuSparseSolve(lower, rhs_batch, {threads, 1});
        ASSERT_EQ(many.solutions.size(), one.solutions.size());
        for (size_t b = 0; b < one.solutions.size(); ++b)
            for (size_t i = 0; i < one.solutions[b].size(); ++i)
                EXPECT_EQ(many.solutions[b][i], one.solutions[b][i])
                    << threads << " " << b << " " << i;
    }
}

TEST(CpuSparse, DiagonalSystemSolvesInOneLevel)
{
    std::vector<Triplet> trips;
    for (uint32_t i = 0; i < 4; ++i)
        trips.push_back({i, i, double(i + 1)});
    auto m = SparseMatrixCsr::fromTriplets(4, trips);
    auto r = runCpuSparseSolve(m, {{1.0, 2.0, 3.0, 4.0}});
    EXPECT_EQ(r.levels, 1u);
    ASSERT_EQ(r.solutions.size(), 1u);
    for (uint32_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(r.solutions[0][i], 1.0);
}

TEST(Spatial, TreeUtilizationOnChainIsLow)
{
    // A pure chain cannot fill a tree: depth beats width.
    Dag d;
    NodeId prev = d.addInput();
    NodeId other = d.addInput();
    for (int i = 0; i < 100; ++i)
        prev = d.addNode(OpType::Add, {prev, other});
    EXPECT_LT(treePeakUtilization(d, 8), 0.75);
}

} // namespace
} // namespace dpu
